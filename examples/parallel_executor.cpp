// Parallel execution engine demo: run the same generated Ethereum-like
// block through every executor, verify they all agree with sequential
// execution, and compare their costs.
//
// This is the execution engine the paper's conclusion names as future
// work, running for real on worker threads.
//
// Pass --trace[=file] (or set TXCONC_TRACE=<file>) to record every span
// to a Chrome trace_event JSON, loadable in Perfetto / chrome://tracing,
// and to print the metrics registry afterwards. Pass --engine=<name> to
// run only one registered engine (sequential always runs as the oracle).
// Pass --profile to additionally run the critical-path profiler over the
// recorded trace and print each engine's stall attribution (each engine
// replays the block twice so the reported run is warm). Pass --contend to
// run the contention explainer instead: measured conflict rates, hot keys
// and per-reason abort attribution from each engine's observed accesses
// (same warm protocol: the reported run sees warm scratch).
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "analysis/report.h"
#include "exec/contention_probe.h"
#include "exec/executor.h"
#include "obs/contention.h"
#include "obs/critpath.h"
#include "exec/replay.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "workload/profiles.h"

using namespace txconc;

namespace {

// Registry names, comma-joined, for the usage and error messages — the
// engine list below is registry-driven, so this is always current
// (speculative, speculative-fww, oracle, group, occ, block-stm, ...).
std::string registry_names() {
  std::string names;
  for (const exec::ExecutorSpec& spec : exec::executor_registry()) {
    if (!names.empty()) names += ", ";
    names += spec.name;
  }
  return names;
}

int usage(const char* argv0, int code) {
  (code == 0 ? std::cout : std::cerr)
      << "usage: " << argv0
      << " [--trace[=file]] [--profile] [--contend] [--engine=<name>]\n"
      << "  --trace[=file]   write a Chrome trace (default file:\n"
      << "                   parallel_executor_trace.json) and print the\n"
      << "                   metrics registry\n"
      << "  --profile        profile the trace: per-engine critical path\n"
      << "                   and threads x wall stall attribution\n"
      << "  --contend        explain each engine's contention: measured\n"
      << "                   c/l, hot keys, per-reason abort attribution\n"
      << "  --engine=<name>  run only <name> (plus the sequential oracle).\n"
      << "                   registered engines: " << registry_names()
      << "\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string engine_filter;
  bool profiling = false;
  bool contending = false;
  if (const char* env = std::getenv("TXCONC_TRACE")) trace_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = "parallel_executor_trace.json";
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profiling = true;
    } else if (std::strcmp(argv[i], "--contend") == 0) {
      contending = true;
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      engine_filter = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      return usage(argv[0], 0);
    } else {
      return usage(argv[0], 2);
    }
  }
  const bool tracing = !trace_path.empty() || profiling;
  if (tracing) obs::Tracer::global().enable();

  // A late-history Ethereum block, replayed through each engine.
  const workload::ChainProfile profile = workload::ethereum_profile();
  const std::uint64_t skip = profile.default_blocks - 1;

  // Every registered engine at 4 threads, sequential first (it is the
  // digest oracle the others are compared against, so it always runs
  // even under --engine).
  std::vector<std::unique_ptr<exec::BlockExecutor>> engines;
  bool filter_found = engine_filter.empty();
  for (const exec::ExecutorSpec& spec : exec::executor_registry()) {
    const bool selected =
        engine_filter.empty() || spec.name == engine_filter;
    if (spec.name == engine_filter) filter_found = true;
    if (spec.name == "sequential" || selected) {
      engines.push_back(spec.make(4));
    }
  }
  if (!filter_found) {
    std::cerr << "unknown engine \"" << engine_filter
              << "\"; registered engines: " << registry_names() << "\n";
    return 2;
  }

  analysis::TextTable table({"executor", "sequential txs", "executions",
                             "unit-cost time", "speed-up", "state"});

  Hash256 expected;
  std::size_t block_size = 0;
  exec::ContentionProbe probe;
  std::vector<std::pair<std::string, obs::BlockContention>> contention;
  for (const auto& engine : engines) {
    if (profiling || contending) {
      // Warmup replay of the same block: the reported run below then
      // sees warm tracer buffers and scratch, so the attribution is not
      // polluted by one-time allocation inside execute_block (the
      // profiler books that caller self-time as `uncovered`).
      exec::HistoryReplayer warmup(profile, 2718, skip);
      warmup.set_obs(&obs::global_scope());
      warmup.replay_next(*engine);
    }
    exec::HistoryReplayer replayer(profile, 2718, skip);
    obs::Scope contend_scope = obs::global_scope();
    if (tracing) replayer.set_obs(&obs::global_scope());
    if (contending) {
      // Same wiring as tools/txconc_contend: the probe records observed
      // accesses, the engines attribute aborts through the scope's sink.
      contend_scope.contention = probe.sink();
      replayer.set_obs(&contend_scope);
      replayer.set_block_observer(&probe);
      replayer.set_access_recorder(probe.recorder());
    }
    const exec::ExecutionReport report = replayer.replay_next(*engine);
    if (contending) {
      contention.emplace_back(engine->name(), probe.blocks().back());
      probe.clear();
    }
    block_size = report.num_txs;
    const Hash256 digest = replayer.state().digest();
    if (engine->name() == "sequential") expected = digest;
    table.row({report.executor, std::to_string(report.sequential_txs),
               std::to_string(report.executions),
               analysis::fmt_double(report.simulated_units, 1),
               analysis::fmt_double(report.simulated_speedup, 2) + "x",
               digest == expected ? "== sequential" : "MISMATCH!"});
  }

  std::cout << "executing one generated Ethereum block (" << block_size
            << " transactions) through every engine:\n\n"
            << table.render() << "\n";

  std::cout
      << "notes:\n"
         "  * \"sequential txs\" is the conflicted bin (speculative), the\n"
         "    largest component (group scheduler), or the largest retry\n"
         "    wave (OCC);\n"
         "  * the speculative engine executes conflicted transactions "
         "twice\n"
         "    (executions > block size); the oracle and group engines "
         "never\n"
         "    re-execute; OCC retries in parallel waves; block-stm "
         "re-executes\n"
         "    only invalidated transactions against its multi-version "
         "store;\n"
         "  * unit-cost time is the paper's model currency: one unit per\n"
         "    transaction execution slot on the critical path.\n";

  if (tracing) {
    obs::Tracer::global().disable();
    if (!trace_path.empty()) {
      if (!obs::Tracer::global().write_chrome_trace_file(trace_path)) {
        std::cerr << "failed to write trace to " << trace_path << "\n";
        return 1;
      }
      std::cout << "\nwrote Chrome trace to " << trace_path
                << " (open in Perfetto or chrome://tracing)\n\nmetrics:\n";
      std::ostringstream metrics;
      obs::Registry::global().write_csv(metrics);
      std::cout << metrics.str();
    }
  }
  if (profiling) {
    std::ostringstream trace_json;
    obs::Tracer::global().write_chrome_trace(trace_json);
    const std::string json = trace_json.str();
    const obs::TraceValidation validation = obs::validate_chrome_trace(json);
    if (!validation.ok) {
      std::cerr << "trace failed validation: " << validation.error << "\n";
      return 1;
    }
    const obs::ProfileResult profiled = obs::profile_chrome_trace(json);
    if (!profiled.ok) {
      std::cerr << "trace could not be profiled: " << profiled.error << "\n";
      return 1;
    }
    std::cout << "\ncritical-path profile (warm run of each engine):\n\n";
    // Each engine ran twice; report the warm (last) block per process.
    for (std::size_t i = 0; i < profiled.blocks.size(); ++i) {
      const obs::BlockProfile& block = profiled.blocks[i];
      bool is_last = true;
      for (std::size_t j = i + 1; j < profiled.blocks.size(); ++j) {
        if (profiled.blocks[j].process == block.process) {
          is_last = false;
          break;
        }
      }
      if (!is_last) continue;
      obs::write_profile_text(std::cout, block);
      const std::string violation = obs::check_attribution(block);
      if (!violation.empty()) {
        std::cout << "  warning: " << violation << "\n";
      }
    }
  }
  if (contending) {
    std::cout << "\ncontention explainer (warm run of each engine):\n\n";
    for (const auto& [name, block] : contention) {
      std::cout << "== " << name << " ==\n";
      obs::write_text(std::cout, block);
      std::cout << "\n";
    }
  }
  return 0;
}
