// Parallel execution engine demo: run the same generated Ethereum-like
// block through every executor, verify they all agree with sequential
// execution, and compare their costs.
//
// This is the execution engine the paper's conclusion names as future
// work, running for real on worker threads.
//
// Pass --trace[=file] (or set TXCONC_TRACE=<file>) to record every span
// to a Chrome trace_event JSON, loadable in Perfetto / chrome://tracing,
// and to print the metrics registry afterwards.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "analysis/report.h"
#include "exec/executor.h"
#include "exec/replay.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "workload/profiles.h"

using namespace txconc;

int main(int argc, char** argv) {
  std::string trace_path;
  if (const char* env = std::getenv("TXCONC_TRACE")) trace_path = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = "parallel_executor_trace.json";
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else {
      std::cerr << "usage: " << argv[0] << " [--trace[=file]]\n";
      return 2;
    }
  }
  const bool tracing = !trace_path.empty();
  if (tracing) obs::Tracer::global().enable();

  // A late-history Ethereum block, replayed through each engine.
  const workload::ChainProfile profile = workload::ethereum_profile();
  const std::uint64_t skip = profile.default_blocks - 1;

  std::vector<std::unique_ptr<exec::BlockExecutor>> engines;
  engines.push_back(exec::make_sequential_executor());
  engines.push_back(exec::make_speculative_executor(4));
  engines.push_back(exec::make_speculative_executor(
      4, exec::AbortPolicy::kFirstWriterWins));
  engines.push_back(exec::make_oracle_executor(4));
  engines.push_back(exec::make_group_executor(4));
  engines.push_back(exec::make_occ_executor(4));

  analysis::TextTable table({"executor", "sequential txs", "executions",
                             "unit-cost time", "speed-up", "state"});

  Hash256 expected;
  std::size_t block_size = 0;
  for (const auto& engine : engines) {
    exec::HistoryReplayer replayer(profile, 2718, skip);
    if (tracing) replayer.set_obs(&obs::global_scope());
    const exec::ExecutionReport report = replayer.replay_next(*engine);
    block_size = report.num_txs;
    const Hash256 digest = replayer.state().digest();
    if (engine->name() == "sequential") expected = digest;
    table.row({report.executor, std::to_string(report.sequential_txs),
               std::to_string(report.executions),
               analysis::fmt_double(report.simulated_units, 1),
               analysis::fmt_double(report.simulated_speedup, 2) + "x",
               digest == expected ? "== sequential" : "MISMATCH!"});
  }

  std::cout << "executing one generated Ethereum block (" << block_size
            << " transactions) through every engine:\n\n"
            << table.render() << "\n";

  std::cout
      << "notes:\n"
         "  * \"sequential txs\" is the conflicted bin (speculative), the\n"
         "    largest component (group scheduler), or the largest retry\n"
         "    wave (OCC);\n"
         "  * the speculative engine executes conflicted transactions "
         "twice\n"
         "    (executions > block size); the oracle and group engines "
         "never\n"
         "    re-execute; OCC retries in parallel waves;\n"
         "  * unit-cost time is the paper's model currency: one unit per\n"
         "    transaction execution slot on the critical path.\n";

  if (tracing) {
    obs::Tracer::global().disable();
    if (!obs::Tracer::global().write_chrome_trace_file(trace_path)) {
      std::cerr << "failed to write trace to " << trace_path << "\n";
      return 1;
    }
    std::cout << "\nwrote Chrome trace to " << trace_path
              << " (open in Perfetto or chrome://tracing)\n\nmetrics:\n";
    std::ostringstream metrics;
    obs::Registry::global().write_csv(metrics);
    std::cout << metrics.str();
  }
  return 0;
}
