// Parallel execution engine demo: run the same generated Ethereum-like
// block through every executor, verify they all agree with sequential
// execution, and compare their costs.
//
// This is the execution engine the paper's conclusion names as future
// work, running for real on worker threads.
#include <iostream>

#include "analysis/report.h"
#include "exec/executor.h"
#include "exec/replay.h"
#include "workload/profiles.h"

using namespace txconc;

int main() {
  // A late-history Ethereum block, replayed through each engine.
  const workload::ChainProfile profile = workload::ethereum_profile();
  const std::uint64_t skip = profile.default_blocks - 1;

  std::vector<std::unique_ptr<exec::BlockExecutor>> engines;
  engines.push_back(exec::make_sequential_executor());
  engines.push_back(exec::make_speculative_executor(4));
  engines.push_back(exec::make_speculative_executor(
      4, exec::AbortPolicy::kFirstWriterWins));
  engines.push_back(exec::make_oracle_executor(4));
  engines.push_back(exec::make_group_executor(4));
  engines.push_back(exec::make_occ_executor(4));

  analysis::TextTable table({"executor", "sequential txs", "executions",
                             "unit-cost time", "speed-up", "state"});

  Hash256 expected;
  std::size_t block_size = 0;
  for (const auto& engine : engines) {
    exec::HistoryReplayer replayer(profile, 2718, skip);
    const exec::ExecutionReport report = replayer.replay_next(*engine);
    block_size = report.num_txs;
    const Hash256 digest = replayer.state().digest();
    if (engine->name() == "sequential") expected = digest;
    table.row({report.executor, std::to_string(report.sequential_txs),
               std::to_string(report.executions),
               analysis::fmt_double(report.simulated_units, 1),
               analysis::fmt_double(report.simulated_speedup, 2) + "x",
               digest == expected ? "== sequential" : "MISMATCH!"});
  }

  std::cout << "executing one generated Ethereum block (" << block_size
            << " transactions) through every engine:\n\n"
            << table.render() << "\n";

  std::cout
      << "notes:\n"
         "  * \"sequential txs\" is the conflicted bin (speculative), the\n"
         "    largest component (group scheduler), or the largest retry\n"
         "    wave (OCC);\n"
         "  * the speculative engine executes conflicted transactions "
         "twice\n"
         "    (executions > block size); the oracle and group engines "
         "never\n"
         "    re-execute; OCC retries in parallel waves;\n"
         "  * unit-cost time is the paper's model currency: one unit per\n"
         "    transaction execution slot on the critical path.\n";
  return 0;
}
