// Full-node walkthrough: mine blocks with real proof-of-work, validate
// them on an independent node (re-execution + commitment checks), and
// resolve a fork with the heaviest-chain rule.
#include <iostream>

#include "analysis/report.h"
#include "chain/fork.h"
#include "chain/node.h"
#include "exec/executor.h"

using namespace txconc;
using namespace txconc::chain;

namespace {

Address addr(std::uint64_t seed) { return Address::from_seed(seed); }

account::AccountTx pay(const AccountNode& node, std::uint64_t from,
                       std::uint64_t to, std::uint64_t value) {
  account::AccountTx tx;
  tx.from = addr(from);
  tx.to = addr(to);
  tx.value = value;
  tx.gas_limit = 30000;
  tx.nonce = node.state().nonce(addr(from));
  return tx;
}

}  // namespace

int main() {
  // ---- A miner and an independent validator with the same genesis.
  AccountNodeConfig config;
  config.mine = true;
  config.difficulty = 64;  // a few thousand hashes per block

  AccountNode miner(config);
  // The validator re-executes blocks with the parallel group engine.
  auto engine = exec::make_group_executor(2);
  AccountNode validator(
      config, [&engine](account::StateDb& state,
                        std::span<const account::AccountTx> txs,
                        const account::RuntimeConfig& runtime) {
        return engine->execute_block(state, txs, runtime).receipts;
      });
  for (auto* node : {&miner, &validator}) {
    for (std::uint64_t u = 1; u <= 4; ++u) {
      node->genesis_fund(addr(u), 100'000'000);
    }
  }

  std::cout << "mining three blocks (difficulty " << config.difficulty
            << ")...\n";
  analysis::TextTable table({"height", "txs", "gas", "nonce", "hash"});
  for (int round = 0; round < 3; ++round) {
    miner.submit_transaction(pay(miner, 1, 10, 100 + round));
    miner.submit_transaction(pay(miner, 2, 11, 200 + round));
    const auto block = miner.produce_block(10 * (round + 1));
    validator.receive_block(block);  // PoW + merkle + re-execution checks
    table.row({std::to_string(block.header.height),
               std::to_string(block.transactions.size()),
               std::to_string(block.header.gas_used),
               std::to_string(block.header.nonce),
               block.header.hash().short_hex() + "..."});
  }
  std::cout << table.render() << "\n";
  std::cout << "validator state digest matches miner: "
            << (validator.state().digest() == miner.state().digest()
                    ? "yes"
                    : "NO (bug!)")
            << "\n\n";

  // ---- Fork choice: a heavier competing branch appears.
  std::cout << "fork choice demo (heaviest chain rule):\n";
  const auto genesis = miner.ledger().at(0).header;
  ForkTree tree(genesis);
  for (std::size_t h = 1; h < miner.ledger().height(); ++h) {
    tree.insert(miner.ledger().at(h).header);
  }
  std::cout << "  best height before fork: " << tree.best_height()
            << " (difficulty "
            << tree.cumulative_difficulty(tree.best_tip()) << ")\n";

  // An attacker (or a luckier miner) built a heavier private branch from
  // height 0.
  BlockHeader fork1;
  fork1.height = 1;
  fork1.prev_hash = genesis.hash();
  fork1.difficulty = 100;
  fork1.timestamp = 5;
  BlockHeader fork2;
  fork2.height = 2;
  fork2.prev_hash = fork1.hash();
  fork2.difficulty = 100;
  fork2.timestamp = 6;

  // 64 + 100 = 164 < 192: inserting fork1 does not move the tip yet...
  const auto no_move = tree.insert(fork1);
  std::cout << "  after fork block 1: "
            << (no_move ? "tip moved (unexpected)" : "tip unchanged") << "\n";
  // ...but 64 + 200 = 264 > 192 does, and the whole branch swaps.
  const auto reorg = tree.insert(fork2);
  if (reorg) {
    std::cout << "  reorg! disconnect " << reorg->disconnect.size()
              << " blocks, connect " << reorg->connect.size() << " blocks\n";
    std::cout << "  new best height: " << tree.best_height()
              << " (difficulty "
              << tree.cumulative_difficulty(tree.best_tip()) << ")\n";
  } else {
    std::cout << "  no reorg (private branch too light)\n";
  }
  std::cout << "\na node following this plan would undo the disconnected "
               "blocks' transactions (UtxoSet::undo_block / StateDb "
               "journal) and replay the connected ones.\n";
  return 0;
}
