// Quickstart: build a small account-model block, construct its transaction
// dependency graph, compute the paper's two conflict metrics, and predict
// the execution speed-up.
//
//   $ ./examples/quickstart
#include <iostream>

#include "account/contracts.h"
#include "account/runtime.h"
#include "account/state.h"
#include "analysis/block_analyzer.h"
#include "core/components.h"
#include "core/speedup_model.h"

using namespace txconc;

int main() {
  // ---- 1. A world state with some funded users and one hot contract.
  account::StateDb state;
  const Address exchange = Address::from_seed(1000);
  const Address relay_sink = Address::from_seed(1001);
  const Address relay = Address::from_seed(1002);
  account::genesis_deploy(state, relay, account::contracts::relay(relay_sink));

  std::vector<Address> users;
  for (std::uint64_t i = 0; i < 12; ++i) {
    users.push_back(Address::from_seed(i));
    state.set_balance(users.back(), 1'000'000'000);
  }

  // ---- 2. A block: three deposits to the exchange, one relay call (which
  // spawns an internal transaction), and four independent payments.
  std::vector<account::AccountTx> block;
  auto pay = [&](const Address& from, const Address& to,
                 std::uint64_t value) {
    account::AccountTx tx;
    tx.from = from;
    tx.to = to;
    tx.value = value;
    tx.gas_limit = 100000;
    tx.nonce = state.nonce(from);
    return tx;
  };
  block.push_back(pay(users[0], exchange, 500));
  block.push_back(pay(users[1], exchange, 600));
  block.push_back(pay(users[2], exchange, 700));
  account::AccountTx call = pay(users[3], relay, 100);
  call.args = {0};
  block.push_back(call);
  for (int i = 4; i < 8; ++i) {
    block.push_back(pay(users[i], users[i + 4], 50));
  }

  // ---- 3. Execute the block (sequentially) to obtain receipts with real
  // internal-transaction traces and gas figures.
  std::vector<account::Receipt> receipts;
  for (const auto& tx : block) {
    receipts.push_back(account::apply_transaction(state, tx));
  }

  // ---- 4. Build the TDG and compute the metrics of Section III.
  const analysis::AccountTdg tdg = analysis::build_account_tdg(block, receipts);
  const core::ComponentSet components =
      core::connected_components_bfs(tdg.addresses.graph());
  const core::ConflictStats stats =
      core::account_conflict_stats(components, tdg.tx_refs);

  std::cout << "block with " << stats.total_transactions << " transactions\n"
            << "  connected components:            " << stats.num_components
            << "\n"
            << "  conflicted transactions:         "
            << stats.conflicted_transactions << "\n"
            << "  single-transaction conflict rate: " << stats.single_rate()
            << "\n"
            << "  group conflict rate:              " << stats.group_rate()
            << "\n\n";

  // ---- 5. Predict speed-ups with the Section V models.
  for (unsigned cores : {4u, 8u}) {
    std::cout << "with " << cores << " cores:\n"
              << "  speculative two-phase (eq. 1):  "
              << core::SpeculativeModel::speedup(stats.total_transactions,
                                                 stats.single_rate(), cores)
              << "x\n"
              << "  group concurrency bound (eq. 2): "
              << core::GroupModel::speedup_bound(cores, stats.group_rate())
              << "x\n";
  }
  std::cout << "\nnext steps: see examples/parallel_executor.cpp for running "
               "this for real on worker threads.\n";
  return 0;
}
