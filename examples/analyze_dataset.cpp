// Command-line dataset analyzer: run the paper's measurement pipeline on
// any dataset CSV (exported by this library, or your own data shaped the
// same way — see src/analysis/dataset.h for the format).
//
//   $ ./examples/analyze_dataset mychain.csv
//   $ ./examples/analyze_dataset            # demo: export + analyze
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/dataset.h"
#include "analysis/report.h"
#include "analysis/speedup.h"
#include "common/stats.h"
#include "core/speedup_model.h"
#include "workload/profiles.h"
#include "workload/utxo_workload.h"

using namespace txconc;

namespace {

void analyze(const analysis::Dataset& dataset) {
  const std::vector<core::ConflictStats> per_block =
      analysis::analyze_dataset(dataset);

  WeightedMean single;
  WeightedMean group;
  RunningStats txs;
  std::size_t worst_block = 0;
  double worst_rate = 0.0;
  for (std::size_t h = 0; h < per_block.size(); ++h) {
    const core::ConflictStats& stats = per_block[h];
    if (stats.total_transactions == 0) continue;
    const double weight = static_cast<double>(stats.total_transactions);
    txs.add(weight);
    single.add(stats.single_rate(), weight);
    group.add(stats.group_rate(), weight);
    if (stats.single_rate() > worst_rate) {
      worst_rate = stats.single_rate();
      worst_block = h;
    }
  }

  std::cout << "chain:    " << dataset.chain << " ("
            << (dataset.model == workload::DataModel::kUtxo ? "UTXO"
                                                            : "account")
            << " model)\n"
            << "blocks:   " << dataset.num_blocks << "\n"
            << "txs/block (mean): " << analysis::fmt_double(txs.mean(), 1)
            << "\n\n";

  analysis::TextTable table({"metric", "tx-weighted value"});
  table.row({"single-transaction conflict rate",
             analysis::fmt_double(single.mean())});
  table.row({"group conflict rate", analysis::fmt_double(group.mean())});
  // Built via ostringstream: `"#" + std::to_string(...)` trips a GCC 12
  // -Wrestrict false positive inside the inlined string concatenation.
  std::ostringstream worst;
  worst << "#" << worst_block << " ("
        << analysis::fmt_double(100 * worst_rate, 1) << "% conflicted)";
  table.row({"most conflicted block", worst.str()});
  std::cout << table.render() << "\n";

  std::cout << "potential execution speed-ups (Section V models):\n";
  analysis::TextTable speedups(
      {"cores", "speculative eq.(1)", "group bound eq.(2)"});
  const auto x = static_cast<std::size_t>(txs.mean() + 0.5);
  for (unsigned n : {4u, 8u, 16u, 64u}) {
    speedups.row(
        {std::to_string(n),
         analysis::fmt_double(
             x == 0 ? 1.0
                    : core::SpeculativeModel::speedup(x, single.mean(), n),
             2) + "x",
         analysis::fmt_double(core::GroupModel::speedup_bound(n, group.mean()),
                              2) +
             "x"});
  }
  std::cout << speedups.render();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    try {
      analyze(analysis::read_csv(in));
    } catch (const Error& e) {
      std::cerr << "failed to analyze " << argv[1] << ": " << e.what()
                << "\n";
      return 1;
    }
    return 0;
  }

  // Demo mode: export a small Bitcoin Cash history through the CSV layer
  // and analyze the round-tripped dataset.
  std::cout << "(no file given — demo: exporting a 40-block Bitcoin Cash "
               "history through CSV first)\n\n";
  workload::ChainProfile profile = workload::bitcoin_cash_profile();
  workload::UtxoWorkloadGenerator generator(profile, 20200714, 40);
  const analysis::Dataset dataset = analysis::export_dataset(generator);
  std::stringstream csv;
  analysis::write_csv(csv, dataset);
  std::cout << "CSV size: " << csv.str().size() << " bytes\n\n";
  analyze(analysis::read_csv(csv));
  return 0;
}
