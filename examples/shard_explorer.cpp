// Zilliqa-style sharding walkthrough: pending transactions are partitioned
// into committees by sender address, each committee runs a PBFT round over
// its micro-block, the DS committee aggregates, and cross-shard traffic is
// rejected — reproducing the sharded substrate behind the paper's Zilliqa
// measurements.
#include <iostream>

#include "analysis/block_analyzer.h"
#include "analysis/report.h"
#include "core/components.h"
#include "shard/sharding.h"
#include "workload/account_workload.h"
#include "workload/profiles.h"

using namespace txconc;

int main() {
  shard::ShardConfig config;
  config.num_shards = 4;
  config.pbft.committee_size = 600;  // Zilliqa-scale committees
  config.pbft.message_latency = 0.05;
  config.pbft.faulty_leader_probability = 0.05;
  config.shard_capacity = 200;
  config.state_sync_latency = 10.0;

  shard::ZilliqaSimulator simulator(7, config);

  // Pending traffic: a mix of shard-friendly and naive transactions.
  workload::ChainProfile profile = workload::zilliqa_profile();
  profile.num_shards = config.num_shards;
  workload::AccountWorkloadGenerator generator(profile, 7, 50);
  std::vector<account::AccountTx> pending;
  for (int b = 0; b < 20; ++b) {
    auto block = generator.next_block();
    pending.insert(pending.end(), block.account_txs.begin(),
                   block.account_txs.end());
  }
  // Sprinkle in naive cross-shard transfers users might attempt.
  for (std::uint64_t s = 0; s < 40; ++s) {
    account::AccountTx tx;
    tx.from = Address::from_seed(90000 + s);
    tx.to = Address::from_seed(91000 + s);
    pending.push_back(tx);
  }

  std::cout << "running one Zilliqa epoch over " << pending.size()
            << " pending transactions, " << config.num_shards
            << " committees of " << config.pbft.committee_size << " nodes\n\n";

  const shard::EpochResult epoch = simulator.run_epoch(std::move(pending));

  analysis::TextTable table(
      {"committee", "txs", "pbft latency", "view changes", "messages"});
  for (const auto& micro : epoch.micro_blocks) {
    table.row({std::to_string(micro.shard),
               std::to_string(micro.transactions.size()),
               analysis::fmt_double(micro.consensus.latency_seconds, 2) + " s",
               std::to_string(micro.consensus.view_changes),
               std::to_string(micro.consensus.messages)});
  }
  std::cout << table.render() << "\n";

  std::cout << "final block:      " << epoch.final_block.size()
            << " transactions\n"
            << "rejected (cross): " << epoch.rejected_cross_shard.size()
            << "  <- Zilliqa's no-cross-shard limitation\n"
            << "deferred (full):  " << epoch.deferred.size() << "\n"
            << "epoch latency:    "
            << analysis::fmt_double(epoch.latency_seconds, 2)
            << " s (slowest committee + DS round + state sync)\n"
            << "total messages:   " << epoch.total_messages << "\n\n";

  // Conflict structure of the aggregated final block (what the paper's
  // Zilliqa measurements analyze).
  std::vector<account::Receipt> no_receipts;
  const core::ConflictStats stats = analysis::analyze_account_block(
      epoch.final_block, no_receipts, /*include_internal=*/false);
  std::cout << "final-block conflict metrics (regular-tx TDG):\n"
            << "  single-transaction conflict rate: "
            << analysis::fmt_double(stats.single_rate()) << "\n"
            << "  group conflict rate:              "
            << analysis::fmt_double(stats.group_rate()) << "\n"
            << "as the paper observes, Zilliqa's sharding does not by itself "
               "reduce conflict rates - the workload does that.\n";
  return 0;
}
