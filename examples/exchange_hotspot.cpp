// Exchange hot-spot study: how deposit concentration at a handful of
// exchange addresses (the Poloniex pattern of the paper's Figure 1b)
// destroys parallelism — and how much group scheduling recovers.
//
// Sweeps the exchange share of a synthetic Ethereum-like workload and
// reports both conflict metrics plus the predicted 8-core speed-ups.
#include <iostream>

#include "analysis/report.h"
#include "analysis/series.h"
#include "core/speedup_model.h"
#include "workload/account_workload.h"
#include "workload/profiles.h"

using namespace txconc;

int main() {
  std::cout << "exchange hot-spot study (120-tx blocks, 8 cores)\n\n";

  analysis::TextTable table({"exchange share", "single rate", "group rate",
                             "speculative x", "group x"});

  for (double share : {0.0, 0.1, 0.2, 0.3, 0.5, 0.7}) {
    // A single-era profile so the share is the only moving part.
    workload::ChainProfile profile = workload::ethereum_profile();
    profile.default_blocks = 40;
    workload::EraParams era = profile.at(1.0);  // late-history Ethereum
    era.position = 0.0;
    era.txs_per_block = 120.0;
    era.exchange_share = share;
    // Keep total traffic constant by shifting the remainder into p2p.
    workload::EraParams late = era;
    late.position = 1.0;
    profile.eras = {era, late};

    workload::AccountWorkloadGenerator generator(profile, 99);
    const analysis::ChainSeries series =
        analysis::collect_series(generator, {.num_buckets = 8});

    const double c = series.overall_single_rate;
    const double l = series.overall_group_rate;
    table.row({analysis::fmt_double(share, 2), analysis::fmt_double(c),
               analysis::fmt_double(l),
               analysis::fmt_double(
                   core::SpeculativeModel::speedup(120, c, 8), 2),
               analysis::fmt_double(core::GroupModel::speedup_bound(8, l), 2)});
  }
  std::cout << table.render() << "\n";

  std::cout
      << "observations:\n"
         "  * the single-transaction conflict rate climbs quickly with the\n"
         "    exchange share - speculative re-execution pays for every\n"
         "    deposit;\n"
         "  * the group rate climbs more slowly: deposits to one exchange\n"
         "    form one component that a group scheduler can still overlap\n"
         "    with everything else;\n"
         "  * batching deposits per exchange (group concurrency) is "
         "exactly\n"
         "    the paper's argument for why group conflict rates matter "
         "more\n"
         "    than single-transaction rates (Section IV-B).\n";
  return 0;
}
