#!/usr/bin/env bash
# CI entry point. Lanes (select with TXCONC_CI_LANES, comma-separated;
# default runs all):
#  * tier1 — configure, build (-Wall -Wextra -Wshadow -Werror), ctest,
#    then an observability smoke: a traced ablation_engines run must
#    emit a valid, non-empty Chrome trace AND the critpath profiler's
#    attribution sum invariant must hold for every engine ("profile OK");
#  * asan  — ASan/UBSan on exec_test + conformance_test + audit_test:
#    memory errors and UB under the thread pool's chunked parallel_for;
#    txconc_profile then analyzes the traced exec_test run, driving the
#    trace parser and span-DAG analyzer over sanitizer-instrumented code;
#  * tsan  — TSan on the same binaries: data races, with the conformance
#    schedule perturber widening the interleavings each seed explores;
#  * tsa   — Clang Thread Safety Analysis: recompiles every library with
#    -Wthread-safety -Werror=thread-safety-analysis, turning the
#    GUARDED_BY/REQUIRES annotations (common/thread_annotations.h) into
#    compile errors when lock discipline is violated;
#  * tidy  — clang-tidy over src/ with the checks in .clang-tidy;
#  * lint  — txconc-lint (tools/txconc_lint): the repo's own AST-level
#    checker for invariants generic tooling can't see — TXCONC_HOT
#    functions must not allocate, relaxed/acquire/release atomics need an
#    "ordering:" justification and release stores a matching acquire
#    side, the MutexLock acquisition graph must stay acyclic, TSA escapes
#    need a "tsa:" note, and raw Tracer begin/end outside the RAII span
#    helpers is rejected. Unlike tsa/tidy this lane is never skipped: the
#    checker is built by this repo's own CMake with no clang dependency;
#  * bench — benchmark regression gate: a fresh TXCONC_BENCH_FAST run of
#    bench/ablation_engines is compared against the committed baselines in
#    bench/baselines/ by scripts/bench_gate (hardware-portable ratios with
#    per-metric tolerances), then a negative control re-runs the bench
#    with TXCONC_BENCH_INJECT_SLOWDOWN_PCT=20 and asserts the gate FAILS —
#    proving the lane has teeth. The same fresh run writes
#    BENCH_profile.json (per-cell wall-clock attribution), gated by
#    absolute invariants (sum within eps of threads x wall, bounded
#    untracked share), and BENCH_contention.json (measured c/l, hot keys,
#    prediction quality), gated by --contend with its own doctored-JSON
#    negative control. After an intentional perf change, refresh the
#    baselines with
#      scripts/bench_gate --exec BENCH_exec.json --obs BENCH_obs.json \
#        --profile BENCH_profile.json --refresh
#    and commit bench/baselines/*.json;
#  * bench-large — the same bench with TXCONC_BENCH_LARGE=1: adds the
#    10k-tx concatenated-block cells (reduced reps) and enforces the
#    large-block attainment floor (wall_speedup > 1 at >= 4 threads on
#    multicore hosts; >= 0.9 on < 4-core hosts) via scripts/bench_gate.
# The tsa and tidy lanes need clang++/clang-tidy and are skipped with a
# notice when the tools are absent (the annotations compile to no-ops
# under GCC, so the other lanes still build the same code).
# TXCONC_CONFORMANCE_FAST=1 shrinks the differential sweep (fewer schedule
# seeds) so the ~10x sanitizer slowdown stays within CI budgets.
#
# Examples:
#   ./scripts/ci.sh                          # everything
#   TXCONC_CI_LANES=tier1 ./scripts/ci.sh    # fast local gate
#   TXCONC_CI_LANES=tsa,tidy,lint ./scripts/ci.sh # static analysis only
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"
LANES="${TXCONC_CI_LANES:-tier1,asan,tsan,tsa,tidy,lint,bench,bench-large}"

lane_enabled() {
  case ",${LANES}," in
    *",$1,"*) return 0 ;;
    *) return 1 ;;
  esac
}

# Library targets for compile-only lanes (tsa): everything with annotated
# or annotation-consuming code, which today is the whole src/ tree.
LIB_TARGETS=(txconc_common txconc_core txconc_utxo txconc_account
             txconc_obs txconc_chain txconc_shard txconc_workload
             txconc_exec txconc_audit txconc_analysis txconc_conformance)

# --- tier-1 verify ---------------------------------------------------------
if lane_enabled tier1; then
  echo "== lane: tier1 =="
  cmake -B build -S . -DTXCONC_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build build -j"${JOBS}"
  ctest --test-dir build --output-on-failure -j"${JOBS}"
  # Observability smoke: a traced bench run must produce a non-empty
  # Chrome trace whose spans the bench's built-in validator accepts
  # ("trace OK ...") and whose critpath profile satisfies the
  # attribution sum invariant for every registry engine ("profile OK";
  # see run_traced_executions in bench/ablation_engines.cpp).
  TXCONC_TRACE=build/obs_smoke_trace.json \
    ./build/bench/ablation_engines --benchmark_filter='^$' \
    > build/obs_smoke.log 2>&1
  grep -q "trace OK" build/obs_smoke.log
  grep -q "profile OK" build/obs_smoke.log
  test -s build/obs_smoke_trace.json
  echo "obs smoke OK: build/obs_smoke_trace.json"
fi

# --- ASan/UBSan over the execution layer -----------------------------------
if lane_enabled asan; then
  echo "== lane: asan =="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  cmake --build build-asan -j"${JOBS}" \
    --target exec_test --target conformance_test --target audit_test \
    --target obs_test --target trace_propagation_test --target hotpath_test \
    --target block_stm_test --target critpath_test --target contention_test \
    --target parallel_executor --target txconc_profile
  # Leak checking needs ptrace, which container CI runners often deny; the
  # races/UB we are after are caught without it.
  ASAN_OPTIONS=detect_leaks=0 ./build-asan/tests/obs_test
  ASAN_OPTIONS=detect_leaks=0 ./build-asan/tests/hotpath_test
  # The contention sketch/sink under ASan: lane merges, eviction churn.
  ASAN_OPTIONS=detect_leaks=0 ./build-asan/tests/contention_test
  ASAN_OPTIONS=detect_leaks=0 ./build-asan/tests/block_stm_test
  # The registry round-trip executes every engine through the global
  # tracer and runs the profiler over the result.
  ASAN_OPTIONS=detect_leaks=0 ./build-asan/tests/critpath_test
  ASAN_OPTIONS=detect_leaks=0 ./build-asan/tests/trace_propagation_test
  ASAN_OPTIONS=detect_leaks=0 ./build-asan/tests/exec_test
  ASAN_OPTIONS=detect_leaks=0 TXCONC_CONFORMANCE_FAST=1 \
    ./build-asan/tests/conformance_test
  ASAN_OPTIONS=detect_leaks=0 TXCONC_CONFORMANCE_FAST=1 \
    ./build-asan/tests/audit_test
  # Drive the trace parser and critpath analyzer over sanitizer-built code:
  # the example's traced multi-engine run feeds the asan txconc_profile.
  # Thresholds are fully loosened — the strict attribution contract is
  # gated in the bench lane against warm 2-run traces; here a cold single
  # run per engine would flake on eps. Exit 2 (unanalyzable trace) still
  # fails the lane, so parse/repair regressions are caught.
  ASAN_OPTIONS=detect_leaks=0 \
    ./build-asan/examples/parallel_executor --trace=build-asan/example_trace.json \
    > build-asan/example.log 2>&1
  ASAN_OPTIONS=detect_leaks=0 \
    ./build-asan/tools/txconc_profile/txconc_profile \
    --eps=1.0 --untracked-max=1.0 build-asan/example_trace.json \
    > build-asan/profile.log 2>&1
  echo "asan txconc_profile OK: build-asan/example_trace.json analyzed"
fi

# --- TSan lane: races under perturbed schedules ----------------------------
# TSan is incompatible with ASan, so it gets its own build tree. The
# conformance grid runs every executor family through seeded delay/yield
# perturbation at grain boundaries — exactly the schedules where a missed
# happens-before edge shows up. audit_test rides along: the auditor's
# recorder hooks fire from every pool worker.
if lane_enabled tsan; then
  echo "== lane: tsan =="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
  cmake --build build-tsan -j"${JOBS}" \
    --target exec_test --target conformance_test --target audit_test \
    --target obs_test --target trace_propagation_test --target hotpath_test \
    --target block_stm_test --target critpath_test --target contention_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/obs_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/hotpath_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/contention_test
  # block_stm_test's concurrent rounds drive the MV store, ESTIMATE
  # suspension, and validation sweep from real pool workers.
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/block_stm_test
  # Every engine's span emission + the profiler, under perturbed
  # worker schedules.
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/critpath_test
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/trace_propagation_test
  # exec_test runs with the tracer enabled (TraceEnv in exec_test.cpp):
  # every pool/executor span-emission path executes under TSan.
  TSAN_OPTIONS=halt_on_error=1 TXCONC_TRACE=build-tsan/exec_trace.json \
    ./build-tsan/tests/exec_test
  TSAN_OPTIONS=halt_on_error=1 TXCONC_CONFORMANCE_FAST=1 \
    ./build-tsan/tests/conformance_test
  TSAN_OPTIONS=halt_on_error=1 TXCONC_CONFORMANCE_FAST=1 \
    ./build-tsan/tests/audit_test
fi

# --- TSA lane: compile-time lock discipline --------------------------------
# Thread safety analysis exists only in clang; a removed REQUIRES or an
# unguarded access to a GUARDED_BY member fails this lane (see DESIGN.md
# §10 for the scratch-diff check that proves the lane has teeth).
if lane_enabled tsa; then
  echo "== lane: tsa =="
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety-analysis"
    targets=()
    for t in "${LIB_TARGETS[@]}"; do targets+=(--target "$t"); done
    cmake --build build-tsa -j"${JOBS}" "${targets[@]}"
  else
    echo "tsa lane SKIPPED: clang++ not found (thread safety analysis is" \
         "clang-only; the annotations are no-ops under this compiler)"
  fi
fi

# --- clang-tidy lane -------------------------------------------------------
if lane_enabled tidy; then
  echo "== lane: tidy =="
  if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f build/compile_commands.json ]; then
      cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    fi
    # xargs -P parallelizes across translation units; clang-tidy reads the
    # checks from .clang-tidy at the repo root.
    find src -name '*.cpp' -print0 |
      xargs -0 -n1 -P"${JOBS}" clang-tidy -p build --quiet
  else
    echo "tidy lane SKIPPED: clang-tidy not found"
  fi
fi

# --- txconc-lint lane: the repo's own invariants, enforced -----------------
# txconc-lint exits non-zero on any finding, so set -e fails the lane on
# a violation. The footer check on top of that proves the whole catalogue
# actually ran (a silently-empty registry would otherwise pass). Fixture
# coverage lives in tests/lint_test.cpp (tier1), which asserts every rule
# both fires on its bad fixture and stays silent on the good one.
if lane_enabled lint; then
  echo "== lane: lint =="
  if [ ! -x build/tools/txconc_lint/txconc_lint ]; then
    cmake -B build -S . -DTXCONC_WERROR=ON
    cmake --build build -j"${JOBS}" --target txconc_lint
  fi
  ./build/tools/txconc_lint/txconc_lint src | tee build/lint.log
  RULES="$(sed -n 's/^txconc-lint: \([0-9][0-9]*\) rules.*/\1/p' build/lint.log)"
  if [ -z "${RULES}" ] || [ "${RULES}" -lt 5 ]; then
    echo "lint lane FAILED: expected >= 5 rules in footer, got '${RULES:-none}'"
    exit 1
  fi
  echo "lint lane OK: ${RULES} rules clean over src/"
fi

# --- bench lane: regression gate + negative control ------------------------
# Gates hardware-portable ratios (wall_speedup / simulated_speedup /
# tracer overhead) from a fresh fast-mode run against the committed
# baselines, then proves the gate can fail by injecting a synthetic +20%
# slowdown (applied to non-sequential rows only; see bench/ablation_engines
# and DESIGN.md §12 for the tolerance rationale).
if lane_enabled bench; then
  echo "== lane: bench =="
  if [ ! -x build/bench/ablation_engines ]; then
    cmake -B build -S . -DTXCONC_WERROR=ON
    cmake --build build -j"${JOBS}" --target ablation_engines
  fi
  BENCH_BIN="$(pwd)/build/bench/ablation_engines"
  run_bench() {
    # ablation_engines writes BENCH_*.json into the CWD; run it from a
    # scratch dir so the gate never clobbers the committed files.
    local out="$1"; shift
    mkdir -p "${out}"
    (cd "${out}" && env "$@" TXCONC_BENCH_FAST="${TXCONC_BENCH_FAST:-1}" \
      "${BENCH_BIN}" --benchmark_filter='^$' > bench.log 2>&1)
  }
  run_bench build/bench-fresh
  scripts/bench_gate --exec build/bench-fresh/BENCH_exec.json \
    --obs build/bench-fresh/BENCH_obs.json \
    --profile build/bench-fresh/BENCH_profile.json \
    --contend build/bench-fresh/BENCH_contention.json
  echo "bench gate vs committed baselines: OK"
  # Contention negative control: doctoring one cell's measured conflict
  # rate away from the generator's intent must trip --contend — proving
  # the measured-vs-intent check has teeth.
  python3 - <<'PYEOF'
import json
with open("build/bench-fresh/BENCH_contention.json") as f:
    doc = json.load(f)
doc["results"][0]["measured_c_address"] += 0.5
with open("build/bench-fresh/BENCH_contention_doctored.json", "w") as f:
    json.dump(doc, f)
PYEOF
  if scripts/bench_gate \
       --contend build/bench-fresh/BENCH_contention_doctored.json \
       > build/bench-fresh/contend_doctored.log 2>&1; then
    echo "bench lane FAILED: doctored contention cell did not trip --contend"
    cat build/bench-fresh/contend_doctored.log
    exit 1
  fi
  echo "contend negative control OK: doctored measured_c tripped the gate"
  # Negative control: the +20% injection must trip the gate. Gate the
  # injected run against the same-session fresh run (not the committed
  # baseline) so this check is insulated from host-to-host drift.
  run_bench build/bench-inject TXCONC_BENCH_INJECT_SLOWDOWN_PCT=20
  if scripts/bench_gate --exec build/bench-inject/BENCH_exec.json \
       --obs build/bench-inject/BENCH_obs.json \
       --baseline-exec build/bench-fresh/BENCH_exec.json \
       > build/bench-inject/gate.log 2>&1; then
    echo "bench lane FAILED: injected +20% slowdown did not trip the gate"
    cat build/bench-inject/gate.log
    exit 1
  fi
  echo "bench negative control OK: injected slowdown tripped the gate"
fi

# --- bench-large lane: block-size scaling smoke ----------------------------
# Re-runs the bench with TXCONC_BENCH_LARGE=1, which adds the 10k-tx
# concatenated-block cells on top of the fast {124, 1000} grid (reps are
# automatically cut to <=3 for cells of 10k+ txs, and occ is excluded
# there — see the skip notice in bench/ablation_engines.cpp). The gate
# then checks the large cells against the committed baselines AND the
# attainment floor: >= 2 parallel engines must beat sequential wall clock
# at >= 4 threads on >= 1000-tx blocks on multicore hosts, or hold
# wall_speedup >= 0.9 on hosts with < 4 cores.
if lane_enabled bench-large; then
  echo "== lane: bench-large =="
  if [ ! -x build/bench/ablation_engines ]; then
    cmake -B build -S . -DTXCONC_WERROR=ON
    cmake --build build -j"${JOBS}" --target ablation_engines
  fi
  BENCH_BIN="$(pwd)/build/bench/ablation_engines"
  mkdir -p build/bench-large
  (cd build/bench-large && env TXCONC_BENCH_LARGE=1 \
    TXCONC_BENCH_FAST="${TXCONC_BENCH_FAST:-1}" \
    "${BENCH_BIN}" --benchmark_filter='^$' > bench.log 2>&1)
  grep -q "skipping occ at block_txs=10000" build/bench-large/bench.log
  scripts/bench_gate --exec build/bench-large/BENCH_exec.json \
    --profile build/bench-large/BENCH_profile.json \
    --contend build/bench-large/BENCH_contention.json
  echo "bench-large gate OK (10k-tx cells within tolerances + attainment)"
fi
