#!/usr/bin/env bash
# CI entry point: the tier-1 verify (configure, build, ctest) plus
# sanitizer lanes over the execution layer:
#  * ASan/UBSan on exec_test + conformance_test — memory errors and UB
#    under the thread pool's chunked parallel_for;
#  * TSan on the same binaries — data races, with the conformance
#    schedule perturber widening the interleavings each seed explores.
# TXCONC_CONFORMANCE_FAST=1 shrinks the differential sweep (fewer schedule
# seeds) so the ~10x sanitizer slowdown stays within CI budgets.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

# --- tier-1 verify ---------------------------------------------------------
cmake -B build -S .
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

# --- sanitizer pass over the execution layer -------------------------------
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j"${JOBS}" --target exec_test --target conformance_test
# Leak checking needs ptrace, which container CI runners often deny; the
# races/UB we are after are caught without it.
ASAN_OPTIONS=detect_leaks=0 ./build-asan/tests/exec_test
ASAN_OPTIONS=detect_leaks=0 TXCONC_CONFORMANCE_FAST=1 \
  ./build-asan/tests/conformance_test

# --- TSan lane: races under perturbed schedules ----------------------------
# TSan is incompatible with ASan, so it gets its own build tree. The
# conformance grid runs every executor family through seeded delay/yield
# perturbation at grain boundaries — exactly the schedules where a missed
# happens-before edge shows up.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j"${JOBS}" --target exec_test --target conformance_test
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/exec_test
TSAN_OPTIONS=halt_on_error=1 TXCONC_CONFORMANCE_FAST=1 \
  ./build-tsan/tests/conformance_test
