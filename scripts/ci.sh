#!/usr/bin/env bash
# CI entry point: the tier-1 verify (configure, build, ctest) plus an
# ASan/UBSan build of the executor tests, which exercise the thread pool's
# chunked parallel_for under real races.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

# --- tier-1 verify ---------------------------------------------------------
cmake -B build -S .
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

# --- sanitizer pass over the execution layer -------------------------------
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j"${JOBS}" --target exec_test
# Leak checking needs ptrace, which container CI runners often deny; the
# races/UB we are after are caught without it.
ASAN_OPTIONS=detect_leaks=0 ./build-asan/tests/exec_test
