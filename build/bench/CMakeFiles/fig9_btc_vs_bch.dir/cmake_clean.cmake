file(REMOVE_RECURSE
  "CMakeFiles/fig9_btc_vs_bch.dir/fig9_btc_vs_bch.cpp.o"
  "CMakeFiles/fig9_btc_vs_bch.dir/fig9_btc_vs_bch.cpp.o.d"
  "fig9_btc_vs_bch"
  "fig9_btc_vs_bch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_btc_vs_bch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
