# Empty dependencies file for fig9_btc_vs_bch.
# This may be replaced when dependencies are built.
