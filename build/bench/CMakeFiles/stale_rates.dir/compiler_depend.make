# Empty compiler generated dependencies file for stale_rates.
# This may be replaced when dependencies are built.
