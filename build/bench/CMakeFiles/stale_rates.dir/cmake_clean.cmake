file(REMOVE_RECURSE
  "CMakeFiles/stale_rates.dir/stale_rates.cpp.o"
  "CMakeFiles/stale_rates.dir/stale_rates.cpp.o.d"
  "stale_rates"
  "stale_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stale_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
