# Empty compiler generated dependencies file for fig6_txo_chain.
# This may be replaced when dependencies are built.
