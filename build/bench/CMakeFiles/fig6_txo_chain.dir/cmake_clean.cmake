file(REMOVE_RECURSE
  "CMakeFiles/fig6_txo_chain.dir/fig6_txo_chain.cpp.o"
  "CMakeFiles/fig6_txo_chain.dir/fig6_txo_chain.cpp.o.d"
  "fig6_txo_chain"
  "fig6_txo_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_txo_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
