file(REMOVE_RECURSE
  "CMakeFiles/fig4_ethereum_history.dir/fig4_ethereum_history.cpp.o"
  "CMakeFiles/fig4_ethereum_history.dir/fig4_ethereum_history.cpp.o.d"
  "fig4_ethereum_history"
  "fig4_ethereum_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ethereum_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
