# Empty dependencies file for fig4_ethereum_history.
# This may be replaced when dependencies are built.
