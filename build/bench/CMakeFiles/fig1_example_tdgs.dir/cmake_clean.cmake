file(REMOVE_RECURSE
  "CMakeFiles/fig1_example_tdgs.dir/fig1_example_tdgs.cpp.o"
  "CMakeFiles/fig1_example_tdgs.dir/fig1_example_tdgs.cpp.o.d"
  "fig1_example_tdgs"
  "fig1_example_tdgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_example_tdgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
