# Empty dependencies file for fig1_example_tdgs.
# This may be replaced when dependencies are built.
