file(REMOVE_RECURSE
  "CMakeFiles/fig10_engine.dir/fig10_engine.cpp.o"
  "CMakeFiles/fig10_engine.dir/fig10_engine.cpp.o.d"
  "fig10_engine"
  "fig10_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
