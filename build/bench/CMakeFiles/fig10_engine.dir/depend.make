# Empty dependencies file for fig10_engine.
# This may be replaced when dependencies are built.
