file(REMOVE_RECURSE
  "CMakeFiles/fig8_eth_vs_etc.dir/fig8_eth_vs_etc.cpp.o"
  "CMakeFiles/fig8_eth_vs_etc.dir/fig8_eth_vs_etc.cpp.o.d"
  "fig8_eth_vs_etc"
  "fig8_eth_vs_etc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_eth_vs_etc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
