# Empty compiler generated dependencies file for fig8_eth_vs_etc.
# This may be replaced when dependencies are built.
