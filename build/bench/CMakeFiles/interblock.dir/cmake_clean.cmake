file(REMOVE_RECURSE
  "CMakeFiles/interblock.dir/interblock.cpp.o"
  "CMakeFiles/interblock.dir/interblock.cpp.o.d"
  "interblock"
  "interblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
