# Empty dependencies file for interblock.
# This may be replaced when dependencies are built.
