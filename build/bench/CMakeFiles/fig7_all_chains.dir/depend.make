# Empty dependencies file for fig7_all_chains.
# This may be replaced when dependencies are built.
