file(REMOVE_RECURSE
  "CMakeFiles/fig7_all_chains.dir/fig7_all_chains.cpp.o"
  "CMakeFiles/fig7_all_chains.dir/fig7_all_chains.cpp.o.d"
  "fig7_all_chains"
  "fig7_all_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_all_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
