# Empty dependencies file for fig10_speedups.
# This may be replaced when dependencies are built.
