# Empty compiler generated dependencies file for table1_chains.
# This may be replaced when dependencies are built.
