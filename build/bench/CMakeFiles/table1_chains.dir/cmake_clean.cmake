file(REMOVE_RECURSE
  "CMakeFiles/table1_chains.dir/table1_chains.cpp.o"
  "CMakeFiles/table1_chains.dir/table1_chains.cpp.o.d"
  "table1_chains"
  "table1_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
