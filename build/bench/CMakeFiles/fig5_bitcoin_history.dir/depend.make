# Empty dependencies file for fig5_bitcoin_history.
# This may be replaced when dependencies are built.
