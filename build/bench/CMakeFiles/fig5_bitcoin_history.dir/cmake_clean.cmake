file(REMOVE_RECURSE
  "CMakeFiles/fig5_bitcoin_history.dir/fig5_bitcoin_history.cpp.o"
  "CMakeFiles/fig5_bitcoin_history.dir/fig5_bitcoin_history.cpp.o.d"
  "fig5_bitcoin_history"
  "fig5_bitcoin_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bitcoin_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
