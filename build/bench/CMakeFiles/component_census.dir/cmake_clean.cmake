file(REMOVE_RECURSE
  "CMakeFiles/component_census.dir/component_census.cpp.o"
  "CMakeFiles/component_census.dir/component_census.cpp.o.d"
  "component_census"
  "component_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/component_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
