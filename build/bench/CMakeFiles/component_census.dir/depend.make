# Empty dependencies file for component_census.
# This may be replaced when dependencies are built.
