# Empty dependencies file for approx_tdg.
# This may be replaced when dependencies are built.
