file(REMOVE_RECURSE
  "CMakeFiles/approx_tdg.dir/approx_tdg.cpp.o"
  "CMakeFiles/approx_tdg.dir/approx_tdg.cpp.o.d"
  "approx_tdg"
  "approx_tdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_tdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
