# Empty compiler generated dependencies file for exchange_hotspot.
# This may be replaced when dependencies are built.
