file(REMOVE_RECURSE
  "CMakeFiles/exchange_hotspot.dir/exchange_hotspot.cpp.o"
  "CMakeFiles/exchange_hotspot.dir/exchange_hotspot.cpp.o.d"
  "exchange_hotspot"
  "exchange_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchange_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
