# Empty compiler generated dependencies file for shard_explorer.
# This may be replaced when dependencies are built.
