file(REMOVE_RECURSE
  "CMakeFiles/shard_explorer.dir/shard_explorer.cpp.o"
  "CMakeFiles/shard_explorer.dir/shard_explorer.cpp.o.d"
  "shard_explorer"
  "shard_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shard_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
