file(REMOVE_RECURSE
  "CMakeFiles/parallel_executor.dir/parallel_executor.cpp.o"
  "CMakeFiles/parallel_executor.dir/parallel_executor.cpp.o.d"
  "parallel_executor"
  "parallel_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
