# Empty dependencies file for parallel_executor.
# This may be replaced when dependencies are built.
