# Empty dependencies file for full_node.
# This may be replaced when dependencies are built.
