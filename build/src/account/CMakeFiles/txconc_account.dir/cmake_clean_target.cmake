file(REMOVE_RECURSE
  "libtxconc_account.a"
)
