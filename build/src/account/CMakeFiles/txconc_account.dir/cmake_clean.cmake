file(REMOVE_RECURSE
  "CMakeFiles/txconc_account.dir/contracts.cpp.o"
  "CMakeFiles/txconc_account.dir/contracts.cpp.o.d"
  "CMakeFiles/txconc_account.dir/runtime.cpp.o"
  "CMakeFiles/txconc_account.dir/runtime.cpp.o.d"
  "CMakeFiles/txconc_account.dir/state.cpp.o"
  "CMakeFiles/txconc_account.dir/state.cpp.o.d"
  "CMakeFiles/txconc_account.dir/state_trie.cpp.o"
  "CMakeFiles/txconc_account.dir/state_trie.cpp.o.d"
  "CMakeFiles/txconc_account.dir/vm.cpp.o"
  "CMakeFiles/txconc_account.dir/vm.cpp.o.d"
  "libtxconc_account.a"
  "libtxconc_account.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txconc_account.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
