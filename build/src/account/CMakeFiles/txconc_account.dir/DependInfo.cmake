
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/account/contracts.cpp" "src/account/CMakeFiles/txconc_account.dir/contracts.cpp.o" "gcc" "src/account/CMakeFiles/txconc_account.dir/contracts.cpp.o.d"
  "/root/repo/src/account/runtime.cpp" "src/account/CMakeFiles/txconc_account.dir/runtime.cpp.o" "gcc" "src/account/CMakeFiles/txconc_account.dir/runtime.cpp.o.d"
  "/root/repo/src/account/state.cpp" "src/account/CMakeFiles/txconc_account.dir/state.cpp.o" "gcc" "src/account/CMakeFiles/txconc_account.dir/state.cpp.o.d"
  "/root/repo/src/account/state_trie.cpp" "src/account/CMakeFiles/txconc_account.dir/state_trie.cpp.o" "gcc" "src/account/CMakeFiles/txconc_account.dir/state_trie.cpp.o.d"
  "/root/repo/src/account/vm.cpp" "src/account/CMakeFiles/txconc_account.dir/vm.cpp.o" "gcc" "src/account/CMakeFiles/txconc_account.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/txconc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
