# Empty compiler generated dependencies file for txconc_account.
# This may be replaced when dependencies are built.
