
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/block_analyzer.cpp" "src/analysis/CMakeFiles/txconc_analysis.dir/block_analyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/txconc_analysis.dir/block_analyzer.cpp.o.d"
  "/root/repo/src/analysis/calibrate.cpp" "src/analysis/CMakeFiles/txconc_analysis.dir/calibrate.cpp.o" "gcc" "src/analysis/CMakeFiles/txconc_analysis.dir/calibrate.cpp.o.d"
  "/root/repo/src/analysis/dataset.cpp" "src/analysis/CMakeFiles/txconc_analysis.dir/dataset.cpp.o" "gcc" "src/analysis/CMakeFiles/txconc_analysis.dir/dataset.cpp.o.d"
  "/root/repo/src/analysis/paper_reference.cpp" "src/analysis/CMakeFiles/txconc_analysis.dir/paper_reference.cpp.o" "gcc" "src/analysis/CMakeFiles/txconc_analysis.dir/paper_reference.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/txconc_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/txconc_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/series.cpp" "src/analysis/CMakeFiles/txconc_analysis.dir/series.cpp.o" "gcc" "src/analysis/CMakeFiles/txconc_analysis.dir/series.cpp.o.d"
  "/root/repo/src/analysis/speedup.cpp" "src/analysis/CMakeFiles/txconc_analysis.dir/speedup.cpp.o" "gcc" "src/analysis/CMakeFiles/txconc_analysis.dir/speedup.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/txconc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/txconc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/utxo/CMakeFiles/txconc_utxo.dir/DependInfo.cmake"
  "/root/repo/build/src/account/CMakeFiles/txconc_account.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/txconc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/shard/CMakeFiles/txconc_shard.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/txconc_chain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
