file(REMOVE_RECURSE
  "CMakeFiles/txconc_analysis.dir/block_analyzer.cpp.o"
  "CMakeFiles/txconc_analysis.dir/block_analyzer.cpp.o.d"
  "CMakeFiles/txconc_analysis.dir/calibrate.cpp.o"
  "CMakeFiles/txconc_analysis.dir/calibrate.cpp.o.d"
  "CMakeFiles/txconc_analysis.dir/dataset.cpp.o"
  "CMakeFiles/txconc_analysis.dir/dataset.cpp.o.d"
  "CMakeFiles/txconc_analysis.dir/paper_reference.cpp.o"
  "CMakeFiles/txconc_analysis.dir/paper_reference.cpp.o.d"
  "CMakeFiles/txconc_analysis.dir/report.cpp.o"
  "CMakeFiles/txconc_analysis.dir/report.cpp.o.d"
  "CMakeFiles/txconc_analysis.dir/series.cpp.o"
  "CMakeFiles/txconc_analysis.dir/series.cpp.o.d"
  "CMakeFiles/txconc_analysis.dir/speedup.cpp.o"
  "CMakeFiles/txconc_analysis.dir/speedup.cpp.o.d"
  "libtxconc_analysis.a"
  "libtxconc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txconc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
