file(REMOVE_RECURSE
  "libtxconc_analysis.a"
)
