# Empty dependencies file for txconc_analysis.
# This may be replaced when dependencies are built.
