file(REMOVE_RECURSE
  "libtxconc_core.a"
)
