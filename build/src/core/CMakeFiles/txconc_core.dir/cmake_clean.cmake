file(REMOVE_RECURSE
  "CMakeFiles/txconc_core.dir/components.cpp.o"
  "CMakeFiles/txconc_core.dir/components.cpp.o.d"
  "CMakeFiles/txconc_core.dir/metrics.cpp.o"
  "CMakeFiles/txconc_core.dir/metrics.cpp.o.d"
  "CMakeFiles/txconc_core.dir/scheduling.cpp.o"
  "CMakeFiles/txconc_core.dir/scheduling.cpp.o.d"
  "CMakeFiles/txconc_core.dir/speedup_model.cpp.o"
  "CMakeFiles/txconc_core.dir/speedup_model.cpp.o.d"
  "CMakeFiles/txconc_core.dir/tdg.cpp.o"
  "CMakeFiles/txconc_core.dir/tdg.cpp.o.d"
  "libtxconc_core.a"
  "libtxconc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txconc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
