
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/components.cpp" "src/core/CMakeFiles/txconc_core.dir/components.cpp.o" "gcc" "src/core/CMakeFiles/txconc_core.dir/components.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/txconc_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/txconc_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/scheduling.cpp" "src/core/CMakeFiles/txconc_core.dir/scheduling.cpp.o" "gcc" "src/core/CMakeFiles/txconc_core.dir/scheduling.cpp.o.d"
  "/root/repo/src/core/speedup_model.cpp" "src/core/CMakeFiles/txconc_core.dir/speedup_model.cpp.o" "gcc" "src/core/CMakeFiles/txconc_core.dir/speedup_model.cpp.o.d"
  "/root/repo/src/core/tdg.cpp" "src/core/CMakeFiles/txconc_core.dir/tdg.cpp.o" "gcc" "src/core/CMakeFiles/txconc_core.dir/tdg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/txconc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
