# Empty compiler generated dependencies file for txconc_core.
# This may be replaced when dependencies are built.
