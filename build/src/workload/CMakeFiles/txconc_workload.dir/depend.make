# Empty dependencies file for txconc_workload.
# This may be replaced when dependencies are built.
