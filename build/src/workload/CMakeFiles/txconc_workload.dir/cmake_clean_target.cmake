file(REMOVE_RECURSE
  "libtxconc_workload.a"
)
