file(REMOVE_RECURSE
  "CMakeFiles/txconc_workload.dir/account_workload.cpp.o"
  "CMakeFiles/txconc_workload.dir/account_workload.cpp.o.d"
  "CMakeFiles/txconc_workload.dir/profile.cpp.o"
  "CMakeFiles/txconc_workload.dir/profile.cpp.o.d"
  "CMakeFiles/txconc_workload.dir/profiles.cpp.o"
  "CMakeFiles/txconc_workload.dir/profiles.cpp.o.d"
  "CMakeFiles/txconc_workload.dir/utxo_workload.cpp.o"
  "CMakeFiles/txconc_workload.dir/utxo_workload.cpp.o.d"
  "libtxconc_workload.a"
  "libtxconc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txconc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
