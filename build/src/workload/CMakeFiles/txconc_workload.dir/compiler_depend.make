# Empty compiler generated dependencies file for txconc_workload.
# This may be replaced when dependencies are built.
