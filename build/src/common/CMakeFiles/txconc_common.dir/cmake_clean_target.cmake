file(REMOVE_RECURSE
  "libtxconc_common.a"
)
