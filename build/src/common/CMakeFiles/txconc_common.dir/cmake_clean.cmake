file(REMOVE_RECURSE
  "CMakeFiles/txconc_common.dir/ascii_plot.cpp.o"
  "CMakeFiles/txconc_common.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/txconc_common.dir/bytes.cpp.o"
  "CMakeFiles/txconc_common.dir/bytes.cpp.o.d"
  "CMakeFiles/txconc_common.dir/csv.cpp.o"
  "CMakeFiles/txconc_common.dir/csv.cpp.o.d"
  "CMakeFiles/txconc_common.dir/hash.cpp.o"
  "CMakeFiles/txconc_common.dir/hash.cpp.o.d"
  "CMakeFiles/txconc_common.dir/rng.cpp.o"
  "CMakeFiles/txconc_common.dir/rng.cpp.o.d"
  "CMakeFiles/txconc_common.dir/sha256.cpp.o"
  "CMakeFiles/txconc_common.dir/sha256.cpp.o.d"
  "CMakeFiles/txconc_common.dir/stats.cpp.o"
  "CMakeFiles/txconc_common.dir/stats.cpp.o.d"
  "libtxconc_common.a"
  "libtxconc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txconc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
