# Empty dependencies file for txconc_common.
# This may be replaced when dependencies are built.
