# Empty compiler generated dependencies file for txconc_chain.
# This may be replaced when dependencies are built.
