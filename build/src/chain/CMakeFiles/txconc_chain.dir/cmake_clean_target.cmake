file(REMOVE_RECURSE
  "libtxconc_chain.a"
)
