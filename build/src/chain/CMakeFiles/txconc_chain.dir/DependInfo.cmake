
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block.cpp" "src/chain/CMakeFiles/txconc_chain.dir/block.cpp.o" "gcc" "src/chain/CMakeFiles/txconc_chain.dir/block.cpp.o.d"
  "/root/repo/src/chain/fork.cpp" "src/chain/CMakeFiles/txconc_chain.dir/fork.cpp.o" "gcc" "src/chain/CMakeFiles/txconc_chain.dir/fork.cpp.o.d"
  "/root/repo/src/chain/merkle.cpp" "src/chain/CMakeFiles/txconc_chain.dir/merkle.cpp.o" "gcc" "src/chain/CMakeFiles/txconc_chain.dir/merkle.cpp.o.d"
  "/root/repo/src/chain/network.cpp" "src/chain/CMakeFiles/txconc_chain.dir/network.cpp.o" "gcc" "src/chain/CMakeFiles/txconc_chain.dir/network.cpp.o.d"
  "/root/repo/src/chain/node.cpp" "src/chain/CMakeFiles/txconc_chain.dir/node.cpp.o" "gcc" "src/chain/CMakeFiles/txconc_chain.dir/node.cpp.o.d"
  "/root/repo/src/chain/pow.cpp" "src/chain/CMakeFiles/txconc_chain.dir/pow.cpp.o" "gcc" "src/chain/CMakeFiles/txconc_chain.dir/pow.cpp.o.d"
  "/root/repo/src/chain/utxo_node.cpp" "src/chain/CMakeFiles/txconc_chain.dir/utxo_node.cpp.o" "gcc" "src/chain/CMakeFiles/txconc_chain.dir/utxo_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/txconc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/utxo/CMakeFiles/txconc_utxo.dir/DependInfo.cmake"
  "/root/repo/build/src/account/CMakeFiles/txconc_account.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
