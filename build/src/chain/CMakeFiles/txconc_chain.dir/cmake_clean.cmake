file(REMOVE_RECURSE
  "CMakeFiles/txconc_chain.dir/block.cpp.o"
  "CMakeFiles/txconc_chain.dir/block.cpp.o.d"
  "CMakeFiles/txconc_chain.dir/fork.cpp.o"
  "CMakeFiles/txconc_chain.dir/fork.cpp.o.d"
  "CMakeFiles/txconc_chain.dir/merkle.cpp.o"
  "CMakeFiles/txconc_chain.dir/merkle.cpp.o.d"
  "CMakeFiles/txconc_chain.dir/network.cpp.o"
  "CMakeFiles/txconc_chain.dir/network.cpp.o.d"
  "CMakeFiles/txconc_chain.dir/node.cpp.o"
  "CMakeFiles/txconc_chain.dir/node.cpp.o.d"
  "CMakeFiles/txconc_chain.dir/pow.cpp.o"
  "CMakeFiles/txconc_chain.dir/pow.cpp.o.d"
  "CMakeFiles/txconc_chain.dir/utxo_node.cpp.o"
  "CMakeFiles/txconc_chain.dir/utxo_node.cpp.o.d"
  "libtxconc_chain.a"
  "libtxconc_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txconc_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
