# Empty dependencies file for txconc_exec.
# This may be replaced when dependencies are built.
