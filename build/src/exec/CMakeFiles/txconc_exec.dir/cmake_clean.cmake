file(REMOVE_RECURSE
  "CMakeFiles/txconc_exec.dir/group_executor.cpp.o"
  "CMakeFiles/txconc_exec.dir/group_executor.cpp.o.d"
  "CMakeFiles/txconc_exec.dir/occ.cpp.o"
  "CMakeFiles/txconc_exec.dir/occ.cpp.o.d"
  "CMakeFiles/txconc_exec.dir/replay.cpp.o"
  "CMakeFiles/txconc_exec.dir/replay.cpp.o.d"
  "CMakeFiles/txconc_exec.dir/schedule_sim.cpp.o"
  "CMakeFiles/txconc_exec.dir/schedule_sim.cpp.o.d"
  "CMakeFiles/txconc_exec.dir/sequential.cpp.o"
  "CMakeFiles/txconc_exec.dir/sequential.cpp.o.d"
  "CMakeFiles/txconc_exec.dir/speculative.cpp.o"
  "CMakeFiles/txconc_exec.dir/speculative.cpp.o.d"
  "CMakeFiles/txconc_exec.dir/thread_pool.cpp.o"
  "CMakeFiles/txconc_exec.dir/thread_pool.cpp.o.d"
  "libtxconc_exec.a"
  "libtxconc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txconc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
