file(REMOVE_RECURSE
  "libtxconc_exec.a"
)
