# CMake generated Testfile for 
# Source directory: /root/repo/src/utxo
# Build directory: /root/repo/build/src/utxo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
