file(REMOVE_RECURSE
  "libtxconc_utxo.a"
)
