# Empty dependencies file for txconc_utxo.
# This may be replaced when dependencies are built.
