file(REMOVE_RECURSE
  "CMakeFiles/txconc_utxo.dir/script.cpp.o"
  "CMakeFiles/txconc_utxo.dir/script.cpp.o.d"
  "CMakeFiles/txconc_utxo.dir/transaction.cpp.o"
  "CMakeFiles/txconc_utxo.dir/transaction.cpp.o.d"
  "CMakeFiles/txconc_utxo.dir/utxo_set.cpp.o"
  "CMakeFiles/txconc_utxo.dir/utxo_set.cpp.o.d"
  "CMakeFiles/txconc_utxo.dir/wallet.cpp.o"
  "CMakeFiles/txconc_utxo.dir/wallet.cpp.o.d"
  "libtxconc_utxo.a"
  "libtxconc_utxo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txconc_utxo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
