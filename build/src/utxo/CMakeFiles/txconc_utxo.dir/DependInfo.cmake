
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/utxo/script.cpp" "src/utxo/CMakeFiles/txconc_utxo.dir/script.cpp.o" "gcc" "src/utxo/CMakeFiles/txconc_utxo.dir/script.cpp.o.d"
  "/root/repo/src/utxo/transaction.cpp" "src/utxo/CMakeFiles/txconc_utxo.dir/transaction.cpp.o" "gcc" "src/utxo/CMakeFiles/txconc_utxo.dir/transaction.cpp.o.d"
  "/root/repo/src/utxo/utxo_set.cpp" "src/utxo/CMakeFiles/txconc_utxo.dir/utxo_set.cpp.o" "gcc" "src/utxo/CMakeFiles/txconc_utxo.dir/utxo_set.cpp.o.d"
  "/root/repo/src/utxo/wallet.cpp" "src/utxo/CMakeFiles/txconc_utxo.dir/wallet.cpp.o" "gcc" "src/utxo/CMakeFiles/txconc_utxo.dir/wallet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/txconc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
