
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shard/cross_shard.cpp" "src/shard/CMakeFiles/txconc_shard.dir/cross_shard.cpp.o" "gcc" "src/shard/CMakeFiles/txconc_shard.dir/cross_shard.cpp.o.d"
  "/root/repo/src/shard/election.cpp" "src/shard/CMakeFiles/txconc_shard.dir/election.cpp.o" "gcc" "src/shard/CMakeFiles/txconc_shard.dir/election.cpp.o.d"
  "/root/repo/src/shard/pbft.cpp" "src/shard/CMakeFiles/txconc_shard.dir/pbft.cpp.o" "gcc" "src/shard/CMakeFiles/txconc_shard.dir/pbft.cpp.o.d"
  "/root/repo/src/shard/sharding.cpp" "src/shard/CMakeFiles/txconc_shard.dir/sharding.cpp.o" "gcc" "src/shard/CMakeFiles/txconc_shard.dir/sharding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/txconc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/account/CMakeFiles/txconc_account.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/txconc_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/utxo/CMakeFiles/txconc_utxo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
