file(REMOVE_RECURSE
  "CMakeFiles/txconc_shard.dir/cross_shard.cpp.o"
  "CMakeFiles/txconc_shard.dir/cross_shard.cpp.o.d"
  "CMakeFiles/txconc_shard.dir/election.cpp.o"
  "CMakeFiles/txconc_shard.dir/election.cpp.o.d"
  "CMakeFiles/txconc_shard.dir/pbft.cpp.o"
  "CMakeFiles/txconc_shard.dir/pbft.cpp.o.d"
  "CMakeFiles/txconc_shard.dir/sharding.cpp.o"
  "CMakeFiles/txconc_shard.dir/sharding.cpp.o.d"
  "libtxconc_shard.a"
  "libtxconc_shard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txconc_shard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
