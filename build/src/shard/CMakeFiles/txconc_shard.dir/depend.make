# Empty dependencies file for txconc_shard.
# This may be replaced when dependencies are built.
