file(REMOVE_RECURSE
  "libtxconc_shard.a"
)
