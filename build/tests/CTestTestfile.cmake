# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/utxo_test[1]_include.cmake")
include("/root/repo/build/tests/account_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/shard_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/vm_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/wallet_node_test[1]_include.cmake")
include("/root/repo/build/tests/state_trie_test[1]_include.cmake")
include("/root/repo/build/tests/dataset_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
