file(REMOVE_RECURSE
  "CMakeFiles/wallet_node_test.dir/wallet_node_test.cpp.o"
  "CMakeFiles/wallet_node_test.dir/wallet_node_test.cpp.o.d"
  "wallet_node_test"
  "wallet_node_test.pdb"
  "wallet_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wallet_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
