# Empty compiler generated dependencies file for wallet_node_test.
# This may be replaced when dependencies are built.
