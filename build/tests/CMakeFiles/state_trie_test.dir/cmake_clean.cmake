file(REMOVE_RECURSE
  "CMakeFiles/state_trie_test.dir/state_trie_test.cpp.o"
  "CMakeFiles/state_trie_test.dir/state_trie_test.cpp.o.d"
  "state_trie_test"
  "state_trie_test.pdb"
  "state_trie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
