# Empty dependencies file for state_trie_test.
# This may be replaced when dependencies are built.
