file(REMOVE_RECURSE
  "CMakeFiles/utxo_test.dir/utxo_test.cpp.o"
  "CMakeFiles/utxo_test.dir/utxo_test.cpp.o.d"
  "utxo_test"
  "utxo_test.pdb"
  "utxo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/utxo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
