# Empty compiler generated dependencies file for utxo_test.
# This may be replaced when dependencies are built.
