file(REMOVE_RECURSE
  "CMakeFiles/account_test.dir/account_test.cpp.o"
  "CMakeFiles/account_test.dir/account_test.cpp.o.d"
  "account_test"
  "account_test.pdb"
  "account_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/account_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
