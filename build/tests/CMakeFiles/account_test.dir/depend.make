# Empty dependencies file for account_test.
# This may be replaced when dependencies are built.
