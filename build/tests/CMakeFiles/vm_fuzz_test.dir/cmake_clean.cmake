file(REMOVE_RECURSE
  "CMakeFiles/vm_fuzz_test.dir/vm_fuzz_test.cpp.o"
  "CMakeFiles/vm_fuzz_test.dir/vm_fuzz_test.cpp.o.d"
  "vm_fuzz_test"
  "vm_fuzz_test.pdb"
  "vm_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
