# Empty compiler generated dependencies file for vm_fuzz_test.
# This may be replaced when dependencies are built.
