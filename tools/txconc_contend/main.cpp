// txconc-contend CLI: run registered engines over a generated history and
// explain each block's contention from the engines' own observed access
// sets (obs/contention.h): measured c / l, component-size histogram,
// prediction quality of the a-priori closures, hot keys and per-reason
// abort attribution.
//
//   txconc_contend [--engine=<name>] [--threads=N] [--blocks=N]
//                  [--seed=S] [--format=text|json] [--top=K]
//                  [--no-predict]
//
// Exit codes (mirroring txconc_profile):
//   0  every block passes the self-consistency gates
//   1  a gate failed (rate out of range, histogram does not cover the
//      block, sink/engine abort tallies disagree, sound closure missed
//      an observed address)
//   2  usage error / unknown engine
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exec/contention_probe.h"
#include "exec/executor.h"
#include "exec/replay.h"
#include "obs/contention.h"
#include "obs/scope.h"
#include "workload/profiles.h"

namespace {

using namespace txconc;

std::string registry_names() {
  std::string names;
  for (const exec::ExecutorSpec& spec : exec::executor_registry()) {
    if (!names.empty()) names += ", ";
    names += spec.name;
  }
  return names;
}

int usage() {
  std::cerr << "usage: txconc_contend [--engine=<name>] [--threads=N] "
               "[--blocks=N] [--seed=S]\n"
               "                      [--format=text|json] [--top=K] "
               "[--no-predict]\n"
               "  registered engines: "
            << registry_names() << "\n";
  return 2;
}

/// Self-consistency gates over one explained block; returns the first
/// violation ("" = pass). These are invariants of the measurement layer
/// itself, independent of the workload.
std::string check_block(const obs::BlockContention& b) {
  const auto bad_rate = [](double v) { return !(v >= 0.0 && v <= 1.0); };
  if (bad_rate(b.measured_c) || bad_rate(b.measured_l)) {
    return "measured c/l out of [0,1]";
  }
  if (b.measured_l > b.measured_c + 1e-12) return "measured l > measured c";
  if (bad_rate(b.measured_c_address) || bad_rate(b.measured_l_address)) {
    return "address-granularity c/l out of [0,1]";
  }
  if (b.measured_l_address > b.measured_c_address + 1e-12) {
    return "address-granularity l > c";
  }
  std::size_t covered = 0;
  for (const obs::ComponentBucket& bucket : b.component_histogram) {
    covered += bucket.size * bucket.count;
  }
  if (covered != b.num_txs) {
    return "component histogram does not cover the block";
  }
  if (bad_rate(b.precision) || bad_rate(b.recall)) {
    return "precision/recall out of [0,1]";
  }
  if (b.has_prediction && b.recall < 1.0 - 1e-12) {
    // The a-priori closure is sound for the shipped contract library
    // (exec/predict.h), so every observed address must be predicted.
    return "sound closure missed an observed address (recall < 1)";
  }
  if (b.has_prediction && b.over_approx + 1e-12 < 1.0) {
    return "over-approximation ratio below 1 despite recall 1";
  }
  for (std::size_t r = 0; r < obs::kNumAbortReasons; ++r) {
    if (b.sink_abort_totals[r] != b.engine_abort_totals[r]) {
      std::ostringstream msg;
      msg << "sink/engine abort tallies disagree for "
          << obs::abort_reason_name(static_cast<obs::AbortReason>(r)) << " ("
          << b.sink_abort_totals[r] << " vs " << b.engine_abort_totals[r]
          << ")";
      return msg.str();
    }
  }
  if (b.num_txs > 0 && b.total_touches == 0) {
    return "no touches recorded for a non-empty block";
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine_filter;
  std::string format = "text";
  unsigned threads = 4;
  std::uint64_t blocks = 1;
  std::uint64_t seed = 42;
  std::size_t top_k = 10;
  bool predict = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      engine_filter = arg.substr(9);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<unsigned>(std::stoul(arg.substr(10)));
      if (threads == 0) return usage();
    } else if (arg.rfind("--blocks=", 0) == 0) {
      blocks = std::stoull(arg.substr(9));
      if (blocks == 0) return usage();
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") return usage();
    } else if (arg.rfind("--top=", 0) == 0) {
      top_k = static_cast<std::size_t>(std::stoul(arg.substr(6)));
    } else if (arg == "--no-predict") {
      predict = false;
    } else {
      return usage();
    }
  }

  std::vector<const exec::ExecutorSpec*> specs;
  for (const exec::ExecutorSpec& spec : exec::executor_registry()) {
    if (engine_filter.empty() || spec.name == engine_filter) {
      specs.push_back(&spec);
    }
  }
  if (specs.empty()) {
    std::cerr << "txconc_contend: unknown engine \"" << engine_filter
              << "\"; registered engines: " << registry_names() << "\n";
    return 2;
  }

  const workload::ChainProfile profile = workload::ethereum_profile();
  const std::uint64_t skip =
      blocks < profile.default_blocks ? profile.default_blocks - blocks : 0;

  bool gate_failed = false;
  bool json_first = true;
  if (format == "json") std::cout << "[";
  for (const exec::ExecutorSpec* spec : specs) {
    const auto executor = spec->make(threads);
    exec::ContentionProbe probe;
    probe.set_predict(predict);
    obs::Scope scope;
    scope.contention = probe.sink();
    exec::HistoryReplayer replayer(profile, seed, skip);
    replayer.set_obs(&scope);
    replayer.set_block_observer(&probe);
    replayer.set_access_recorder(probe.recorder());
    for (std::uint64_t b = 0; b < blocks && replayer.remaining() > 0; ++b) {
      replayer.replay_next(*executor);
    }
    for (std::size_t b = 0; b < probe.blocks().size(); ++b) {
      const obs::BlockContention& block = probe.blocks()[b];
      if (format == "json") {
        if (!json_first) std::cout << ",";
        json_first = false;
        std::cout << "\n{\"executor\": \"" << spec->name
                  << "\", \"block\": " << b << ", \"contention\": ";
        obs::write_json(std::cout, block, top_k);
        std::cout << "}";
      } else {
        std::cout << "== engine " << spec->name << ", block " << b
                  << " ==\n";
        obs::write_text(std::cout, block, top_k);
        std::cout << "\n";
      }
      const std::string violation = check_block(block);
      if (!violation.empty()) {
        gate_failed = true;
        std::cerr << "txconc_contend: " << spec->name << " block " << b
                  << ": " << violation << "\n";
      }
    }
  }
  if (format == "json") std::cout << "\n]\n";
  return gate_failed ? 1 : 0;
}
