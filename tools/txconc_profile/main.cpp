// txconc-profile CLI: trace-driven critical-path + stall attribution.
//
//   txconc_profile [--format=text|json] [--top=K] [--eps=F]
//                  [--untracked-max=F] [--engine=<name>] <trace.json>...
//
// Each input is a Chrome trace written by obs::Tracer (TXCONC_TRACE=...
// or Tracer::write_chrome_trace_file). The trace is validated first,
// then every execute_block span is profiled: top-K critical-path chains
// and the threads x wall attribution (obs/critpath.h). Exit codes:
//   0  all blocks pass the attribution sanity gates
//   1  a gate failed (sum off budget, untracked share too high)
//   2  usage, I/O, or malformed/unanalyzable trace
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critpath.h"
#include "obs/trace.h"

namespace {

int usage() {
  std::cerr << "usage: txconc_profile [--format=text|json] [--top=K] "
               "[--eps=F] [--untracked-max=F] [--engine=<name>] "
               "<trace.json>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string engine_filter;
  std::size_t top_k = 4;
  double eps = 0.02;
  double untracked_max = 0.10;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") return usage();
    } else if (arg.rfind("--top=", 0) == 0) {
      top_k = static_cast<std::size_t>(std::stoul(arg.substr(6)));
      if (top_k == 0) return usage();
    } else if (arg.rfind("--eps=", 0) == 0) {
      eps = std::stod(arg.substr(6));
    } else if (arg.rfind("--untracked-max=", 0) == 0) {
      untracked_max = std::stod(arg.substr(16));
    } else if (arg.rfind("--engine=", 0) == 0) {
      // Profile only the blocks this engine executed (the trace process
      // name set by obs::ThreadProcessScope). Multi-engine traces like
      // parallel_executor's carry every engine side by side.
      engine_filter = arg.substr(9);
      if (engine_filter.empty()) return usage();
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  bool gate_failed = false;
  bool json_first = true;
  std::size_t matched = 0;
  if (format == "json") std::cout << "[";
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "txconc_profile: cannot read '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string trace = buffer.str();

    const txconc::obs::TraceValidation validation =
        txconc::obs::validate_chrome_trace(trace);
    if (!validation.ok) {
      std::cerr << "txconc_profile: '" << path
                << "' failed validation: " << validation.error << "\n";
      return 2;
    }
    const txconc::obs::ProfileResult result =
        txconc::obs::profile_chrome_trace(trace, top_k);
    if (!result.ok) {
      std::cerr << "txconc_profile: '" << path << "': " << result.error
                << "\n";
      return 2;
    }
    for (const txconc::obs::BlockProfile& block : result.blocks) {
      if (!engine_filter.empty() && block.process != engine_filter) continue;
      ++matched;
      const std::string violation =
          txconc::obs::check_attribution(block, eps, untracked_max);
      if (format == "json") {
        if (!json_first) std::cout << ",";
        json_first = false;
        std::cout << "\n";
        txconc::obs::write_profile_json(std::cout, block);
      } else {
        txconc::obs::write_profile_text(std::cout, block);
      }
      if (!violation.empty()) {
        gate_failed = true;
        std::cerr << "txconc_profile: " << violation << "\n";
      }
    }
  }
  if (format == "json") std::cout << "\n]\n";
  if (!engine_filter.empty() && matched == 0) {
    std::cerr << "txconc_profile: no blocks from engine '" << engine_filter
              << "' in the given traces\n";
    return 2;
  }
  return gate_failed ? 1 : 0;
}
