// Structural model over the token stream: function definitions with
// their enclosing class/namespace context, hot-path annotations, and
// call-site extraction. This is deliberately an "AST-lite" — a
// context-stack scan that understands the declaration shapes this repo
// actually writes (classes, ctor-init lists, operators, TSA attribute
// macros, trailing qualifiers) — so the rules get function granularity
// without needing libclang, which the CI container does not ship (see
// DESIGN.md §15 for the frontend-seam discussion).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lexer.h"

namespace txconc::lint {

struct FunctionDef {
  std::string name;             ///< f, operator[], ~Foo
  std::string qualified;        ///< as spelled, e.g. MultiVersionStore::resolve
  std::string enclosing_class;  ///< innermost class/struct ("" at ns scope)
  int line = 0;
  std::size_t body_begin = 0;  ///< token index of '{'
  std::size_t body_end = 0;    ///< token index of matching '}'
  bool hot = false;            ///< declaration carries TXCONC_HOT
};

struct FileModel {
  LexedFile lx;
  std::vector<FunctionDef> functions;
  /// Names of body-less declarations that carried TXCONC_HOT (a header
  /// decl marks the out-of-line definition hot as well).
  std::vector<std::string> hot_decls;
};

struct CallSite {
  std::string name;       ///< unqualified callee
  std::string qualified;  ///< full spelled chain (a::b::f)
  std::string receiver;   ///< text of the x / x->y chain before . or ->
  std::size_t tok = 0;    ///< index of the callee-name token
  int line = 0;
  bool member = false;     ///< receiver.name(...) or receiver->name(...)
  bool zero_args = false;  ///< the call is name()
  bool in_throw = false;   ///< part of a throw-expression (assumed cold)
};

FileModel build_model(LexedFile lx);

/// Every call site in fn's body (see CallSite; control keywords and
/// casts excluded).
std::vector<CallSite> collect_calls(const FileModel& fm,
                                    const FunctionDef& fn);

/// Index of the token matching the opener at `open` ('(' / '{' / '[');
/// returns the kEnd index when unbalanced.
std::size_t find_matching(const std::vector<Token>& toks, std::size_t open);

bool is_cpp_keyword(const std::string& s);

}  // namespace txconc::lint
