// txconc-lint fixture (lexed by lint_test, never compiled).
// Every txconc-lint comment below is malformed and must be flagged by
// the suppression meta-rule (and must suppress nothing).

// txconc-lint: allow(not-a-real-rule) — the rule name is unknown
int unknown_rule() { return 1; }

// txconc-lint: allow(hot-path-alloc)
int missing_reason() { return 2; }

// txconc-lint: please ignore this file
int not_even_allow() { return 3; }
