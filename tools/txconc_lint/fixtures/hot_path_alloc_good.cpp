// txconc-lint fixture (lexed by lint_test, never compiled).
// Nothing here may trip hot-path-alloc.
#include <memory>
#include <stdexcept>
#include <vector>

struct Slot {
  int value = 0;
};

// Hot helper calling hot helper: the closure stays clean.
TXCONC_HOT int hot_probe(const std::vector<Slot>& slots, int idx) {
  return slots[static_cast<unsigned>(idx) % slots.size()].value;
}

TXCONC_HOT int hot_sum(const std::vector<Slot>& slots) {
  int sum = 0;
  for (const Slot& slot : slots) sum += slot.value;  // iteration only
  return sum + hot_probe(slots, 0);
}

TXCONC_HOT void hot_placement_new(void* storage) {
  new (storage) Slot{};  // placement new builds in caller-owned memory
}

TXCONC_HOT void hot_throw_is_cold(int v) {
  // A throw-expression is the cold exit; the construction it allocates
  // never runs in steady state.
  if (v < 0) throw std::runtime_error("negative");
}

// References/pointers to containers are not constructions.
TXCONC_HOT int hot_by_reference(const std::vector<int>& v, std::vector<int>* out) {
  if (out != nullptr && !v.empty()) out->back() = v.front();
  return hot_probe({}, 0) == 0 ? 1 : 0;
}

std::vector<int> warmup_pool();

TXCONC_HOT int hot_with_suppression() {
  // txconc-lint: allow(hot-path-alloc) — warm-up only; pool is pre-sized after
  std::vector<int> pool = warmup_pool();
  return static_cast<int>(pool.size());
}
