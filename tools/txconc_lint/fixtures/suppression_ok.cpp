// txconc-lint fixture (lexed by lint_test, never compiled).
// A well-formed suppression: names a real rule, gives a reason, and
// silences the finding on the next line without tripping the meta-rule.
#include <vector>

std::vector<int> warmup();

TXCONC_HOT int presized_scratch() {
  // txconc-lint: allow(hot-path-alloc) — constructor-time warm-up, not steady state
  std::vector<int> scratch = warmup();
  return static_cast<int>(scratch.size());
}
