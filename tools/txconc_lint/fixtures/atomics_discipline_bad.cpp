// txconc-lint fixture (lexed by lint_test, never compiled).
// Both halves of atomics-discipline must fire here.
#include <atomic>

struct Channel {
  std::atomic<bool> ready{false};
  std::atomic<int> hint{0};
  int payload = 0;

  void publish(int v) {
    payload = v;
    // BAD: release store, but every load of `ready` below is relaxed —
    // the release synchronizes with nothing (lone-release publication).
    ready.store(true, std::memory_order_release);
  }

  int consume() {
    // BAD: non-seq_cst order with no '// ordering:' justification.
    while (!ready.load(std::memory_order_relaxed)) {
    }
    return payload;
  }

  void nudge() {
    // BAD: unjustified relaxed RMW.
    hint.fetch_add(1, std::memory_order_relaxed);
  }
};
