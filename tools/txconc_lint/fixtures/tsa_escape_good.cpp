// txconc-lint fixture (lexed by lint_test, never compiled).
#include "common/thread_annotations.h"

struct Monitor {
  Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;

  // tsa: quiescent use only — callers read between rounds, when no
  // mutator runs; the escape cannot carry a REQUIRES contract.
  int quiescent_peek() const NO_THREAD_SAFETY_ANALYSIS { return value_; }

  int safe_read() const {
    MutexLock lock(mu_);
    return value_;
  }
};
