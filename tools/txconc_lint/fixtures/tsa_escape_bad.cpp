// txconc-lint fixture (lexed by lint_test, never compiled).
#include "common/thread_annotations.h"

struct Monitor {
  Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;

  // BAD: opts out of thread-safety analysis with no justification comment.
  int unsafe_peek() const NO_THREAD_SAFETY_ANALYSIS { return value_; }

  int safe_read() const {
    MutexLock lock(mu_);
    return value_;
  }
};
