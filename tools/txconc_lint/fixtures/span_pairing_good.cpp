// txconc-lint fixture (lexed by lint_test, never compiled).
#include <vector>

#include "obs/trace.h"

void execute_block(const std::vector<int>& txs) {
  TXCONC_SPAN("block", "exec");  // macro expands to the RAII guard
  for (auto it = txs.begin(); it != txs.end(); ++it) {
    // .begin()/.end() iterator accessors are not Tracer emissions.
  }
}

struct MvStateView {
  void begin(void* store, int base) { (void)store; (void)base; }
};

void rebind_view(MvStateView& view) {
  // A non-Tracer receiver with a method named begin stays allowed: the
  // rule keys on the receiver expression, not the bare method name.
  view.begin(nullptr, 0);
}
