// txconc-lint fixture (lexed by lint_test, never compiled).
// Every construct here must trip hot-path-alloc.
#include <memory>
#include <string>
#include <vector>

int* make_buffer();

// An allocating helper that is NOT hot: calling it from a hot function
// is a finding at the call site.
std::vector<int> build_scratch() {
  std::vector<int> scratch;
  return scratch;
}

TXCONC_HOT void hot_direct_new() {
  int* p = new int[16];  // BAD: operator new on a hot path
  delete[] p;
}

TXCONC_HOT void hot_container_local() {
  std::string label = "tx";  // BAD: by-value std::string construction
  (void)label;
}

TXCONC_HOT void hot_denylist_call() {
  auto owned = std::make_unique<int>(7);  // BAD: make_unique allocates
  (void)owned;
}

TXCONC_HOT void hot_calls_allocating_helper() {
  build_scratch();  // BAD: allocating non-hot callee
}
