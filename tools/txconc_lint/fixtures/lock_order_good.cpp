// txconc-lint fixture (lexed by lint_test, never compiled).
// Consistent acquisition order, scoped release, and adopt_lock: silent.
#include <mutex>

#include "common/thread_annotations.h"

struct Accounts {
  Mutex ledger_;
  Mutex mempool_;
  Mutex stats_;

  void commit() {
    MutexLock ledger_lock(ledger_);
    MutexLock mempool_lock(mempool_);  // ledger_ -> mempool_, everywhere
  }

  void evict() {
    {
      MutexLock ledger_lock(ledger_);
      MutexLock mempool_lock(mempool_);
    }
    // ledger_lock's scope closed above: no mempool_ -> stats_ -> ledger_
    // chain exists, only ledger_ -> mempool_ and stats_ alone.
    MutexLock stats_lock(stats_);
  }

  void wait_like(std::mutex& raw) {
    // adopt/defer/try tags re-wrap an already-held mutex (CondVar::wait
    // does exactly this) and must not count as a fresh acquisition.
    std::unique_lock<std::mutex> relock(raw, std::adopt_lock);
    relock.release();
  }
};
