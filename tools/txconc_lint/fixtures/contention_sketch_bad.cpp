// txconc-lint fixture (lexed by lint_test, never compiled).
#include "obs/contention.h"

void attribute_abort_by_hand(obs::SpaceSavingSketch& sketch,
                             const obs::TouchKey& key) {
  // BAD: SpaceSavingSketch is not thread-safe; engine code must route
  // touches through ContentionSink::record_* (lane-sharded, locked).
  sketch.admit(key);
}

struct EngineScratch {
  obs::SpaceSavingSketch* abort_sketch = nullptr;
};

void poke_abort_sketch(EngineScratch& scratch, const obs::TouchKey& key) {
  // BAD: same, through a pointer receiver.
  scratch.abort_sketch->admit_abort(key, obs::AbortReason::kSpecConflict);
}
