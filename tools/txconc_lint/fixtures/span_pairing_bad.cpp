// txconc-lint fixture (lexed by lint_test, never compiled).
#include "obs/trace.h"

void execute_block_manually() {
  obs::Tracer& tracer = obs::Tracer::global();
  // BAD: raw begin/end pair; an early return or exception between them
  // leaves the span unbalanced (use TXCONC_SPAN / CausalSpan instead).
  tracer.begin("block", "exec", 42);
  tracer.end("block", "exec", "node0");
}

void forward_with_flow(obs::Tracer& t, unsigned long long flow) {
  t.flow_start(flow);  // BAD: raw flow emission outside the RAII helpers
  t.flow_bind(flow);   // BAD: same
}

void causal_by_hand() {
  // BAD: raw causal begin outside CausalSpan.
  obs::Tracer::global().begin_causal("xfer", "shard", 1, 2, 0);
}
