// txconc-lint fixture (lexed by lint_test, never compiled).
// Justified orders and a properly paired publication: no findings.
#include <atomic>

struct Channel {
  std::atomic<bool> ready{false};
  std::atomic<int> stat{0};
  int payload = 0;

  void publish(int v) {
    payload = v;
    // ordering: release publishes payload; pairs with consume()'s acquire.
    ready.store(true, std::memory_order_release);
  }

  int consume() {
    // ordering: acquire pairs with publish()'s release store of ready.
    while (!ready.load(std::memory_order_acquire)) {
    }
    return payload;
  }

  void bump() {
    // ordering: relaxed — statistical counter; no data rides on it.
    stat.fetch_add(1, std::memory_order_relaxed);
  }

  int snapshot() const {
    return stat.load(std::memory_order_seq_cst);  // seq_cst needs no note
  }
};
