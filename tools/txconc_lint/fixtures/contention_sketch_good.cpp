// txconc-lint fixture (lexed by lint_test, never compiled).
#include "obs/contention.h"

void attribute_abort(obs::ContentionSink* sink, const obs::TouchKey& key) {
  // The sink is the sanctioned feeding point: lane-sharded and locked.
  if (sink != nullptr) {
    sink->record_abort(obs::AbortReason::kSpecConflict, key);
  }
}

struct AdmissionQueue {
  void admit(int job) { (void)job; }
};

void enqueue(AdmissionQueue& queue) {
  // A non-sketch receiver with a method named admit stays allowed: the
  // rule keys on the receiver expression, not the bare method name.
  queue.admit(7);
}
