// txconc-lint fixture (lexed by lint_test, never compiled).
// An A->B / B->A inversion and an interprocedural self-deadlock.
#include "common/thread_annotations.h"

struct Accounts {
  Mutex ledger_;
  Mutex mempool_;

  void commit() {
    MutexLock ledger_lock(ledger_);
    MutexLock mempool_lock(mempool_);  // edge ledger_ -> mempool_
  }

  void evict() {
    MutexLock mempool_lock(mempool_);
    MutexLock ledger_lock(ledger_);  // BAD: edge mempool_ -> ledger_ closes a cycle
  }
};

Mutex g_registry;

void registry_helper() { MutexLock lock(g_registry); }

void registry_report() {
  MutexLock lock(g_registry);
  registry_helper();  // BAD: re-acquires g_registry while held
}
