#include "lexer.h"

#include <array>
#include <cctype>

namespace txconc::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-char operators, longest first so maximal munch works.
constexpr std::array<const char*, 21> kMultiOps = {
    "->*", "<<=", ">>=", "...", "::",  "->", "<<", ">>", "<=", "==", "!=",
    "&&",  "||",  "+=",  "-=",  "*=",  "/=", "%=", "&=", "|=", "^=",
};
// Note: ">=" is intentionally absent from kMultiOps as a *combined* token
// would also swallow the '>' closing a template argument list followed by
// '='; single '>' then '=' keeps brace/angle scanning simple and no rule
// needs ">=" as one token.

}  // namespace

LexedFile lex(std::string path, const std::string& content) {
  LexedFile out;
  out.path = std::move(path);
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto add_comment = [&out](int at_line, const std::string& text) {
    std::string& slot = out.comments[at_line];
    if (!slot.empty()) slot += ' ';
    slot += text;
  };

  auto bump = [&](char c) {
    if (c == '\n') {
      ++line;
      at_line_start = true;
    }
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n' || c == '\r' || c == ' ' || c == '\t' || c == '\f' ||
        c == '\v') {
      bump(c);
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && content[j] != '\n') ++j;
      add_comment(line, content.substr(i, j - i));
      i = j;
      continue;
    }
    // Block comment: contributes to every line it touches.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t j = i + 2;
      int l = line;
      std::size_t seg_start = i;
      while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/')) {
        if (content[j] == '\n') {
          add_comment(l, content.substr(seg_start, j - seg_start));
          ++l;
          seg_start = j + 1;
        }
        ++j;
      }
      const std::size_t end = (j + 1 < n) ? j + 2 : n;
      add_comment(l, content.substr(seg_start, end - seg_start));
      line = l;
      i = end;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring backslash
    // continuations; a trailing // comment on the directive line is still
    // recorded (justification comments may sit on #define lines).
    if (c == '#' && at_line_start) {
      std::size_t j = i;
      while (j < n) {
        if (content[j] == '/' && j + 1 < n && content[j + 1] == '/') {
          std::size_t k = j;
          while (k < n && content[k] != '\n') ++k;
          add_comment(line, content.substr(j, k - j));
          j = k;
          continue;
        }
        if (content[j] == '\n') {
          // Continued directive?
          std::size_t b = j;
          while (b > i && (content[b - 1] == ' ' || content[b - 1] == '\t' ||
                           content[b - 1] == '\r')) {
            --b;
          }
          if (b > i && content[b - 1] == '\\') {
            ++line;
            ++j;
            continue;
          }
          break;
        }
        ++j;
      }
      at_line_start = true;
      if (j < n) {
        ++line;
        ++j;  // consume the newline
      }
      i = j;
      continue;
    }
    at_line_start = false;

    // Raw string literal: R"delim( ... )delim"
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string close = ")" + delim + "\"";
      std::size_t body = (j < n) ? j + 1 : n;
      std::size_t end = content.find(close, body);
      if (end == std::string::npos) end = n;
      const std::string text = content.substr(body, end - body);
      out.tokens.push_back({TokKind::kString, text, line});
      for (std::size_t k = i; k < end && k < n; ++k) bump(content[k]);
      at_line_start = false;
      i = (end == n) ? n : end + close.size();
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string text;
      while (j < n && content[j] != quote && content[j] != '\n') {
        if (content[j] == '\\' && j + 1 < n) {
          text += content[j];
          text += content[j + 1];
          j += 2;
          continue;
        }
        text += content[j++];
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, text, line});
      i = (j < n && content[j] == quote) ? j + 1 : j;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(content[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, content.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])) != 0)) {
      // pp-number: digits, idents, ', ., and exponent signs after e/E/p/P.
      std::size_t j = i + 1;
      while (j < n) {
        const char d = content[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
        } else if ((d == '+' || d == '-') &&
                   (content[j - 1] == 'e' || content[j - 1] == 'E' ||
                    content[j - 1] == 'p' || content[j - 1] == 'P')) {
          ++j;
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::kNumber, content.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation, maximal munch over the multi-char table.
    std::string matched(1, c);
    for (const char* op : kMultiOps) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (i + len <= n && content.compare(i, len, op) == 0) {
        matched.assign(op, len);
        break;
      }
    }
    out.tokens.push_back({TokKind::kPunct, matched, line});
    i += matched.size();
  }
  out.num_lines = line;
  out.tokens.push_back({TokKind::kEnd, "", line});
  return out;
}

}  // namespace txconc::lint
