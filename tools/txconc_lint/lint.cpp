#include "lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace txconc::lint {
namespace {

/// Valid suppressions in a file: line -> set of rule names allowed on
/// that line AND the line below it (a suppression comment conventionally
/// sits on the offending line or immediately above it). Only well-formed
/// suppressions with a reason suppress; malformed ones are findings of
/// the `suppression` rule instead.
std::map<int, std::set<std::string>> valid_suppressions(const LexedFile& lx) {
  std::map<int, std::set<std::string>> out;
  for (const auto& [line, text] : lx.comments) {
    std::size_t pos = text.find("txconc-lint:");
    if (pos == std::string::npos) continue;
    const std::string rest = text.substr(pos + 12);
    const std::size_t a = rest.find("allow(");
    if (a == std::string::npos) continue;
    const std::size_t close = rest.find(')', a);
    if (close == std::string::npos) continue;
    std::string rule = rest.substr(a + 6, close - a - 6);
    rule.erase(0, rule.find_first_not_of(" \t"));
    rule.erase(rule.find_last_not_of(" \t") + 1);
    bool known = false;
    for (const RuleInfo& r : all_rules()) known = known || rule == r.name;
    if (!known) continue;
    const std::string reason = rest.substr(close + 1);
    if (reason.find_first_not_of(" \t-:\xE2\x80\x94") == std::string::npos) {
      continue;  // reason-less: does not suppress (and is itself flagged)
    }
    out[line].insert(rule);
    out[line + 1].insert(rule);
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void Linter::add_file(const std::string& path, const std::string& content) {
  corpus_.push_back(build_model(lex(path, content)));
}

LintResult Linter::run(const std::vector<std::string>& enabled) const {
  LintResult res;
  res.files = static_cast<int>(corpus_.size());
  std::vector<Finding> raw;
  for (const RuleInfo& rule : all_rules()) {
    if (!enabled.empty() &&
        std::find(enabled.begin(), enabled.end(), rule.name) ==
            enabled.end()) {
      continue;
    }
    ++res.rules_run;
    rule.run(corpus_, raw);
  }
  std::map<std::string, std::map<int, std::set<std::string>>> allow;
  for (const FileModel& fm : corpus_) {
    allow[fm.lx.path] = valid_suppressions(fm.lx);
  }
  for (Finding& f : raw) {
    const auto& file_allow = allow[f.path];
    const auto it = file_allow.find(f.line);
    if (it != file_allow.end() && it->second.count(f.rule) != 0) {
      ++res.suppressed;
      continue;
    }
    res.findings.push_back(std::move(f));
  }
  std::sort(res.findings.begin(), res.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return res;
}

std::string to_text(const LintResult& r) {
  std::ostringstream os;
  for (const Finding& f : r.findings) {
    os << f.path << ':' << f.line << ": [" << f.rule << "] " << f.message
       << '\n';
  }
  os << "txconc-lint: " << r.rules_run << " rules x " << r.files
     << " files: " << r.findings.size() << " findings (" << r.suppressed
     << " suppressed)\n";
  return os.str();
}

std::string to_json(const LintResult& r) {
  std::ostringstream os;
  os << "{\n  \"rules_run\": " << r.rules_run
     << ",\n  \"files\": " << r.files << ",\n  \"suppressed\": " << r.suppressed
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"rule\": \"" << json_escape(f.rule) << "\", \"path\": \""
       << json_escape(f.path) << "\", \"line\": " << f.line
       << ", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  os << (r.findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace txconc::lint
