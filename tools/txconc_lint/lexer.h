// Lexer for txconc-lint (tools/txconc_lint).
//
// txconc-lint analyses the repo's own C++ sources, so the frontend only
// needs to be faithful to the subset of the language the tree uses: it
// tokenizes raw (un-preprocessed) source, records comments per line (the
// rules key justification comments off them), and skips preprocessor
// directives wholesale. Macro *invocations* in code position (TXCONC_HOT,
// NO_THREAD_SAFETY_ANALYSIS, REQUIRES(...)) survive as ordinary
// identifier tokens — which is exactly what the rules match on, the same
// way Clang TSA matches attributes before expansion.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace txconc::lint {

enum class TokKind {
  kIdent,   ///< identifiers and keywords (rules tell them apart)
  kNumber,  ///< pp-number-ish literal
  kString,  ///< "...", R"(...)" (text excludes quotes/delimiters)
  kChar,    ///< '...'
  kPunct,   ///< operators/punctuation; multi-char ops are one token
  kEnd,     ///< sentinel; always the last token
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  int line = 0;  ///< 1-based
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;  ///< never empty; last element is kEnd
  /// line -> concatenated text of every comment touching that line
  /// (a block comment spanning lines contributes to each of them).
  std::map<int, std::string> comments;
  int num_lines = 0;
};

/// Tokenize `content`; never throws on malformed input (best effort:
/// unterminated literals run to end of line / file).
LexedFile lex(std::string path, const std::string& content);

}  // namespace txconc::lint
