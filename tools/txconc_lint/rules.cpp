// The six txconc-lint rules. Each rule is a pure function over the
// corpus; suppression filtering happens in the driver (lint.cpp) so the
// rules stay oblivious to it.
#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "lint.h"

namespace txconc::lint {
namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}
bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }

/// Comment text on `line` or up to `above` lines before it, or "".
std::string comment_near(const LexedFile& lx, int line, int above) {
  std::string joined;
  for (int l = line; l >= line - above && l >= 1; --l) {
    auto it = lx.comments.find(l);
    if (it != lx.comments.end()) {
      joined += it->second;
      joined += ' ';
    }
  }
  return joined;
}

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Class a member function belongs to: innermost enclosing class for
/// inline definitions, or the scope before the function name for
/// out-of-line `Foo::bar` definitions.
std::string owner_of(const FunctionDef& fn) {
  if (!fn.enclosing_class.empty()) return fn.enclosing_class;
  const std::size_t pos = fn.qualified.rfind("::");
  if (pos == std::string::npos) return std::string();
  const std::string scope = fn.qualified.substr(0, pos);
  const std::size_t prev = scope.rfind("::");
  return prev == std::string::npos ? scope : scope.substr(prev + 2);
}

/// Token index of a call's argument-list '(' (follows the name chain and
/// optional template arguments), or 0 when not found.
std::size_t call_paren(const std::vector<Token>& toks, std::size_t name_tok) {
  std::size_t k = name_tok + 1;
  while (is_punct(toks[k], "::") && is_ident(toks[k + 1])) k += 2;
  if (is_punct(toks[k], "<")) {
    int depth = 0;
    for (std::size_t j = k, limit = 64; toks[j].kind != TokKind::kEnd && limit;
         --limit) {
      if (is_punct(toks[j], "<")) ++depth, ++j;
      else if (is_punct(toks[j], ">")) {
        if (--depth == 0) { k = j + 1; break; }
        ++j;
      } else if (is_punct(toks[j], ">>")) {
        depth -= 2;
        if (depth <= 0) { k = j + 1; break; }
        ++j;
      } else if (is_punct(toks[j], ";") || is_punct(toks[j], "{")) {
        break;
      } else {
        ++j;
      }
    }
  }
  return is_punct(toks[k], "(") ? k : 0;
}

std::string last_component(const std::string& expr) {
  std::size_t pos = expr.find_last_of(".>");
  return pos == std::string::npos ? expr : expr.substr(pos + 1);
}

// ---------------------------------------------------------------------------
// Rule 1: hot-path-alloc
// ---------------------------------------------------------------------------

const std::unordered_set<std::string>& alloc_containers() {
  static const std::unordered_set<std::string> s = {
      "vector", "string",  "wstring",       "basic_string", "unordered_map",
      "unordered_set", "map", "set",        "multimap",     "multiset",
      "deque",  "list",    "forward_list",  "function",     "stringstream",
      "ostringstream", "istringstream",     "queue",        "stack",
      "priority_queue",
  };
  return s;
}

const std::unordered_set<std::string>& alloc_calls() {
  static const std::unordered_set<std::string> s = {
      "make_unique", "make_shared", "malloc", "calloc",
      "realloc",     "strdup",      "to_string", "aligned_alloc",
  };
  return s;
}

struct AllocEvidence {
  int line = 0;
  std::string what;
};

/// Direct allocation evidence inside fn's body: `new` expressions,
/// by-value std:: container constructions, and denylisted calls.
/// throw-expressions are assumed cold and skipped.
std::vector<AllocEvidence> direct_allocs(const FileModel& fm,
                                         const FunctionDef& fn) {
  const std::vector<Token>& toks = fm.lx.tokens;
  std::vector<AllocEvidence> out;
  bool in_throw = false;
  for (std::size_t j = fn.body_begin + 1; j < fn.body_end; ++j) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      in_throw = false;
      continue;
    }
    if (!is_ident(t)) continue;
    if (t.text == "throw") {
      in_throw = true;
      continue;
    }
    if (in_throw) continue;
    if (t.text == "new") {
      if (is_punct(toks[j + 1], "(")) continue;  // placement new
      out.push_back({t.line, "operator new ('new' expression)"});
      continue;
    }
    if (t.text == "std" && is_punct(toks[j + 1], "::") &&
        is_ident(toks[j + 2]) && alloc_containers().count(toks[j + 2].text)) {
      std::size_t k = j + 3;
      if (is_punct(toks[k], "<")) {
        int depth = 0;
        std::size_t guard = 96;
        while (toks[k].kind != TokKind::kEnd && guard--) {
          if (is_punct(toks[k], "<")) ++depth;
          else if (is_punct(toks[k], ">")) { if (--depth == 0) { ++k; break; } }
          else if (is_punct(toks[k], ">>")) { depth -= 2; if (depth <= 0) { ++k; break; } }
          else if (is_punct(toks[k], ";")) break;
          ++k;
        }
      }
      // &/*: reference or pointer declaration; '::' static member; '>' ','
      // ')': nested template argument — none of those construct a value.
      if (is_ident(toks[k]) || is_punct(toks[k], "(") || is_punct(toks[k], "{")) {
        out.push_back(
            {toks[j + 2].line,
             "by-value std::" + toks[j + 2].text + " construction"});
      }
      j = k - 1;
      continue;
    }
  }
  for (const CallSite& cs : collect_calls(fm, fn)) {
    if (cs.in_throw) continue;
    if (!cs.member && alloc_calls().count(cs.name) != 0) {
      out.push_back({cs.line, "call to allocating '" + cs.qualified + "'"});
    }
  }
  return out;
}

void rule_hot_path_alloc(const Corpus& corpus, std::vector<Finding>& out) {
  // Hot set: definitions annotated in place plus names hot-annotated on a
  // (header) declaration, which marks every same-name definition hot.
  std::unordered_set<std::string> hot_names;
  for (const FileModel& fm : corpus) {
    for (const std::string& n : fm.hot_decls) hot_names.insert(n);
  }
  struct Info {
    const FileModel* fm;
    const FunctionDef* fn;
    bool hot;
    bool allocates;
    std::vector<CallSite> calls;
  };
  std::vector<Info> fns;
  std::unordered_map<std::string, std::vector<std::size_t>> by_name;
  for (const FileModel& fm : corpus) {
    for (const FunctionDef& fn : fm.functions) {
      Info info;
      info.fm = &fm;
      info.fn = &fn;
      info.hot = fn.hot || hot_names.count(fn.name) != 0;
      info.allocates = !direct_allocs(fm, fn).empty();
      info.calls = collect_calls(fm, fn);
      by_name[fn.name].push_back(fns.size());
      fns.push_back(std::move(info));
    }
  }
  // Fixed point: a function allocates if it (transitively) calls only-
  // allocating candidates. Ambiguous names use AND over candidates so an
  // unrelated same-name non-allocating overload keeps the closure tight.
  // Zero-arg member begin()/end() and friends are iterator accessors, not
  // calls to a same-named free/member function elsewhere in the corpus
  // (e.g. chain.end() must never resolve to Tracer::end).
  static const std::unordered_set<std::string> kIterAccessors = {
      "begin", "end", "rbegin", "rend", "cbegin", "cend"};
  auto callee_all_allocate = [&](const CallSite& cs, bool* any_hot) -> bool {
    if (cs.qualified.rfind("std::", 0) == 0) return false;
    if (cs.member && cs.zero_args && kIterAccessors.count(cs.name) != 0) {
      return false;
    }
    auto it = by_name.find(cs.name);
    if (it == by_name.end() || it->second.empty()) return false;
    bool all = true;
    for (std::size_t idx : it->second) {
      if (!fns[idx].allocates) all = false;
      if (fns[idx].hot && any_hot != nullptr) *any_hot = true;
    }
    return all;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (Info& info : fns) {
      if (info.allocates) continue;
      for (const CallSite& cs : info.calls) {
        if (cs.in_throw) continue;
        if (callee_all_allocate(cs, nullptr)) {
          info.allocates = true;
          changed = true;
          break;
        }
      }
    }
  }
  for (const Info& info : fns) {
    if (!info.hot) continue;
    for (const AllocEvidence& ev : direct_allocs(*info.fm, *info.fn)) {
      out.push_back({"hot-path-alloc", info.fm->lx.path, ev.line,
                     "TXCONC_HOT function '" + info.fn->qualified +
                         "' allocates: " + ev.what});
    }
    for (const CallSite& cs : info.calls) {
      if (cs.in_throw) continue;
      bool any_hot = false;
      if (callee_all_allocate(cs, &any_hot) && !any_hot) {
        // A hot allocating callee is reported at its own definition.
        out.push_back({"hot-path-alloc", info.fm->lx.path, cs.line,
                       "TXCONC_HOT function '" + info.fn->qualified +
                           "' calls allocating non-hot function '" + cs.name +
                           "'"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 2: atomics-discipline
// ---------------------------------------------------------------------------

/// "relaxed", "acquire", ... for a memory_order spelling at toks[j]
/// (either memory_order_X or memory_order::X), or "" if not one.
std::string order_at(const std::vector<Token>& toks, std::size_t j,
                     std::size_t* width) {
  const Token& t = toks[j];
  if (!is_ident(t)) return "";
  static const char* kPrefix = "memory_order_";
  if (t.text.rfind(kPrefix, 0) == 0) {
    if (width != nullptr) *width = 1;
    return t.text.substr(13);
  }
  if (t.text == "memory_order" && is_punct(toks[j + 1], "::") &&
      is_ident(toks[j + 2])) {
    if (width != nullptr) *width = 3;
    return toks[j + 2].text;
  }
  return "";
}

void rule_atomics_discipline(const Corpus& corpus, std::vector<Finding>& out) {
  // Part A: every non-seq_cst order carries an `// ordering:` comment on
  // its line or within the two lines above.
  for (const FileModel& fm : corpus) {
    const std::vector<Token>& toks = fm.lx.tokens;
    for (std::size_t j = 0; toks[j].kind != TokKind::kEnd; ++j) {
      std::size_t width = 0;
      const std::string ord = order_at(toks, j, &width);
      if (ord.empty()) continue;
      if (ord != "seq_cst" &&
          !contains(comment_near(fm.lx, toks[j].line, 2), "ordering:")) {
        out.push_back({"atomics-discipline", fm.lx.path, toks[j].line,
                       "memory_order_" + ord +
                           " without an '// ordering:' justification comment"});
      }
      j += width - 1;
    }
  }
  // Part B: a release store to member X must have an acquire-side load of
  // X somewhere in the corpus, else the publication never synchronizes.
  struct Site {
    const FileModel* fm;
    int line;
    std::string member;
  };
  std::vector<Site> release_stores;
  std::set<std::string> acquire_side;
  static const std::unordered_set<std::string> kRmw = {
      "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
      "fetch_xor", "exchange"};
  for (const FileModel& fm : corpus) {
    const std::vector<Token>& toks = fm.lx.tokens;
    for (const FunctionDef& fn : fm.functions) {
      for (const CallSite& cs : collect_calls(fm, fn)) {
        if (!cs.member) continue;
        const bool is_store = cs.name == "store";
        const bool is_load = cs.name == "load";
        const bool is_rmw = kRmw.count(cs.name) != 0;
        const bool is_cas = cs.name == "compare_exchange_weak" ||
                            cs.name == "compare_exchange_strong";
        const bool is_wait = cs.name == "wait";
        if (!is_store && !is_load && !is_rmw && !is_cas && !is_wait) continue;
        const std::string member = last_component(cs.receiver);
        if (member.empty()) continue;
        std::vector<std::string> orders;
        const std::size_t open = call_paren(toks, cs.tok);
        if (open != 0) {
          const std::size_t close = find_matching(toks, open);
          for (std::size_t j = open; j < close; ++j) {
            const std::string o = order_at(toks, j, nullptr);
            if (!o.empty()) orders.push_back(o);
          }
        }
        auto has = [&orders](const char* o) {
          return std::find(orders.begin(), orders.end(), o) != orders.end();
        };
        if (is_store && (has("release") || has("acq_rel"))) {
          release_stores.push_back({&fm, cs.line, member});
        }
        const bool acq_orders =
            has("acquire") || has("acq_rel") || has("seq_cst") || orders.empty();
        if ((is_load && acq_orders) || (is_rmw && acq_orders) || is_cas ||
            is_wait) {
          acquire_side.insert(member);
        }
      }
    }
  }
  for (const Site& s : release_stores) {
    if (acquire_side.count(s.member) == 0) {
      out.push_back(
          {"atomics-discipline", s.fm->lx.path, s.line,
           "release store to '" + s.member +
               "' has no acquire-side load of the same member anywhere in "
               "the analyzed set (lone-release publication)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 3: lock-order
// ---------------------------------------------------------------------------

struct Acq {
  std::string node;
  int line = 0;
};

const std::unordered_set<std::string>& raii_lock_types() {
  static const std::unordered_set<std::string> s = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock", "shared_lock"};
  return s;
}

/// Lock nodes: a bare `foo_` member names `Owner::foo_`; anything else
/// (slot.mu, other.mu_) keeps its spelled expression text.
std::string lock_node(const std::vector<Token>& toks, std::size_t arg_begin,
                      std::size_t arg_end, const FunctionDef& fn) {
  std::string text;
  for (std::size_t j = arg_begin; j < arg_end; ++j) text += toks[j].text;
  if (arg_end == arg_begin + 1 && is_ident(toks[arg_begin]) &&
      !text.empty() && text.back() == '_') {
    const std::string owner = owner_of(fn);
    if (!owner.empty()) return owner + "::" + text;
  }
  return text;
}

/// RAII acquisitions in fn's body, each with the brace depth it lives at
/// (depth 0 = function scope) so nesting can be reconstructed linearly.
struct ScopedAcq {
  Acq acq;
  int depth = 0;
  std::size_t tok = 0;
};

std::vector<ScopedAcq> acquisitions(const FileModel& fm,
                                    const FunctionDef& fn) {
  const std::vector<Token>& toks = fm.lx.tokens;
  std::vector<ScopedAcq> out;
  int depth = 0;
  for (std::size_t j = fn.body_begin + 1; j < fn.body_end; ++j) {
    const Token& t = toks[j];
    if (is_punct(t, "{")) { ++depth; continue; }
    if (is_punct(t, "}")) { --depth; continue; }
    if (!is_ident(t) || raii_lock_types().count(t.text) == 0) continue;
    std::size_t k = j + 1;
    if (is_punct(toks[k], "<")) {  // lock_guard<std::mutex>
      int ad = 0;
      std::size_t guard = 64;
      while (toks[k].kind != TokKind::kEnd && guard--) {
        if (is_punct(toks[k], "<")) ++ad;
        else if (is_punct(toks[k], ">")) { if (--ad == 0) { ++k; break; } }
        else if (is_punct(toks[k], ">>")) { ad -= 2; if (ad <= 0) { ++k; break; } }
        else if (is_punct(toks[k], ";")) break;
        ++k;
      }
    }
    if (!is_ident(toks[k])) continue;  // not `Type name(...)`: maybe a cast
    ++k;
    if (!is_punct(toks[k], "(")) continue;
    const std::size_t close = find_matching(toks, k);
    // Split top-level args; bail on adopt/defer/try tags (CondVar::wait
    // re-wraps an already-held mutex with std::adopt_lock).
    std::vector<std::pair<std::size_t, std::size_t>> args;
    std::size_t begin = k + 1;
    int pd = 0;
    bool tagged = false;
    for (std::size_t a = k + 1; a <= close; ++a) {
      if (is_ident(toks[a]) &&
          (toks[a].text == "adopt_lock" || toks[a].text == "defer_lock" ||
           toks[a].text == "try_to_lock")) {
        tagged = true;
      }
      if (is_punct(toks[a], "(")) ++pd;
      else if (is_punct(toks[a], ")")) {
        if (pd == 0) { if (a > begin) args.push_back({begin, a}); break; }
        --pd;
      } else if (is_punct(toks[a], ",") && pd == 0) {
        args.push_back({begin, a});
        begin = a + 1;
      }
    }
    if (!tagged) {
      for (const auto& [b, e] : args) {
        out.push_back({{lock_node(toks, b, e, fn), t.line}, depth, j});
      }
    }
    j = close;
  }
  return out;
}

void rule_lock_order(const Corpus& corpus, std::vector<Finding>& out) {
  struct Edge {
    std::string path;
    int line;
  };
  std::map<std::pair<std::string, std::string>, Edge> edges;
  std::unordered_map<std::string, std::vector<const FunctionDef*>> defs_by_name;
  std::unordered_map<const FunctionDef*, const FileModel*> file_of;
  for (const FileModel& fm : corpus) {
    for (const FunctionDef& fn : fm.functions) {
      defs_by_name[fn.name].push_back(&fn);
      file_of[&fn] = &fm;
    }
  }
  auto add_edge = [&edges](const std::string& a, const std::string& b,
                           const std::string& path, int line) {
    edges.emplace(std::make_pair(a, b), Edge{path, line});
  };
  for (const FileModel& fm : corpus) {
    for (const FunctionDef& fn : fm.functions) {
      const std::vector<ScopedAcq> acqs = acquisitions(fm, fn);
      // Intra-procedural: an acquisition adds edges from every lock still
      // held at its point (earlier acquisition at depth <= — still in
      // scope — or same/greater depth earlier in the same statement run).
      for (std::size_t i = 0; i < acqs.size(); ++i) {
        for (std::size_t h = 0; h < i; ++h) {
          // acqs[h] is still held at acqs[i] iff no '}' closed its scope
          // in between; approximate: held iff its depth <= acqs[i].depth
          // and no token between them closes down to below acqs[h].depth.
          int d = acqs[h].depth;
          bool held = true;
          const std::vector<Token>& toks = fm.lx.tokens;
          for (std::size_t j = acqs[h].tok; j < acqs[i].tok; ++j) {
            if (is_punct(toks[j], "{")) ++d;
            else if (is_punct(toks[j], "}") && --d < acqs[h].depth) {
              held = false;
              break;
            }
          }
          if (held) {
            add_edge(acqs[h].acq.node, acqs[i].acq.node, fm.lx.path,
                     acqs[i].acq.line);
          }
        }
      }
      // One-level interprocedural: calls made while holding a lock pull
      // in the callee's own acquisitions (unique-name resolution only).
      if (acqs.empty()) continue;
      for (const CallSite& cs : collect_calls(fm, fn)) {
        if (is_cpp_keyword(cs.name) ||
            raii_lock_types().count(cs.name) != 0 ||
            cs.qualified.rfind("std::", 0) == 0) {
          continue;
        }
        auto it = defs_by_name.find(cs.name);
        if (it == defs_by_name.end() || it->second.size() != 1) continue;
        const FunctionDef* callee = it->second.front();
        const FileModel* callee_fm = file_of[callee];
        for (const ScopedAcq& sub : acquisitions(*callee_fm, *callee)) {
          for (const ScopedAcq& held : acqs) {
            if (held.tok < cs.tok) {
              int d = held.depth;
              bool still = true;
              const std::vector<Token>& toks = fm.lx.tokens;
              for (std::size_t j = held.tok; j < cs.tok; ++j) {
                if (is_punct(toks[j], "{")) ++d;
                else if (is_punct(toks[j], "}") && --d < held.depth) {
                  still = false;
                  break;
                }
              }
              if (still) {
                add_edge(held.acq.node, sub.acq.node, fm.lx.path, cs.line);
              }
            }
          }
        }
      }
    }
  }
  // Cycle detection over the edge set (self-edges are self-deadlocks).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [e, ev] : edges) {
    if (e.first == e.second) {
      out.push_back({"lock-order", ev.path, ev.line,
                     "lock '" + e.first +
                         "' is re-acquired while already held (self-deadlock)"});
      continue;
    }
    adj[e.first].push_back(e.second);
  }
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const std::string& v : adj[u]) {
      if (color[v] == 1) {
        auto it = std::find(stack.begin(), stack.end(), v);
        std::vector<std::string> cyc(it, stack.end());
        std::vector<std::string> key = cyc;
        std::sort(key.begin(), key.end());
        std::string kstr;
        for (const std::string& n : key) kstr += n + "|";
        if (reported.insert(kstr).second) {
          std::string path_txt;
          for (const std::string& n : cyc) path_txt += n + " -> ";
          path_txt += v;
          const auto ev = edges.find({stack.back(), v});
          out.push_back({"lock-order",
                         ev != edges.end() ? ev->second.path : "<graph>",
                         ev != edges.end() ? ev->second.line : 0,
                         "lock acquisition cycle: " + path_txt});
        }
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [node, _] : adj) {
    if (color[node] == 0) dfs(node);
  }
}

// ---------------------------------------------------------------------------
// Rule 4: tsa-escape-justified
// ---------------------------------------------------------------------------

void rule_tsa_escape(const Corpus& corpus, std::vector<Finding>& out) {
  for (const FileModel& fm : corpus) {
    const std::vector<Token>& toks = fm.lx.tokens;
    for (std::size_t j = 0; toks[j].kind != TokKind::kEnd; ++j) {
      if (!is_ident(toks[j]) || toks[j].text != "NO_THREAD_SAFETY_ANALYSIS") {
        continue;
      }
      if (!contains(comment_near(fm.lx, toks[j].line, 3), "tsa:")) {
        out.push_back(
            {"tsa-escape-justified", fm.lx.path, toks[j].line,
             "NO_THREAD_SAFETY_ANALYSIS without an adjacent '// tsa:' "
             "justification comment"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 5: span-pairing
// ---------------------------------------------------------------------------

void rule_span_pairing(const Corpus& corpus, std::vector<Finding>& out) {
  static const std::unordered_set<std::string> kAlwaysRaw = {
      "begin_causal", "flow_start", "flow_bind"};
  static const std::unordered_set<std::string> kRawWithTracer = {
      "begin", "end", "instant"};
  // SpaceSavingSketch is deliberately not thread-safe; everything outside
  // the contention layer must feed touches/aborts through the lane-sharded
  // ContentionSink::record_* API instead of poking a sketch directly.
  static const std::unordered_set<std::string> kSketchRaw = {"admit",
                                                             "admit_abort"};
  for (const FileModel& fm : corpus) {
    // The Tracer implementation itself is the one legitimate caller.
    const std::string& p = fm.lx.path;
    if (p.size() >= 13 && p.compare(p.size() - 13, 13, "obs/trace.cpp") == 0) {
      continue;
    }
    // The contention layer owns the sketches (the sink's lanes feed their
    // private instances under the lane mutex).
    const bool contention_impl =
        p.find("obs/contention.") != std::string::npos;
    for (const FunctionDef& fn : fm.functions) {
      // The RAII wrappers (CausalSpan / SpanGuard and friends) are the
      // sanctioned call sites wherever they are defined.
      const std::string owner = owner_of(fn);
      if (owner.find("Span") != std::string::npos) continue;
      for (const CallSite& cs : collect_calls(fm, fn)) {
        if (!cs.member) continue;
        const bool always = kAlwaysRaw.count(cs.name) != 0;
        const bool tracer_recv =
            kRawWithTracer.count(cs.name) != 0 && !cs.zero_args &&
            contains(lower(cs.receiver), "tracer");
        if (always || tracer_recv) {
          out.push_back(
              {"span-pairing", fm.lx.path, cs.line,
               "raw Tracer emission '" + cs.name +
                   "' outside the RAII span helpers (use TXCONC_SPAN / "
                   "CausalSpan so begin/end stay paired)"});
          continue;
        }
        const bool sketch_recv = !contention_impl &&
                                 kSketchRaw.count(cs.name) != 0 &&
                                 contains(lower(cs.receiver), "sketch");
        if (sketch_recv) {
          out.push_back(
              {"span-pairing", fm.lx.path, cs.line,
               "raw contention-sketch emission '" + cs.name +
                   "' outside obs/contention (route touches through the "
                   "thread-safe ContentionSink::record_* API)"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule 6: suppression (meta-rule: suppressions must be well-formed)
// ---------------------------------------------------------------------------

bool known_rule(const std::string& name) {
  for (const RuleInfo& r : all_rules()) {
    if (name == r.name) return true;
  }
  return false;
}

void rule_suppression(const Corpus& corpus, std::vector<Finding>& out) {
  for (const FileModel& fm : corpus) {
    for (const auto& [line, text] : fm.lx.comments) {
      std::size_t pos = text.find("txconc-lint:");
      if (pos == std::string::npos) continue;
      const std::string rest = text.substr(pos + 12);
      const std::size_t a = rest.find("allow(");
      if (a == std::string::npos) {
        out.push_back({"suppression", fm.lx.path, line,
                       "malformed txconc-lint comment (expected "
                       "'txconc-lint: allow(<rule>) — <reason>')"});
        continue;
      }
      const std::size_t close = rest.find(')', a);
      if (close == std::string::npos) {
        out.push_back({"suppression", fm.lx.path, line,
                       "unterminated allow(...) in txconc-lint comment"});
        continue;
      }
      std::string rule = rest.substr(a + 6, close - a - 6);
      rule.erase(0, rule.find_first_not_of(" \t"));
      rule.erase(rule.find_last_not_of(" \t") + 1);
      if (!known_rule(rule)) {
        out.push_back({"suppression", fm.lx.path, line,
                       "allow(" + rule + ") names an unknown rule"});
        continue;
      }
      // A reason is required: non-separator text after the ')'.
      std::string reason = rest.substr(close + 1);
      const std::size_t first = reason.find_first_not_of(" \t-:\xE2\x80\x94");
      if (first == std::string::npos) {
        out.push_back({"suppression", fm.lx.path, line,
                       "allow(" + rule +
                           ") without a reason (append '— <why this is "
                           "safe>')"});
      }
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> rules = {
      {"hot-path-alloc",
       "TXCONC_HOT functions must not allocate or call allocating non-hot "
       "functions",
       rule_hot_path_alloc},
      {"atomics-discipline",
       "non-seq_cst memory orders need '// ordering:' justifications; "
       "release stores need a matching acquire side",
       rule_atomics_discipline},
      {"lock-order",
       "the static MutexLock acquisition graph must be acyclic",
       rule_lock_order},
      {"tsa-escape-justified",
       "NO_THREAD_SAFETY_ANALYSIS sites need an adjacent '// tsa:' "
       "justification",
       rule_tsa_escape},
      {"span-pairing",
       "raw Tracer begin/end emissions are forbidden outside the RAII span "
       "helpers",
       rule_span_pairing},
      {"suppression",
       "txconc-lint suppression comments must be well-formed, name a real "
       "rule, and give a reason",
       rule_suppression},
  };
  return rules;
}

}  // namespace txconc::lint
