#include "model.h"

#include <unordered_set>

namespace txconc::lint {
namespace {

const std::unordered_set<std::string>& keywords() {
  static const std::unordered_set<std::string> kw = {
      "alignas",   "alignof",  "asm",          "auto",     "bool",
      "break",     "case",     "catch",        "char",     "class",
      "const",     "consteval","constexpr",    "constinit","const_cast",
      "continue",  "co_await", "co_return",    "co_yield", "decltype",
      "default",   "delete",   "do",           "double",   "dynamic_cast",
      "else",      "enum",     "explicit",     "export",   "extern",
      "false",     "float",    "for",          "friend",   "goto",
      "if",        "inline",   "int",          "long",     "mutable",
      "namespace", "new",      "noexcept",     "nullptr",  "operator",
      "private",   "protected","public",       "register", "reinterpret_cast",
      "requires",  "return",   "short",        "signed",   "sizeof",
      "static",    "static_assert", "static_cast", "struct", "switch",
      "template",  "this",     "thread_local", "throw",    "true",
      "try",       "typedef",  "typeid",       "typename", "union",
      "unsigned",  "using",    "virtual",      "void",     "volatile",
      "wchar_t",   "while",
  };
  return kw;
}

/// Attribute-like macros (and keyword-operators) whose trailing (...)
/// group is a qualifier, never a parameter list or a call.
const std::unordered_set<std::string>& qualifier_macros() {
  static const std::unordered_set<std::string> q = {
      "REQUIRES",        "REQUIRES_SHARED", "ACQUIRE",         "RELEASE",
      "ACQUIRE_SHARED",  "RELEASE_SHARED",  "TRY_ACQUIRE",     "EXCLUDES",
      "GUARDED_BY",      "PT_GUARDED_BY",   "ACQUIRED_BEFORE", "ACQUIRED_AFTER",
      "RETURN_CAPABILITY", "ASSERT_CAPABILITY", "CAPABILITY",
      "TXCONC_TS_ATTRIBUTE", "SCOPED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
      "noexcept",        "throw",           "decltype",        "alignas",
      "__attribute__",   "requires",        "defined",
  };
  return q;
}

bool is_ident(const Token& t) { return t.kind == TokKind::kIdent; }
bool is_punct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

/// Skip a balanced <...> group starting at `open` (toks[open] == "<").
/// Returns the index just past the closing '>' on success; `open` itself
/// (no move) when this does not look like a template argument list.
std::size_t try_skip_angles(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  std::size_t limit = 64;  // template args are short in this tree
  for (std::size_t j = open; toks[j].kind != TokKind::kEnd && limit > 0;
       --limit) {
    const Token& t = toks[j];
    if (is_punct(t, "<")) {
      ++depth;
      ++j;
    } else if (is_punct(t, ">")) {
      if (--depth == 0) return j + 1;
      ++j;
    } else if (is_punct(t, ">>")) {
      depth -= 2;
      if (depth <= 0) return j + 1;
      ++j;
    } else if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) {
      j = find_matching(toks, j) + 1;
    } else if (is_punct(t, ";") || is_punct(t, "}")) {
      return open;  // statement ended first: it was a comparison
    } else {
      ++j;
    }
  }
  return open;
}

/// Skip to just past the next ';' at the current nesting level.
std::size_t skip_to_semi(const std::vector<Token>& toks, std::size_t i) {
  for (std::size_t j = i; toks[j].kind != TokKind::kEnd;) {
    const Token& t = toks[j];
    if (is_punct(t, ";")) return j + 1;
    if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) {
      j = find_matching(toks, j) + 1;
      continue;
    }
    if (is_punct(t, "}")) return j;  // scope ended without a ';'
    ++j;
  }
  return toks.size() - 1;
}

struct DeclResult {
  bool is_def = false;
  FunctionDef def;
  bool hot_decl = false;
  std::string hot_decl_name;
  std::size_t resume = 0;
};

/// Parse one declaration starting at `i` (an identifier at namespace or
/// class scope). Recognizes function definitions; everything else is
/// skipped to its end.
DeclResult parse_decl(const LexedFile& lx, std::size_t i,
                      const std::string& enclosing_class) {
  const std::vector<Token>& toks = lx.tokens;
  DeclResult out;
  std::string cand_name;
  std::string cand_qual;
  int cand_line = 0;
  bool have_params = false;
  bool hot = false;

  std::size_t j = i;
  while (toks[j].kind != TokKind::kEnd) {
    const Token& t = toks[j];
    if (is_punct(t, ";")) {
      if (hot && have_params && !cand_name.empty()) {
        out.hot_decl = true;
        out.hot_decl_name = cand_name;
      }
      out.resume = j + 1;
      return out;
    }
    if (is_punct(t, "{")) {
      const std::size_t end = find_matching(toks, j);
      if (have_params && !cand_name.empty() &&
          keywords().count(cand_name) == 0) {
        out.is_def = true;
        out.def.name = cand_name;
        out.def.qualified = cand_qual;
        out.def.enclosing_class = enclosing_class;
        out.def.line = cand_line;
        out.def.body_begin = j;
        out.def.body_end = end;
        out.def.hot = hot;
      }
      out.resume = end + 1;
      return out;
    }
    if (is_punct(t, "=")) {
      // "= default;", "= delete;", "= 0;" or a variable initializer.
      if (hot && have_params && !cand_name.empty()) {
        out.hot_decl = true;
        out.hot_decl_name = cand_name;
      }
      out.resume = skip_to_semi(toks, j);
      return out;
    }
    if (is_punct(t, ":") && !is_punct(toks[j + 1], ":")) {
      if (!have_params) {  // label / bitfield: not a function
        out.resume = skip_to_semi(toks, j);
        return out;
      }
      // Ctor-init list: initializer groups until the body brace.
      std::size_t k = j + 1;
      while (toks[k].kind != TokKind::kEnd) {
        while (is_ident(toks[k]) || is_punct(toks[k], "::")) ++k;
        if (is_punct(toks[k], "<")) {
          const std::size_t a = try_skip_angles(toks, k);
          if (a == k) break;
          k = a;
        }
        if (is_punct(toks[k], "(") || is_punct(toks[k], "{")) {
          k = find_matching(toks, k) + 1;
        } else {
          break;
        }
        if (is_punct(toks[k], "...")) ++k;
        if (is_punct(toks[k], ",")) {
          ++k;
          continue;
        }
        if (is_punct(toks[k], "{")) {
          const std::size_t end = find_matching(toks, k);
          out.is_def = true;
          out.def.name = cand_name;
          out.def.qualified = cand_qual;
          out.def.enclosing_class = enclosing_class;
          out.def.line = cand_line;
          out.def.body_begin = k;
          out.def.body_end = end;
          out.def.hot = hot;
          out.resume = end + 1;
          return out;
        }
        break;
      }
      out.resume = j + 1;  // bail: malformed for our grammar subset
      return out;
    }
    if (is_punct(t, "(") || is_punct(t, "[")) {
      j = find_matching(toks, j) + 1;
      continue;
    }
    if (is_punct(t, "}")) {  // scope closed mid-declaration: bail
      out.resume = j;
      return out;
    }
    if (is_ident(t)) {
      if (t.text == "TXCONC_HOT") {
        hot = true;
        ++j;
        continue;
      }
      if (t.text == "operator") {
        std::string op = "operator";
        std::size_t k = j + 1;
        if (is_punct(toks[k], "(") && is_punct(toks[k + 1], ")")) {
          op += "()";
          k += 2;
        } else if (is_punct(toks[k], "[") && is_punct(toks[k + 1], "]")) {
          op += "[]";
          k += 2;
        } else {
          while (toks[k].kind == TokKind::kPunct && !is_punct(toks[k], "(")) {
            op += toks[k].text;
            ++k;
          }
          while (is_ident(toks[k]) ||
                 (toks[k].kind == TokKind::kPunct && !is_punct(toks[k], "(") &&
                  !is_punct(toks[k], ";"))) {
            op += (is_ident(toks[k]) ? " " + toks[k].text : toks[k].text);
            ++k;  // conversion operators: operator bool, operator T*
          }
        }
        if (is_punct(toks[k], "(")) {
          cand_name = op;
          cand_qual = cand_qual.empty() ? op : cand_qual + "::" + op;
          cand_line = t.line;
          have_params = true;
          j = find_matching(toks, k) + 1;
          continue;
        }
        j = k;
        continue;
      }
      // Identifier chain a::b::c, candidate when directly followed by '('.
      std::string name = t.text;
      std::string qual = t.text;
      const int line = t.line;
      std::size_t k = j + 1;
      while (is_punct(toks[k], "::") && is_ident(toks[k + 1])) {
        qual += "::" + toks[k + 1].text;
        name = toks[k + 1].text;
        k += 2;
      }
      if (is_punct(toks[k], "(")) {
        if (qualifier_macros().count(name) != 0 || keywords().count(name) != 0) {
          j = find_matching(toks, k) + 1;  // qualifier group, not params
          continue;
        }
        cand_name = name;
        cand_qual = qual;
        cand_line = line;
        have_params = true;
        j = find_matching(toks, k) + 1;
        continue;
      }
      j = k;
      continue;
    }
    ++j;  // *, &, <, >, ~, ',', number, string, ...
  }
  out.resume = toks.size() - 1;
  return out;
}

}  // namespace

bool is_cpp_keyword(const std::string& s) { return keywords().count(s) != 0; }

std::size_t find_matching(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const char* close = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t j = open; toks[j].kind != TokKind::kEnd; ++j) {
    if (toks[j].kind != TokKind::kPunct) continue;
    if (toks[j].text == o) {
      ++depth;
    } else if (toks[j].text == close) {
      if (--depth == 0) return j;
    }
  }
  return toks.size() - 1;
}

FileModel build_model(LexedFile lx) {
  FileModel fm;
  fm.lx = std::move(lx);
  const std::vector<Token>& toks = fm.lx.tokens;

  struct Ctx {
    char kind;  // 'n' namespace, 'c' class, 'o' other
    std::string name;
  };
  std::vector<Ctx> stack;
  auto enclosing_class = [&stack]() -> std::string {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == 'c') return it->name;
    }
    return std::string();
  };

  std::size_t i = 0;
  while (toks[i].kind != TokKind::kEnd) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {  // unclassified brace (initializer, ...): skip
      i = find_matching(toks, i) + 1;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!stack.empty()) stack.pop_back();
      ++i;
      continue;
    }
    if (!is_ident(t)) {
      ++i;
      continue;
    }
    if (t.text == "template") {
      if (is_punct(toks[i + 1], "<")) {
        const std::size_t a = try_skip_angles(toks, i + 1);
        i = (a == i + 1) ? i + 1 : a;
      } else {
        ++i;
      }
      continue;
    }
    if (t.text == "namespace") {
      std::size_t j = i + 1;
      std::string name;
      while (is_ident(toks[j]) || is_punct(toks[j], "::")) {
        name += toks[j].text;
        ++j;
      }
      if (is_punct(toks[j], "{")) {
        stack.push_back({'n', name});
        i = j + 1;
      } else {
        i = skip_to_semi(toks, j);
      }
      continue;
    }
    if (t.text == "using" || t.text == "typedef" || t.text == "friend" ||
        t.text == "static_assert") {
      i = skip_to_semi(toks, i);
      continue;
    }
    if (t.text == "enum") {
      std::size_t j = i + 1;
      while (toks[j].kind != TokKind::kEnd && !is_punct(toks[j], "{") &&
             !is_punct(toks[j], ";")) {
        ++j;
      }
      i = is_punct(toks[j], "{") ? find_matching(toks, j) + 1 : j + 1;
      continue;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union") {
      std::size_t j = i + 1;
      std::string last_ident;
      while (toks[j].kind != TokKind::kEnd) {
        if (is_punct(toks[j], "(") || is_punct(toks[j], "[")) {
          j = find_matching(toks, j) + 1;  // CAPABILITY("..."), [[...]]
          continue;
        }
        if (is_punct(toks[j], "<")) {
          const std::size_t a = try_skip_angles(toks, j);
          if (a == j) break;
          j = a;
          continue;
        }
        if (is_punct(toks[j], ":") || is_punct(toks[j], "{") ||
            is_punct(toks[j], ";")) {
          break;
        }
        if (is_ident(toks[j]) && toks[j].text != "final" &&
            toks[j].text != "alignas") {
          last_ident = toks[j].text;
        }
        ++j;
      }
      if (is_punct(toks[j], ":")) {  // base clause
        while (toks[j].kind != TokKind::kEnd && !is_punct(toks[j], "{") &&
               !is_punct(toks[j], ";")) {
          if (is_punct(toks[j], "(")) {
            j = find_matching(toks, j) + 1;
          } else if (is_punct(toks[j], "<")) {
            const std::size_t a = try_skip_angles(toks, j);
            j = (a == j) ? j + 1 : a;
          } else {
            ++j;
          }
        }
      }
      if (is_punct(toks[j], "{")) {
        stack.push_back({'c', last_ident});
        i = j + 1;
      } else {
        i = is_punct(toks[j], ";") ? j + 1 : j;
      }
      continue;
    }
    if (t.text == "extern" && toks[i + 1].kind == TokKind::kString &&
        is_punct(toks[i + 2], "{")) {
      stack.push_back({'o', ""});
      i += 3;
      continue;
    }
    if ((t.text == "public" || t.text == "private" || t.text == "protected") &&
        is_punct(toks[i + 1], ":")) {
      i += 2;
      continue;
    }
    DeclResult r = parse_decl(fm.lx, i, enclosing_class());
    if (r.is_def) fm.functions.push_back(std::move(r.def));
    if (r.hot_decl) fm.hot_decls.push_back(std::move(r.hot_decl_name));
    i = r.resume > i ? r.resume : i + 1;
  }
  return fm;
}

std::vector<CallSite> collect_calls(const FileModel& fm,
                                    const FunctionDef& fn) {
  const std::vector<Token>& toks = fm.lx.tokens;
  std::vector<CallSite> out;
  bool in_throw = false;
  for (std::size_t j = fn.body_begin + 1; j < fn.body_end; ++j) {
    const Token& t = toks[j];
    if (t.kind == TokKind::kPunct &&
        (t.text == ";" || t.text == "{" || t.text == "}")) {
      in_throw = false;
      continue;
    }
    if (!is_ident(t)) continue;
    if (t.text == "throw") {
      in_throw = true;
      continue;
    }
    if (keywords().count(t.text) != 0 || qualifier_macros().count(t.text) != 0) {
      // Skip a cast's/keyword's group so e.g. static_cast<T>(x) never
      // yields a call named after its operand.
      continue;
    }
    // Identifier chain a::b::c[<T>], call when followed by '('.
    const std::size_t chain_start = j;
    std::string name = t.text;
    std::string qual = t.text;
    std::size_t k = j + 1;
    while (is_punct(toks[k], "::") && is_ident(toks[k + 1])) {
      name = toks[k + 1].text;
      qual += "::" + toks[k + 1].text;
      k += 2;
    }
    std::size_t after_args = k;
    if (is_punct(toks[k], "<")) {
      const std::size_t a = try_skip_angles(toks, k);
      if (a != k) after_args = a;
    }
    if (!is_punct(toks[after_args], "(")) {
      j = k - 1;
      continue;
    }
    CallSite cs;
    cs.name = name;
    cs.qualified = qual;
    cs.tok = chain_start;
    cs.line = toks[chain_start].line;
    cs.zero_args = is_punct(toks[after_args + 1], ")");
    cs.in_throw = in_throw;
    // Member call? Walk the receiver chain backwards.
    std::size_t p = chain_start;
    if (p > fn.body_begin &&
        (is_punct(toks[p - 1], ".") || is_punct(toks[p - 1], "->"))) {
      cs.member = true;
      std::vector<std::string> parts;
      std::size_t q = p - 1;
      while (q > fn.body_begin) {
        const Token& rt = toks[q - 1];
        if (is_ident(rt) || rt.kind == TokKind::kNumber) {
          parts.push_back(rt.text);
          --q;
        } else if (is_punct(rt, ".") || is_punct(rt, "->") ||
                   is_punct(rt, "::")) {
          parts.push_back(rt.text);
          --q;
        } else if (is_punct(rt, ")") || is_punct(rt, "]")) {
          // fold a trailing call/index group into the receiver, e.g.
          // Tracer::global().begin(...) or slots_[j].mu
          std::size_t open = q - 1;
          int depth = 0;
          const std::string& closer = rt.text;
          const std::string opener = closer == ")" ? "(" : "[";
          while (open > fn.body_begin) {
            if (is_punct(toks[open], closer.c_str())) ++depth;
            if (is_punct(toks[open], opener.c_str()) && --depth == 0) break;
            --open;
          }
          parts.push_back(opener + closer);
          q = open;
        } else {
          break;
        }
        // Stop once the chain no longer continues leftward.
        const Token& prev = toks[q - 1];
        if (!(is_ident(prev) || prev.kind == TokKind::kNumber ||
              is_punct(prev, ".") || is_punct(prev, "->") ||
              is_punct(prev, "::") || is_punct(prev, ")") ||
              is_punct(prev, "]"))) {
          break;
        }
      }
      for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        cs.receiver += *it;
      }
      // The separator itself ('.'/'->') was folded into parts; strip a
      // trailing one so "slot.mu." reads "slot.mu".
      while (!cs.receiver.empty() &&
             (cs.receiver.back() == '.' || cs.receiver.back() == '>')) {
        if (cs.receiver.back() == '>' && cs.receiver.size() >= 2 &&
            cs.receiver[cs.receiver.size() - 2] == '-') {
          cs.receiver.erase(cs.receiver.size() - 2);
        } else if (cs.receiver.back() == '.') {
          cs.receiver.pop_back();
        } else {
          break;
        }
      }
    }
    out.push_back(std::move(cs));
    j = after_args;  // continue inside the argument list (nested calls)
  }
  return out;
}

}  // namespace txconc::lint
