// txconc-lint driver: rule registry, corpus, suppression filtering and
// output formatting. See DESIGN.md §15 for the rule catalogue.
#pragma once

#include <string>
#include <vector>

#include "model.h"

namespace txconc::lint {

using Corpus = std::vector<FileModel>;

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* description;
  void (*run)(const Corpus&, std::vector<Finding>&);
};

/// All registered rules, in stable catalogue order.
const std::vector<RuleInfo>& all_rules();

struct LintResult {
  std::vector<Finding> findings;  ///< post-suppression, sorted path/line
  int suppressed = 0;
  int files = 0;
  int rules_run = 0;
};

class Linter {
 public:
  /// Lex + model one translation-unit-ish input. Order is irrelevant;
  /// cross-file rules see the whole corpus.
  void add_file(const std::string& path, const std::string& content);

  /// Run `enabled` rules (empty = all). Valid
  /// `// txconc-lint: allow(<rule>) — <reason>` comments on the finding
  /// line or the line above suppress that rule's findings there.
  LintResult run(const std::vector<std::string>& enabled = {}) const;

  const Corpus& corpus() const { return corpus_; }

 private:
  Corpus corpus_;
};

std::string to_text(const LintResult& r);
std::string to_json(const LintResult& r);

}  // namespace txconc::lint
