// txconc-lint CLI.
//
//   txconc_lint [--format=text|json] [--rules=a,b,...] [--list-rules]
//               <file-or-dir>...
//
// Directories are recursed for .h/.hpp/.cc/.cpp. Exit codes:
//   0  clean
//   1  findings
//   2  usage or I/O error
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;
using txconc::lint::Linter;

namespace {

bool source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".h" || e == ".hpp" || e == ".cc" || e == ".cpp";
}

int usage() {
  std::cerr << "usage: txconc_lint [--format=text|json] [--rules=a,b] "
               "[--list-rules] <file-or-dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::vector<std::string> rules;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json") return usage();
    } else if (arg.rfind("--rules=", 0) == 0) {
      std::stringstream ss(arg.substr(8));
      std::string r;
      while (std::getline(ss, r, ',')) {
        if (!r.empty()) rules.push_back(r);
      }
    } else if (arg == "--list-rules") {
      for (const auto& r : txconc::lint::all_rules()) {
        std::cout << r.name << "\t" << r.description << "\n";
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  Linter linter;
  int loaded = 0;
  for (const std::string& in : inputs) {
    std::error_code ec;
    std::vector<fs::path> files;
    if (fs::is_directory(in, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(in, ec)) {
        if (entry.is_regular_file() && source_ext(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::cerr << "txconc_lint: cannot read '" << in << "'\n";
      return 2;
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& p : files) {
      std::ifstream f(p);
      if (!f) {
        std::cerr << "txconc_lint: cannot open '" << p.string() << "'\n";
        return 2;
      }
      std::ostringstream ss;
      ss << f.rdbuf();
      linter.add_file(p.generic_string(), ss.str());
      ++loaded;
    }
  }
  if (loaded == 0) {
    std::cerr << "txconc_lint: no source files found\n";
    return 2;
  }
  const auto res = linter.run(rules);
  std::cout << (format == "json" ? txconc::lint::to_json(res)
                                 : txconc::lint::to_text(res));
  return res.findings.empty() ? 0 : 1;
}
