// Deterministic pseudo-random generation for workload synthesis.
//
// All generators are seedable and fully deterministic so that every
// experiment in the benches is reproducible run-to-run.
#pragma once

#include <cstdint>
#include <vector>

namespace txconc {

/// splitmix64 — used to seed the main generator and to derive sub-streams.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) (bound > 0). Lemire-style rejection for
  /// unbiasedness.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponential with given mean (> 0).
  double exponential(double mean);

  /// Poisson with given mean. Knuth's method for small means, normal
  /// approximation above 64 to stay O(1).
  std::uint64_t poisson(double mean);

  /// Gaussian via Box-Muller.
  double normal(double mean, double stddev);

  /// Fork an independent sub-stream (deterministic in the fork index).
  Rng fork(std::uint64_t stream_id) const;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  // Box-Muller produces pairs; cache the spare value.
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Samples ranks 0..n-1 from a Zipf distribution with exponent s.
///
/// Rank 0 is the most popular element. Used to model the concentration of
/// blockchain traffic on a few hot addresses (exchanges, mining pools),
/// which is the workload property that drives the paper's conflict rates.
///
/// Implementation: precomputed CDF + binary search; O(n) memory, O(log n)
/// per sample. Suitable for the ~10^5-10^6 element populations used here.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return exponent_; }

  /// Probability mass of a given rank.
  double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
  double exponent_;
};

/// Samples an index proportionally to the given non-negative weights.
class WeightedSampler {
 public:
  explicit WeightedSampler(const std::vector<double>& weights);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace txconc
