#include "common/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fmt.h"

namespace txconc {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

double transform(double v, bool log_y) {
  if (!log_y) return v;
  return std::log10(std::max(v, 1e-12));
}

}  // namespace

std::string render_plot(const std::vector<LabelledSeries>& series,
                        const PlotOptions& options) {
  const std::size_t w = std::max<std::size_t>(options.width, 8);
  const std::size_t h = std::max<std::size_t>(options.height, 4);

  // Data ranges.
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -std::numeric_limits<double>::infinity();
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      any = true;
      x_min = std::min(x_min, p.position);
      x_max = std::max(x_max, p.position);
      const double y = transform(p.value, options.log_y);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  std::string out;
  if (!options.title.empty()) {
    out += "  " + options.title + "\n";
  }
  if (!any) {
    out += "  (no data)\n";
    return out;
  }
  if (!options.log_y && options.y_max > options.y_min) {
    y_min = options.y_min;
    y_max = options.y_max;
  }
  if (x_max <= x_min) x_max = x_min + 1.0;
  if (y_max <= y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(h, std::string(w, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    for (const auto& p : series[si].points) {
      const double fx = (p.position - x_min) / (x_max - x_min);
      const double fy =
          (transform(p.value, options.log_y) - y_min) / (y_max - y_min);
      const std::size_t col = std::min(
          w - 1, static_cast<std::size_t>(fx * static_cast<double>(w - 1) + 0.5));
      const double fy_clamped = std::clamp(fy, 0.0, 1.0);
      const std::size_t row_from_bottom = std::min(
          h - 1,
          static_cast<std::size_t>(fy_clamped * static_cast<double>(h - 1) + 0.5));
      grid[h - 1 - row_from_bottom][col] = glyph;
    }
  }

  // y-axis labels at top, middle, bottom.
  auto y_label_at = [&](std::size_t row_from_top) {
    const double frac =
        1.0 - static_cast<double>(row_from_top) / static_cast<double>(h - 1);
    double v = y_min + frac * (y_max - y_min);
    if (options.log_y) v = std::pow(10.0, v);
    return strfmt("%9.3g", v);
  };

  for (std::size_t r = 0; r < h; ++r) {
    const bool labelled = (r == 0 || r == h / 2 || r == h - 1);
    out += labelled ? y_label_at(r) : std::string(9, ' ');
    out += " |";
    out += grid[r];
    out += '\n';
  }
  out += std::string(10, ' ') + '+' + std::string(w, '-') + '\n';
  out += strfmt("%10s%-12.6g%*s%12.6g", " ", x_min,
                static_cast<int>(w) - 22, " ", x_max);
  out += "   (" + options.x_label + ")\n";

  out += "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += strfmt("  [%c] %s", kGlyphs[si % sizeof(kGlyphs)],
                  series[si].label.c_str());
  }
  out += '\n';
  return out;
}

}  // namespace txconc
