// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for transaction ids, block hashes and merkle trees so that the
// simulated chains have realistic, collision-resistant identifiers.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace txconc {

/// Incremental SHA-256 hasher.
///
///   Sha256 h;
///   h.update(part1);
///   h.update(part2);
///   auto digest = h.finalize();   // 32 bytes
///
/// finalize() may be called once; the object is then exhausted.
class Sha256 {
 public:
  using Digest = std::array<std::uint8_t, 32>;

  Sha256();

  /// Absorb more input.
  void update(std::span<const std::uint8_t> data);

  /// Pad, finish, and return the digest.
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data);

  /// Double SHA-256 (Bitcoin-style txid construction).
  static Digest hash_twice(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t bit_length_ = 0;
  std::size_t buffer_used_ = 0;
};

}  // namespace txconc
