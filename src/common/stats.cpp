#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace txconc {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void WeightedMean::add(double value, double weight) {
  if (weight < 0.0) throw UsageError("WeightedMean weight < 0");
  value_sum_ += value * weight;
  weight_sum_ += weight;
}

double Quantiles::quantile(double q) const {
  if (values_.empty()) throw UsageError("Quantiles::quantile on empty sample");
  if (q < 0.0 || q > 1.0) throw UsageError("quantile q out of [0,1]");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

Bucketizer::Bucketizer(std::size_t num_buckets, std::uint64_t min_height,
                       std::uint64_t max_height)
    : min_height_(min_height), max_height_(max_height) {
  if (num_buckets == 0) throw UsageError("Bucketizer needs >= 1 bucket");
  if (max_height < min_height) throw UsageError("Bucketizer range is empty");
  buckets_.resize(num_buckets);
}

void Bucketizer::add(std::uint64_t height, double value, double weight) {
  if (height < min_height_ || height > max_height_) {
    throw UsageError("Bucketizer: height out of range");
  }
  const std::uint64_t span = max_height_ - min_height_ + 1;
  std::size_t idx = static_cast<std::size_t>(
      (height - min_height_) * buckets_.size() / span);
  idx = std::min(idx, buckets_.size() - 1);
  buckets_[idx].add(value, weight);
}

std::vector<SeriesPoint> Bucketizer::series() const {
  std::vector<SeriesPoint> out;
  out.reserve(buckets_.size());
  const double span = static_cast<double>(max_height_ - min_height_ + 1);
  const double width = span / static_cast<double>(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].empty()) continue;
    SeriesPoint p;
    p.position = static_cast<double>(min_height_) +
                 (static_cast<double>(i) + 0.5) * width;
    p.value = buckets_[i].mean();
    p.weight = buckets_[i].weight_sum();
    out.push_back(p);
  }
  return out;
}

}  // namespace txconc
