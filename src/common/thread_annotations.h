// Clang Thread Safety Analysis capability wrappers.
//
// Every concurrency surface in the tree locks through the annotated
// Mutex/MutexLock/CondVar types below so that `clang++ -Wthread-safety
// -Werror=thread-safety-analysis` (the `tsa` lane of scripts/ci.sh) proves
// lock discipline at compile time: members tagged GUARDED_BY can only be
// touched with their mutex held, and helpers tagged REQUIRES can only be
// called from locked contexts. On non-Clang compilers the attributes
// expand to nothing and the wrappers collapse to the std primitives.
//
// Rules of thumb for annotating a class (see DESIGN.md §10):
//  * every member mutated after construction by >1 thread: GUARDED_BY(mu_)
//  * every private helper that assumes the lock: REQUIRES(mu_)
//  * accessors that hand out references to guarded state are only safe in
//    quiescent phases; mark them NO_THREAD_SAFETY_ANALYSIS with a comment
//    saying so instead of silently laundering the reference.
//  * do not touch guarded members from lambda bodies — the analysis does
//    not propagate held capabilities into closures; hoist the access into
//    the enclosing function or a REQUIRES-annotated helper.
#pragma once

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define TXCONC_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define TXCONC_TS_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

#define CAPABILITY(x) TXCONC_TS_ATTRIBUTE(capability(x))
#define SCOPED_CAPABILITY TXCONC_TS_ATTRIBUTE(scoped_lockable)
#define GUARDED_BY(x) TXCONC_TS_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) TXCONC_TS_ATTRIBUTE(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) TXCONC_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) TXCONC_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  TXCONC_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  TXCONC_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) TXCONC_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  TXCONC_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) TXCONC_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  TXCONC_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  TXCONC_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) TXCONC_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) TXCONC_TS_ATTRIBUTE(assert_capability(x))
#define RETURN_CAPABILITY(x) TXCONC_TS_ATTRIBUTE(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  TXCONC_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace txconc {

/// std::mutex wearing the `capability` attribute so the analysis can track
/// which functions hold it. Use through MutexLock wherever possible; bare
/// lock()/unlock() is for the rare hand-over-hand or wait-loop shapes.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { raw_.lock(); }
  void unlock() RELEASE() { raw_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// RAII lock over Mutex (the scoped capability the analysis understands).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex. wait() declares
/// REQUIRES(mu): callers must already hold the lock, and the analysis
/// treats the capability as continuously held across the wait (the lock is
/// reacquired before returning, exactly like std::condition_variable).
///
/// Check wait conditions with an explicit `while (!cond) cv.wait(mu);`
/// loop rather than a predicate lambda: the analysis cannot see that a
/// closure body runs under the caller's lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.raw_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace txconc
