// Fixed-size identifier types: 32-byte hashes and 20-byte addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>

namespace txconc {

/// A 32-byte hash value (transaction id, block hash, merkle root).
struct Hash256 {
  std::array<std::uint8_t, 32> bytes{};

  auto operator<=>(const Hash256&) const = default;

  bool is_zero() const;

  /// Lowercase hex, 64 characters.
  std::string to_hex() const;
  /// Abbreviated display form: first 4 hex digits (as used in the paper's
  /// Figure 6 rendering of Bitcoin transactions).
  std::string short_hex() const;

  static Hash256 from_hex(std::string_view hex);
  static Hash256 from_bytes(std::span<const std::uint8_t> data);
  /// SHA-256 of arbitrary bytes.
  static Hash256 digest_of(std::span<const std::uint8_t> data);
  /// Deterministic hash derived from a 64-bit seed (cheap test/workload ids).
  static Hash256 from_seed(std::uint64_t seed);

  /// First 8 bytes as a little-endian integer (for sharding / bucketing).
  std::uint64_t low64() const;
};

/// A 20-byte account address (account-based data model).
struct Address {
  std::array<std::uint8_t, 20> bytes{};

  auto operator<=>(const Address&) const = default;

  bool is_zero() const;

  /// "0x"-prefixed lowercase hex, 42 characters.
  std::string to_hex() const;
  /// Abbreviated display form: "0x" + first 3 hex digits (paper Figure 1).
  std::string short_hex() const;

  static Address from_hex(std::string_view hex);
  /// Deterministic address derived from a 64-bit seed.
  static Address from_seed(std::uint64_t seed);
  /// Contract address derived from creator + nonce (Ethereum-style).
  static Address derive_contract(const Address& creator, std::uint64_t nonce);

  /// First 8 bytes as a little-endian integer (shard assignment uses this).
  std::uint64_t low64() const;
};

}  // namespace txconc

template <>
struct std::hash<txconc::Hash256> {
  std::size_t operator()(const txconc::Hash256& h) const noexcept {
    // The value is already uniformly distributed; take the first word.
    std::size_t v = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      v |= static_cast<std::size_t>(h.bytes[i]) << (8 * i);
    }
    return v;
  }
};

template <>
struct std::hash<txconc::Address> {
  std::size_t operator()(const txconc::Address& a) const noexcept {
    std::size_t v = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
      v |= static_cast<std::size_t>(a.bytes[i]) << (8 * i);
    }
    return v;
  }
};
