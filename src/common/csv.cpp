#include "common/csv.h"

#include "common/error.h"
#include "common/fmt.h"

namespace txconc {

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (have_header_) throw UsageError("CsvWriter: header written twice");
  if (columns.empty()) throw UsageError("CsvWriter: empty header");
  width_ = columns.size();
  have_header_ = true;
  emit(columns);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!have_header_) throw UsageError("CsvWriter: row before header");
  if (cells.size() != width_) {
    throw UsageError("CsvWriter: row width mismatch");
  }
  emit(cells);
  ++rows_;
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) {
    text.push_back(strfmt("%.6g", v));
  }
  row(text);
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    write_escaped(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_escaped(std::string_view cell) {
  if (cell.find_first_of(",\"\n") == std::string_view::npos) {
    out_ << cell;
    return;
  }
  out_ << '"';
  for (const char c : cell) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

}  // namespace txconc
