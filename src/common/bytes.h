// Byte-buffer utilities: hex codecs and little-endian serialization.
//
// All on-the-wire encodings in txconc (transactions, block headers) go
// through ByteWriter / ByteReader so that txids and merkle roots are
// deterministic across platforms.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace txconc {

using Bytes = std::vector<std::uint8_t>;

/// Encode a byte span as lowercase hex.
std::string to_hex(std::span<const std::uint8_t> data);

/// Decode a hex string (case-insensitive, no 0x prefix handling).
/// Throws ParseError on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Append-only little-endian byte serializer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v); }
  void u32(std::uint32_t v) { le(v); }
  void u64(std::uint64_t v) { le(v); }
  /// Length-prefixed (u32) raw bytes.
  void bytes(std::span<const std::uint8_t> data);
  /// Raw bytes, no length prefix (fixed-size fields such as hashes).
  void raw(std::span<const std::uint8_t> data);
  /// Length-prefixed UTF-8 string.
  void str(std::string_view s);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Little-endian byte deserializer over a non-owning view.
/// Throws ParseError when reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Length-prefixed (u32) raw bytes.
  Bytes bytes();
  /// Fixed-size raw bytes.
  Bytes raw(std::size_t n);
  /// Length-prefixed UTF-8 string.
  std::string str();

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace txconc
