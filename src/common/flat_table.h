// Open-addressed hash containers with O(1) epoch-based clear, built for
// the executors' per-block scratch state.
//
// The parallel engines reuse one table across thousands of blocks; after
// the warm-up blocks the steady-state pattern is clear() + a few hundred
// inserts, none of which may touch the heap (see the hotpath allocation
// tests). clear() therefore only bumps an epoch stamp — slots written in
// earlier epochs read as empty — instead of memsetting or freeing the
// backing array.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/hot_path.h"

namespace txconc::common {

/// Open-addressed, linear-probing hash map over a power-of-two slot array.
///
/// Key and Value must be default-constructible and copyable. Deletion uses
/// tombstones (needed by OverlayState::revert); probe chains therefore
/// step over current-epoch tombstones and stop at the first slot not
/// written in the current epoch. Growth doubles the array when live +
/// tombstone slots pass a 3/4 load factor — the only allocating path.
///
/// Not thread-safe; one table per worker, like the overlays it backs.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatTable {
 public:
  explicit FlatTable(std::size_t capacity_hint = 0) {
    std::size_t cap = kMinCapacity;
    while (cap < capacity_hint * 2) cap *= 2;
    slots_.resize(cap);
  }

  /// Logically empty the table without releasing or touching the slots.
  TXCONC_HOT void clear() {
    ++epoch_;
    size_ = 0;
    tombstones_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slot-array size (diagnostics; capacity is retained across clear()).
  std::size_t capacity() const { return slots_.size(); }

  TXCONC_HOT const Value* find(const Key& key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = Hash{}(key) & mask;
    for (;;) {
      const Slot& slot = slots_[idx];
      if (slot.stamp == live_stamp()) {
        if (slot.key == key) return &slot.value;
      } else if (slot.stamp != tomb_stamp()) {
        return nullptr;  // not written this epoch: end of probe chain
      }
      idx = (idx + 1) & mask;
    }
  }

  TXCONC_HOT Value* find(const Key& key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  TXCONC_HOT bool contains(const Key& key) const { return find(key) != nullptr; }

  /// Value for key, default-constructing (and inserting) when absent.
  TXCONC_HOT Value& operator[](const Key& key) {
    // txconc-lint: allow(hot-path-alloc) — growth is the one sanctioned path
    maybe_grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = Hash{}(key) & mask;
    std::size_t first_tomb = kNoSlot;
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.stamp == live_stamp()) {
        if (slot.key == key) return slot.value;
      } else if (slot.stamp == tomb_stamp()) {
        if (first_tomb == kNoSlot) first_tomb = idx;
      } else {
        // End of chain: claim the earliest tombstone on the way, else
        // this empty slot.
        Slot& dest =
            first_tomb == kNoSlot ? slot : slots_[first_tomb];
        if (first_tomb != kNoSlot) --tombstones_;
        dest.stamp = live_stamp();
        dest.key = key;
        dest.value = Value{};
        ++size_;
        return dest.value;
      }
      idx = (idx + 1) & mask;
    }
  }

  TXCONC_HOT void insert_or_assign(const Key& key, const Value& value) {
    (*this)[key] = value;
  }

  TXCONC_HOT bool erase(const Key& key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = Hash{}(key) & mask;
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.stamp == live_stamp()) {
        if (slot.key == key) {
          slot.stamp = tomb_stamp();
          --size_;
          ++tombstones_;
          return true;
        }
      } else if (slot.stamp != tomb_stamp()) {
        return false;
      }
      idx = (idx + 1) & mask;
    }
  }

  /// Invoke fn(key, value) for every live entry (unspecified order).
  template <typename Fn>
  TXCONC_HOT void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.stamp == live_stamp()) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    std::uint64_t stamp = 0;  ///< epoch*2 live, epoch*2+1 tombstone
    Key key{};
    Value value{};
  };

  static constexpr std::size_t kMinCapacity = 16;
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  std::uint64_t live_stamp() const { return epoch_ << 1; }
  std::uint64_t tomb_stamp() const { return (epoch_ << 1) | 1; }

  void maybe_grow() {
    if ((size_ + tombstones_ + 1) * 4 <= slots_.size() * 3) return;
    std::vector<Slot> old = std::move(slots_);
    const std::uint64_t old_live = live_stamp();
    slots_.assign(old.size() * 2, Slot{});
    epoch_ = 1;
    tombstones_ = 0;
    const std::size_t mask = slots_.size() - 1;
    for (Slot& slot : old) {
      if (slot.stamp != old_live) continue;
      std::size_t idx = Hash{}(slot.key) & mask;
      while (slots_[idx].stamp == live_stamp()) idx = (idx + 1) & mask;
      slots_[idx].stamp = live_stamp();
      slots_[idx].key = std::move(slot.key);
      slots_[idx].value = std::move(slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 1;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

/// Membership-only companion of FlatTable (conflict sets, OCC wave write
/// sets). Same epoch-clear and allocation behavior.
template <typename Key, typename Hash = std::hash<Key>>
class FlatSet {
 public:
  explicit FlatSet(std::size_t capacity_hint = 0) : table_(capacity_hint) {}

  TXCONC_HOT void clear() { table_.clear(); }
  std::size_t size() const { return table_.size(); }
  bool empty() const { return table_.empty(); }
  TXCONC_HOT bool contains(const Key& key) const { return table_.contains(key); }
  /// @return true when the key was newly inserted.
  TXCONC_HOT bool insert(const Key& key) {
    if (table_.contains(key)) return false;
    table_[key] = true;
    return true;
  }

 private:
  FlatTable<Key, bool, Hash> table_;
};

}  // namespace txconc::common
