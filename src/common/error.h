// Exception hierarchy used across txconc.
//
// All recoverable failures are reported as exceptions derived from
// txconc::Error (per C++ Core Guidelines E.14: use purpose-designed types).
#pragma once

#include <stdexcept>
#include <string>

namespace txconc {

/// Base class for all txconc errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed input (bad hex string, truncated serialization, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A transaction or block failed validation against the current state.
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what)
      : Error("validation error: " + what) {}
};

/// A virtual-machine execution fault (out of gas, stack underflow, ...).
class VmError : public Error {
 public:
  explicit VmError(const std::string& what) : Error("vm error: " + what) {}
};

/// Precondition violation on a public API (caller bug).
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error("usage error: " + what) {}
};

}  // namespace txconc
