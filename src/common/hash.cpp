#include "common/hash.h"

#include <algorithm>
#include <cstring>

#include "common/bytes.h"
#include "common/error.h"
#include "common/sha256.h"

namespace txconc {

bool Hash256::is_zero() const {
  return std::all_of(bytes.begin(), bytes.end(),
                     [](std::uint8_t b) { return b == 0; });
}

std::string Hash256::to_hex() const { return txconc::to_hex(bytes); }

std::string Hash256::short_hex() const { return to_hex().substr(0, 4); }

Hash256 Hash256::from_hex(std::string_view hex) {
  const Bytes raw = txconc::from_hex(hex);
  return from_bytes(raw);
}

Hash256 Hash256::from_bytes(std::span<const std::uint8_t> data) {
  if (data.size() != 32) {
    throw ParseError("Hash256 needs 32 bytes, got " +
                     std::to_string(data.size()));
  }
  Hash256 h;
  std::copy(data.begin(), data.end(), h.bytes.begin());
  return h;
}

Hash256 Hash256::digest_of(std::span<const std::uint8_t> data) {
  const Sha256::Digest d = Sha256::hash(data);
  Hash256 h;
  h.bytes = d;
  return h;
}

Hash256 Hash256::from_seed(std::uint64_t seed) {
  std::array<std::uint8_t, 8> raw;
  for (std::size_t i = 0; i < 8; ++i) {
    raw[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  }
  return digest_of(raw);
}

std::uint64_t Hash256::low64() const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return v;
}

bool Address::is_zero() const {
  return std::all_of(bytes.begin(), bytes.end(),
                     [](std::uint8_t b) { return b == 0; });
}

std::string Address::to_hex() const { return "0x" + txconc::to_hex(bytes); }

std::string Address::short_hex() const { return to_hex().substr(0, 5); }

Address Address::from_hex(std::string_view hex) {
  if (hex.starts_with("0x") || hex.starts_with("0X")) {
    hex.remove_prefix(2);
  }
  const Bytes raw = txconc::from_hex(hex);
  if (raw.size() != 20) {
    throw ParseError("Address needs 20 bytes, got " +
                     std::to_string(raw.size()));
  }
  Address a;
  std::copy(raw.begin(), raw.end(), a.bytes.begin());
  return a;
}

Address Address::from_seed(std::uint64_t seed) {
  const Hash256 h = Hash256::from_seed(seed ^ 0xadd7e55'00000000ULL);
  Address a;
  std::copy(h.bytes.begin(), h.bytes.begin() + 20, a.bytes.begin());
  return a;
}

Address Address::derive_contract(const Address& creator, std::uint64_t nonce) {
  ByteWriter w;
  w.raw(creator.bytes);
  w.u64(nonce);
  const Hash256 h = Hash256::digest_of(w.data());
  Address a;
  std::copy(h.bytes.begin(), h.bytes.begin() + 20, a.bytes.begin());
  return a;
}

std::uint64_t Address::low64() const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return v;
}

}  // namespace txconc
