#include "common/bytes.h"

#include "common/error.h"

namespace txconc {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw ParseError("hex string has odd length: " + std::string(hex));
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw ParseError("non-hex character in: " + std::string(hex));
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteReader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw ParseError("truncated input: need " + std::to_string(n) +
                     " bytes, have " + std::to_string(data_.size() - pos_));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(data_[pos_ + i]) << (8 * i)));
  }
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Bytes ByteReader::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
  pos_ += n;
  return out;
}

}  // namespace txconc
