#include "common/rng.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.h"

namespace txconc {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw UsageError("Rng::uniform bound must be positive");
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw UsageError("Rng::uniform_range lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw UsageError("Rng::exponential mean must be positive");
  double u = uniform_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw UsageError("Rng::poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    // Knuth: multiply uniforms until below e^-mean.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform_double();
    while (product > limit) {
      ++k;
      product *= uniform_double();
    }
    return k;
  }
  // Normal approximation with continuity correction, clamped at zero.
  const double v = normal(mean, std::sqrt(mean)) + 0.5;
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Derive a new seed from the current state and the stream id; the fork
  // does not advance this generator.
  std::uint64_t sm = s_[0] ^ (stream_id * 0x9e3779b97f4a7c15ULL) ^ s_[3];
  return Rng(splitmix64(sm));
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) : exponent_(exponent) {
  if (n == 0) throw UsageError("ZipfSampler needs at least one element");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (double& v : cdf_) {
    v /= total;
  }
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) throw UsageError("ZipfSampler::pmf rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

WeightedSampler::WeightedSampler(const std::vector<double>& weights) {
  if (weights.empty()) throw UsageError("WeightedSampler needs weights");
  cdf_.resize(weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) throw UsageError("WeightedSampler weight < 0");
    total += weights[i];
    cdf_[i] = total;
  }
  if (total <= 0.0) throw UsageError("WeightedSampler weights sum to zero");
  for (double& v : cdf_) {
    v /= total;
  }
  cdf_.back() = 1.0;
}

std::size_t WeightedSampler::sample(Rng& rng) const {
  const double u = rng.uniform_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace txconc
