// TXCONC_HOT: marks a function as part of a steady-state hot path that
// must not allocate.
//
// The annotation is the contract txconc-lint's hot-path-alloc rule
// enforces statically (tools/txconc_lint, DESIGN.md §15): a TXCONC_HOT
// function may not contain `new`, by-value standard-container
// constructions, or calls to allocating functions that are not
// themselves TXCONC_HOT. It complements hotpath_test's runtime
// operator-new counter: the counter proves the paths it drives are
// clean, the lint rule keeps every marked path clean under refactoring
// without needing a workload that reaches it.
//
// Under GCC/Clang the macro also applies __attribute__((hot)) so the
// optimizer places and optimizes the function accordingly; elsewhere it
// is annotation-only.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define TXCONC_HOT __attribute__((hot))
#else
#define TXCONC_HOT
#endif
