// Minimal printf-style string formatting.
//
// The toolchain (GCC 12 / libstdc++) lacks <format>, so benches and reports
// use this small type-checked wrapper around snprintf instead.
#pragma once

#include <cstdio>
#include <string>
#include <type_traits>

namespace txconc {

namespace detail {

// Pass std::string through as const char* so callers can format strings
// without calling .c_str() themselves.
template <typename T>
auto fmt_arg(const T& v) {
  if constexpr (std::is_same_v<T, std::string>) {
    return v.c_str();
  } else {
    return v;
  }
}

}  // namespace detail

/// snprintf into a std::string. Arguments must match the format specifiers;
/// GCC checks this at compile time via the format attribute on snprintf.
template <typename... Args>
std::string strfmt(const char* format, const Args&... args) {
  const int n = std::snprintf(nullptr, 0, format, detail::fmt_arg(args)...);
  if (n < 0) return {};
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, format, detail::fmt_arg(args)...);
  return out;
}

}  // namespace txconc
