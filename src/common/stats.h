// Streaming statistics and the history bucketizer used for all figures.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace txconc {

/// Welford-style running mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Weighted mean accumulator: sum(w*x) / sum(w).
///
/// The paper weights per-block conflict rates by transaction count or gas
/// ("blocks having more transactions ... should be weighted more heavily").
class WeightedMean {
 public:
  void add(double value, double weight);

  double mean() const { return weight_sum_ > 0.0 ? value_sum_ / weight_sum_ : 0.0; }
  double weight_sum() const { return weight_sum_; }
  bool empty() const { return weight_sum_ <= 0.0; }

 private:
  double value_sum_ = 0.0;
  double weight_sum_ = 0.0;
};

/// Exact quantiles over a stored sample (fine at our data sizes).
class Quantiles {
 public:
  void add(double x) { values_.push_back(x); }

  /// q in [0, 1]; linear interpolation between order statistics.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  std::size_t count() const { return values_.size(); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

/// One point of a bucketed history series.
struct SeriesPoint {
  double position = 0.0;  ///< Bucket center, in block-height units.
  double value = 0.0;     ///< Weighted mean of the metric over the bucket.
  double weight = 0.0;    ///< Total weight that landed in the bucket.
};

/// Divides a block-height range into fixed-size buckets and computes the
/// weighted average of a metric per bucket — exactly how the paper prepares
/// its history plots ("dividing these histories into fixed-size buckets for
/// which we compute weighted averages", Section IV).
class Bucketizer {
 public:
  /// @param num_buckets  the paper uses 20 to 200.
  /// @param min_height   first block height (inclusive).
  /// @param max_height   last block height (inclusive).
  Bucketizer(std::size_t num_buckets, std::uint64_t min_height,
             std::uint64_t max_height);

  /// Record a per-block metric observation with its weight.
  void add(std::uint64_t height, double value, double weight);

  /// Finished series; buckets that received no weight are skipped.
  std::vector<SeriesPoint> series() const;

  std::size_t num_buckets() const { return buckets_.size(); }

 private:
  std::uint64_t min_height_;
  std::uint64_t max_height_;
  std::vector<WeightedMean> buckets_;
};

/// A labelled series, the unit that figures/benches render.
struct LabelledSeries {
  std::string label;
  std::vector<SeriesPoint> points;
};

}  // namespace txconc
