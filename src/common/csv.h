// Minimal CSV emission for bench outputs.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace txconc {

/// Writes rows of a CSV table to a stream with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write the header row (must be the first row written).
  void header(const std::vector<std::string>& columns);

  /// Write one data row; cell counts must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void row(const std::vector<double>& cells);

  std::size_t rows_written() const { return rows_; }

 private:
  void emit(const std::vector<std::string>& cells);
  /// Stream one cell with RFC-4180 quoting; unquoted cells (the common
  /// case) go straight to the stream without an intermediate string.
  void write_escaped(std::string_view cell);

  std::ostream& out_;
  std::size_t width_ = 0;
  std::size_t rows_ = 0;
  bool have_header_ = false;
};

}  // namespace txconc
