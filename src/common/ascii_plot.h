// ASCII line charts, used by the bench binaries to render the paper's
// figures directly into the terminal / bench_output.txt.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"

namespace txconc {

struct PlotOptions {
  std::size_t width = 72;    ///< Plot-area columns.
  std::size_t height = 16;   ///< Plot-area rows.
  bool log_y = false;        ///< Log10 y-axis (tx/block panels).
  double y_min = 0.0;        ///< Lower y bound (ignored when log_y).
  double y_max = -1.0;       ///< Upper y bound; < y_min means auto.
  std::string title;
  std::string x_label = "block height";
  std::string y_label;
};

/// Render one or more series into a multi-line string.
///
/// Each series gets a distinct glyph; a legend is appended. Points are mapped
/// to the grid by nearest cell; later series draw over earlier ones.
std::string render_plot(const std::vector<LabelledSeries>& series,
                        const PlotOptions& options);

}  // namespace txconc
