// The paper's two concurrency metrics (Section III-A.3):
//
//  * single-transaction conflict rate  c = conflicted txs / total txs
//  * group conflict rate               l = LCC size / total txs
//
// Both come in an unweighted (transaction-count) and a weighted (e.g. gas)
// flavour; the weighted flavour is what the "gas-weighted" curves in
// Figures 4b/4c use.
#pragma once

#include <span>
#include <vector>

#include "core/components.h"

namespace txconc::core {

/// Per-block conflict summary, the atom from which every figure is built.
struct ConflictStats {
  std::size_t total_transactions = 0;
  /// Transactions sharing a connected component with >= 1 other transaction.
  std::size_t conflicted_transactions = 0;
  /// Number of transactions in the component holding the most transactions.
  std::size_t lcc_transactions = 0;
  /// Connected components containing at least one transaction.
  std::size_t num_components = 0;

  /// Totals under the supplied per-transaction weights (gas).
  double total_weight = 0.0;
  double conflicted_weight = 0.0;
  double lcc_weight = 0.0;

  /// c — single-transaction conflict rate (0 for an empty block).
  double single_rate() const;
  /// l — group conflict rate (0 for an empty block).
  double group_rate() const;
  /// Gas-weighted c: fraction of block weight carried by conflicted txs.
  double weighted_single_rate() const;
  /// Gas-weighted l: fraction of block weight in the transaction-LCC.
  double weighted_group_rate() const;
};

/// UTXO model: every node of the component set IS a transaction
/// (coinbase must already be excluded by the TDG builder).
///
/// @param weights  optional per-transaction weight, indexed by NodeId;
///                 empty means unit weights.
ConflictStats utxo_conflict_stats(const ComponentSet& components,
                                  std::span<const double> weights = {});

/// One account-model transaction projected onto the address TDG.
struct AccountTxRef {
  NodeId sender = 0;
  NodeId receiver = 0;
  double weight = 1.0;  ///< Gas cost of the transaction.
};

/// Account model: components partition *addresses*; transactions are then
/// mapped back onto components ("one more step where the connected
/// components for the addresses are mapped to the transactions").
/// Internal transactions contribute edges to the TDG but are not listed
/// here — only the block's regular transactions are counted.
ConflictStats account_conflict_stats(const ComponentSet& address_components,
                                     std::span<const AccountTxRef> transactions);

}  // namespace txconc::core
