// Multiprocessor scheduling of connected components onto cores.
//
// Executing a block under group concurrency means assigning each connected
// component (a sequential job) to one of n cores; minimizing the makespan
// is the classic NP-hard multiprocessor scheduling problem the paper cites
// (Kasahara & Narita). We provide the standard heuristics plus an exact
// solver for small instances (used by tests and ablations).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace txconc::core {

/// A computed schedule.
struct Schedule {
  /// Completion time of the busiest core, in job-cost units.
  double makespan = 0.0;
  /// Job indices assigned to each core (size == number of cores).
  std::vector<std::vector<std::size_t>> assignment;
  /// Per-core total load.
  std::vector<double> loads;
};

/// Longest Processing Time first: sort jobs by decreasing cost, place each
/// on the least-loaded core. 4/3-approximation; the default policy of the
/// group executor.
Schedule schedule_lpt(std::span<const double> job_costs, unsigned cores);

/// List scheduling in the given order (greedy, no sorting).
/// 2-approximation; models an online scheduler that cannot sort.
Schedule schedule_list(std::span<const double> job_costs, unsigned cores);

/// Exact minimum makespan via branch-and-bound. Only feasible for small
/// instances (roughly <= 20 jobs); throws UsageError beyond 24 jobs.
double optimal_makespan(std::span<const double> job_costs, unsigned cores);

/// Lower bound on any makespan: max(total/n, max job).
double makespan_lower_bound(std::span<const double> job_costs, unsigned cores);

}  // namespace txconc::core
