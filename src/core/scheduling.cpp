#include "core/scheduling.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace txconc::core {

namespace {

Schedule greedy_in_order(std::span<const double> job_costs,
                         std::span<const std::size_t> order, unsigned cores) {
  Schedule s;
  s.assignment.resize(cores);
  s.loads.assign(cores, 0.0);
  for (const std::size_t job : order) {
    const auto it = std::min_element(s.loads.begin(), s.loads.end());
    const std::size_t core = static_cast<std::size_t>(it - s.loads.begin());
    s.assignment[core].push_back(job);
    s.loads[core] += job_costs[job];
  }
  s.makespan = s.loads.empty()
                   ? 0.0
                   : *std::max_element(s.loads.begin(), s.loads.end());
  return s;
}

void check(std::span<const double> job_costs, unsigned cores) {
  if (cores == 0) throw UsageError("schedule: cores must be positive");
  for (double c : job_costs) {
    if (c < 0.0) throw UsageError("schedule: negative job cost");
  }
}

}  // namespace

Schedule schedule_lpt(std::span<const double> job_costs, unsigned cores) {
  check(job_costs, cores);
  std::vector<std::size_t> order(job_costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return job_costs[a] > job_costs[b];
                   });
  return greedy_in_order(job_costs, order, cores);
}

Schedule schedule_list(std::span<const double> job_costs, unsigned cores) {
  check(job_costs, cores);
  std::vector<std::size_t> order(job_costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return greedy_in_order(job_costs, order, cores);
}

double makespan_lower_bound(std::span<const double> job_costs,
                            unsigned cores) {
  check(job_costs, cores);
  double total = 0.0;
  double largest = 0.0;
  for (double c : job_costs) {
    total += c;
    largest = std::max(largest, c);
  }
  return std::max(total / static_cast<double>(cores), largest);
}

namespace {

// Depth-first branch-and-bound: assign jobs (largest first) to cores,
// pruning by the current best and by symmetry over empty cores.
void solve(const std::vector<double>& jobs, std::size_t index,
           std::vector<double>& loads, double& best) {
  if (index == jobs.size()) {
    const double makespan = *std::max_element(loads.begin(), loads.end());
    best = std::min(best, makespan);
    return;
  }
  bool tried_empty_core = false;
  for (double& load : loads) {
    if (load == 0.0) {
      // All empty cores are interchangeable; try only one of them.
      if (tried_empty_core) continue;
      tried_empty_core = true;
    }
    if (load + jobs[index] >= best) continue;
    load += jobs[index];
    solve(jobs, index + 1, loads, best);
    load -= jobs[index];
  }
}

}  // namespace

double optimal_makespan(std::span<const double> job_costs, unsigned cores) {
  check(job_costs, cores);
  if (job_costs.size() > 24) {
    throw UsageError("optimal_makespan: instance too large (max 24 jobs)");
  }
  if (job_costs.empty()) return 0.0;

  std::vector<double> jobs(job_costs.begin(), job_costs.end());
  std::sort(jobs.begin(), jobs.end(), std::greater<>());

  // Seed the bound with LPT; branch-and-bound can only improve it.
  double best = schedule_lpt(job_costs, cores).makespan;
  // A tiny epsilon headroom so an optimal assignment equal to the seed is
  // not pruned away (pruning uses >=).
  best = std::nextafter(best, std::numeric_limits<double>::infinity());

  std::vector<double> loads(cores, 0.0);
  solve(jobs, 0, loads, best);
  return best;
}

}  // namespace txconc::core
