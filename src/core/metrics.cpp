#include "core/metrics.h"

#include <algorithm>

namespace txconc::core {

double ConflictStats::single_rate() const {
  if (total_transactions == 0) return 0.0;
  return static_cast<double>(conflicted_transactions) /
         static_cast<double>(total_transactions);
}

double ConflictStats::group_rate() const {
  if (total_transactions == 0) return 0.0;
  return static_cast<double>(lcc_transactions) /
         static_cast<double>(total_transactions);
}

double ConflictStats::weighted_single_rate() const {
  if (total_weight <= 0.0) return 0.0;
  return conflicted_weight / total_weight;
}

double ConflictStats::weighted_group_rate() const {
  if (total_weight <= 0.0) return 0.0;
  return lcc_weight / total_weight;
}

ConflictStats utxo_conflict_stats(const ComponentSet& components,
                                  std::span<const double> weights) {
  if (!weights.empty() && weights.size() != components.num_nodes()) {
    throw UsageError("utxo_conflict_stats: weight count mismatch");
  }
  ConflictStats stats;
  stats.total_transactions = components.num_nodes();
  stats.num_components = components.num_components();

  // Accumulate weight per component to find the heaviest one and the
  // weight carried by conflicted transactions.
  std::vector<double> component_weight(components.num_components(), 0.0);
  for (NodeId node = 0; node < components.num_nodes(); ++node) {
    const double w = weights.empty() ? 1.0 : weights[node];
    stats.total_weight += w;
    const ComponentId cc = components.component_of(node);
    component_weight[cc] += w;
    if (components.sizes()[cc] >= 2) {
      ++stats.conflicted_transactions;
      stats.conflicted_weight += w;
    }
  }
  stats.lcc_transactions = components.lcc_size();
  if (!component_weight.empty()) {
    // The weighted LCC is the weight of the component with the most
    // transactions (ties broken by ComponentSet).
    stats.lcc_weight = component_weight[components.lcc_id()];
  }
  // An empty graph has zero LCC transactions.
  if (stats.total_transactions == 0) {
    stats.lcc_transactions = 0;
    stats.num_components = 0;
  }
  return stats;
}

ConflictStats account_conflict_stats(
    const ComponentSet& address_components,
    std::span<const AccountTxRef> transactions) {
  ConflictStats stats;
  stats.total_transactions = transactions.size();

  const std::size_t k = address_components.num_components();
  std::vector<std::size_t> tx_count(k, 0);
  std::vector<double> tx_weight(k, 0.0);

  // A transaction's sender and receiver are joined by its own edge, so both
  // endpoints are always in the same component; classify by the sender.
  for (const AccountTxRef& tx : transactions) {
    const ComponentId cc = address_components.component_of(tx.sender);
    if (address_components.component_of(tx.receiver) != cc) {
      throw UsageError(
          "account_conflict_stats: sender and receiver in different "
          "components; was the transaction's edge added to the TDG?");
    }
    ++tx_count[cc];
    tx_weight[cc] += tx.weight;
    stats.total_weight += tx.weight;
  }

  for (std::size_t cc = 0; cc < k; ++cc) {
    if (tx_count[cc] == 0) continue;
    ++stats.num_components;
    if (tx_count[cc] > stats.lcc_transactions) {
      stats.lcc_transactions = tx_count[cc];
      stats.lcc_weight = tx_weight[cc];
    }
    if (tx_count[cc] >= 2) {
      stats.conflicted_transactions += tx_count[cc];
      stats.conflicted_weight += tx_weight[cc];
    }
  }
  return stats;
}

}  // namespace txconc::core
