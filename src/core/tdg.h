// Transaction Dependency Graph (TDG), Section III-A of the paper.
//
// A block is modelled as a graph (N, E). In the UTXO model nodes are
// transactions and an edge a -> b means a TXO created by a is spent by b.
// In the account model nodes are addresses and an edge a -> b exists for
// every (possibly internal) transaction with sender a and receiver b.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace txconc::core {

/// Dense node identifier inside one TDG.
using NodeId = std::uint32_t;

/// A directed dependency edge.
struct TdgEdge {
  NodeId from = 0;
  NodeId to = 0;

  bool operator==(const TdgEdge&) const = default;
};

/// The dependency graph of a single block.
///
/// Stores the directed edge list (for display and scheduling) and an
/// undirected adjacency list (what connectivity is defined over: "any two
/// edges in TDG that share an endpoint are said to be connected").
class Tdg {
 public:
  Tdg() = default;
  explicit Tdg(std::size_t num_nodes) { ensure_nodes(num_nodes); }

  /// Append one node; returns its id.
  NodeId add_node();

  /// Grow the node set to at least n nodes.
  void ensure_nodes(std::size_t n);

  /// Add a directed edge (both endpoints must exist).
  /// Self-loops are stored but do not affect connectivity.
  void add_edge(NodeId from, NodeId to);

  std::size_t num_nodes() const { return adjacency_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  /// Undirected neighbourhood of a node (the paper's nbMap). May contain
  /// duplicates when parallel edges exist; component algorithms are
  /// insensitive to this.
  const std::vector<NodeId>& neighbors(NodeId node) const;

  const std::vector<TdgEdge>& edges() const { return edges_; }

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<TdgEdge> edges_;
};

/// A TDG whose nodes are identified by an external key (transaction hash in
/// the UTXO model, address in the account model). Keys are interned to dense
/// NodeIds on first use.
template <typename Key>
class KeyedTdg {
 public:
  /// Intern a key, creating a node if unseen.
  NodeId node(const Key& key) {
    const auto [it, inserted] = ids_.try_emplace(key, 0);
    if (inserted) {
      it->second = graph_.add_node();
      keys_.push_back(key);
    }
    return it->second;
  }

  /// Look up an existing key; returns num_nodes() if absent.
  NodeId find(const Key& key) const {
    const auto it = ids_.find(key);
    return it == ids_.end() ? static_cast<NodeId>(graph_.num_nodes())
                            : it->second;
  }

  bool contains(const Key& key) const { return ids_.contains(key); }

  void add_edge(const Key& from, const Key& to) {
    const NodeId a = node(from);
    const NodeId b = node(to);
    graph_.add_edge(a, b);
  }

  const Key& key_of(NodeId id) const {
    if (id >= keys_.size()) throw UsageError("KeyedTdg::key_of: bad id");
    return keys_[id];
  }

  const Tdg& graph() const { return graph_; }
  std::size_t num_nodes() const { return graph_.num_nodes(); }

 private:
  Tdg graph_;
  std::unordered_map<Key, NodeId> ids_;
  std::vector<Key> keys_;
};

}  // namespace txconc::core
