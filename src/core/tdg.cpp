#include "core/tdg.h"

namespace txconc::core {

NodeId Tdg::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

void Tdg::ensure_nodes(std::size_t n) {
  if (adjacency_.size() < n) adjacency_.resize(n);
}

void Tdg::add_edge(NodeId from, NodeId to) {
  if (from >= adjacency_.size() || to >= adjacency_.size()) {
    throw UsageError("Tdg::add_edge: node id out of range");
  }
  edges_.push_back({from, to});
  if (from != to) {
    adjacency_[from].push_back(to);
    adjacency_[to].push_back(from);
  }
}

const std::vector<NodeId>& Tdg::neighbors(NodeId node) const {
  if (node >= adjacency_.size()) {
    throw UsageError("Tdg::neighbors: node id out of range");
  }
  return adjacency_[node];
}

}  // namespace txconc::core
