#include "core/speedup_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace txconc::core {

namespace {

void check_args(std::size_t x, double c, unsigned n) {
  if (n == 0) throw UsageError("speed-up model: n must be positive");
  if (c < 0.0 || c > 1.0) throw UsageError("speed-up model: c not in [0,1]");
  (void)x;
}

}  // namespace

double SpeculativeModel::execution_time(std::size_t x, double c, unsigned n) {
  check_args(x, c, n);
  return static_cast<double>(x / n) + 1.0 + c * static_cast<double>(x);
}

double SpeculativeModel::speedup(std::size_t x, double c, unsigned n) {
  if (x == 0) return 1.0;
  return static_cast<double>(x) / execution_time(x, c, n);
}

double SpeculativeModel::execution_time_exact(std::size_t x, double c,
                                              unsigned n) {
  check_args(x, c, n);
  const std::size_t phase1 = (x + n - 1) / n;  // ceil(x/n)
  return static_cast<double>(phase1) + c * static_cast<double>(x);
}

double SpeculativeModel::speedup_exact(std::size_t x, double c, unsigned n) {
  if (x == 0) return 1.0;
  return static_cast<double>(x) / execution_time_exact(x, c, n);
}

double SpeculativeModel::oracle_execution_time(std::size_t x, double c,
                                               unsigned n, double k_preprocess) {
  check_args(x, c, n);
  if (k_preprocess < 0.0) throw UsageError("speed-up model: K must be >= 0");
  // c*x is an integral transaction count in every workload the model is
  // applied to; truncating (1-c)*x drops one unconflicted transaction
  // whenever the product lands just below the integer (0.7 * 10 =
  // 6.999...), so round the conflicted count and subtract instead.
  const auto conflicted = static_cast<std::size_t>(
      std::min(std::llround(c * static_cast<double>(x)),
               static_cast<long long>(x)));
  const std::size_t unconflicted = x - conflicted;
  return k_preprocess + static_cast<double>(unconflicted / n) + 1.0 +
         c * static_cast<double>(x);
}

double SpeculativeModel::oracle_speedup(std::size_t x, double c, unsigned n,
                                        double k_preprocess) {
  if (x == 0) return 1.0;
  return static_cast<double>(x) /
         oracle_execution_time(x, c, n, k_preprocess);
}

double GroupModel::speedup_bound(unsigned n, double group_conflict_rate) {
  if (n == 0) throw UsageError("speed-up model: n must be positive");
  if (group_conflict_rate < 0.0 || group_conflict_rate > 1.0) {
    throw UsageError("speed-up model: l not in [0,1]");
  }
  if (group_conflict_rate <= 0.0) return static_cast<double>(n);
  return std::min(static_cast<double>(n), 1.0 / group_conflict_rate);
}

double GroupModel::speedup_with_overhead(std::size_t x,
                                         double group_conflict_rate,
                                         unsigned n, double k_preprocess) {
  if (n == 0) throw UsageError("speed-up model: n must be positive");
  if (k_preprocess < 0.0) throw UsageError("speed-up model: K must be >= 0");
  if (x == 0) return 1.0;
  const double xd = static_cast<double>(x);
  const double balanced = xd / (xd / static_cast<double>(n) + k_preprocess);
  const double lcc_bound =
      xd / (xd * std::max(group_conflict_rate, 1.0 / xd) + k_preprocess);
  return std::min(balanced, lcc_bound);
}

}  // namespace txconc::core
