// The analytical execution speed-up model of Section V.
//
// Every transaction is assumed to take one time unit; x is the number of
// transactions, n the number of cores, c the single-transaction conflict
// rate, l the group conflict rate, and K a preprocessing cost in time units.
#pragma once

#include <cstddef>

namespace txconc::core {

/// Section V-A — the fully speculative two-phase technique of Saraph &
/// Herlihy: phase 1 runs everything concurrently, phase 2 re-runs the
/// conflicted transactions sequentially.
struct SpeculativeModel {
  /// T' = floor(x/n) + 1 + c*x   — the paper's equation for the execution
  /// time under speculation (conflicted transactions are executed twice).
  static double execution_time(std::size_t x, double c, unsigned n);

  /// R = x / T'  — equation (1).
  static double speedup(std::size_t x, double c, unsigned n);

  /// Exact phase-1 duration ceil(x/n) instead of the floor(x/n)+1
  /// approximation; this is what the paper's worked examples (Section V-A,
  /// the Figure 1 blocks) use. Identical unless n divides x.
  static double execution_time_exact(std::size_t x, double c, unsigned n);
  static double speedup_exact(std::size_t x, double c, unsigned n);

  /// Perfect prior knowledge of the conflict set, obtained by preprocessing
  /// that costs K time units:  T' = K + floor((1-c)x/n) + 1 + c*x.
  static double oracle_execution_time(std::size_t x, double c, unsigned n,
                                      double k_preprocess);
  static double oracle_speedup(std::size_t x, double c, unsigned n,
                               double k_preprocess);
};

/// Section V-B — group concurrency: connected components are scheduled onto
/// cores; within a component execution is sequential.
struct GroupModel {
  /// Upper bound R = min(n, 1/l) — equation (2). For l == 0 (empty block)
  /// the bound degenerates to n.
  static double speedup_bound(unsigned n, double group_conflict_rate);

  /// With a preprocessing cost K (building the TDG and the schedule):
  /// R = min( x/(x/n + K), x/(x*l + K) ).
  static double speedup_with_overhead(std::size_t x, double group_conflict_rate,
                                      unsigned n, double k_preprocess);
};

}  // namespace txconc::core
