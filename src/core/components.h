// Connected components over a TDG.
//
// Two algorithms are provided:
//  * connected_components_bfs — a faithful C++ port of the paper's
//    JavaScript UDF (Figure 3): frontier-at-a-time breadth-first search
//    with a visited map.
//  * connected_components_dsu — union-find with union by size and path
//    compression, the fast production alternative.
// Both produce identical partitions (checked by property tests).
#pragma once

#include <cstdint>
#include <vector>

#include "core/tdg.h"

namespace txconc::core {

/// Identifier of a connected component within one block.
using ComponentId = std::uint32_t;

/// The partition of a TDG's nodes into connected components.
class ComponentSet {
 public:
  /// @param component_of  per-node component id; ids must be dense 0..k-1.
  explicit ComponentSet(std::vector<ComponentId> component_of);

  ComponentId component_of(NodeId node) const;
  std::size_t num_nodes() const { return component_of_.size(); }
  std::size_t num_components() const { return sizes_.size(); }

  /// Node count per component.
  const std::vector<std::size_t>& sizes() const { return sizes_; }

  /// Size of the largest connected component (0 for an empty graph).
  std::size_t lcc_size() const { return lcc_size_; }
  /// Id of a largest component (unspecified among ties; 0 if empty).
  ComponentId lcc_id() const { return lcc_id_; }

  /// Number of components of size 1 ("unconflicted" nodes).
  std::size_t num_singletons() const { return num_singletons_; }

  /// Materialize the node lists per component (paper's `ccs` array).
  std::vector<std::vector<NodeId>> grouped() const;

 private:
  std::vector<ComponentId> component_of_;
  std::vector<std::size_t> sizes_;
  std::size_t lcc_size_ = 0;
  ComponentId lcc_id_ = 0;
  std::size_t num_singletons_ = 0;
};

/// Paper-faithful BFS (Figure 3).
ComponentSet connected_components_bfs(const Tdg& graph);

/// Union-find alternative.
ComponentSet connected_components_dsu(const Tdg& graph);

/// Disjoint-set union with union by size and path compression, exposed for
/// reuse by the executors (incremental conflict detection).
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n);

  std::size_t find(std::size_t a);
  /// Returns true if a merge happened (the sets were distinct).
  bool merge(std::size_t a, std::size_t b);
  std::size_t set_size(std::size_t a);
  std::size_t num_sets() const { return num_sets_; }
  std::size_t size() const { return parent_.size(); }

  /// Append a fresh singleton; returns its index.
  std::size_t add();

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t num_sets_;
};

}  // namespace txconc::core
