#include "core/components.h"

#include <algorithm>
#include <numeric>

namespace txconc::core {

ComponentSet::ComponentSet(std::vector<ComponentId> component_of)
    : component_of_(std::move(component_of)) {
  ComponentId max_id = 0;
  for (ComponentId c : component_of_) {
    max_id = std::max(max_id, c);
  }
  sizes_.assign(component_of_.empty() ? 0 : max_id + 1, 0);
  for (ComponentId c : component_of_) {
    ++sizes_[c];
  }
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    if (sizes_[i] == 0) {
      throw UsageError("ComponentSet: component ids must be dense");
    }
    if (sizes_[i] > lcc_size_) {
      lcc_size_ = sizes_[i];
      lcc_id_ = static_cast<ComponentId>(i);
    }
    if (sizes_[i] == 1) ++num_singletons_;
  }
}

ComponentId ComponentSet::component_of(NodeId node) const {
  if (node >= component_of_.size()) {
    throw UsageError("ComponentSet::component_of: node out of range");
  }
  return component_of_[node];
}

std::vector<std::vector<NodeId>> ComponentSet::grouped() const {
  std::vector<std::vector<NodeId>> out(num_components());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i].reserve(sizes_[i]);
  }
  for (NodeId n = 0; n < component_of_.size(); ++n) {
    out[component_of_[n]].push_back(n);
  }
  return out;
}

ComponentSet connected_components_bfs(const Tdg& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<ComponentId> component_of(n, 0);
  // The paper's visitedMap.
  std::vector<char> visited(n, 0);
  ComponentId next_component = 0;

  // Mirrors Figure 3: for every unvisited node, expand frontier-at-a-time.
  std::vector<NodeId> frontier;
  std::vector<NodeId> next_frontier;
  for (NodeId start = 0; start < n; ++start) {
    if (visited[start]) continue;
    const ComponentId cc = next_component++;
    component_of[start] = cc;
    visited[start] = 1;

    frontier.clear();
    for (NodeId nb : graph.neighbors(start)) {
      if (!visited[nb]) frontier.push_back(nb);
    }
    // De-duplicate the frontier the way the JS Set does.
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());

    while (!frontier.empty()) {
      next_frontier.clear();
      for (NodeId nb : frontier) {
        component_of[nb] = cc;
        visited[nb] = 1;
      }
      for (NodeId nb : frontier) {
        for (NodeId nnb : graph.neighbors(nb)) {
          if (!visited[nnb]) next_frontier.push_back(nnb);
        }
      }
      std::sort(next_frontier.begin(), next_frontier.end());
      next_frontier.erase(
          std::unique(next_frontier.begin(), next_frontier.end()),
          next_frontier.end());
      frontier.swap(next_frontier);
    }
  }
  return ComponentSet(std::move(component_of));
}

ComponentSet connected_components_dsu(const Tdg& graph) {
  DisjointSets dsu(graph.num_nodes());
  for (const TdgEdge& e : graph.edges()) {
    dsu.merge(e.from, e.to);
  }
  // Compress roots to dense component ids in first-seen order so the
  // numbering matches BFS (both visit nodes in index order).
  std::vector<ComponentId> component_of(graph.num_nodes(), 0);
  std::vector<ComponentId> root_to_id(graph.num_nodes(),
                                      static_cast<ComponentId>(-1));
  ComponentId next_component = 0;
  for (NodeId node = 0; node < graph.num_nodes(); ++node) {
    const std::size_t root = dsu.find(node);
    if (root_to_id[root] == static_cast<ComponentId>(-1)) {
      root_to_id[root] = next_component++;
    }
    component_of[node] = root_to_id[root];
  }
  return ComponentSet(std::move(component_of));
}

DisjointSets::DisjointSets(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t DisjointSets::find(std::size_t a) {
  if (a >= parent_.size()) throw UsageError("DisjointSets::find out of range");
  std::size_t root = a;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[a] != root) {
    const std::size_t next = parent_[a];
    parent_[a] = root;
    a = next;
  }
  return root;
}

bool DisjointSets::merge(std::size_t a, std::size_t b) {
  std::size_t ra = find(a);
  std::size_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

std::size_t DisjointSets::set_size(std::size_t a) { return size_[find(a)]; }

std::size_t DisjointSets::add() {
  parent_.push_back(parent_.size());
  size_.push_back(1);
  ++num_sets_;
  return parent_.size() - 1;
}

}  // namespace txconc::core
