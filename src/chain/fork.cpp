#include "chain/fork.h"

#include <algorithm>

#include "common/error.h"

namespace txconc::chain {

ForkTree::ForkTree(const BlockHeader& genesis) {
  if (genesis.height != 0) {
    throw UsageError("ForkTree: genesis must have height 0");
  }
  Node node;
  node.header = genesis;
  node.total_difficulty = genesis.difficulty;
  best_tip_ = genesis.hash();
  nodes_.emplace(best_tip_, std::move(node));
}

const ForkTree::Node& ForkTree::node(const Hash256& hash) const {
  const auto it = nodes_.find(hash);
  if (it == nodes_.end()) throw UsageError("ForkTree: unknown block");
  return it->second;
}

std::uint64_t ForkTree::best_height() const {
  return node(best_tip_).header.height;
}

std::uint64_t ForkTree::cumulative_difficulty(const Hash256& hash) const {
  return node(hash).total_difficulty;
}

std::optional<Reorg> ForkTree::insert(const BlockHeader& header) {
  const Hash256 hash = header.hash();
  if (nodes_.contains(hash)) {
    throw ValidationError("ForkTree: duplicate block");
  }
  const auto parent_it = nodes_.find(header.prev_hash);
  if (parent_it == nodes_.end()) {
    throw ValidationError("ForkTree: unknown parent");
  }
  if (header.height != parent_it->second.header.height + 1) {
    throw ValidationError("ForkTree: height does not follow parent");
  }

  Node node;
  node.header = header;
  node.parent = header.prev_hash;
  node.total_difficulty =
      parent_it->second.total_difficulty + header.difficulty;
  nodes_.emplace(hash, node);

  // Heaviest chain wins; first-seen wins ties (Bitcoin-style).
  if (node.total_difficulty <= nodes_.at(best_tip_).total_difficulty) {
    return std::nullopt;
  }
  const Hash256 old_tip = best_tip_;
  best_tip_ = hash;
  if (header.prev_hash == old_tip) {
    return Reorg{};  // plain extension, nothing to undo
  }
  return compute_reorg(old_tip, hash);
}

Reorg ForkTree::compute_reorg(const Hash256& old_tip,
                              const Hash256& new_tip) const {
  Reorg reorg;
  Hash256 a = old_tip;
  Hash256 b = new_tip;
  // Walk the deeper side up until the heights agree.
  while (node(a).header.height > node(b).header.height) {
    reorg.disconnect.push_back(a);
    a = node(a).parent;
  }
  while (node(b).header.height > node(a).header.height) {
    reorg.connect.push_back(b);
    b = node(b).parent;
  }
  // Then walk both sides in lock step until they meet.
  while (a != b) {
    reorg.disconnect.push_back(a);
    reorg.connect.push_back(b);
    a = node(a).parent;
    b = node(b).parent;
  }
  std::reverse(reorg.connect.begin(), reorg.connect.end());
  return reorg;
}

std::vector<BlockHeader> ForkTree::best_chain() const {
  std::vector<BlockHeader> chain;
  Hash256 at = best_tip_;
  for (;;) {
    const Node& n = node(at);
    chain.push_back(n.header);
    if (n.header.height == 0) break;
    at = n.parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace txconc::chain
