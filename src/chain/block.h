// Blocks, the ledger, and the mempool.
//
// Block<Tx> is generic over the data model's transaction type
// (utxo::Transaction or account::AccountTx); tx_hash() adapts each type
// for merkle-tree construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "account/types.h"
#include "chain/merkle.h"
#include "common/bytes.h"
#include "common/error.h"
#include "common/hash.h"
#include "utxo/transaction.h"

namespace txconc::chain {

/// Hash adapter: UTXO transactions already carry a txid.
Hash256 tx_hash(const utxo::Transaction& tx);

/// Hash adapter: account transactions are hashed over a canonical
/// serialization of all signed fields.
Hash256 tx_hash(const account::AccountTx& tx);

/// A block header ("a sequence of blocks linked together via cryptographic
/// hash pointers", paper Section II-A).
struct BlockHeader {
  Hash256 prev_hash;
  Hash256 merkle_root;
  /// Commitment to the post-state (account model; zero when unused).
  Hash256 state_root;
  std::uint64_t height = 0;
  std::uint64_t timestamp = 0;   ///< Seconds since chain genesis.
  std::uint64_t difficulty = 1;  ///< PoW target scale.
  std::uint64_t nonce = 0;       ///< PoW solution.
  std::uint64_t gas_used = 0;    ///< Account model only; 0 otherwise.

  Bytes serialize() const;
  Hash256 hash() const;
};

/// A block: header plus the ordered transaction list.
template <typename Tx>
struct Block {
  BlockHeader header;
  std::vector<Tx> transactions;

  std::size_t size() const { return transactions.size(); }
};

/// Compute the merkle root over a transaction list.
template <typename Tx>
Hash256 transactions_root(std::span<const Tx> transactions) {
  std::vector<Hash256> leaves;
  leaves.reserve(transactions.size());
  for (const Tx& tx : transactions) {
    leaves.push_back(tx_hash(tx));
  }
  return merkle_root(leaves);
}

/// Assemble a block on top of `prev` (pass nullptr for the genesis block).
template <typename Tx>
Block<Tx> make_block(const BlockHeader* prev, std::vector<Tx> transactions,
                     std::uint64_t timestamp, std::uint64_t difficulty) {
  Block<Tx> block;
  block.transactions = std::move(transactions);
  block.header.prev_hash = prev ? prev->hash() : Hash256{};
  block.header.height = prev ? prev->height + 1 : 0;
  block.header.timestamp = timestamp;
  block.header.difficulty = difficulty;
  block.header.merkle_root =
      transactions_root(std::span<const Tx>(block.transactions));
  return block;
}

/// An append-only chain of blocks with linkage validation.
template <typename Tx>
class Ledger {
 public:
  /// Validate linkage and merkle commitment, then append.
  void append(Block<Tx> block) {
    if (blocks_.empty()) {
      if (block.header.height != 0) {
        throw ValidationError("first block must have height 0");
      }
    } else {
      const BlockHeader& tip_header = blocks_.back().header;
      if (block.header.height != tip_header.height + 1) {
        throw ValidationError("non-consecutive block height");
      }
      if (block.header.prev_hash != tip_header.hash()) {
        throw ValidationError("prev_hash does not match tip");
      }
      if (block.header.timestamp < tip_header.timestamp) {
        throw ValidationError("timestamp going backwards");
      }
    }
    const Hash256 expected =
        transactions_root(std::span<const Tx>(block.transactions));
    if (block.header.merkle_root != expected) {
      throw ValidationError("merkle root mismatch");
    }
    blocks_.push_back(std::move(block));
  }

  std::size_t height() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }

  const Block<Tx>& at(std::size_t height) const {
    if (height >= blocks_.size()) {
      throw UsageError("Ledger::at: height out of range");
    }
    return blocks_[height];
  }

  const Block<Tx>& tip() const {
    if (blocks_.empty()) throw UsageError("Ledger::tip: empty chain");
    return blocks_.back();
  }

  /// Total number of transactions across all blocks.
  std::size_t total_transactions() const {
    std::size_t n = 0;
    for (const auto& b : blocks_) n += b.transactions.size();
    return n;
  }

 private:
  std::vector<Block<Tx>> blocks_;
};

/// Fee-priority mempool. Pending transactions are drained highest-fee-first
/// when a block is assembled, FIFO among equal fees.
template <typename Tx>
class Mempool {
 public:
  /// @param fee  the fee (or gas price) used for ordering.
  void add(Tx tx, std::uint64_t fee) {
    entries_.push_back({std::move(tx), fee, next_seq_++});
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Remove and return up to `max_count` best-paying transactions.
  std::vector<Tx> take(std::size_t max_count) {
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Entry& a, const Entry& b) {
                       if (a.fee != b.fee) return a.fee > b.fee;
                       return a.seq < b.seq;
                     });
    const std::size_t n = std::min(max_count, entries_.size());
    std::vector<Tx> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(entries_[i].tx));
    }
    entries_.erase(entries_.begin(), entries_.begin() + static_cast<std::ptrdiff_t>(n));
    return out;
  }

 private:
  struct Entry {
    Tx tx;
    std::uint64_t fee;
    std::uint64_t seq;
  };
  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace txconc::chain
