#include "chain/block.h"

#include "common/sha256.h"

namespace txconc::chain {

Hash256 tx_hash(const utxo::Transaction& tx) { return tx.txid(); }

Hash256 tx_hash(const account::AccountTx& tx) {
  ByteWriter w;
  w.raw(tx.from.bytes);
  w.u8(tx.to.has_value() ? 1 : 0);
  if (tx.to) w.raw(tx.to->bytes);
  w.u64(tx.value);
  w.u64(tx.gas_limit);
  w.u64(tx.gas_price);
  w.u64(tx.nonce);
  w.u32(static_cast<std::uint32_t>(tx.args.size()));
  for (std::uint64_t arg : tx.args) w.u64(arg);
  w.u32(static_cast<std::uint32_t>(tx.address_args.size()));
  for (const Address& a : tx.address_args) w.raw(a.bytes);
  w.bytes(tx.init_code.code);
  w.u32(static_cast<std::uint32_t>(tx.init_code.address_table.size()));
  for (const Address& a : tx.init_code.address_table) w.raw(a.bytes);
  return Hash256::digest_of(w.data());
}

Bytes BlockHeader::serialize() const {
  ByteWriter w(136);
  w.raw(prev_hash.bytes);
  w.raw(merkle_root.bytes);
  w.raw(state_root.bytes);
  w.u64(height);
  w.u64(timestamp);
  w.u64(difficulty);
  w.u64(nonce);
  w.u64(gas_used);
  return w.take();
}

Hash256 BlockHeader::hash() const {
  Hash256 h;
  h.bytes = Sha256::hash_twice(serialize());
  return h;
}

}  // namespace txconc::chain
