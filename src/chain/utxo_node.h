// UTXO full node: mempool -> block production -> UTXO-set application ->
// ledger, plus validation of received blocks. The Bitcoin-family sibling
// of AccountNode.
#pragma once

#include "chain/block.h"
#include "chain/pow.h"
#include "common/error.h"
#include "utxo/utxo_set.h"

namespace txconc::chain {

struct UtxoNodeConfig {
  std::uint64_t coinbase_subsidy = 50'0000'0000ULL;
  std::size_t max_block_txs = 2000;
  std::uint64_t difficulty = 16;
  bool mine = false;
  std::uint64_t mine_budget = 1'000'000;
  /// Run unlock/lock scripts during validation (Bitcoin behaviour).
  bool verify_scripts = true;
};

/// A single UTXO-model full node.
class UtxoNode {
 public:
  explicit UtxoNode(UtxoNodeConfig config = {}) : config_(config) {}

  /// Validate against the current UTXO set (inputs exist, values balance,
  /// scripts verify) and admit to the mempool, prioritized by fee.
  /// Transactions spending unconfirmed outputs are rejected.
  void submit_transaction(const utxo::Transaction& tx);

  /// Assemble the next block: a coinbase paying `coinbase_lock` plus the
  /// best-paying admissible mempool transactions. Transactions invalidated
  /// since admission (double-spent inputs) are dropped.
  Block<utxo::Transaction> produce_block(std::uint64_t timestamp,
                                         const utxo::Script& coinbase_lock);

  /// Validate and apply a block from a peer: linkage, merkle root, PoW
  /// (when mined), exactly one leading coinbase with the configured
  /// subsidy (plus fees), then all-or-nothing UTXO application.
  void receive_block(const Block<utxo::Transaction>& block);

  /// Undo the tip block (reorg support); returns the undone block.
  Block<utxo::Transaction> undo_tip();

  const utxo::UtxoSet& utxo_set() const { return utxo_set_; }
  const Ledger<utxo::Transaction>& ledger() const { return ledger_; }
  std::size_t mempool_size() const { return mempool_.size(); }

 private:
  /// Fee of a transaction given the current UTXO set.
  std::uint64_t fee_of(const utxo::Transaction& tx) const;

  UtxoNodeConfig config_;
  utxo::UtxoSet utxo_set_;
  Ledger<utxo::Transaction> ledger_;
  Mempool<utxo::Transaction> mempool_;
  /// Undo records per block, aligned with the ledger.
  std::vector<std::vector<utxo::TxUndo>> undo_stack_;
};

}  // namespace txconc::chain
