#include "chain/merkle.h"

#include "common/bytes.h"
#include "common/error.h"
#include "common/sha256.h"

namespace txconc::chain {

namespace {

Hash256 hash_pair(const Hash256& left, const Hash256& right) {
  ByteWriter w(64);
  w.raw(left.bytes);
  w.raw(right.bytes);
  Hash256 out;
  out.bytes = Sha256::hash_twice(w.data());
  return out;
}

std::vector<Hash256> next_level(const std::vector<Hash256>& level) {
  std::vector<Hash256> out;
  out.reserve((level.size() + 1) / 2);
  for (std::size_t i = 0; i < level.size(); i += 2) {
    const Hash256& left = level[i];
    const Hash256& right = (i + 1 < level.size()) ? level[i + 1] : level[i];
    out.push_back(hash_pair(left, right));
  }
  return out;
}

}  // namespace

Hash256 merkle_root(std::span<const Hash256> leaves) {
  if (leaves.empty()) return Hash256{};
  std::vector<Hash256> level(leaves.begin(), leaves.end());
  while (level.size() > 1) {
    level = next_level(level);
  }
  return level[0];
}

MerkleTree::MerkleTree(std::span<const Hash256> leaves)
    : num_leaves_(leaves.size()) {
  levels_.emplace_back(leaves.begin(), leaves.end());
  if (levels_[0].empty()) {
    levels_[0].push_back(Hash256{});
    num_leaves_ = 0;
  }
  while (levels_.back().size() > 1) {
    levels_.push_back(next_level(levels_.back()));
  }
}

const Hash256& MerkleTree::root() const { return levels_.back()[0]; }

MerkleProof MerkleTree::prove(std::size_t index) const {
  if (index >= num_leaves_) {
    throw UsageError("MerkleTree::prove: index out of range");
  }
  MerkleProof proof;
  proof.index = index;
  std::size_t pos = index;
  for (std::size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    const std::size_t sibling = pos ^ 1;
    proof.siblings.push_back(sibling < level.size() ? level[sibling]
                                                    : level[pos]);
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const Hash256& leaf, const MerkleProof& proof,
                        const Hash256& root) {
  Hash256 acc = leaf;
  std::size_t pos = proof.index;
  for (const Hash256& sibling : proof.siblings) {
    acc = (pos % 2 == 0) ? hash_pair(acc, sibling) : hash_pair(sibling, acc);
    pos /= 2;
  }
  return acc == root;
}

}  // namespace txconc::chain
