// Merkle trees over transaction ids (Bitcoin-style, with duplication of the
// odd last element at each level).
#pragma once

#include <span>
#include <vector>

#include "common/hash.h"

namespace txconc::chain {

/// Root of the merkle tree over the given leaves. An empty leaf set hashes
/// to the all-zero root.
Hash256 merkle_root(std::span<const Hash256> leaves);

/// A membership proof: sibling hashes bottom-up plus the leaf position.
struct MerkleProof {
  std::vector<Hash256> siblings;
  std::size_t index = 0;
};

/// Full tree retaining all levels, able to produce proofs.
class MerkleTree {
 public:
  explicit MerkleTree(std::span<const Hash256> leaves);

  const Hash256& root() const;
  std::size_t num_leaves() const { return num_leaves_; }

  /// Proof for the leaf at `index`; throws UsageError when out of range.
  MerkleProof prove(std::size_t index) const;

  /// Check a proof against a root.
  static bool verify(const Hash256& leaf, const MerkleProof& proof,
                     const Hash256& root);

 private:
  std::vector<std::vector<Hash256>> levels_;  // levels_[0] = leaves
  std::size_t num_leaves_;
};

}  // namespace txconc::chain
