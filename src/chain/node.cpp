#include "chain/node.h"

#include <chrono>

#include "obs/scope.h"
#include "obs/names.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace txconc::chain {

namespace {

/// The node's tracer: the scope threaded through RuntimeConfig when set,
/// the process tracer otherwise (matching the pre-context TXCONC_SPAN
/// behavior of the chain layer).
obs::Tracer* node_tracer(const AccountNodeConfig& config) {
  obs::Tracer* scoped = obs::tracer(config.runtime.obs);
  return scoped != nullptr ? scoped : &obs::Tracer::global();
}

/// The node's metrics sink: scope registry when set, otherwise the global
/// registry while the global tracer is enabled (the shard layer's
/// convention), else null.
obs::Registry* node_registry(const AccountNodeConfig& config) {
  obs::Registry* scoped = obs::metrics(config.runtime.obs);
  if (scoped != nullptr) return scoped;
  return obs::Tracer::global().enabled() ? &obs::Registry::global() : nullptr;
}

double elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

AccountNode::AccountNode(AccountNodeConfig config, BlockExecutionFn executor)
    : config_(std::move(config)),
      executor_(std::move(executor)),
      trace_process_(obs::intern_label(config_.trace_label.c_str())) {}

void AccountNode::genesis_fund(const Address& addr, std::uint64_t amount) {
  const MutexLock lock(mu_);
  if (!ledger_.empty()) {
    throw UsageError("genesis_fund after the chain has started");
  }
  state_.set_balance(addr, amount);
  state_.flush_journal();
}

void AccountNode::genesis_deploy(const Address& addr,
                                 account::ContractCode code) {
  const MutexLock lock(mu_);
  if (!ledger_.empty()) {
    throw UsageError("genesis_deploy after the chain has started");
  }
  account::genesis_deploy(state_, addr, std::move(code));
  state_.flush_journal();
}

void AccountNode::submit_transaction(account::AccountTx tx) {
  const MutexLock lock(mu_);
  // Admission checks against the current state. Nonces may be in the
  // future (a sender queueing several transactions) but not in the past.
  if (config_.runtime.enforce_nonce && tx.nonce < state_.nonce(tx.from)) {
    throw ValidationError("nonce already used");
  }
  const std::uint64_t max_fee =
      config_.runtime.charge_fees ? tx.gas_limit * tx.gas_price : 0;
  if (state_.balance(tx.from) < tx.value + max_fee) {
    throw ValidationError("sender cannot cover value plus max fee");
  }
  const std::uint64_t intrinsic =
      config_.runtime.gas.tx_base +
      (tx.is_creation()
           ? account::creation_gas(config_.runtime.gas, tx.init_code.code.size())
           : 0);
  if (tx.gas_limit < intrinsic) {
    throw ValidationError("gas limit below intrinsic cost");
  }
  if (tx.gas_limit > config_.block_gas_limit) {
    throw ValidationError("gas limit exceeds the block gas limit");
  }
  const std::uint64_t priority = tx.gas_price;
  mempool_.add(std::move(tx), priority);
}

std::vector<account::Receipt> AccountNode::execute(
    account::StateDb& state, std::span<const account::AccountTx> txs,
    const obs::TraceContext& trace) {
  account::RuntimeConfig runtime = config_.runtime;
  runtime.trace = trace;
  if (executor_) return executor_(state, txs, runtime);
  std::vector<account::Receipt> receipts;
  receipts.reserve(txs.size());
  for (const auto& tx : txs) {
    receipts.push_back(account::apply_transaction(state, tx, runtime));
  }
  return receipts;
}

Block<account::AccountTx> AccountNode::produce_block(
    std::uint64_t timestamp, obs::TraceContext* trace_out) {
  const MutexLock lock(mu_);
  const auto start = std::chrono::steady_clock::now();
  obs::Tracer* const tracer = node_tracer(config_);
  const obs::ThreadProcessScope proc(trace_process_);
  // Root of the block's causal story: everything downstream — gossip,
  // pbft rounds, cross-shard 2PC, remote re-execution — links back here.
  const obs::CausalSpan block_span(tracer, obs::names::kSpanProduceBlock,
                                   obs::names::kCatChain);
  // Pull candidates by fee priority, then order runnable ones. A candidate
  // whose nonce is not yet current goes back to the pool.
  std::vector<account::AccountTx> candidates =
      mempool_.take(config_.max_block_txs * 2);

  std::vector<account::AccountTx> included;
  std::uint64_t gas_budget = config_.block_gas_limit;
  const account::Snapshot pre_block = state_.snapshot();
  std::vector<account::Receipt> receipts;

  {
    const obs::CausalSpan span(tracer, obs::names::kSpanPack, obs::names::kCatChain,
                               block_span.context(),
                               static_cast<std::int64_t>(candidates.size()));
    // Multi-pass packing: a transaction with a future nonce becomes
    // runnable once its same-sender predecessor lands, so retry deferrals
    // while any pass makes progress.
    bool progress = true;
    while (progress && !candidates.empty()) {
      progress = false;
      std::vector<account::AccountTx> deferred;
      for (auto& tx : candidates) {
        if (included.size() >= config_.max_block_txs ||
            tx.gas_limit > gas_budget) {
          // Does not fit this block; back to the pool for the next one.
          const std::uint64_t priority = tx.gas_price;
          mempool_.add(std::move(tx), priority);
          continue;
        }
        try {
          receipts.push_back(
              account::apply_transaction(state_, tx, config_.runtime));
          gas_budget -= receipts.back().gas_used;
          included.push_back(std::move(tx));
          progress = true;
        } catch (const ValidationError&) {
          if (config_.runtime.enforce_nonce &&
              tx.nonce > state_.nonce(tx.from)) {
            deferred.push_back(std::move(tx));  // predecessor may still land
          }
          // Otherwise: drop (stale nonce or drained balance).
        }
      }
      candidates = std::move(deferred);
    }
    // Unresolved future nonces return to the pool.
    for (auto& tx : candidates) {
      const std::uint64_t priority = tx.gas_price;
      mempool_.add(std::move(tx), priority);
    }
  }

  const BlockHeader* prev = ledger_.empty() ? nullptr : &ledger_.tip().header;
  Block<account::AccountTx> block = make_block<account::AccountTx>(
      prev, std::move(included), timestamp, config_.difficulty);
  for (const auto& r : receipts) {
    block.header.gas_used += r.gas_used;
  }
  if (config_.commit_state_root) {
    const obs::CausalSpan span(tracer, obs::names::kSpanStateRoot, obs::names::kCatChain,
                               block_span.context());
    block.header.state_root = account::build_state_trie(state_).root();
  }
  if (config_.mine) {
    const obs::CausalSpan span(tracer, obs::names::kSpanPow, obs::names::kCatChain,
                               block_span.context());
    const auto nonce = mine_header(block.header, config_.mine_budget);
    if (!nonce) {
      state_.revert(pre_block);
      throw Error("mining budget exhausted");
    }
    block.header.nonce = *nonce;
  }
  state_.flush_journal();
  ledger_.append(block);
  if (obs::Registry* const registry = node_registry(config_)) {
    registry->counter(obs::names::kMetricNodeBlocksProduced).add(1);
    registry->counter(obs::names::kMetricNodeTxsIncluded).add(block.transactions.size());
    registry->histogram(obs::names::kMetricNodeProduceUs).observe(elapsed_us(start));
  }
  if (config_.snapshots != nullptr) config_.snapshots->tick();
  // Fork the context inside the producing span so the flow arrow starts
  // here and the relay sites (gossip, pbft, cross-shard) just forward it.
  if (trace_out != nullptr) *trace_out = block_span.fork();
  return block;
}

void AccountNode::receive_block(const Block<account::AccountTx>& block,
                                const obs::TraceContext& trace) {
  const MutexLock lock(mu_);
  const auto start = std::chrono::steady_clock::now();
  obs::Tracer* const tracer = node_tracer(config_);
  const obs::ThreadProcessScope proc(trace_process_);
  const obs::CausalSpan block_span(
      tracer, obs::names::kSpanReceiveBlock, obs::names::kCatChain, trace,
      static_cast<std::int64_t>(block.header.height));
  // Structural checks first (linkage + merkle) via a dry append guard.
  const BlockHeader* prev = ledger_.empty() ? nullptr : &ledger_.tip().header;
  if (prev) {
    if (block.header.height != prev->height + 1 ||
        block.header.prev_hash != prev->hash()) {
      throw ValidationError("block does not extend the tip");
    }
  } else if (block.header.height != 0) {
    throw ValidationError("first block must have height 0");
  }
  const Hash256 expected_root = transactions_root(
      std::span<const account::AccountTx>(block.transactions));
  if (block.header.merkle_root != expected_root) {
    throw ValidationError("merkle root mismatch");
  }
  // PoW is mandatory whenever this node runs in mining mode — gating on
  // the nonce value would let a forged zero-nonce block skip the check.
  if (config_.mine &&
      !meets_target(block.header.hash(), block.header.difficulty)) {
    throw ValidationError("proof of work does not meet the target");
  }

  // Re-execute and verify the gas commitment; roll back on any failure.
  const account::Snapshot pre_block = state_.snapshot();
  try {
    std::vector<account::Receipt> receipts;
    {
      const obs::CausalSpan span(
          tracer, obs::names::kSpanExecute, obs::names::kCatChain, block_span.context(),
          static_cast<std::int64_t>(block.transactions.size()));
      // The executor joins the block's trace through RuntimeConfig::trace
      // (its execute_block span becomes a child of this one).
      receipts = execute(state_, block.transactions, span.context());
    }
    std::uint64_t gas_used = 0;
    for (const auto& r : receipts) gas_used += r.gas_used;
    if (gas_used != block.header.gas_used) {
      throw ValidationError("gas_used commitment mismatch");
    }
    if (gas_used > config_.block_gas_limit) {
      throw ValidationError("block exceeds the gas limit");
    }
    if (config_.commit_state_root &&
        account::build_state_trie(state_).root() !=
            block.header.state_root) {
      throw ValidationError("state root commitment mismatch");
    }
  } catch (...) {
    state_.revert(pre_block);
    throw;
  }
  {
    const obs::CausalSpan span(tracer, obs::names::kSpanCommit, obs::names::kCatChain,
                               block_span.context());
    state_.flush_journal();
    ledger_.append(block);
  }
  if (obs::Registry* const registry = node_registry(config_)) {
    registry->counter(obs::names::kMetricNodeBlocksReceived).add(1);
    registry->counter(obs::names::kMetricNodeTxsExecuted).add(block.transactions.size());
    registry->histogram(obs::names::kMetricNodeReceiveUs).observe(elapsed_us(start));
  }
  if (config_.snapshots != nullptr) config_.snapshots->tick();
}

}  // namespace txconc::chain
