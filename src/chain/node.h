// Full-node integration: mempool -> block production -> execution ->
// ledger, plus validation of received blocks (re-execute and check header
// commitments). This is the glue a downstream user runs; the executors
// from src/exec plug in as the block-execution strategy.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "account/runtime.h"
#include "account/state.h"
#include "account/state_trie.h"
#include "chain/block.h"
#include "chain/pow.h"
#include "common/error.h"
#include "common/thread_annotations.h"
#include "obs/context.h"

namespace txconc::obs {
class SnapshotWriter;  // periodic metrics snapshots, see obs/snapshot.h
}

namespace txconc::chain {

/// Configuration of an account-model node.
struct AccountNodeConfig {
  account::RuntimeConfig runtime;
  /// Maximum gas per block (Ethereum-style block gas limit).
  std::uint64_t block_gas_limit = 10'000'000;
  /// Maximum transactions per block.
  std::size_t max_block_txs = 500;
  /// Difficulty carried in produced headers (PoW grinding is optional).
  std::uint64_t difficulty = 16;
  /// Grind a valid PoW nonce when producing blocks (slow; for demos).
  bool mine = false;
  std::uint64_t mine_budget = 1'000'000;
  /// Commit the post-state trie root into headers and verify it when
  /// receiving blocks (O(accounts) per block).
  bool commit_state_root = true;
  /// Chrome-trace process row this node's spans land under ("node-A",
  /// "node-B", ...); interned at construction. Multi-node runs give each
  /// node its own label so one trace shows one pid row per node.
  std::string trace_label = "node";
  /// Optional periodic metrics snapshots, ticked after every produced and
  /// received block. Not owned; must outlive the node.
  obs::SnapshotWriter* snapshots = nullptr;
};

/// How a node executes the transactions of a block. Receives the node's
/// state and the block's transactions; returns per-transaction receipts in
/// block order. The default is sequential execution; adapters for the
/// src/exec engines satisfy this signature too.
using BlockExecutionFn = std::function<std::vector<account::Receipt>(
    account::StateDb&, std::span<const account::AccountTx>,
    const account::RuntimeConfig&)>;

/// A single account-model full node: owns the state, the ledger and a
/// mempool; produces and validates blocks.
///
/// Thread-safe monitor: submission, production and validation serialize on
/// an internal mutex, so an RPC-style frontend may submit transactions
/// while a producer loop assembles blocks. state() and ledger() hand out
/// raw references for quiescent use only (setup and post-run inspection).
class AccountNode {
 public:
  explicit AccountNode(AccountNodeConfig config = {},
                       BlockExecutionFn executor = nullptr);

  /// Validate a transaction against the current state (nonce not in the
  /// past, sender can cover value + max fee, intrinsic gas) and admit it
  /// to the mempool. Throws ValidationError when inadmissible.
  void submit_transaction(account::AccountTx tx);

  /// Assemble, execute and append the next block from the mempool.
  /// Transactions that fail validation at execution time (stale nonce
  /// after reordering, drained balance) are skipped, not included.
  /// Returns the produced block. When `trace_out` is non-null it receives
  /// a forked causal context of the block's root span — relay it alongside
  /// the block (receive_block, pbft, cross-shard) so every downstream span
  /// joins the block's trace.
  Block<account::AccountTx> produce_block(
      std::uint64_t timestamp, obs::TraceContext* trace_out = nullptr);

  /// Validate a block received from a peer: linkage, merkle root, PoW
  /// (when the header carries a mined nonce), then re-execute and check
  /// the header's gas_used commitment. On success the block is appended
  /// and the state advanced; on failure the state is untouched and
  /// ValidationError is thrown. `trace` is the message-envelope causal
  /// context relayed with the block (zero = start a fresh trace).
  void receive_block(const Block<account::AccountTx>& block,
                     const obs::TraceContext& trace = {});

  /// Quiescent use only: the reference escapes the monitor lock, so do
  /// not hold it across concurrent mutating calls.
  // tsa: the escaping reference cannot carry a REQUIRES(mu_) contract —
  // callers inspect state between rounds, when no mutator runs.
  const account::StateDb& state() const NO_THREAD_SAFETY_ANALYSIS {
    return state_;
  }
  /// Quiescent use only (see state()).
  // tsa: same escape as state() — quiescent read-only access.
  const Ledger<account::AccountTx>& ledger() const NO_THREAD_SAFETY_ANALYSIS {
    return ledger_;
  }
  std::size_t mempool_size() const {
    const MutexLock lock(mu_);
    return mempool_.size();
  }
  const AccountNodeConfig& config() const { return config_; }

  /// Credit an address directly (genesis allocation).
  void genesis_fund(const Address& addr, std::uint64_t amount);
  /// Install contract code directly (genesis deployment).
  void genesis_deploy(const Address& addr, account::ContractCode code);

 private:
  /// Runs the block-execution strategy under `trace` (threaded into the
  /// executor through RuntimeConfig::trace). The state parameter aliases
  /// the guarded state_ member (annotations cannot see through the
  /// alias), so the helper requires the monitor lock.
  std::vector<account::Receipt> execute(account::StateDb& state,
                                        std::span<const account::AccountTx> txs,
                                        const obs::TraceContext& trace)
      REQUIRES(mu_);

  mutable Mutex mu_;
  AccountNodeConfig config_;   // immutable after construction
  BlockExecutionFn executor_;  // immutable after construction
  const char* trace_process_;  // interned config_.trace_label
  account::StateDb state_ GUARDED_BY(mu_);
  Ledger<account::AccountTx> ledger_ GUARDED_BY(mu_);
  Mempool<account::AccountTx> mempool_ GUARDED_BY(mu_);
};

}  // namespace txconc::chain
