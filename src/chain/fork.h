// Fork choice: a block tree with the heaviest-chain (cumulative
// difficulty) rule, tracking the best tip and computing reorg paths.
//
// The Ledger in block.h is deliberately linear; ForkTree is the layer a
// node uses when competing branches exist (PoW races), yielding the
// sequence of blocks to disconnect/connect when the best tip changes.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "chain/block.h"

namespace txconc::chain {

/// A reorganization plan: blocks to undo (tip-down) and apply (fork-up).
struct Reorg {
  std::vector<Hash256> disconnect;  ///< Old-branch hashes, tip first.
  std::vector<Hash256> connect;     ///< New-branch hashes, fork-point first.
};

/// A tree of block headers with cumulative-difficulty fork choice.
class ForkTree {
 public:
  /// Create with the genesis header (height 0).
  explicit ForkTree(const BlockHeader& genesis);

  /// Insert a header whose parent is already in the tree.
  /// Returns the reorg needed if the best tip changed (empty plan when the
  /// new block simply extends the current best chain), or std::nullopt if
  /// the best tip did not change.
  /// Throws ValidationError for unknown parents or duplicate blocks.
  std::optional<Reorg> insert(const BlockHeader& header);

  const Hash256& best_tip() const { return best_tip_; }
  std::uint64_t best_height() const;
  std::uint64_t cumulative_difficulty(const Hash256& hash) const;
  bool contains(const Hash256& hash) const { return nodes_.contains(hash); }
  std::size_t size() const { return nodes_.size(); }

  /// Headers of the best chain, genesis first.
  std::vector<BlockHeader> best_chain() const;

 private:
  struct Node {
    BlockHeader header;
    Hash256 parent;
    std::uint64_t total_difficulty = 0;
  };

  const Node& node(const Hash256& hash) const;
  /// Path from `hash` back to the fork point with `other` (exclusive).
  Reorg compute_reorg(const Hash256& old_tip, const Hash256& new_tip) const;

  std::unordered_map<Hash256, Node> nodes_;
  Hash256 best_tip_;
};

}  // namespace txconc::chain
