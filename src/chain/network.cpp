#include "chain/network.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"

namespace txconc::chain {

namespace {

BlockHeader make_genesis() {
  BlockHeader genesis;
  genesis.height = 0;
  genesis.difficulty = 1;
  return genesis;
}

}  // namespace

NetworkSimulator::NetworkSimulator(std::uint64_t seed, NetworkConfig config)
    : config_(std::move(config)), rng_(seed) {
  if (config_.hashrate.empty()) {
    throw UsageError("network: need at least one miner");
  }
  for (double h : config_.hashrate) {
    if (h <= 0.0) throw UsageError("network: hashrate must be positive");
    total_hashrate_ += h;
  }
  if (config_.block_interval <= 0.0 || config_.propagation_delay < 0.0) {
    throw UsageError("network: bad timing configuration");
  }
  const BlockHeader genesis = make_genesis();
  for (std::size_t m = 0; m < config_.hashrate.size(); ++m) {
    trees_.emplace_back(genesis);
  }
  generation_.assign(config_.hashrate.size(), 0);
}

double NetworkSimulator::sample_find_delay(unsigned miner) {
  // Miner i finds blocks at rate (h_i / H) / interval, so the per-miner
  // rates sum to 1 / interval network-wide.
  const double mean =
      config_.block_interval * total_hashrate_ / config_.hashrate[miner];
  return rng_.exponential(mean);
}

void NetworkSimulator::schedule_mining(unsigned miner, double now) {
  Event e;
  e.time = now + sample_find_delay(miner);
  e.kind = Event::Kind::kFound;
  e.miner = miner;
  e.generation = ++generation_[miner];
  queue_.push(e);
}

NetworkStats NetworkSimulator::run(std::uint64_t num_blocks) {
  const MutexLock lock(mu_);
  NetworkStats stats;
  stats.wins.assign(config_.hashrate.size(), 0);

  // Track who found each block and at what time.
  std::unordered_map<Hash256, unsigned> found_by;
  std::unordered_map<Hash256, double> found_at;

  for (unsigned m = 0; m < config_.hashrate.size(); ++m) {
    schedule_mining(m, 0.0);
  }

  std::uint64_t found = 0;
  std::uint64_t next_nonce = 1;  // differentiates sibling headers
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();

    if (event.kind == Event::Kind::kFound) {
      // Stale mining event (the miner's tip changed since it was set up).
      if (event.generation != generation_[event.miner]) continue;
      if (found >= num_blocks) continue;  // stop production, keep draining
      ++found;

      ForkTree& tree = trees_[event.miner];
      BlockHeader header;
      header.prev_hash = tree.best_tip();
      header.height = tree.best_height() + 1;
      header.difficulty = 1;
      header.timestamp = static_cast<std::uint64_t>(event.time);
      header.nonce = next_nonce++;
      tree.insert(header);

      const Hash256 hash = header.hash();
      found_by.emplace(hash, event.miner);
      found_at.emplace(hash, event.time);

      // Broadcast to everyone else.
      for (unsigned peer = 0; peer < config_.hashrate.size(); ++peer) {
        if (peer == event.miner) continue;
        Event arrival;
        arrival.time = event.time + config_.propagation_delay;
        arrival.kind = Event::Kind::kArrival;
        arrival.miner = peer;
        arrival.header = header;
        queue_.push(arrival);
      }
      schedule_mining(event.miner, event.time);
    } else {
      ForkTree& tree = trees_[event.miner];
      const Hash256 hash = event.header.hash();
      if (tree.contains(hash)) continue;
      // With uniform delay, parents always arrive before children; guard
      // anyway (drop unknown-parent blocks — they re-arrive in richer
      // models).
      if (!tree.contains(event.header.prev_hash)) continue;
      const Hash256 before = tree.best_tip();
      const auto reorg = tree.insert(event.header);
      if (reorg.has_value() && !reorg->disconnect.empty()) {
        ++stats.reorgs;
        stats.max_reorg_depth =
            std::max(stats.max_reorg_depth,
                     static_cast<std::uint64_t>(reorg->disconnect.size()));
      }
      if (tree.best_tip() != before) {
        // The miner switches to the new tip; its previous mining event
        // becomes stale.
        schedule_mining(event.miner, event.time);
      }
    }
  }

  stats.blocks_found = found;

  // Consensus chain = miner 0's best chain after draining.
  const std::vector<BlockHeader> chain = trees_[0].best_chain();
  std::unordered_set<Hash256> on_chain;
  double first_time = 0.0;
  double last_time = 0.0;
  for (const BlockHeader& header : chain) {
    if (header.height == 0) continue;
    const Hash256 hash = header.hash();
    on_chain.insert(hash);
    const auto it = found_by.find(hash);
    if (it != found_by.end()) ++stats.wins[it->second];
    const auto at = found_at.find(hash);
    if (at != found_at.end()) {
      if (first_time == 0.0) first_time = at->second;
      last_time = at->second;
    }
  }
  stats.stale_blocks = found - on_chain.size();
  stats.stale_rate =
      found == 0 ? 0.0
                 : static_cast<double>(stats.stale_blocks) /
                       static_cast<double>(found);
  if (on_chain.size() > 1) {
    stats.mean_interval =
        (last_time - first_time) / static_cast<double>(on_chain.size() - 1);
  }

  stats.converged = true;
  for (const ForkTree& tree : trees_) {
    if (tree.best_tip() != trees_[0].best_tip()) stats.converged = false;
  }
  return stats;
}

}  // namespace txconc::chain
