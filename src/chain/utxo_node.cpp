#include "chain/utxo_node.h"

namespace txconc::chain {

std::uint64_t UtxoNode::fee_of(const utxo::Transaction& tx) const {
  std::uint64_t in_value = 0;
  for (const auto& in : tx.inputs()) {
    const auto coin = utxo_set_.get(in.prevout);
    if (!coin) throw ValidationError("input not in the UTXO set");
    in_value += coin->value;
  }
  const std::uint64_t out_value = tx.total_output();
  if (out_value > in_value) throw ValidationError("outputs exceed inputs");
  return in_value - out_value;
}

void UtxoNode::submit_transaction(const utxo::Transaction& tx) {
  if (tx.is_coinbase()) {
    throw ValidationError("coinbase transactions cannot be submitted");
  }
  utxo_set_.validate(tx, {.run_scripts = config_.verify_scripts});
  mempool_.add(tx, fee_of(tx));
}

Block<utxo::Transaction> UtxoNode::produce_block(
    std::uint64_t timestamp, const utxo::Script& coinbase_lock) {
  std::vector<utxo::Transaction> candidates =
      mempool_.take(config_.max_block_txs);

  std::vector<utxo::Transaction> included;
  std::vector<utxo::TxUndo> undos;
  std::uint64_t fees = 0;

  // Coinbase value depends on the fees, so apply regular transactions
  // first and prepend the coinbase afterwards.
  for (auto& tx : candidates) {
    try {
      const std::uint64_t fee = fee_of(tx);
      undos.push_back(
          utxo_set_.apply(tx, {.run_scripts = config_.verify_scripts}));
      fees += fee;
      included.push_back(std::move(tx));
    } catch (const ValidationError&) {
      // Invalidated since admission (inputs spent meanwhile): drop.
    }
  }

  const std::uint64_t height = ledger_.height();
  utxo::Transaction coinbase = utxo::Transaction::coinbase(
      config_.coinbase_subsidy + fees, coinbase_lock, height);
  undos.insert(undos.begin(),
               utxo_set_.apply(coinbase, {.run_scripts = false,
                                          .allow_minting = true}));
  included.insert(included.begin(), std::move(coinbase));

  const BlockHeader* prev = ledger_.empty() ? nullptr : &ledger_.tip().header;
  Block<utxo::Transaction> block = make_block<utxo::Transaction>(
      prev, std::move(included), timestamp, config_.difficulty);
  if (config_.mine) {
    const auto nonce = mine_header(block.header, config_.mine_budget);
    if (!nonce) {
      utxo_set_.undo_block(undos);
      throw Error("mining budget exhausted");
    }
    block.header.nonce = *nonce;
  }
  ledger_.append(block);
  undo_stack_.push_back(std::move(undos));
  return block;
}

void UtxoNode::receive_block(const Block<utxo::Transaction>& block) {
  const BlockHeader* prev = ledger_.empty() ? nullptr : &ledger_.tip().header;
  if (prev) {
    if (block.header.height != prev->height + 1 ||
        block.header.prev_hash != prev->hash()) {
      throw ValidationError("block does not extend the tip");
    }
  } else if (block.header.height != 0) {
    throw ValidationError("first block must have height 0");
  }
  if (block.header.merkle_root !=
      transactions_root(std::span<const utxo::Transaction>(
          block.transactions))) {
    throw ValidationError("merkle root mismatch");
  }
  // PoW is mandatory whenever this node runs in mining mode — gating on
  // the nonce value would let a forged zero-nonce block skip the check.
  if (config_.mine &&
      !meets_target(block.header.hash(), block.header.difficulty)) {
    throw ValidationError("proof of work does not meet the target");
  }
  if (block.transactions.empty() || !block.transactions[0].is_coinbase()) {
    throw ValidationError("block must start with a coinbase");
  }
  for (std::size_t i = 1; i < block.transactions.size(); ++i) {
    if (block.transactions[i].is_coinbase()) {
      throw ValidationError("multiple coinbase transactions");
    }
  }

  // Subsidy check: coinbase value == subsidy + total fees. Fees need the
  // pre-block UTXO set, so compute them as we validate/apply.
  std::vector<utxo::TxUndo> undos;
  std::uint64_t fees = 0;
  try {
    for (std::size_t i = 1; i < block.transactions.size(); ++i) {
      const std::uint64_t fee = fee_of(block.transactions[i]);
      undos.push_back(utxo_set_.apply(
          block.transactions[i], {.run_scripts = config_.verify_scripts}));
      fees += fee;
    }
    if (block.transactions[0].total_output() !=
        config_.coinbase_subsidy + fees) {
      throw ValidationError("coinbase value != subsidy + fees");
    }
    undos.insert(undos.begin(),
                 utxo_set_.apply(block.transactions[0],
                                 {.run_scripts = false,
                                  .allow_minting = true}));
  } catch (...) {
    utxo_set_.undo_block(undos);
    throw;
  }
  ledger_.append(block);
  undo_stack_.push_back(std::move(undos));
}

Block<utxo::Transaction> UtxoNode::undo_tip() {
  if (ledger_.empty()) throw UsageError("undo_tip: empty chain");
  // The linear Ledger has no pop; rebuild it without the tip.
  Block<utxo::Transaction> tip = ledger_.tip();
  utxo_set_.undo_block(undo_stack_.back());
  undo_stack_.pop_back();

  Ledger<utxo::Transaction> shorter;
  for (std::size_t h = 0; h + 1 < ledger_.height(); ++h) {
    shorter.append(ledger_.at(h));
  }
  ledger_ = std::move(shorter);
  return tip;
}

}  // namespace txconc::chain
