// Discrete-event simulation of a PoW miner network: block races,
// propagation delays, natural forks, and heaviest-chain convergence.
//
// Reproduces the classic dynamics behind the paper's background: why PoW
// chains keep block intervals long relative to propagation delay (stale
// rate ~ delay / interval), and exercises ForkTree under real races.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "chain/fork.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace txconc::chain {

struct NetworkConfig {
  /// Relative hash power per miner (size = miner count; default 5 equal).
  std::vector<double> hashrate = {1, 1, 1, 1, 1};
  /// One-way broadcast delay in seconds (same for every pair).
  double propagation_delay = 2.0;
  /// Target mean seconds between blocks network-wide.
  double block_interval = 600.0;
};

struct NetworkStats {
  std::uint64_t blocks_found = 0;
  /// Blocks not on the final consensus chain.
  std::uint64_t stale_blocks = 0;
  double stale_rate = 0.0;
  /// Tip switches away from a miner's own extension (observed reorgs).
  std::uint64_t reorgs = 0;
  std::uint64_t max_reorg_depth = 0;
  /// Mean interval between consensus-chain blocks.
  double mean_interval = 0.0;
  /// Main-chain blocks won per miner.
  std::vector<std::uint64_t> wins;
  /// True when every miner ends on the same best tip.
  bool converged = false;
};

/// Simulates the network until `num_blocks` blocks have been found, then
/// drains in-flight broadcasts and reports.
///
/// Thread-safe monitor: run() serializes on an internal mutex so a sweep
/// driver can farm independent runs of one simulator out to pool threads.
/// The private helpers assume the caller already holds the lock and are
/// REQUIRES-annotated accordingly.
class NetworkSimulator {
 public:
  NetworkSimulator(std::uint64_t seed, NetworkConfig config);

  NetworkStats run(std::uint64_t num_blocks);

 private:
  struct Event {
    double time = 0.0;
    enum class Kind { kFound, kArrival } kind = Kind::kFound;
    unsigned miner = 0;
    std::uint64_t generation = 0;  ///< kFound: stale-event guard.
    BlockHeader header;            ///< kArrival payload.

    bool operator>(const Event& other) const { return time > other.time; }
  };

  double sample_find_delay(unsigned miner) REQUIRES(mu_);
  void schedule_mining(unsigned miner, double now) REQUIRES(mu_);

  mutable Mutex mu_;
  NetworkConfig config_;  // immutable after construction
  Rng rng_ GUARDED_BY(mu_);
  std::vector<ForkTree> trees_ GUARDED_BY(mu_);
  std::vector<std::uint64_t> generation_ GUARDED_BY(mu_);
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_
      GUARDED_BY(mu_);
  double total_hashrate_ = 0.0;  // immutable after construction
};

}  // namespace txconc::chain
