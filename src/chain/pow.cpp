#include "chain/pow.h"

#include <algorithm>

#include "common/error.h"

namespace txconc::chain {

bool meets_target(const Hash256& hash, std::uint64_t difficulty) {
  if (difficulty == 0) throw UsageError("difficulty must be positive");
  const std::uint64_t target = ~std::uint64_t{0} / difficulty;
  return hash.low64() <= target;
}

std::optional<std::uint64_t> mine_header(BlockHeader header,
                                         std::uint64_t max_attempts) {
  for (std::uint64_t nonce = 0; nonce < max_attempts; ++nonce) {
    header.nonce = nonce;
    if (meets_target(header.hash(), header.difficulty)) {
      return nonce;
    }
  }
  return std::nullopt;
}

std::uint64_t bitcoin_retarget(std::uint64_t old_difficulty,
                               std::uint64_t actual_timespan,
                               std::uint64_t target_timespan) {
  if (old_difficulty == 0 || target_timespan == 0) {
    throw UsageError("retarget: zero difficulty or timespan");
  }
  // Clamp the measured timespan to [target/4, target*4] as Bitcoin does.
  const std::uint64_t clamped =
      std::clamp(actual_timespan, target_timespan / 4, target_timespan * 4);
  // Faster blocks (small timespan) -> higher difficulty.
  const double scaled = static_cast<double>(old_difficulty) *
                        static_cast<double>(target_timespan) /
                        static_cast<double>(std::max<std::uint64_t>(clamped, 1));
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(scaled));
}

std::uint64_t ethereum_adjust(std::uint64_t parent_difficulty,
                              std::uint64_t block_time,
                              std::uint64_t target_time) {
  if (parent_difficulty == 0 || target_time == 0) {
    throw UsageError("adjust: zero difficulty or target time");
  }
  const std::int64_t step =
      std::max<std::int64_t>(1 - static_cast<std::int64_t>(block_time /
                                                           target_time),
                             -99);
  const std::int64_t delta =
      static_cast<std::int64_t>(parent_difficulty / 2048) * step;
  const std::int64_t next =
      static_cast<std::int64_t>(parent_difficulty) + delta;
  return next < 1 ? 1 : static_cast<std::uint64_t>(next);
}

double PowSimulator::next_block_interval(std::uint64_t difficulty) {
  if (difficulty == 0) throw UsageError("difficulty must be positive");
  if (hashrate_ <= 0.0) throw UsageError("hashrate must be positive");
  const double mean = static_cast<double>(difficulty) / hashrate_;
  return rng_.exponential(mean);
}

}  // namespace txconc::chain
