// Proof-of-Work simulation: target checks, mining, and the difficulty
// retargeting rules of the Bitcoin family and Ethereum.
//
// "Public blockchains ... often use variants of Proof-of-Work (PoW)
// protocols which are computationally intensive." — paper, Section II-A.
// The simulator reproduces the *timing* behaviour (block intervals,
// difficulty adjustment) without burning real CPU on hash grinding beyond
// a bounded demonstration mode.
#pragma once

#include <cstdint>
#include <optional>

#include "chain/block.h"
#include "common/rng.h"

namespace txconc::chain {

/// True when `hash` satisfies difficulty `d`: interpreting the first eight
/// bytes as a little-endian integer, hash.low64() < 2^64 / d.
bool meets_target(const Hash256& hash, std::uint64_t difficulty);

/// Grind nonces until the header hash meets its difficulty. Intended for
/// small difficulties (tests, demos); gives up after `max_attempts`.
std::optional<std::uint64_t> mine_header(BlockHeader header,
                                         std::uint64_t max_attempts);

/// Bitcoin-style retarget: every `interval` blocks, scale difficulty by
/// target_timespan / actual_timespan, clamped to a factor of 4 either way.
std::uint64_t bitcoin_retarget(std::uint64_t old_difficulty,
                               std::uint64_t actual_timespan,
                               std::uint64_t target_timespan);

/// Ethereum-style per-block adjustment:
///   diff += parent_diff / 2048 * max(1 - block_time / target_time, -99)
std::uint64_t ethereum_adjust(std::uint64_t parent_difficulty,
                              std::uint64_t block_time,
                              std::uint64_t target_time);

/// Statistical miner: block intervals are exponentially distributed with
/// mean difficulty / hashrate (the memoryless property of PoW).
class PowSimulator {
 public:
  /// @param hashrate  expected hashes per second across the network.
  PowSimulator(std::uint64_t seed, double hashrate)
      : rng_(seed), hashrate_(hashrate) {}

  /// Sample the time (seconds) to find the next block at a difficulty.
  double next_block_interval(std::uint64_t difficulty);

  void set_hashrate(double hashrate) { hashrate_ = hashrate; }
  double hashrate() const { return hashrate_; }

 private:
  Rng rng_;
  double hashrate_;
};

}  // namespace txconc::chain
