// Streaming block generation interface shared by both data models.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "account/types.h"
#include "utxo/transaction.h"
#include "workload/profile.h"

namespace txconc::workload {

/// One generated block, carrying whichever payload the data model uses.
/// Receipts (for account blocks) come from real execution against the
/// generator's StateDb, so internal transactions and gas are genuine.
struct GeneratedBlock {
  std::uint64_t height = 0;
  DataModel model = DataModel::kAccount;

  // ---- UTXO model ----
  /// Transactions in block order; index 0 is the coinbase.
  std::vector<utxo::Transaction> utxo_txs;
  /// Total input TXOs consumed (the "input TXOs" series of Figure 5a).
  std::size_t num_input_txos = 0;

  // ---- Account model ----
  std::vector<account::AccountTx> account_txs;
  /// Parallel to account_txs.
  std::vector<account::Receipt> receipts;
  std::uint64_t gas_used = 0;

  /// Number of regular (non-coinbase) transactions.
  std::size_t num_regular_txs() const {
    if (model == DataModel::kUtxo) {
      return utxo_txs.empty() ? 0 : utxo_txs.size() - 1;
    }
    return account_txs.size();
  }

  /// Regular plus internal transactions (the "all TXs" curve of Fig. 4a).
  std::size_t num_total_txs() const {
    std::size_t n = num_regular_txs();
    for (const auto& r : receipts) n += r.internal_txs.size();
    return n;
  }
};

/// A deterministic, seedable block stream for one chain profile.
class HistoryGenerator {
 public:
  virtual ~HistoryGenerator() = default;

  /// Generate the next block. Call at most num_blocks() times.
  virtual GeneratedBlock next_block() = 0;

  virtual std::uint64_t num_blocks() const = 0;
  virtual const ChainProfile& profile() const = 0;
};

}  // namespace txconc::workload
