// Synthetic UTXO-chain generator (Bitcoin, Bitcoin Cash, Litecoin, Dogecoin).
//
// Blocks are built against a real UtxoSet, so every generated history is a
// valid chain: parents precede children, no double spends, values conserve.
// Conflict structure emerges from two behaviours the paper identifies:
//  * chain spends — a wallet immediately re-spending an output created
//    earlier in the same block;
//  * sweep chains — exchange/batching systems creating long sequences of
//    transactions each spending the previous one's output (Figure 6).
#pragma once

#include "common/rng.h"
#include "utxo/utxo_set.h"
#include "workload/history.h"

namespace txconc::workload {

/// Options beyond the profile.
struct UtxoWorkloadOptions {
  /// Attach and verify real P2PKH scripts (slower; default is structural
  /// validation only, matching how the paper's queries treat the data).
  bool with_scripts = false;
  /// Soft cap on the generator's spendable-output pool.
  std::size_t pool_target = 20000;
};

class UtxoWorkloadGenerator final : public HistoryGenerator {
 public:
  UtxoWorkloadGenerator(ChainProfile profile, std::uint64_t seed,
                        std::uint64_t num_blocks = 0,
                        UtxoWorkloadOptions options = {});

  GeneratedBlock next_block() override;
  std::uint64_t num_blocks() const override { return num_blocks_; }
  const ChainProfile& profile() const override { return profile_; }

  const utxo::UtxoSet& utxo_set() const { return utxo_set_; }

 private:
  struct Spendable {
    utxo::OutPoint outpoint;
    std::uint64_t value;
    std::uint64_t owner_seed;  ///< Key material when scripts are enabled.
  };

  /// Build and apply one transaction spending the given coins; returns the
  /// change output as a new Spendable.
  const utxo::Transaction& emit_tx(std::vector<Spendable> inputs,
                                   std::size_t num_outputs,
                                   std::vector<utxo::Transaction>& block,
                                   std::vector<Spendable>& block_spendables,
                                   bool chain_mode = false);

  Spendable take_from_pool();
  utxo::Script lock_for(std::uint64_t owner_seed) const;
  utxo::Script unlock_for(const Spendable& coin, const Hash256& sighash) const;

  ChainProfile profile_;
  Rng rng_;
  std::uint64_t num_blocks_;
  std::uint64_t height_ = 0;
  UtxoWorkloadOptions options_;
  utxo::UtxoSet utxo_set_;
  std::vector<Spendable> pool_;
  std::uint64_t next_owner_seed_ = 1;
};

}  // namespace txconc::workload
