// Calibration notes
// -----------------
// Each profile's era knobs are behavioural (user counts, exchange shares,
// sweep frequencies); the conflict rates are *outcomes*. Calibration
// targets, read off the paper's figures:
//
//   Bitcoin   (Fig. 5): tx/block 1 -> ~2000+; single rate ~0.13-0.15 late,
//             group rate ~0.01.
//   Ethereum  (Fig. 4): regular tx/block ~15 -> ~100-160 (internal spikes
//             in 2017); single rate 0.8 -> 0.6 (tx-weighted), gas-weighted
//             ~0.6 flat; group rate 0.5 -> 0.2.
//   Eth.Classic (Fig. 8): order of magnitude fewer txs than Ethereum after
//             2018 but higher rates (single ~0.7-0.9, group ~0.7).
//   Bitcoin Cash (Fig. 9): fewer txs than Bitcoin, higher rates.
//   Litecoin / Dogecoin (Fig. 7): UTXO cluster, single ~0.1-0.2,
//             group 0.01-0.05.
//   Zilliqa   (Fig. 7): small user base, very high rates (single ~0.9,
//             group ~0.8).
//
// tests/workload_test.cpp asserts these targets within tolerances, so a
// knob change that breaks calibration fails the suite.
#include "workload/profiles.h"

namespace txconc::workload {

ChainProfile bitcoin_profile() {
  ChainProfile p;
  p.name = "Bitcoin";
  p.model = DataModel::kUtxo;
  p.consensus = "PoW";
  p.data_source = "BigQuery";
  p.default_blocks = 600;
  p.start_year = 2009.0;
  p.end_year = 2019.5;
  p.block_interval_seconds = 600.0;

  EraParams e;
  e.position = 0.0;          // 2009: near-empty blocks
  e.txs_per_block = 1.0;
  e.inputs_per_tx = 1.3;
  e.chain_spend_prob = 0.01;
  e.sweeps_per_block = 0.0;
  e.sweep_continue_prob = 0.7;
  p.eras.push_back(e);

  e.position = 0.3;          // ~2012
  e.txs_per_block = 60.0;
  e.inputs_per_tx = 1.8;
  e.chain_spend_prob = 0.025;
  e.sweeps_per_block = 0.2;
  e.sweep_continue_prob = 0.85;
  p.eras.push_back(e);

  e.position = 0.6;          // ~2015
  e.txs_per_block = 800.0;
  e.inputs_per_tx = 2.0;
  e.chain_spend_prob = 0.045;
  e.sweeps_per_block = 0.8;
  e.sweep_continue_prob = 0.9;
  e.mega_sweep_prob = 0.004;  // rare whole-block consolidations (358624)
  p.eras.push_back(e);

  e.position = 0.8;          // ~2017 backlog era
  e.txs_per_block = 1900.0;
  e.inputs_per_tx = 2.1;
  e.chain_spend_prob = 0.06;
  e.sweeps_per_block = 1.5;
  e.sweep_continue_prob = 0.92;
  p.eras.push_back(e);

  e.position = 1.0;          // 2019
  e.txs_per_block = 2200.0;
  e.inputs_per_tx = 2.0;
  e.chain_spend_prob = 0.06;
  e.sweeps_per_block = 2.0;
  e.sweep_continue_prob = 0.92;
  p.eras.push_back(e);
  return p;
}

ChainProfile bitcoin_cash_profile() {
  ChainProfile p;
  p.name = "Bitcoin Cash";
  p.model = DataModel::kUtxo;
  p.default_blocks = 300;
  p.start_year = 2017.6;     // fork from Bitcoin
  p.end_year = 2019.5;
  p.block_interval_seconds = 600.0;

  // Small user base, exchange-dominated traffic: fewer transactions than
  // Bitcoin yet *higher* conflict rates (paper Section IV-C).
  EraParams e;
  e.position = 0.0;
  e.txs_per_block = 250.0;
  e.inputs_per_tx = 2.0;
  e.chain_spend_prob = 0.12;
  e.sweeps_per_block = 1.5;
  e.sweep_continue_prob = 0.9;
  p.eras.push_back(e);

  e.position = 0.5;
  e.txs_per_block = 90.0;
  e.chain_spend_prob = 0.15;
  e.sweeps_per_block = 1.2;
  p.eras.push_back(e);

  e.position = 1.0;
  e.txs_per_block = 180.0;
  e.chain_spend_prob = 0.13;
  e.sweeps_per_block = 1.5;
  p.eras.push_back(e);
  return p;
}

ChainProfile litecoin_profile() {
  ChainProfile p;
  p.name = "Litecoin";
  p.model = DataModel::kUtxo;
  p.default_blocks = 400;
  p.start_year = 2011.8;
  p.end_year = 2019.5;
  p.block_interval_seconds = 150.0;

  EraParams e;
  e.position = 0.0;
  e.txs_per_block = 3.0;
  e.inputs_per_tx = 1.5;
  e.chain_spend_prob = 0.02;
  e.sweeps_per_block = 0.05;
  e.sweep_continue_prob = 0.8;
  p.eras.push_back(e);

  e.position = 0.6;
  e.txs_per_block = 20.0;
  e.chain_spend_prob = 0.03;
  e.sweeps_per_block = 0.1;
  p.eras.push_back(e);

  e.position = 1.0;
  e.txs_per_block = 80.0;
  e.inputs_per_tx = 1.9;
  e.chain_spend_prob = 0.04;
  e.sweeps_per_block = 0.3;
  e.sweep_continue_prob = 0.88;
  p.eras.push_back(e);
  return p;
}

ChainProfile dogecoin_profile() {
  ChainProfile p;
  p.name = "Dogecoin";
  p.model = DataModel::kUtxo;
  p.default_blocks = 400;
  p.start_year = 2013.9;
  p.end_year = 2019.5;
  p.block_interval_seconds = 60.0;

  EraParams e;
  e.position = 0.0;          // launch hype: tipping bursts
  e.txs_per_block = 40.0;
  e.inputs_per_tx = 1.6;
  e.chain_spend_prob = 0.06;
  e.sweeps_per_block = 0.5;
  e.sweep_continue_prob = 0.85;
  p.eras.push_back(e);

  e.position = 0.4;
  e.txs_per_block = 10.0;
  e.chain_spend_prob = 0.05;
  e.sweeps_per_block = 0.2;
  p.eras.push_back(e);

  e.position = 1.0;
  e.txs_per_block = 35.0;
  e.chain_spend_prob = 0.04;
  e.sweeps_per_block = 0.15;
  e.sweep_continue_prob = 0.8;
  p.eras.push_back(e);
  return p;
}

ChainProfile ethereum_profile() {
  ChainProfile p;
  p.name = "Ethereum";
  p.model = DataModel::kAccount;
  p.smart_contracts = true;
  p.default_blocks = 400;
  p.start_year = 2015.6;
  p.end_year = 2019.5;
  p.block_interval_seconds = 15.0;

  EraParams e;
  e.position = 0.0;          // 2015/16: tiny user base, exchange heavy
  e.txs_per_block = 15.0;
  e.num_users = 500.0;
  e.user_zipf = 1.3;
  e.population_overlap = 0.48;
  e.exchange_share = 0.46;
  e.num_exchanges = 4;
  e.pool_share = 0.08;
  e.contract_share = 0.10;
  e.num_contracts = 12;
  e.internal_depth = 1.5;
  e.creation_share = 0.03;
  e.storm_factor = 0.0;
  p.eras.push_back(e);

  e.position = 0.25;         // 2016
  e.txs_per_block = 45.0;
  e.num_users = 1800.0;
  e.user_zipf = 1.2;
  e.population_overlap = 0.30;
  e.exchange_share = 0.42;
  e.contract_share = 0.15;
  e.creation_share = 0.02;
  p.eras.push_back(e);

  e.position = 0.45;         // 2017: DoS storms, ICO boom
  e.txs_per_block = 120.0;
  e.num_users = 12000.0;
  e.user_zipf = 1.05;
  e.population_overlap = 0.25;
  e.exchange_share = 0.30;
  e.num_exchanges = 6;
  e.pool_share = 0.06;
  e.contract_share = 0.22;
  e.num_contracts = 24;
  e.internal_depth = 2.0;
  e.creation_share = 0.02;
  e.storm_factor = 0.30;
  p.eras.push_back(e);

  e.position = 0.6;          // 2018
  e.txs_per_block = 160.0;
  e.num_users = 30000.0;
  e.user_zipf = 1.0;
  e.population_overlap = 0.12;
  e.exchange_share = 0.27;
  e.contract_share = 0.26;
  e.internal_depth = 1.8;
  e.storm_factor = 0.04;
  p.eras.push_back(e);

  e.position = 1.0;          // 2019
  e.txs_per_block = 110.0;
  e.num_users = 60000.0;
  e.user_zipf = 0.85;
  e.population_overlap = 0.08;
  e.exchange_share = 0.22;
  e.pool_share = 0.04;
  e.contract_share = 0.30;
  e.num_contracts = 48;
  e.internal_depth = 1.6;
  e.creation_share = 0.01;
  e.storm_factor = 0.0;
  p.eras.push_back(e);
  return p;
}

ChainProfile ethereum_classic_profile() {
  ChainProfile p;
  p.name = "Ethereum Classic";
  p.model = DataModel::kAccount;
  p.smart_contracts = true;
  p.default_blocks = 300;
  p.start_year = 2016.6;     // the DAO fork
  p.end_year = 2019.5;
  p.block_interval_seconds = 14.0;

  // Much smaller user base than Ethereum -> higher conflict rates despite
  // far fewer transactions (paper Section IV-C).
  EraParams e;
  e.position = 0.0;
  e.txs_per_block = 14.0;
  e.num_users = 250.0;
  e.user_zipf = 1.4;
  e.population_overlap = 0.85;
  e.exchange_share = 0.55;
  e.num_exchanges = 2;
  e.pool_share = 0.08;
  e.contract_share = 0.06;
  e.num_contracts = 8;
  e.internal_depth = 1.3;
  e.creation_share = 0.01;
  p.eras.push_back(e);

  e.position = 0.5;          // 2018: activity collapses
  e.txs_per_block = 10.0;
  e.num_users = 220.0;
  e.exchange_share = 0.58;
  p.eras.push_back(e);

  e.position = 1.0;
  e.txs_per_block = 8.0;
  e.num_users = 200.0;
  e.user_zipf = 1.45;
  e.exchange_share = 0.60;
  e.contract_share = 0.08;
  p.eras.push_back(e);
  return p;
}

ChainProfile zilliqa_profile() {
  ChainProfile p;
  p.name = "Zilliqa";
  p.model = DataModel::kAccount;
  p.smart_contracts = true;
  p.consensus = "PoW+Sharding";
  p.data_source = "Python client";
  p.default_blocks = 200;
  p.start_year = 2019.0;
  p.end_year = 2019.5;
  p.block_interval_seconds = 45.0;
  p.sharded = true;
  // Zilliqa's early mainnet epochs; conflict-wise the final blocks behave
  // as if a couple of committees carry nearly all traffic.
  p.num_shards = 2;

  // Young chain: a handful of heavy users and exchanges dominate, which is
  // what the paper attributes Zilliqa's very high conflict rates to ("we
  // attribute the high conflict rates in Zilliqa to its workload
  // characteristics").
  EraParams e;
  e.position = 0.0;
  e.txs_per_block = 8.0;
  e.num_users = 30.0;
  e.user_zipf = 1.6;
  e.population_overlap = 0.95;
  e.exchange_share = 0.55;
  e.num_exchanges = 2;
  e.pool_share = 0.0;
  e.contract_share = 0.05;
  e.num_contracts = 4;
  e.internal_depth = 1.2;
  e.creation_share = 0.005;
  p.eras.push_back(e);

  e.position = 1.0;
  e.txs_per_block = 25.0;
  e.num_users = 60.0;
  e.user_zipf = 1.5;
  e.exchange_share = 0.5;
  p.eras.push_back(e);
  return p;
}

std::vector<ChainProfile> all_profiles() {
  return {bitcoin_profile(),  bitcoin_cash_profile(),
          litecoin_profile(), dogecoin_profile(),
          ethereum_profile(), ethereum_classic_profile(),
          zilliqa_profile()};
}

}  // namespace txconc::workload
