#include "workload/profile.h"

#include "common/error.h"

namespace txconc::workload {

namespace {

double lerp(double a, double b, double t) { return a + (b - a) * t; }

EraParams interpolate(const EraParams& lo, const EraParams& hi, double t) {
  EraParams out = lo;
  out.position = lerp(lo.position, hi.position, t);
  out.txs_per_block = lerp(lo.txs_per_block, hi.txs_per_block, t);
  out.inputs_per_tx = lerp(lo.inputs_per_tx, hi.inputs_per_tx, t);
  out.chain_spend_prob = lerp(lo.chain_spend_prob, hi.chain_spend_prob, t);
  out.sweeps_per_block = lerp(lo.sweeps_per_block, hi.sweeps_per_block, t);
  out.sweep_continue_prob =
      lerp(lo.sweep_continue_prob, hi.sweep_continue_prob, t);
  out.mega_sweep_prob = lerp(lo.mega_sweep_prob, hi.mega_sweep_prob, t);
  out.num_users = lerp(lo.num_users, hi.num_users, t);
  out.user_zipf = lerp(lo.user_zipf, hi.user_zipf, t);
  out.population_overlap =
      lerp(lo.population_overlap, hi.population_overlap, t);
  out.exchange_share = lerp(lo.exchange_share, hi.exchange_share, t);
  out.num_exchanges = t < 0.5 ? lo.num_exchanges : hi.num_exchanges;
  out.pool_share = lerp(lo.pool_share, hi.pool_share, t);
  out.contract_share = lerp(lo.contract_share, hi.contract_share, t);
  out.num_contracts = t < 0.5 ? lo.num_contracts : hi.num_contracts;
  out.internal_depth = lerp(lo.internal_depth, hi.internal_depth, t);
  out.creation_share = lerp(lo.creation_share, hi.creation_share, t);
  out.storm_factor = lerp(lo.storm_factor, hi.storm_factor, t);
  return out;
}

}  // namespace

EraParams ChainProfile::at(double position) const {
  if (eras.empty()) throw UsageError("ChainProfile '" + name + "' has no eras");
  if (position <= eras.front().position) return eras.front();
  if (position >= eras.back().position) return eras.back();
  for (std::size_t i = 1; i < eras.size(); ++i) {
    if (position <= eras[i].position) {
      const EraParams& lo = eras[i - 1];
      const EraParams& hi = eras[i];
      const double span = hi.position - lo.position;
      const double t = span > 0.0 ? (position - lo.position) / span : 0.0;
      return interpolate(lo, hi, t);
    }
  }
  return eras.back();
}

}  // namespace txconc::workload
