// Chain workload profiles: era-parameterised behavioural knobs.
//
// A profile describes *why* a chain's blocks look the way they do (user
// population, exchange concentration, contract usage, sweep behaviour);
// conflict rates then emerge from generated blocks rather than being set
// directly. Profiles are calibrated against the paper's measured series
// (Figures 4, 5, 7, 8, 9) — see src/workload/profiles.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace txconc::workload {

/// The two data models of Table I.
enum class DataModel : std::uint8_t { kUtxo, kAccount };

/// Behavioural parameters at one point of a chain's history.
/// UTXO-model knobs and account-model knobs coexist; generators read the
/// ones relevant to their data model.
struct EraParams {
  /// Position along the history in [0, 1]; eras are interpolated linearly.
  double position = 0.0;

  /// Mean regular transactions per block.
  double txs_per_block = 100.0;

  // ---- UTXO-model knobs ----
  /// Mean number of input TXOs per transaction.
  double inputs_per_tx = 2.0;
  /// Probability that a transaction immediately spends an output created
  /// earlier in the same block (wallet change re-spend, batching systems).
  double chain_spend_prob = 0.05;
  /// Expected number of exchange/batching sweep chains per block
  /// (the Figure 6 pattern: a chain of txs each spending the previous).
  double sweeps_per_block = 0.0;
  /// Geometric continue-probability of a sweep chain (mean length
  /// 1/(1-p) transactions).
  double sweep_continue_prob = 0.9;
  /// Probability that a block is a consolidation event in which one
  /// batching system chains through nearly the whole block — the paper's
  /// extreme example is Bitcoin block 358624, where 3217 of 3264
  /// transactions depend on each other.
  double mega_sweep_prob = 0.0;

  // ---- Account-model knobs ----
  /// Number of active user accounts.
  double num_users = 10000.0;
  /// Zipf exponent of user activity (higher = more concentrated senders).
  double user_zipf = 1.0;
  /// Probability that a participant is drawn from the shared "whale"
  /// population instead of their traffic category's own population.
  /// Higher overlap bridges exchange, pool, contract and p2p clusters
  /// into large connected components (small-user-base chains).
  double population_overlap = 0.15;
  /// Fraction of transactions that are deposits to one of the exchange
  /// addresses (Poloniex-style fan-in, Figure 1b).
  double exchange_share = 0.2;
  /// Number of distinct exchange deposit addresses.
  unsigned num_exchanges = 5;
  /// Fraction of transactions that are mining-pool payout batches (one hot
  /// sender paying many users, the DwarfPool pattern of Figure 1a).
  double pool_share = 0.05;
  /// Fraction of transactions that call smart contracts.
  double contract_share = 0.1;
  /// Number of popular contracts (token/crowdsale/relay population).
  unsigned num_contracts = 20;
  /// Mean internal transactions per contract call (relay chain depth).
  double internal_depth = 1.5;
  /// Fraction of transactions that create contracts (gas-heavy,
  /// typically unconflicted).
  double creation_share = 0.01;
  /// Internal-transaction storm multiplier (models the 2017 underpriced-
  /// opcode DoS attacks that spike the "all TXs" curve of Figure 4a).
  double storm_factor = 0.0;
};

/// A complete chain profile.
struct ChainProfile {
  std::string name;
  DataModel model = DataModel::kAccount;
  /// Table I metadata.
  std::string consensus = "PoW";
  std::string data_source = "BigQuery";
  /// Default number of blocks a generated history uses to represent the
  /// chain's lifetime (scaled down from the real chain).
  std::uint64_t default_blocks = 1000;
  /// Display-only: the real chain's covered period.
  double start_year = 2016.0;
  double end_year = 2019.5;
  /// Target seconds between blocks (Table I context; drives PoW sims).
  double block_interval_seconds = 15.0;
  /// Whether the chain is sharded (Zilliqa) and into how many committees.
  bool sharded = false;
  unsigned num_shards = 0;
  /// Whether the chain supports smart contracts (Table I).
  bool smart_contracts = false;

  /// Era points, sorted by position, first at 0.0 and last at 1.0.
  std::vector<EraParams> eras;

  /// Interpolated parameters at a history position in [0, 1].
  EraParams at(double position) const;

  /// Year corresponding to a history position (for axis labelling).
  double year_at(double position) const {
    return start_year + position * (end_year - start_year);
  }
};

}  // namespace txconc::workload
