#include "workload/utxo_workload.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/sha256.h"

namespace txconc::workload {

namespace {

constexpr std::uint64_t kSubsidy = 50'0000'0000ULL;  // 50 coins

Bytes pubkey_for(std::uint64_t owner_seed) {
  const Hash256 h = Hash256::from_seed(owner_seed ^ 0x9b5ab1c0ffee5eedULL);
  return Bytes(h.bytes.begin(), h.bytes.end());
}

}  // namespace

UtxoWorkloadGenerator::UtxoWorkloadGenerator(ChainProfile profile,
                                             std::uint64_t seed,
                                             std::uint64_t num_blocks,
                                             UtxoWorkloadOptions options)
    : profile_(std::move(profile)),
      rng_(seed),
      num_blocks_(num_blocks == 0 ? profile_.default_blocks : num_blocks),
      options_(options) {
  if (profile_.model != DataModel::kUtxo) {
    throw UsageError("UtxoWorkloadGenerator needs a UTXO-model profile");
  }
}

utxo::Script UtxoWorkloadGenerator::lock_for(std::uint64_t owner_seed) const {
  if (!options_.with_scripts) return {};
  const Bytes pubkey = pubkey_for(owner_seed);
  return utxo::p2pkh_lock(Hash256::digest_of(pubkey));
}

utxo::Script UtxoWorkloadGenerator::unlock_for(const Spendable& coin,
                                               const Hash256& sighash) const {
  if (!options_.with_scripts) return {};
  (void)coin;
  return utxo::p2pkh_unlock(pubkey_for(coin.owner_seed), sighash);
}

UtxoWorkloadGenerator::Spendable UtxoWorkloadGenerator::take_from_pool() {
  if (pool_.empty()) throw UsageError("spendable pool exhausted");
  const std::size_t index = rng_.uniform(pool_.size());
  Spendable coin = pool_[index];
  pool_[index] = pool_.back();
  pool_.pop_back();
  return coin;
}

const utxo::Transaction& UtxoWorkloadGenerator::emit_tx(
    std::vector<Spendable> coins, std::size_t num_outputs,
    std::vector<utxo::Transaction>& block,
    std::vector<Spendable>& block_spendables, bool chain_mode) {
  std::uint64_t total = 0;
  for (const Spendable& c : coins) total += c.value;
  if (total < num_outputs) num_outputs = 1;

  // Outputs: split the value across fresh owners (fee-free so that value
  // conservation is a checkable invariant of generated histories).
  // Chain mode mimics the paper's Figure 6 sweeps: a small payment plus a
  // change output carrying almost everything, so chains can run long.
  std::vector<utxo::TxOutput> outputs;
  std::vector<std::uint64_t> owners;
  std::uint64_t remaining = total;
  for (std::size_t i = 0; i < num_outputs; ++i) {
    std::uint64_t v;
    if (i + 1 == num_outputs) {
      v = remaining;
    } else if (chain_mode) {
      v = std::max<std::uint64_t>(total / 100, 1);
    } else {
      v = total / num_outputs;
    }
    v = std::min(v, remaining);
    const std::uint64_t owner = next_owner_seed_++;
    outputs.push_back({v, lock_for(owner)});
    owners.push_back(owner);
    remaining -= v;
  }

  std::vector<utxo::TxInput> inputs;
  inputs.reserve(coins.size());
  for (const Spendable& c : coins) {
    utxo::TxInput in;
    in.prevout = c.outpoint;
    inputs.push_back(std::move(in));
  }

  if (options_.with_scripts) {
    const utxo::Transaction unsigned_tx(inputs, outputs);
    const Hash256 sighash = unsigned_tx.sighash();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      inputs[i].unlock = unlock_for(coins[i], sighash);
    }
  }

  utxo::Transaction tx(std::move(inputs), std::move(outputs));
  utxo_set_.apply(tx, {.run_scripts = options_.with_scripts});
  block.push_back(std::move(tx));
  const utxo::Transaction& placed = block.back();
  for (std::uint32_t i = 0; i < placed.outputs().size(); ++i) {
    block_spendables.push_back(
        {{placed.txid(), i}, placed.outputs()[i].value, owners[i]});
  }
  return placed;
}

GeneratedBlock UtxoWorkloadGenerator::next_block() {
  if (height_ >= num_blocks_) {
    throw UsageError("UtxoWorkloadGenerator: history exhausted");
  }
  const double position =
      num_blocks_ <= 1 ? 0.0
                       : static_cast<double>(height_) /
                             static_cast<double>(num_blocks_ - 1);
  const EraParams era = profile_.at(position);

  GeneratedBlock result;
  result.height = height_;
  result.model = DataModel::kUtxo;

  // Target regular-transaction count for this block.
  const double raw =
      rng_.normal(era.txs_per_block, 0.2 * era.txs_per_block + 0.5);
  std::size_t target = raw <= 0.0 ? 0 : static_cast<std::size_t>(raw + 0.5);

  auto& block = result.utxo_txs;
  std::vector<Spendable> block_spendables;

  // Coinbase (index 0, ignored by the conflict analysis).
  const std::uint64_t coinbase_owner = next_owner_seed_++;
  const utxo::Transaction coinbase = utxo::Transaction::coinbase(
      kSubsidy, lock_for(coinbase_owner), height_);
  utxo_set_.apply(coinbase,
                  {.run_scripts = options_.with_scripts, .allow_minting = true});
  block.push_back(coinbase);

  std::size_t emitted = 0;

  // Consolidation event: one batching system chains through nearly the
  // whole block (the paper's block-358624 outlier).
  if (target >= 20 && !pool_.empty() && rng_.bernoulli(era.mega_sweep_prob)) {
    const std::size_t chain_target =
        target - std::max<std::size_t>(target / 50, 1);
    Spendable tip = take_from_pool();
    while (emitted < chain_target && tip.value > 4) {
      const utxo::Transaction& tx =
          emit_tx({tip}, 2, block, block_spendables, /*chain_mode=*/true);
      result.num_input_txos += tx.inputs().size();
      ++emitted;
      tip = block_spendables.back();
      block_spendables.pop_back();
    }
    block_spendables.push_back(tip);
  }

  // Sweep chains: sequences of transactions each spending the previous
  // one's change output (the Figure 6 pattern).
  const std::uint64_t num_sweeps = rng_.poisson(era.sweeps_per_block);
  for (std::uint64_t s = 0; s < num_sweeps && emitted < target; ++s) {
    if (pool_.empty()) break;
    Spendable tip = take_from_pool();
    do {
      const utxo::Transaction& tx =
          emit_tx({tip}, 2, block, block_spendables, /*chain_mode=*/true);
      result.num_input_txos += tx.inputs().size();
      ++emitted;
      // Continue the chain from the change output just created.
      tip = block_spendables.back();
      block_spendables.pop_back();
    } while (emitted < target && tip.value > 4 &&
             rng_.bernoulli(era.sweep_continue_prob));
    block_spendables.push_back(tip);  // leave the final tip spendable later
  }

  // Regular transactions.
  while (emitted < target && !pool_.empty()) {
    const std::size_t wanted_inputs =
        1 + static_cast<std::size_t>(
                rng_.poisson(std::max(era.inputs_per_tx - 1.0, 0.0)));
    std::vector<Spendable> coins;

    // Chain spend: re-use an output created earlier in this block.
    if (!block_spendables.empty() && rng_.bernoulli(era.chain_spend_prob)) {
      const std::size_t index = rng_.uniform(block_spendables.size());
      coins.push_back(block_spendables[index]);
      block_spendables[index] = block_spendables.back();
      block_spendables.pop_back();
    }
    while (coins.size() < wanted_inputs && !pool_.empty()) {
      coins.push_back(take_from_pool());
    }
    if (coins.empty()) break;

    // Fan out while the pool is being grown towards its target, otherwise
    // keep the classic payment + change shape.
    const std::size_t num_outputs =
        pool_.size() < options_.pool_target ? 3 : 2;
    const utxo::Transaction& tx =
        emit_tx(std::move(coins), num_outputs, block, block_spendables);
    result.num_input_txos += tx.inputs().size();
    ++emitted;
  }

  // Outputs created in this block (and the coinbase) become spendable.
  pool_.insert(pool_.end(), block_spendables.begin(), block_spendables.end());
  pool_.push_back({{coinbase.txid(), 0}, kSubsidy, coinbase_owner});

  ++height_;
  return result;
}

}  // namespace txconc::workload
