#include "workload/account_workload.h"

#include <algorithm>
#include <cmath>

#include "account/contracts.h"
#include "common/error.h"
#include "shard/sharding.h"

namespace txconc::workload {

namespace {

constexpr std::uint64_t kUserSeedBase = 0x1000'0000ULL;
constexpr std::uint64_t kExchangeSeedBase = 0x2000'0000ULL;
constexpr std::uint64_t kPoolSeedBase = 0x3000'0000ULL;
constexpr std::uint64_t kContractSeedBase = 0x4000'0000ULL;
constexpr std::uint64_t kSinkSeedBase = 0x5000'0000ULL;

constexpr std::uint64_t kRichBalance = 1'000'000'000'000'000ULL;
constexpr std::uint64_t kLowWater = 1'000'000'000'000ULL;

constexpr unsigned kNumPools = 3;
constexpr unsigned kMaxRelayDepth = 12;

}  // namespace

Address AccountWorkloadGenerator::user_address(std::size_t i) {
  return Address::from_seed(kUserSeedBase + i);
}

Address AccountWorkloadGenerator::exchange_address(std::size_t i) {
  return Address::from_seed(kExchangeSeedBase + i);
}

Address AccountWorkloadGenerator::pool_address(std::size_t i) {
  return Address::from_seed(kPoolSeedBase + i);
}

AccountWorkloadGenerator::AccountWorkloadGenerator(ChainProfile profile,
                                                   std::uint64_t seed,
                                                   std::uint64_t num_blocks)
    : profile_(std::move(profile)),
      rng_(seed),
      num_blocks_(num_blocks == 0 ? profile_.default_blocks : num_blocks) {
  if (profile_.model != DataModel::kAccount) {
    throw UsageError("AccountWorkloadGenerator needs an account-model profile");
  }
  deploy_contracts(profile_.at(0.0));
  state_.flush_journal();
}

void AccountWorkloadGenerator::deploy_contracts(const EraParams& genesis_era) {
  using account::contracts::auction;
  using account::contracts::crowdsale;
  using account::contracts::relay;
  using account::contracts::storage_churn;
  using account::contracts::token;

  const unsigned count = std::max(4u, genesis_era.num_contracts);
  contracts_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    const Address addr = Address::from_seed(kContractSeedBase + i);
    DeployedContract deployed{addr, ContractKind::kToken, 0};
    switch (i % 4) {
      case 0: {
        // Relay chain: addr -> hop1 -> ... -> sink. Short chains are
        // common; a few deep ones exist for internal-tx storms.
        // Guarantee a few deep chains for storm eras; most are short.
        const unsigned depth =
            (i < 4)    ? 1 + i % 3
            : (i == 4) ? 8
            : (i == 8) ? kMaxRelayDepth
                       : 1 + static_cast<unsigned>(rng_.uniform(4));
        // Deep chains converge on a shared backend hub (DeFi-style: many
        // frontends, one popular backend) — conflicts that only internal
        // transactions reveal, invisible to the regular-only TDG.
        const Address next_base =
            depth >= 5 ? Address::from_seed(kSinkSeedBase + 0xbb)
                       : Address::from_seed(kSinkSeedBase + i);
        Address next = next_base;
        for (unsigned hop = depth; hop > 1; --hop) {
          const Address hop_addr =
              Address::from_seed(kContractSeedBase + 0x10000ULL + i * 64 + hop);
          account::genesis_deploy(state_, hop_addr, relay(next));
          next = hop_addr;
        }
        account::genesis_deploy(state_, addr, relay(next));
        deployed.kind = ContractKind::kRelayChain;
        deployed.relay_depth = depth;
        break;
      }
      case 1:
        // Owner and beneficiaries are dedicated sink addresses — using an
        // exchange here would spuriously merge contract components with
        // exchange components.
        account::genesis_deploy(
            state_, addr, token(Address::from_seed(kSinkSeedBase + 0x900 + i)));
        deployed.kind = ContractKind::kToken;
        break;
      case 2:
        if (i % 8 == 6) {
          // ICO-style auctions: every bidder conflicts through the hot
          // contract, and losing bids revert on-chain.
          account::genesis_deploy(
              state_, addr,
              auction(Address::from_seed(kSinkSeedBase + 0xc00 + i)));
          deployed.kind = ContractKind::kAuction;
        } else {
          // Crowdsales forward to one of two escrow services — another
          // shared-backend pattern visible only through internal
          // transfers.
          account::genesis_deploy(
              state_, addr,
              crowdsale(Address::from_seed(kSinkSeedBase + 0xa00 + i % 2)));
          deployed.kind = ContractKind::kCrowdsale;
        }
        break;
      default:
        account::genesis_deploy(state_, addr, storage_churn());
        deployed.kind = ContractKind::kChurn;
        break;
    }
    contracts_.push_back(deployed);
  }
}

const ZipfSampler& AccountWorkloadGenerator::user_sampler(
    std::size_t num_users) {
  num_users = std::max<std::size_t>(num_users, 2);
  const double current = static_cast<double>(sampled_users_);
  const double wanted = static_cast<double>(num_users);
  if (!users_ || std::abs(current - wanted) / wanted > 0.05) {
    const double exponent = user_zipf_;
    users_ = std::make_unique<ZipfSampler>(num_users, exponent);
    sampled_users_ = num_users;
  }
  return *users_;
}

Address AccountWorkloadGenerator::pick_user(const EraParams& era,
                                            Category category) {
  user_zipf_ = era.user_zipf;
  const ZipfSampler& sampler =
      user_sampler(static_cast<std::size_t>(era.num_users));
  const std::size_t rank = sampler.sample(rng_);
  // Whales participate in every traffic category and bridge components.
  if (category == Category::kWhale || rng_.bernoulli(era.population_overlap)) {
    return user_address(rank);
  }
  const std::uint64_t offset =
      static_cast<std::uint64_t>(category) * 0x0100'0000ULL;
  return user_address(offset + rank);
}

Address AccountWorkloadGenerator::pick_user_in_shard(const EraParams& era,
                                                     Category category,
                                                     unsigned shard) {
  if (!profile_.sharded) return pick_user(era, category);
  for (int attempt = 0; attempt < 200; ++attempt) {
    const Address candidate = pick_user(era, category);
    if (shard::shard_of(candidate, profile_.num_shards) == shard) {
      return candidate;
    }
  }
  // Population too small to contain the shard; fall back (rare).
  return pick_user(era, category);
}

void AccountWorkloadGenerator::top_up(const Address& addr) {
  if (state_.balance(addr) < kLowWater) {
    state_.set_balance(addr, kRichBalance);
    state_.flush_journal();
  }
}

account::AccountTx AccountWorkloadGenerator::make_p2p(const EraParams& era) {
  account::AccountTx tx;
  tx.from = pick_user(era, Category::kP2p);
  if (profile_.sharded) {
    tx.to = pick_user_in_shard(era, Category::kP2p,
                               shard::shard_of(tx.from, profile_.num_shards));
  } else {
    tx.to = pick_user(era, Category::kP2p);
  }
  tx.value = 1 + rng_.uniform(1'000'000);
  tx.gas_limit = 22000;
  return tx;
}

account::AccountTx AccountWorkloadGenerator::make_exchange_deposit(
    const EraParams& era) {
  account::AccountTx tx;
  tx.from = pick_user(era, Category::kDepositor);
  // One dominant exchange (Poloniex-style), the rest splitting the tail.
  const unsigned n = std::max(1u, era.num_exchanges);
  unsigned pick = rng_.bernoulli(0.5)
                      ? 0
                      : 1 + static_cast<unsigned>(rng_.uniform(std::max(1u, n - 1)));
  if (pick >= n) pick = 0;
  if (profile_.sharded) {
    // Zilliqa exchanges operate one deposit address per committee; users
    // deposit at the one within their own shard. Scan past the first n
    // indices to find an address landing in the right committee.
    const unsigned shard = shard::shard_of(tx.from, profile_.num_shards);
    for (unsigned j = pick;; ++j) {
      if (shard::shard_of(exchange_address(j), profile_.num_shards) == shard) {
        pick = j;
        break;
      }
    }
  }
  tx.to = exchange_address(pick);
  tx.value = 1 + rng_.uniform(10'000'000);
  tx.gas_limit = 22000;
  return tx;
}

account::AccountTx AccountWorkloadGenerator::make_pool_payout(
    const EraParams& era) {
  account::AccountTx tx;
  tx.from = pool_address(rng_.uniform(kNumPools));
  tx.to = pick_user(era, Category::kPoolRecipient);
  if (profile_.sharded) {
    tx.to = pick_user_in_shard(era, Category::kPoolRecipient,
                               shard::shard_of(tx.from, profile_.num_shards));
  }
  tx.value = 1 + rng_.uniform(100'000);
  tx.gas_limit = 22000;
  return tx;
}

account::AccountTx AccountWorkloadGenerator::make_contract_call(
    const EraParams& era) {
  account::AccountTx tx;
  tx.from = pick_user(era, Category::kCaller);

  // Storms route calls to the deepest relay chains available.
  const bool storm = era.storm_factor > 0.0 && rng_.bernoulli(era.storm_factor);
  const DeployedContract* chosen = nullptr;
  if (storm) {
    // Storms spread across all deep relay chains rather than hammering a
    // single contract (the 2017 attacks used many attack contracts).
    std::vector<const DeployedContract*> deep;
    for (const auto& c : contracts_) {
      if (c.kind == ContractKind::kRelayChain && c.relay_depth >= 5) {
        deep.push_back(&c);
      }
    }
    if (!deep.empty()) chosen = deep[rng_.uniform(deep.size())];
  }
  if (!chosen) {
    // Zipf-ish popularity over the contract population.
    const std::size_t limit =
        std::min<std::size_t>(contracts_.size(),
                              std::max<unsigned>(era.num_contracts, 4));
    std::size_t index = rng_.uniform(limit);
    if (rng_.bernoulli(0.5)) index = rng_.uniform(std::max<std::size_t>(limit / 4, 1));
    chosen = &contracts_[index];
  }

  tx.to = chosen->address;
  if (profile_.sharded) {
    // Contracts live in one committee; their callers come from it.
    tx.from = pick_user_in_shard(
        era, Category::kCaller,
        shard::shard_of(chosen->address, profile_.num_shards));
  }
  switch (chosen->kind) {
    case ContractKind::kRelayChain:
      tx.value = 1 + rng_.uniform(10'000);
      tx.args = {rng_.next_u64() % 1000};
      tx.gas_limit = 25000 + 4000ULL * (chosen->relay_depth + 1);
      break;
    case ContractKind::kToken: {
      const Address recipient = pick_user(era, Category::kCaller);
      // Ensure the sender owns tokens so transfers mostly succeed.
      const account::StorageKey key = tx.from.low64();
      if (state_.storage(chosen->address, key) < 1'000'000) {
        state_.set_storage(chosen->address, key, kRichBalance);
        state_.flush_journal();
      }
      tx.args = {1, 1 + rng_.next_u64() % 10'000};
      tx.address_args = {recipient};
      tx.gas_limit = 80000;
      break;
    }
    case ContractKind::kCrowdsale:
      tx.value = 1 + rng_.uniform(1'000'000);
      tx.gas_limit = 80000;
      break;
    case ContractKind::kChurn: {
      const std::uint64_t slots = 3 + rng_.uniform(8);
      tx.args = {slots, rng_.next_u64() % 100000};
      tx.gas_limit = 30000 + slots * 5200;
      break;
    }
    case ContractKind::kAuction: {
      // Rational bidders read the current price and outbid it; a small
      // fraction race each other and revert on-chain.
      const std::uint64_t highest = state_.storage(chosen->address, 0);
      tx.value = highest + 1 + rng_.uniform(10'000);
      if (rng_.bernoulli(0.15)) tx.value = highest;  // stale-price race
      tx.args = {0};
      tx.gas_limit = 80000;
      break;
    }
  }
  return tx;
}

account::AccountTx AccountWorkloadGenerator::make_creation(
    const EraParams& era) {
  account::AccountTx tx;
  tx.from = pick_user(era, Category::kCaller);
  tx.to.reset();
  // Deploy a fresh churn contract (creations are gas-heavy and usually
  // unconflicted: "it is unusual for a single user to create more than one
  // contract per block due to the high cost", paper Section IV-A).
  tx.init_code = account::contracts::storage_churn();
  tx.gas_limit = 21000 + account::creation_gas(runtime_.gas,
                                               tx.init_code.code.size()) +
                 10000;
  ++creation_counter_;
  return tx;
}

GeneratedBlock AccountWorkloadGenerator::next_block() {
  if (height_ >= num_blocks_) {
    throw UsageError("AccountWorkloadGenerator: history exhausted");
  }
  const double position =
      num_blocks_ <= 1 ? 0.0
                       : static_cast<double>(height_) /
                             static_cast<double>(num_blocks_ - 1);
  const EraParams era = profile_.at(position);

  GeneratedBlock result;
  result.height = height_;
  result.model = DataModel::kAccount;

  const double raw =
      rng_.normal(era.txs_per_block, 0.2 * era.txs_per_block + 0.5);
  const std::size_t target = raw <= 0.0 ? 0 : static_cast<std::size_t>(raw + 0.5);

  for (std::size_t i = 0; i < target; ++i) {
    const double u = rng_.uniform_double();
    account::AccountTx tx;
    if (u < era.creation_share) {
      tx = make_creation(era);
    } else if (u < era.creation_share + era.pool_share) {
      tx = make_pool_payout(era);
    } else if (u < era.creation_share + era.pool_share + era.exchange_share) {
      tx = make_exchange_deposit(era);
    } else if (u < era.creation_share + era.pool_share + era.exchange_share +
                       era.contract_share) {
      tx = make_contract_call(era);
    } else {
      tx = make_p2p(era);
    }

    tx.gas_price = 1 + rng_.uniform(50);
    top_up(tx.from);
    tx.nonce = state_.nonce(tx.from);

    account::Receipt receipt = account::apply_transaction(state_, tx, runtime_);
    result.gas_used += receipt.gas_used;
    result.account_txs.push_back(std::move(tx));
    result.receipts.push_back(std::move(receipt));
  }
  state_.flush_journal();

  ++height_;
  return result;
}

}  // namespace txconc::workload
