// The seven chain profiles of Table I, calibrated against the paper's
// measured history series. See profiles.cpp for the calibration notes.
#pragma once

#include <vector>

#include "workload/profile.h"

namespace txconc::workload {

ChainProfile bitcoin_profile();
ChainProfile bitcoin_cash_profile();
ChainProfile litecoin_profile();
ChainProfile dogecoin_profile();
ChainProfile ethereum_profile();
ChainProfile ethereum_classic_profile();
ChainProfile zilliqa_profile();

/// All seven, in Table I order.
std::vector<ChainProfile> all_profiles();

}  // namespace txconc::workload
