// Synthetic account-chain generator (Ethereum, Ethereum Classic, Zilliqa).
//
// Every block is executed for real against a StateDb through the account
// runtime, so internal transactions and gas figures in the receipts are
// genuine VM traces, exactly as the paper's internal transactions are
// genuine geth traces. Conflict structure emerges from:
//  * exchange deposit fan-in (Figure 1b's Poloniex pattern);
//  * mining-pool payout bursts from hot senders (Figure 1a's DwarfPool);
//  * Zipf-concentrated user activity;
//  * contract calls, including relay chains that generate internal txs;
//  * gas-heavy contract creations (typically unconflicted).
#pragma once

#include <memory>
#include <optional>

#include "account/runtime.h"
#include "account/state.h"
#include "common/rng.h"
#include "workload/history.h"

namespace txconc::workload {

class AccountWorkloadGenerator final : public HistoryGenerator {
 public:
  AccountWorkloadGenerator(ChainProfile profile, std::uint64_t seed,
                           std::uint64_t num_blocks = 0);

  GeneratedBlock next_block() override;
  std::uint64_t num_blocks() const override { return num_blocks_; }
  const ChainProfile& profile() const override { return profile_; }

  const account::StateDb& state() const { return state_; }

  /// Deterministic address of the i-th user / exchange / pool account.
  static Address user_address(std::size_t i);
  static Address exchange_address(std::size_t i);
  static Address pool_address(std::size_t i);

 private:
  enum class ContractKind { kRelayChain, kToken, kCrowdsale, kChurn, kAuction };
  struct DeployedContract {
    Address address;
    ContractKind kind;
    unsigned relay_depth = 0;  ///< kRelayChain only.
  };

  /// Traffic categories draw from mostly disjoint sub-populations; the
  /// era's population_overlap knob routes a share of picks to the shared
  /// whale population, bridging the categories' conflict components.
  enum class Category : unsigned {
    kWhale = 0,
    kDepositor,
    kPoolRecipient,
    kCaller,
    kP2p,
  };

  void deploy_contracts(const EraParams& genesis_era);
  Address pick_user(const EraParams& era, Category category);
  Address pick_user_in_shard(const EraParams& era, Category category,
                             unsigned shard);
  const ZipfSampler& user_sampler(std::size_t num_users);
  /// Ensure an account can pay for the next transactions.
  void top_up(const Address& addr);

  account::AccountTx make_p2p(const EraParams& era);
  account::AccountTx make_exchange_deposit(const EraParams& era);
  account::AccountTx make_pool_payout(const EraParams& era);
  account::AccountTx make_contract_call(const EraParams& era);
  account::AccountTx make_creation(const EraParams& era);

  ChainProfile profile_;
  Rng rng_;
  std::uint64_t num_blocks_;
  std::uint64_t height_ = 0;

  account::StateDb state_;
  account::RuntimeConfig runtime_;
  std::vector<DeployedContract> contracts_;

  // Cached Zipf sampler, rebuilt when the era's user count shifts by >5%.
  std::unique_ptr<ZipfSampler> users_;
  std::size_t sampled_users_ = 0;
  double user_zipf_ = 0.0;

  std::uint64_t creation_counter_ = 0;
};

}  // namespace txconc::workload
