#include "account/state.h"

#include <algorithm>
#include <unordered_set>

#include "common/bytes.h"
#include "common/error.h"

namespace txconc::account {

void State::transfer(const Address& from, const Address& to,
                     std::uint64_t value) {
  debit(from, value);
  credit(to, value);
}

void State::debit(const Address& addr, std::uint64_t value) {
  // Zero-value operations must not touch state: a no-op write would still
  // be journaled and merged by overlay commits, clobbering concurrent
  // updates from other transactions.
  if (value == 0) return;
  const std::uint64_t current = balance(addr);
  if (current < value) {
    throw ValidationError("insufficient balance at " + addr.short_hex());
  }
  set_balance(addr, current - value);
}

void State::credit(const Address& addr, std::uint64_t value) {
  if (value == 0) return;
  set_balance(addr, balance(addr) + value);
}

// ------------------------------------------------------------------ WriteLog

void WriteLog::apply_to(State& target) const {
  for (const BalanceOp& op : balances_) target.set_balance(op.addr, op.value);
  for (const BalanceOp& op : nonces_) target.set_nonce(op.addr, op.value);
  for (const auto& [addr, code] : codes_) target.set_code(addr, *code);
  for (const StorageOp& op : storage_) {
    target.set_storage(op.slot.addr, op.slot.key, op.value);
  }
}

// ------------------------------------------------------------------- StateDb

const StateDb::AccountRecord* StateDb::find(const Address& addr) const {
  const auto it = accounts_.find(addr);
  return it == accounts_.end() ? nullptr : &it->second;
}

std::uint64_t StateDb::balance(const Address& addr) const {
  const AccountRecord* rec = find(addr);
  return rec ? rec->balance : 0;
}

void StateDb::set_balance(const Address& addr, std::uint64_t value) {
  AccountRecord& rec = record(addr);
  if (journaling_) journal_.push_back(BalanceEntry{addr, rec.balance});
  rec.balance = value;
}

std::uint64_t StateDb::nonce(const Address& addr) const {
  const AccountRecord* rec = find(addr);
  return rec ? rec->nonce : 0;
}

void StateDb::set_nonce(const Address& addr, std::uint64_t value) {
  AccountRecord& rec = record(addr);
  if (journaling_) journal_.push_back(NonceEntry{addr, rec.nonce});
  rec.nonce = value;
}

const ContractCode* StateDb::code(const Address& addr) const {
  const AccountRecord* rec = find(addr);
  return rec && rec->code ? rec->code.get() : nullptr;
}

void StateDb::set_code(const Address& addr, ContractCode new_code) {
  AccountRecord& rec = record(addr);
  if (journaling_) journal_.push_back(CodeEntry{addr, rec.code});
  rec.code = std::make_shared<const ContractCode>(std::move(new_code));
}

std::uint64_t StateDb::storage(const Address& addr, StorageKey key) const {
  const AccountRecord* rec = find(addr);
  if (!rec) return 0;
  const auto it = rec->storage.find(key);
  return it == rec->storage.end() ? 0 : it->second;
}

void StateDb::set_storage(const Address& addr, StorageKey key,
                          std::uint64_t value) {
  AccountRecord& rec = record(addr);
  if (journaling_) {
    const auto it = rec.storage.find(key);
    journal_.push_back(
        StorageEntry{addr, key, it == rec.storage.end() ? 0 : it->second});
  }
  rec.storage[key] = value;
}

Snapshot StateDb::snapshot() const {
  if (!journaling_) {
    // A snapshot taken now could not undo the writes it is meant to cover:
    // they skip the journal. Failing loudly here keeps a rollback path that
    // sneaks under a commit-phase JournalPause (e.g. a validity-failed
    // replay reaching VM execution) from silently persisting partial writes.
    throw UsageError("StateDb::snapshot: journaling is paused");
  }
  return journal_.size();
}

void StateDb::revert(Snapshot snap) {
  if (!journaling_) {
    throw UsageError("StateDb::revert: journaling is paused");
  }
  if (snap > journal_.size()) {
    throw UsageError("StateDb::revert: snapshot from the future");
  }
  while (journal_.size() > snap) {
    const JournalEntry entry = std::move(journal_.back());
    journal_.pop_back();
    std::visit(
        [this](const auto& e) {
          using T = std::decay_t<decltype(e)>;
          AccountRecord& rec = accounts_[e.addr];
          if constexpr (std::is_same_v<T, BalanceEntry>) {
            rec.balance = e.old_value;
          } else if constexpr (std::is_same_v<T, NonceEntry>) {
            rec.nonce = e.old_value;
          } else if constexpr (std::is_same_v<T, CodeEntry>) {
            rec.code = e.old_code;
          } else {
            rec.storage[e.key] = e.old_value;
          }
        },
        entry);
  }
}

void StateDb::flush_journal() { journal_.clear(); }

std::uint64_t StateDb::total_supply() const {
  std::uint64_t sum = 0;
  for (const auto& [addr, rec] : accounts_) sum += rec.balance;
  return sum;
}

Hash256 StateDb::account_digest(const Address& addr) const {
  const AccountRecord* rec = find(addr);
  if (rec == nullptr) return Hash256{};

  // Storage entries XOR-combined (order-independent), with zero-valued
  // slots treated as absent.
  std::array<std::uint8_t, 32> storage_acc{};
  bool any_storage = false;
  for (const auto& [key, value] : rec->storage) {
    if (value == 0) continue;
    any_storage = true;
    ByteWriter sw;
    sw.u64(key);
    sw.u64(value);
    const Hash256 sh = Hash256::digest_of(sw.data());
    for (std::size_t i = 0; i < 32; ++i) storage_acc[i] ^= sh.bytes[i];
  }
  // Accounts in their default state digest like absent accounts.
  if (rec->balance == 0 && rec->nonce == 0 && !rec->code && !any_storage) {
    return Hash256{};
  }
  ByteWriter w;
  w.raw(addr.bytes);
  w.u64(rec->balance);
  w.u64(rec->nonce);
  w.raw(storage_acc);
  if (rec->code) {
    w.bytes(rec->code->code);
    w.u32(static_cast<std::uint32_t>(rec->code->address_table.size()));
    for (const Address& a : rec->code->address_table) w.raw(a.bytes);
  }
  return Hash256::digest_of(w.data());
}

void StateDb::for_each_account(
    const std::function<void(const Address&)>& fn) const {
  for (const auto& [addr, rec] : accounts_) fn(addr);
}

Hash256 StateDb::digest() const {
  // XOR-combine per-account digests: order-independent without sorting.
  std::array<std::uint8_t, 32> acc{};
  for (const auto& [addr, rec] : accounts_) {
    const Hash256 h = account_digest(addr);
    for (std::size_t i = 0; i < 32; ++i) acc[i] ^= h.bytes[i];
  }
  Hash256 out;
  out.bytes = acc;
  return out;
}

// -------------------------------------------------------------- OverlayState

std::uint64_t OverlayState::balance(const Address& addr) const {
  const std::uint64_t* local = balances_.find(addr);
  return local != nullptr ? *local : base_->balance(addr);
}

void OverlayState::set_balance(const Address& addr, std::uint64_t value) {
  const std::uint64_t* local = balances_.find(addr);
  journal_.push_back(BalanceEntry{
      addr, local != nullptr, local != nullptr ? *local : 0});
  balances_.insert_or_assign(addr, value);
}

std::uint64_t OverlayState::nonce(const Address& addr) const {
  const std::uint64_t* local = nonces_.find(addr);
  return local != nullptr ? *local : base_->nonce(addr);
}

void OverlayState::set_nonce(const Address& addr, std::uint64_t value) {
  const std::uint64_t* local = nonces_.find(addr);
  journal_.push_back(NonceEntry{
      addr, local != nullptr, local != nullptr ? *local : 0});
  nonces_.insert_or_assign(addr, value);
}

const ContractCode* OverlayState::code(const Address& addr) const {
  const auto it = codes_.find(addr);
  return it != codes_.end() ? it->second.get() : base_->code(addr);
}

void OverlayState::set_code(const Address& addr, ContractCode new_code) {
  const auto it = codes_.find(addr);
  journal_.push_back(CodeEntry{addr, it != codes_.end(),
                               it != codes_.end() ? it->second : nullptr});
  codes_[addr] = std::make_shared<const ContractCode>(std::move(new_code));
}

std::uint64_t OverlayState::storage(const Address& addr,
                                    StorageKey key) const {
  const std::uint64_t* local = storage_.find(SlotId{addr, key});
  return local != nullptr ? *local : base_->storage(addr, key);
}

void OverlayState::set_storage(const Address& addr, StorageKey key,
                               std::uint64_t value) {
  const SlotId slot{addr, key};
  const std::uint64_t* local = storage_.find(slot);
  journal_.push_back(StorageEntry{
      slot, local != nullptr, local != nullptr ? *local : 0});
  storage_.insert_or_assign(slot, value);
}

Snapshot OverlayState::snapshot() const { return journal_.size(); }

void OverlayState::revert(Snapshot snap) {
  if (snap > journal_.size()) {
    throw UsageError("OverlayState::revert: snapshot from the future");
  }
  while (journal_.size() > snap) {
    const JournalEntry entry = std::move(journal_.back());
    journal_.pop_back();
    std::visit(
        [this](const auto& e) {
          using T = std::decay_t<decltype(e)>;
          if constexpr (std::is_same_v<T, BalanceEntry>) {
            if (e.existed) {
              balances_.insert_or_assign(e.addr, e.old_value);
            } else {
              balances_.erase(e.addr);
            }
          } else if constexpr (std::is_same_v<T, NonceEntry>) {
            if (e.existed) {
              nonces_.insert_or_assign(e.addr, e.old_value);
            } else {
              nonces_.erase(e.addr);
            }
          } else if constexpr (std::is_same_v<T, CodeEntry>) {
            if (e.existed) {
              codes_[e.addr] = e.old_code;
            } else {
              codes_.erase(e.addr);
            }
          } else {
            if (e.existed) {
              storage_.insert_or_assign(e.slot, e.old_value);
            } else {
              storage_.erase(e.slot);
            }
          }
        },
        entry);
  }
}

void OverlayState::apply_to(State& target) const {
  balances_.for_each(
      [&](const Address& addr, std::uint64_t v) { target.set_balance(addr, v); });
  nonces_.for_each(
      [&](const Address& addr, std::uint64_t v) { target.set_nonce(addr, v); });
  for (const auto& [addr, code] : codes_) target.set_code(addr, *code);
  storage_.for_each([&](const SlotId& slot, std::uint64_t v) {
    target.set_storage(slot.addr, slot.key, v);
  });
}

void OverlayState::export_writes(WriteLog& out) const {
  out.clear();
  balances_.for_each([&](const Address& addr, std::uint64_t v) {
    out.balances_.push_back({addr, v});
  });
  nonces_.for_each([&](const Address& addr, std::uint64_t v) {
    out.nonces_.push_back({addr, v});
  });
  for (const auto& [addr, code] : codes_) out.codes_.emplace_back(addr, code);
  storage_.for_each([&](const SlotId& slot, std::uint64_t v) {
    out.storage_.push_back({slot, v});
  });
}

bool OverlayState::dirty() const {
  return !balances_.empty() || !nonces_.empty() || !codes_.empty() ||
         !storage_.empty();
}

std::vector<Address> diff_accounts(const StateDb& a, const StateDb& b) {
  std::unordered_set<Address> addresses;
  a.for_each_account([&](const Address& addr) { addresses.insert(addr); });
  b.for_each_account([&](const Address& addr) { addresses.insert(addr); });
  std::vector<Address> diverged;
  for (const Address& addr : addresses) {
    if (a.account_digest(addr) != b.account_digest(addr)) {
      diverged.push_back(addr);
    }
  }
  std::sort(diverged.begin(), diverged.end());
  return diverged;
}

// ------------------------------------------------------------- AccessTracker

namespace {

void sort_unique_in_place(std::vector<SlotAccess>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

std::vector<SlotAccess> AccessTracker::reads() const {
  std::vector<SlotAccess> v = reads_;
  sort_unique_in_place(v);
  return v;
}

std::vector<SlotAccess> AccessTracker::writes() const {
  std::vector<SlotAccess> v = writes_;
  sort_unique_in_place(v);
  return v;
}

const std::vector<SlotAccess>& AccessTracker::finalize_reads() {
  sort_unique_in_place(reads_);
  return reads_;
}

const std::vector<SlotAccess>& AccessTracker::finalize_writes() {
  sort_unique_in_place(writes_);
  return writes_;
}

}  // namespace txconc::account
