// SVM — a small stack virtual machine with gas metering.
//
// Plays the role of the EVM in the reproduction: "Ethereum miners and other
// validating nodes execute the transactions in the blocks in the Ethereum
// Virtual Machine. Each operation in the EVM incurs a cost called gas."
// Contract-to-contract CALLs emit geth-style traces, which is where the
// paper's *internal transactions* come from.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "account/state.h"
#include "account/types.h"

namespace txconc::account {

/// SVM opcodes. kPush is followed by a u64 little-endian immediate;
/// kJump/kJumpi by a u32 little-endian code offset.
enum class OpCode : std::uint8_t {
  kStop = 0x00,
  kPush = 0x01,
  kPop = 0x02,
  kDup = 0x03,   ///< Duplicate top of stack.
  kSwap = 0x04,  ///< Swap top two.

  kAdd = 0x10,
  kSub = 0x11,  ///< push(a - b) where b is top.
  kMul = 0x12,
  kDiv = 0x13,  ///< push(a / b); 0 when b == 0 (EVM semantics).
  kMod = 0x14,  ///< push(a % b); 0 when b == 0.
  kLt = 0x15,   ///< push(a < b).
  kGt = 0x16,
  kEq = 0x17,
  kIsZero = 0x18,
  kAnd = 0x19,
  kOr = 0x1a,
  kXor = 0x1b,
  kNot = 0x1c,

  kJump = 0x20,   ///< Unconditional, immediate target.
  kJumpi = 0x21,  ///< Pop condition; jump when truthy.

  kCaller64 = 0x30,     ///< Push low 64 bits of the caller address.
  kSelf64 = 0x31,       ///< Push low 64 bits of the executing address.
  kCallValue = 0x32,    ///< Push the value sent with the call.
  kNumArgs = 0x33,      ///< Push the number of call arguments.
  kArg = 0x34,          ///< Pop i; push args[i] (0 when out of range).
  kSelfBalance = 0x35,  ///< Push the executing account's balance.
  kBalanceOf = 0x36,    ///< Pop address-table index; push that balance.
  kNumAddrs = 0x37,     ///< Push the size of the frame's address table.
  kAddr64 = 0x38,       ///< Pop address-table index; push that address's low 64 bits.

  kSload = 0x40,   ///< Pop key; push storage[self][key].
  kSstore = 0x41,  ///< Pop value, pop key; storage[self][key] = value.

  kLog = 0x50,  ///< Pop value; append to the receipt's logs.

  kTransfer = 0x60,  ///< Pop value, pop addr index; plain send; push 0/1.
  kCall = 0x61,      ///< Pop arg, value, addr index; call; push return.

  kReturn = 0x70,  ///< Pop value; stop frame successfully.
  kRevert = 0x71,  ///< Undo the frame's state changes; frame fails.
};

/// Gas cost table (Ethereum-flavoured magnitudes).
struct GasSchedule {
  std::uint64_t base_op = 3;
  std::uint64_t sload = 200;
  std::uint64_t sstore = 5000;
  std::uint64_t log = 375;
  std::uint64_t transfer = 9000;   ///< Value-bearing send.
  std::uint64_t call = 700;        ///< Call base, before callee execution.
  std::uint64_t tx_base = 21000;   ///< Intrinsic cost of any transaction.
  std::uint64_t create_base = 32000;
  std::uint64_t create_per_byte = 200;
};

/// Limits protecting the VM from runaway programs.
struct VmLimits {
  std::size_t max_stack = 256;
  std::uint32_t max_call_depth = 32;
};

/// Outcome of one frame execution.
struct VmResult {
  bool success = false;
  std::uint64_t return_value = 0;
  std::uint64_t gas_used = 0;
  std::string error;  ///< Empty on success.
};

/// The execution context of a frame.
struct CallContext {
  Address self;
  Address caller;
  std::uint64_t value = 0;
  std::span<const std::uint64_t> args;
  /// Address table that kTransfer/kCall/kBalanceOf indices resolve against.
  std::span<const Address> address_table;
  std::uint32_t depth = 0;
};

/// Side-channel sinks filled during execution (any may be null).
struct ExecutionHooks {
  std::vector<InternalTx>* traces = nullptr;
  AccessTracker* tracker = nullptr;
  std::vector<std::uint64_t>* logs = nullptr;
};

/// The virtual machine. Stateless apart from the bound State reference;
/// one instance may execute many frames sequentially.
class Vm {
 public:
  explicit Vm(State& state, GasSchedule gas = {}, VmLimits limits = {})
      : state_(state), gas_(gas), limits_(limits) {}

  /// Execute a code object within a context under a gas budget.
  ///
  /// On failure the frame's state changes are rolled back. Out-of-gas
  /// consumes the entire budget; an explicit kRevert consumes only what ran.
  VmResult execute(const ContractCode& code, const CallContext& context,
                   std::uint64_t gas_limit, const ExecutionHooks& hooks);

  const GasSchedule& gas_schedule() const { return gas_; }

 private:
  State& state_;
  GasSchedule gas_;
  VmLimits limits_;
};

}  // namespace txconc::account
