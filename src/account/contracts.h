// SVM assembler and the built-in contract library.
//
// The contracts model the workload patterns the paper identifies as the
// sources of account-model conflicts: exchange hot wallets (Poloniex in
// Figure 1b), chained contract calls producing internal transactions, token
// transfers, and gas-heavy storage churn (the 2017 DoS-attack spikes in
// Figure 4a).
#pragma once

#include <string>
#include <unordered_map>

#include "account/types.h"
#include "account/vm.h"

namespace txconc::account {

/// Tiny assembler with label fix-up for SVM bytecode.
class Assembler {
 public:
  Assembler& op(OpCode opcode);
  Assembler& push(std::uint64_t value);
  /// Jump to a label (forward references allowed).
  Assembler& jump(const std::string& label);
  Assembler& jumpi(const std::string& label);
  /// Bind a label to the current position.
  Assembler& label(const std::string& name);

  /// Resolve labels and return the bytecode. Throws UsageError on
  /// unresolved labels.
  Bytes build();

 private:
  Bytes code_;
  std::unordered_map<std::string, std::uint32_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;
};

namespace contracts {

/// ERC20-style token. Balances live in storage keyed by address low64.
///   args[0] == 0: mint(args[1]) — only the owner may mint.
///   args[0] == 1: transfer(args[1]) to address_args[0] — moves token
///                 balance from caller to recipient; returns 1 on success.
///   args[0] == 2: balance_of(caller) — returns the caller's balance.
ContractCode token(const Address& owner);

/// Exchange hot wallet: any call sweeps the wallet's entire balance
/// (including the call value) to the cold-storage address. This is the
/// fan-in pattern of Figure 1b's Poloniex deposits.
ContractCode hot_wallet(const Address& cold_storage);

/// Mining-pool payout splitter: splits the call value evenly across all
/// dynamic address arguments (one TRANSFER trace per recipient).
ContractCode payout_splitter();

/// Call relay: forwards (value, args[0]) to the next hop, mimicking the
/// chained unverified contracts of Figure 1b (tx -> contract -> contract
/// -> ElcoinDb). Returns 1 + the downstream return value.
ContractCode relay(const Address& next_hop);

/// Crowdsale: records each caller's cumulative contribution in storage and
/// forwards the funds to the beneficiary.
ContractCode crowdsale(const Address& beneficiary);

/// Storage churn: writes args[0] distinct storage slots (starting at
/// args[1]) — a gas-heavy load used to model the 2017 DoS-style internal
/// transaction storms and to stress gas-weighted metrics.
ContractCode storage_churn();

/// English auction with pull-payment refunds.
///   args[0] == 0: bid — the attached value must beat the current highest
///                 bid or the call reverts (value bounces back). The
///                 previous leader's bid becomes withdrawable.
///   args[0] == 1: withdraw — pays the caller's withdrawable balance to
///                 address_args[0], which must be the caller itself
///                 (verified via its low-64 tag).
///   args[0] == 2: close — pays the highest bid to the beneficiary and
///                 rejects further bids. Call without address_args so the
///                 static table (the beneficiary) is in scope.
/// Storage: slot 0 = highest bid, slot 1 = leader tag, slot 2 = closed,
/// slot caller-low64 = withdrawable refund.
ContractCode auction(const Address& beneficiary);

}  // namespace contracts
}  // namespace txconc::account
