#include "account/contracts.h"

#include "common/error.h"

namespace txconc::account {

Assembler& Assembler::op(OpCode opcode) {
  code_.push_back(static_cast<std::uint8_t>(opcode));
  return *this;
}

Assembler& Assembler::push(std::uint64_t value) {
  op(OpCode::kPush);
  for (std::size_t i = 0; i < 8; ++i) {
    code_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  return *this;
}

Assembler& Assembler::jump(const std::string& label) {
  op(OpCode::kJump);
  fixups_.emplace_back(code_.size(), label);
  code_.insert(code_.end(), 4, 0);
  return *this;
}

Assembler& Assembler::jumpi(const std::string& label) {
  op(OpCode::kJumpi);
  fixups_.emplace_back(code_.size(), label);
  code_.insert(code_.end(), 4, 0);
  return *this;
}

Assembler& Assembler::label(const std::string& name) {
  const auto [it, inserted] =
      labels_.emplace(name, static_cast<std::uint32_t>(code_.size()));
  if (!inserted) throw UsageError("Assembler: duplicate label " + name);
  return *this;
}

Bytes Assembler::build() {
  for (const auto& [pos, name] : fixups_) {
    const auto it = labels_.find(name);
    if (it == labels_.end()) {
      throw UsageError("Assembler: unresolved label " + name);
    }
    const std::uint32_t target = it->second;
    for (std::size_t i = 0; i < 4; ++i) {
      code_[pos + i] = static_cast<std::uint8_t>(target >> (8 * i));
    }
  }
  fixups_.clear();
  return code_;
}

namespace contracts {

ContractCode token(const Address& owner) {
  Assembler a;
  // Dispatch on args[0].
  a.push(0).op(OpCode::kArg);                         // [op]
  a.op(OpCode::kDup).push(0).op(OpCode::kEq).jumpi("mint");
  a.op(OpCode::kDup).push(1).op(OpCode::kEq).jumpi("transfer");
  a.op(OpCode::kDup).push(2).op(OpCode::kEq).jumpi("balance");
  a.push(0).op(OpCode::kReturn);                      // unknown op -> 0

  a.label("mint");
  a.op(OpCode::kPop);                                 // []
  a.op(OpCode::kCaller64).push(owner.low64()).op(OpCode::kEq)
      .op(OpCode::kIsZero).jumpi("failret");
  a.op(OpCode::kCaller64).op(OpCode::kDup).op(OpCode::kSload);  // [key, bal]
  a.push(1).op(OpCode::kArg).op(OpCode::kAdd);        // [key, bal+amt]
  a.op(OpCode::kSstore);
  a.push(1).op(OpCode::kReturn);

  a.label("transfer");
  a.op(OpCode::kPop);                                 // []
  // Insufficient balance?  storage[caller] < amount -> fail.
  a.op(OpCode::kCaller64).op(OpCode::kSload);         // [from_bal]
  a.push(1).op(OpCode::kArg);                         // [from_bal, amt]
  a.op(OpCode::kLt).jumpi("failret");                 // from_bal < amt
  // storage[caller] -= amount
  a.op(OpCode::kCaller64).op(OpCode::kDup).op(OpCode::kSload);  // [key, fb]
  a.push(1).op(OpCode::kArg).op(OpCode::kSub);        // [key, fb-amt]
  a.op(OpCode::kSstore);
  // storage[address_args[0]] += amount
  a.push(0).op(OpCode::kAddr64);                      // [tkey]
  a.op(OpCode::kDup).op(OpCode::kSload);              // [tkey, tb]
  a.push(1).op(OpCode::kArg).op(OpCode::kAdd);        // [tkey, tb+amt]
  a.op(OpCode::kSstore);
  a.push(1).op(OpCode::kReturn);

  a.label("balance");
  a.op(OpCode::kPop);
  a.op(OpCode::kCaller64).op(OpCode::kSload).op(OpCode::kReturn);

  a.label("failret");
  a.push(0).op(OpCode::kReturn);

  return ContractCode{a.build(), {}};
}

ContractCode hot_wallet(const Address& cold_storage) {
  Assembler a;
  // Sweep the whole balance (deposit included) to cold storage.
  a.push(0);                     // address-table index of cold storage
  a.op(OpCode::kSelfBalance);    // [idx, balance]
  a.op(OpCode::kTransfer);       // [ok]
  a.op(OpCode::kReturn);
  return ContractCode{a.build(), {cold_storage}};
}

ContractCode payout_splitter() {
  Assembler a;
  a.push(0);                                         // [i]
  a.label("loop");
  a.op(OpCode::kDup);                                // [i, i]
  a.op(OpCode::kNumAddrs).op(OpCode::kLt);           // [i, i<n]
  a.op(OpCode::kIsZero).jumpi("end");                // [i]
  a.op(OpCode::kDup);                                // [i, i]
  a.op(OpCode::kCallValue).op(OpCode::kNumAddrs).op(OpCode::kDiv);
  a.op(OpCode::kTransfer);                           // [i, ok]
  a.op(OpCode::kPop);                                // [i]
  a.push(1).op(OpCode::kAdd);                        // [i+1]
  a.jump("loop");
  a.label("end");
  a.op(OpCode::kPop);
  a.push(1).op(OpCode::kReturn);
  return ContractCode{a.build(), {}};
}

ContractCode relay(const Address& next_hop) {
  Assembler a;
  a.push(0);                     // next hop index
  a.op(OpCode::kCallValue);      // [idx, value]
  a.push(0).op(OpCode::kArg);    // [idx, value, args[0]]
  a.op(OpCode::kCall);           // [ret]
  a.push(1).op(OpCode::kAdd);    // hop counter: ret + 1
  a.op(OpCode::kReturn);
  return ContractCode{a.build(), {next_hop}};
}

ContractCode crowdsale(const Address& beneficiary) {
  Assembler a;
  // storage[caller] += callvalue
  a.op(OpCode::kCaller64).op(OpCode::kDup).op(OpCode::kSload);
  a.op(OpCode::kCallValue).op(OpCode::kAdd);
  a.op(OpCode::kSstore);
  // Forward the contribution.
  a.push(0).op(OpCode::kCallValue).op(OpCode::kTransfer);
  a.op(OpCode::kPop);
  a.push(1).op(OpCode::kReturn);
  return ContractCode{a.build(), {beneficiary}};
}

ContractCode storage_churn() {
  Assembler a;
  a.push(0);                                          // [i]
  a.label("loop");
  a.op(OpCode::kDup).push(0).op(OpCode::kArg);        // [i, i, n]
  a.op(OpCode::kLt).op(OpCode::kIsZero).jumpi("end"); // [i]
  a.op(OpCode::kDup).push(1).op(OpCode::kArg).op(OpCode::kAdd);  // [i, key]
  a.op(OpCode::kDup).op(OpCode::kSstore);             // store key at key -> [i]
  a.push(1).op(OpCode::kAdd);                         // [i+1]
  a.jump("loop");
  a.label("end");
  a.op(OpCode::kPop);
  a.push(1).op(OpCode::kReturn);
  return ContractCode{a.build(), {}};
}

ContractCode auction(const Address& beneficiary) {
  Assembler a;
  a.push(0).op(OpCode::kArg);                          // [op]
  a.op(OpCode::kDup).push(0).op(OpCode::kEq).jumpi("bid");
  a.op(OpCode::kDup).push(1).op(OpCode::kEq).jumpi("withdraw");
  a.op(OpCode::kDup).push(2).op(OpCode::kEq).jumpi("close");
  a.op(OpCode::kRevert);                               // unknown op

  // ---- bid ----
  a.label("bid");
  a.op(OpCode::kPop);                                  // []
  // Closed or not beating the current highest: revert (value bounces).
  a.push(2).op(OpCode::kSload).jumpi("fail");
  a.op(OpCode::kCallValue).push(0).op(OpCode::kSload); // [v, hi]
  a.op(OpCode::kGt).op(OpCode::kIsZero).jumpi("fail"); // v > hi required
  // Refund the previous leader into its withdrawable slot (skip when
  // there is no previous leader).
  a.push(1).op(OpCode::kSload).op(OpCode::kIsZero).jumpi("record");
  a.push(1).op(OpCode::kSload);                        // [pk]
  a.op(OpCode::kDup).op(OpCode::kSload);               // [pk, w]
  a.push(0).op(OpCode::kSload).op(OpCode::kAdd);       // [pk, w+hi]
  a.op(OpCode::kSstore);
  a.label("record");
  a.push(0).op(OpCode::kCallValue).op(OpCode::kSstore);  // highest = value
  a.push(1).op(OpCode::kCaller64).op(OpCode::kSstore);   // leader = caller
  a.push(1).op(OpCode::kReturn);

  // ---- withdraw ----
  a.label("withdraw");
  a.op(OpCode::kPop);
  // The payout target must be the caller itself.
  a.push(0).op(OpCode::kAddr64).op(OpCode::kCaller64).op(OpCode::kEq)
      .op(OpCode::kIsZero).jumpi("fail");
  a.op(OpCode::kCaller64).op(OpCode::kSload);           // [amount]
  a.op(OpCode::kDup).op(OpCode::kIsZero).jumpi("zero"); // nothing to pull
  a.op(OpCode::kCaller64).push(0).op(OpCode::kSstore);  // clear first
  a.push(0).op(OpCode::kSwap).op(OpCode::kTransfer);    // pay table[0]
  a.op(OpCode::kReturn);
  a.label("zero");
  a.op(OpCode::kPop);
  a.push(0).op(OpCode::kReturn);

  // ---- close ----
  a.label("close");
  a.op(OpCode::kPop);
  a.push(2).op(OpCode::kSload).jumpi("fail");           // already closed
  a.push(2).push(1).op(OpCode::kSstore);                // closed = 1
  a.push(0);                                            // beneficiary index
  a.push(0).op(OpCode::kSload);                         // [idx, highest]
  a.op(OpCode::kTransfer).op(OpCode::kPop);
  a.push(1).op(OpCode::kReturn);

  a.label("fail");
  a.op(OpCode::kRevert);

  return ContractCode{a.build(), {beneficiary}};
}

}  // namespace contracts
}  // namespace txconc::account
