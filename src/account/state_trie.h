// Authenticated state commitments: a binary Merkle trie over account
// digests, giving blocks an Ethereum-style state root plus compact
// membership proofs.
//
// Keys are addresses (traversed bit-by-bit over the first kDepth bits of
// the address hash); leaves hold the account digest. Empty subtrees hash
// to known per-level constants so sparse tries stay O(accounts).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "account/state.h"
#include "common/hash.h"

namespace txconc::account {

/// A sparse binary Merkle trie keyed by address.
class StateTrie {
 public:
  StateTrie();

  /// Insert or update the digest stored for an address.
  void update(const Address& addr, const Hash256& leaf_digest);

  /// Remove an address (resets its leaf to the empty marker).
  void erase(const Address& addr);

  /// Root hash of the trie (the block header's state root).
  Hash256 root() const;

  std::size_t size() const { return size_; }

  /// Membership proof: sibling hashes from leaf to root.
  struct Proof {
    Address address;
    Hash256 leaf;
    std::vector<Hash256> siblings;  ///< Bottom-up.
  };

  /// Prove the digest stored for an address (the empty marker when the
  /// address is absent).
  Proof prove(const Address& addr) const;

  /// Verify a proof against a root.
  static bool verify(const Proof& proof, const Hash256& root);

  /// Trie depth in bits.
  static constexpr unsigned kDepth = 48;

 private:
  struct Node {
    std::unique_ptr<Node> child[2];
    Hash256 hash;
    bool is_leaf = false;
  };

  static const std::vector<Hash256>& empty_hashes();
  static Hash256 combine(const Hash256& left, const Hash256& right);
  static bool bit_at(const Address& addr, unsigned depth);

  void update_path(Node& node, const Address& addr, unsigned depth,
                   const Hash256& leaf_digest, bool erasing);

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

/// Compute the canonical digest of one account's state (balance, nonce,
/// storage, code) as stored in trie leaves.
Hash256 account_leaf_digest(const StateDb& state, const Address& addr);

/// Build the full state trie of a StateDb — O(accounts). Used when a
/// block producer commits to its post-state.
StateTrie build_state_trie(const StateDb& state);

}  // namespace txconc::account
