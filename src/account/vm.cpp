#include "account/vm.h"

#include "common/error.h"

namespace txconc::account {

namespace {

/// Thrown inside a frame to signal out-of-gas (consumes the whole budget).
struct OutOfGas {};

/// Thrown inside a frame on a fault (bad opcode, stack underflow, ...).
struct Fault {
  std::string reason;
};

}  // namespace

VmResult Vm::execute(const ContractCode& contract, const CallContext& context,
                     std::uint64_t gas_limit, const ExecutionHooks& hooks) {
  VmResult result;
  if (context.depth > limits_.max_call_depth) {
    // Like the EVM's 1024-frame limit: the deepest CALL simply fails
    // without consuming the caller's remaining budget.
    result.error = "call depth exceeded";
    result.gas_used = 0;
    return result;
  }

  const Snapshot frame_snapshot = state_.snapshot();
  std::uint64_t gas_left = gas_limit;
  std::vector<std::uint64_t> stack;
  const Bytes& code = contract.code;
  std::size_t pc = 0;

  auto charge = [&](std::uint64_t amount) {
    if (gas_left < amount) throw OutOfGas{};
    gas_left -= amount;
  };
  auto pop = [&]() -> std::uint64_t {
    if (stack.empty()) throw Fault{"stack underflow"};
    const std::uint64_t v = stack.back();
    stack.pop_back();
    return v;
  };
  auto push = [&](std::uint64_t v) {
    if (stack.size() >= limits_.max_stack) throw Fault{"stack overflow"};
    stack.push_back(v);
  };
  auto imm_u64 = [&]() -> std::uint64_t {
    if (pc + 8 > code.size()) throw Fault{"truncated u64 immediate"};
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(code[pc + i]) << (8 * i);
    }
    pc += 8;
    return v;
  };
  auto imm_u32 = [&]() -> std::uint32_t {
    if (pc + 4 > code.size()) throw Fault{"truncated u32 immediate"};
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(code[pc + i]) << (8 * i);
    }
    pc += 4;
    return v;
  };
  auto table_address = [&](std::uint64_t index) -> const Address& {
    if (index >= context.address_table.size()) {
      throw Fault{"address table index out of range"};
    }
    return context.address_table[index];
  };

  try {
    while (pc < code.size()) {
      const OpCode op = static_cast<OpCode>(code[pc++]);
      charge(gas_.base_op);
      switch (op) {
        case OpCode::kStop:
          pc = code.size();
          break;
        case OpCode::kPush:
          push(imm_u64());
          break;
        case OpCode::kPop:
          pop();
          break;
        case OpCode::kDup: {
          if (stack.empty()) throw Fault{"dup on empty stack"};
          push(stack.back());
          break;
        }
        case OpCode::kSwap: {
          if (stack.size() < 2) throw Fault{"swap needs two items"};
          std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
          break;
        }
        case OpCode::kAdd: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(a + b);
          break;
        }
        case OpCode::kSub: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(a - b);
          break;
        }
        case OpCode::kMul: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(a * b);
          break;
        }
        case OpCode::kDiv: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(b == 0 ? 0 : a / b);
          break;
        }
        case OpCode::kMod: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(b == 0 ? 0 : a % b);
          break;
        }
        case OpCode::kLt: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(a < b ? 1 : 0);
          break;
        }
        case OpCode::kGt: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(a > b ? 1 : 0);
          break;
        }
        case OpCode::kEq: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(a == b ? 1 : 0);
          break;
        }
        case OpCode::kIsZero:
          push(pop() == 0 ? 1 : 0);
          break;
        case OpCode::kAnd: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(a & b);
          break;
        }
        case OpCode::kOr: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(a | b);
          break;
        }
        case OpCode::kXor: {
          const std::uint64_t b = pop();
          const std::uint64_t a = pop();
          push(a ^ b);
          break;
        }
        case OpCode::kNot:
          push(~pop());
          break;
        case OpCode::kJump: {
          const std::uint32_t target = imm_u32();
          if (target > code.size()) throw Fault{"jump out of range"};
          pc = target;
          break;
        }
        case OpCode::kJumpi: {
          const std::uint32_t target = imm_u32();
          if (target > code.size()) throw Fault{"jump out of range"};
          if (pop() != 0) pc = target;
          break;
        }
        case OpCode::kCaller64:
          push(context.caller.low64());
          break;
        case OpCode::kSelf64:
          push(context.self.low64());
          break;
        case OpCode::kCallValue:
          push(context.value);
          break;
        case OpCode::kNumArgs:
          push(context.args.size());
          break;
        case OpCode::kArg: {
          const std::uint64_t i = pop();
          push(i < context.args.size() ? context.args[i] : 0);
          break;
        }
        case OpCode::kSelfBalance:
          if (hooks.tracker) hooks.tracker->read_balance(context.self);
          push(state_.balance(context.self));
          break;
        case OpCode::kBalanceOf: {
          const Address& addr = table_address(pop());
          if (hooks.tracker) hooks.tracker->read_balance(addr);
          push(state_.balance(addr));
          break;
        }
        case OpCode::kNumAddrs:
          push(context.address_table.size());
          break;
        case OpCode::kAddr64:
          push(table_address(pop()).low64());
          break;
        case OpCode::kSload: {
          charge(gas_.sload);
          const std::uint64_t key = pop();
          if (hooks.tracker) hooks.tracker->read_slot(context.self, key);
          push(state_.storage(context.self, key));
          break;
        }
        case OpCode::kSstore: {
          charge(gas_.sstore);
          const std::uint64_t value = pop();
          const std::uint64_t key = pop();
          if (hooks.tracker) hooks.tracker->write_slot(context.self, key);
          state_.set_storage(context.self, key, value);
          break;
        }
        case OpCode::kLog: {
          charge(gas_.log);
          const std::uint64_t value = pop();
          if (hooks.logs) hooks.logs->push_back(value);
          break;
        }
        case OpCode::kTransfer: {
          charge(gas_.transfer);
          const std::uint64_t value = pop();
          const Address& to = table_address(pop());
          if (hooks.tracker) {
            hooks.tracker->read_balance(context.self);
            if (value > 0) {
              // Zero-value sends change nothing: no write conflict.
              hooks.tracker->write_balance(context.self);
              hooks.tracker->write_balance(to);
            }
          }
          if (state_.balance(context.self) < value) {
            push(0);  // Insufficient funds: signal failure, no fault.
            break;
          }
          state_.transfer(context.self, to, value);
          if (hooks.traces) {
            hooks.traces->push_back({context.self, to, value,
                                     TraceKind::kTransfer,
                                     context.depth + 1});
          }
          push(1);
          break;
        }
        case OpCode::kCall: {
          charge(gas_.call);
          const std::uint64_t arg = pop();
          const std::uint64_t value = pop();
          const Address& target = table_address(pop());
          if (hooks.tracker) {
            hooks.tracker->read_balance(context.self);
            if (value > 0) {
              hooks.tracker->write_balance(context.self);
              hooks.tracker->write_balance(target);
            }
          }
          if (state_.balance(context.self) < value) {
            push(0);
            break;
          }
          const Snapshot call_snapshot = state_.snapshot();
          state_.transfer(context.self, target, value);
          if (hooks.traces) {
            hooks.traces->push_back({context.self, target, value,
                                     TraceKind::kCall, context.depth + 1});
          }
          const ContractCode* callee = state_.code(target);
          if (callee == nullptr) {
            push(1);  // Plain value call to a non-contract account.
            break;
          }
          const std::uint64_t child_args[] = {arg};
          CallContext child;
          child.self = target;
          child.caller = context.self;
          child.value = value;
          child.args = child_args;
          child.address_table = callee->address_table;
          child.depth = context.depth + 1;
          const VmResult child_result =
              execute(*callee, child, gas_left, hooks);
          // Child gas is consumed from this frame's budget.
          charge(child_result.gas_used);
          if (!child_result.success) {
            // The child frame (including the value transfer) was reverted
            // by the recursive call; surface failure as a 0 return.
            state_.revert(call_snapshot);
            push(0);
          } else {
            push(child_result.return_value);
          }
          break;
        }
        case OpCode::kReturn: {
          result.return_value = pop();
          result.success = true;
          result.gas_used = gas_limit - gas_left;
          return result;
        }
        case OpCode::kRevert: {
          state_.revert(frame_snapshot);
          result.error = "reverted";
          result.gas_used = gas_limit - gas_left;
          return result;
        }
        default:
          throw Fault{"unknown opcode " + std::to_string(code[pc - 1])};
      }
    }
    // Fell off the end (or kStop): success with return value 0.
    result.success = true;
    result.gas_used = gas_limit - gas_left;
    return result;
  } catch (const OutOfGas&) {
    state_.revert(frame_snapshot);
    result.error = "out of gas";
    result.gas_used = gas_limit;
    return result;
  } catch (const Fault& fault) {
    state_.revert(frame_snapshot);
    result.error = "fault: " + fault.reason;
    result.gas_used = gas_limit;
    return result;
  }
}

}  // namespace txconc::account
