#include "account/runtime.h"

#include "common/error.h"

namespace txconc::account {

std::uint64_t creation_gas(const GasSchedule& gas, std::size_t code_size) {
  return gas.create_base + gas.create_per_byte * code_size;
}

namespace {

std::uint64_t intrinsic_gas(const AccountTx& tx, const RuntimeConfig& config) {
  return config.gas.tx_base +
         (tx.is_creation() ? creation_gas(config.gas, tx.init_code.code.size())
                           : 0);
}

}  // namespace

const char* precheck_transaction(const State& state, const AccountTx& tx,
                                 const RuntimeConfig& config) {
  // Mirrors apply_transaction's validity checks, in order, without
  // building the throw-path error strings.
  if (config.enforce_nonce && state.nonce(tx.from) != tx.nonce) {
    return "bad nonce";
  }
  const std::uint64_t max_fee =
      config.charge_fees ? tx.gas_limit * tx.gas_price : 0;
  if (state.balance(tx.from) < tx.value + max_fee) {
    return "sender cannot cover value plus max fee";
  }
  if (tx.gas_limit < intrinsic_gas(tx, config)) {
    return "gas limit below intrinsic cost";
  }
  return nullptr;
}

void apply_transaction_into(State& state, const AccountTx& tx,
                            const RuntimeConfig& config, Receipt& receipt,
                            AccessTracker& tracker) {
  // ---- Validity checks: failures here mean the transaction could never
  // have been included in a block, so the state must remain untouched.
  if (config.enforce_nonce && state.nonce(tx.from) != tx.nonce) {
    throw ValidationError(
        "bad nonce for " + tx.from.short_hex() + ": expected " +
        std::to_string(state.nonce(tx.from)) + ", got " +
        std::to_string(tx.nonce));
  }
  const std::uint64_t max_fee =
      config.charge_fees ? tx.gas_limit * tx.gas_price : 0;
  if (state.balance(tx.from) < tx.value + max_fee) {
    throw ValidationError("sender cannot cover value plus max fee");
  }
  const std::uint64_t intrinsic = intrinsic_gas(tx, config);
  if (tx.gas_limit < intrinsic) {
    throw ValidationError("gas limit below intrinsic cost");
  }

  // The recorder needs real read/write sets in the receipt, so it forces
  // tracking on. on_begin fires only now — after the validity checks — so
  // rejected transactions never appear in the audit record.
  const bool track = config.track_accesses || config.recorder != nullptr;
  if (config.recorder != nullptr) config.recorder->on_begin(tx);

  // Synthetic compute: a deterministic hash-mix burn (same count for every
  // transaction and engine) standing in for heavier contract execution.
  // The volatile sink keeps the loop from being optimized away.
  if (config.synthetic_work > 0) {
    std::uint64_t mix = tx.nonce + 0x9e3779b97f4a7c15ULL;
    for (std::uint32_t i = 0; i < config.synthetic_work; ++i) {
      mix ^= mix >> 33;
      mix *= 0xff51afd7ed558ccdULL;
      mix ^= mix >> 29;
    }
    volatile std::uint64_t sink = mix;
    (void)sink;
  }

  receipt.reset();
  tracker.clear();
  AccessTracker* tracker_ptr = track ? &tracker : nullptr;

  state.set_nonce(tx.from, state.nonce(tx.from) + 1);
  // Charge the full fee upfront; refund after execution.
  if (config.charge_fees) state.debit(tx.from, max_fee);

  // Changes beyond this snapshot are rolled back on execution failure,
  // while the nonce bump and fee survive.
  const Snapshot exec_snapshot = state.snapshot();
  std::uint64_t gas_used = intrinsic;
  bool success = true;

  if (tracker_ptr) {
    tracker_ptr->read_balance(tx.from);
    tracker_ptr->write_balance(tx.from);
  }

  // Injected traps fire after the value transfer, so the rollback path is
  // exercised exactly as for a genuine mid-execution VM fault.
  const auto maybe_trap = [&] {
    if (config.fault_injector != nullptr &&
        config.fault_injector->should_trap(tx)) {
      throw VmError("injected fault");
    }
  };

  try {
    if (tx.is_creation()) {
      const Address contract_addr =
          Address::derive_contract(tx.from, tx.nonce);
      state.transfer(tx.from, contract_addr, tx.value);
      maybe_trap();
      state.set_code(contract_addr, tx.init_code);
      receipt.created = contract_addr;
      receipt.internal_txs.push_back(
          {tx.from, contract_addr, tx.value, TraceKind::kCreate, 1});
      if (tracker_ptr) tracker_ptr->write_balance(contract_addr);
    } else {
      const Address to = *tx.to;
      if (tracker_ptr && tx.value > 0) tracker_ptr->write_balance(to);
      state.transfer(tx.from, to, tx.value);
      maybe_trap();
      const ContractCode* code = state.code(to);
      if (code != nullptr) {
        Vm vm(state, config.gas, config.limits);
        CallContext context;
        context.self = to;
        context.caller = tx.from;
        context.value = tx.value;
        context.args = tx.args;
        // The top frame sees the transaction's dynamic address arguments
        // when provided, otherwise the contract's static table.
        context.address_table = tx.address_args.empty()
                                    ? std::span<const Address>(
                                          code->address_table)
                                    : std::span<const Address>(
                                          tx.address_args);
        context.depth = 0;

        ExecutionHooks hooks;
        hooks.traces = &receipt.internal_txs;
        hooks.tracker = tracker_ptr;
        hooks.logs = &receipt.logs;

        const VmResult vm_result =
            vm.execute(*code, context, tx.gas_limit - intrinsic, hooks);
        gas_used += vm_result.gas_used;
        if (!vm_result.success) {
          success = false;
          receipt.error = vm_result.error;
        } else {
          receipt.return_value = vm_result.return_value;
        }
      }
    }
  } catch (const ValidationError& e) {
    // e.g. value transfer underflow after fee accounting races; treat as
    // execution failure, consistent with EVM call semantics.
    success = false;
    receipt.error = e.what();
  } catch (const VmError& e) {
    // Injected fault: fails the transaction like any other VM trap.
    success = false;
    receipt.error = e.what();
  }

  if (!success) {
    state.revert(exec_snapshot);
    receipt.created.reset();
  }

  // Refund the unused portion of the fee.
  if (config.charge_fees) {
    state.credit(tx.from, (tx.gas_limit - gas_used) * tx.gas_price);
  }

  receipt.success = success;
  receipt.gas_used = gas_used;
  if (tracker_ptr) {
    // Copy-assign into the receipt's existing vectors: no allocation once
    // the receipt slot has seen comparable access counts.
    receipt.reads = tracker_ptr->finalize_reads();
    receipt.writes = tracker_ptr->finalize_writes();
  }
  if (config.recorder != nullptr) config.recorder->on_complete(tx, receipt);
}

Receipt apply_transaction(State& state, const AccountTx& tx,
                          const RuntimeConfig& config) {
  Receipt receipt;
  AccessTracker tracker;
  apply_transaction_into(state, tx, config, receipt, tracker);
  return receipt;
}

void genesis_deploy(State& state, const Address& addr, ContractCode code) {
  state.set_code(addr, std::move(code));
}

}  // namespace txconc::account
