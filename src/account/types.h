// Account-model transaction and receipt types (paper Section II-A).
//
// "In the account-based model, a transaction makes modifications to some
// accounts' states. [...] Executing a transaction in this model involves
// the invocation of some computation logics, or smart contracts."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"

namespace txconc::account {

/// Deployed contract code: SVM bytecode plus the static address table the
/// code's CALL/TRANSFER opcodes index into.
struct ContractCode {
  Bytes code;
  std::vector<Address> address_table;

  bool empty() const { return code.empty(); }
  bool operator==(const ContractCode&) const = default;
};

/// An account-model transaction.
struct AccountTx {
  Address from;
  /// Receiver. Empty (nullopt) means contract creation.
  std::optional<Address> to;
  std::uint64_t value = 0;
  std::uint64_t gas_limit = 100000;
  std::uint64_t gas_price = 1;
  std::uint64_t nonce = 0;
  /// Call arguments (for calls) — the SVM's calldata.
  std::vector<std::uint64_t> args;
  /// Dynamic address arguments, indexed by CALL/TRANSFER in the top frame.
  std::vector<Address> address_args;
  /// For contract creation: the code to deploy.
  ContractCode init_code;

  bool is_creation() const { return !to.has_value(); }
};

/// The kind of an internal transaction (a geth-style trace entry).
enum class TraceKind : std::uint8_t {
  kCall,      ///< Contract-to-contract call (runs code).
  kTransfer,  ///< Plain value send initiated by a contract.
  kCreate,    ///< Contract creation.
};

/// "We define as an internal transaction any interaction between contracts
/// that generates a so-called trace in the geth client, and which is not a
/// regular or coinbase transaction." — paper, Section II-A.
struct InternalTx {
  Address from;
  Address to;
  std::uint64_t value = 0;
  TraceKind kind = TraceKind::kCall;
  std::uint32_t depth = 1;  ///< Call depth (top-level tx is depth 0).
};

/// One storage-slot access, for the slot-granularity conflict ablation
/// (Saraph & Herlihy define conflicts at the storage layer).
struct SlotAccess {
  Address address;
  std::uint64_t key = 0;

  auto operator<=>(const SlotAccess&) const = default;
};

/// Hash for SlotAccess keys in unordered containers (conflict detection,
/// OCC validation, block analysis). Boost-style hash_combine: a plain
/// `hash(address) ^ key*phi` lets related (address, key) pairs cancel each
/// other out under XOR and alias distinct slots; folding each field into
/// the running seed keeps slots of the same address apart.
struct SlotAccessHash {
  std::size_t operator()(const SlotAccess& s) const noexcept {
    std::size_t seed = std::hash<Address>{}(s.address);
    std::uint64_t k = s.key;  // splitmix64 finalizer decorrelates key bits
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebULL;
    k ^= k >> 31;
    seed ^= static_cast<std::size_t>(k) + 0x9e3779b97f4a7c15ULL +
            (seed << 6) + (seed >> 2);
    return seed;
  }
};

/// Execution receipt for one account-model transaction.
struct Receipt {
  bool success = false;
  std::uint64_t gas_used = 0;
  std::uint64_t return_value = 0;
  std::string error;  ///< Empty on success.

  /// Geth-style traces generated during execution.
  std::vector<InternalTx> internal_txs;

  /// Address of the contract created by a creation transaction.
  std::optional<Address> created;

  /// Storage-layer read/write sets (touched accounts appear with key 0 for
  /// balance accesses when slot tracking is enabled).
  std::vector<SlotAccess> reads;
  std::vector<SlotAccess> writes;

  /// Logged values (the SVM's LOG opcode).
  std::vector<std::uint64_t> logs;

  /// Return to the default-constructed state while keeping the vectors'
  /// (and the error string's) capacity, so a receipt slot reused across
  /// transactions stays allocation-free once warm.
  void reset() {
    success = false;
    gas_used = 0;
    return_value = 0;
    error.clear();
    internal_txs.clear();
    created.reset();
    reads.clear();
    writes.clear();
    logs.clear();
  }
};

}  // namespace txconc::account
