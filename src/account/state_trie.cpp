#include "account/state_trie.h"

#include "common/bytes.h"
#include "common/error.h"
#include "common/sha256.h"

namespace txconc::account {

namespace {

/// Leaf marker for absent/default accounts.
const Hash256 kEmptyLeaf{};

}  // namespace

const std::vector<Hash256>& StateTrie::empty_hashes() {
  // empty_hashes()[d] = hash of an empty subtree whose leaves sit d levels
  // below; [0] is the empty leaf itself.
  static const std::vector<Hash256> kEmpty = [] {
    std::vector<Hash256> out;
    out.push_back(kEmptyLeaf);
    for (unsigned d = 1; d <= kDepth; ++d) {
      out.push_back(combine(out.back(), out.back()));
    }
    return out;
  }();
  return kEmpty;
}

Hash256 StateTrie::combine(const Hash256& left, const Hash256& right) {
  ByteWriter w(64);
  w.raw(left.bytes);
  w.raw(right.bytes);
  return Hash256::digest_of(w.data());
}

bool StateTrie::bit_at(const Address& addr, unsigned depth) {
  // Traverse the bits of the address hash (uniform even for adversarially
  // chosen addresses).
  const Hash256 h = Hash256::digest_of(addr.bytes);
  return (h.bytes[depth / 8] >> (7 - depth % 8)) & 1;
}

StateTrie::StateTrie() : root_(std::make_unique<Node>()) {
  root_->hash = empty_hashes()[kDepth];
}

Hash256 StateTrie::root() const { return root_->hash; }

void StateTrie::update_path(Node& node, const Address& addr, unsigned depth,
                            const Hash256& leaf_digest, bool erasing) {
  if (depth == kDepth) {
    if (node.is_leaf && erasing) --size_;
    if (!node.is_leaf && !erasing) ++size_;
    node.is_leaf = !erasing;
    node.hash = erasing ? kEmptyLeaf : leaf_digest;
    return;
  }
  const unsigned direction = bit_at(addr, depth) ? 1 : 0;
  if (!node.child[direction]) {
    if (erasing) return;  // erasing an absent key is a no-op
    node.child[direction] = std::make_unique<Node>();
    node.child[direction]->hash = empty_hashes()[kDepth - depth - 1];
  }
  update_path(*node.child[direction], addr, depth + 1, leaf_digest, erasing);

  const Hash256 left = node.child[0]
                           ? node.child[0]->hash
                           : empty_hashes()[kDepth - depth - 1];
  const Hash256 right = node.child[1]
                            ? node.child[1]->hash
                            : empty_hashes()[kDepth - depth - 1];
  node.hash = combine(left, right);
}

void StateTrie::update(const Address& addr, const Hash256& leaf_digest) {
  if (leaf_digest.is_zero()) {
    erase(addr);
    return;
  }
  update_path(*root_, addr, 0, leaf_digest, /*erasing=*/false);
}

void StateTrie::erase(const Address& addr) {
  update_path(*root_, addr, 0, kEmptyLeaf, /*erasing=*/true);
}

StateTrie::Proof StateTrie::prove(const Address& addr) const {
  Proof proof;
  proof.address = addr;

  // Walk down, recording siblings; missing children stand in as empty
  // subtree hashes.
  std::vector<Hash256> top_down;
  const Node* node = root_.get();
  for (unsigned depth = 0; depth < kDepth; ++depth) {
    const unsigned direction = bit_at(addr, depth) ? 1 : 0;
    const Node* sibling = node ? node->child[1 - direction].get() : nullptr;
    top_down.push_back(sibling ? sibling->hash
                               : empty_hashes()[kDepth - depth - 1]);
    node = node ? node->child[direction].get() : nullptr;
  }
  proof.leaf = node && node->is_leaf ? node->hash : kEmptyLeaf;
  proof.siblings.assign(top_down.rbegin(), top_down.rend());
  return proof;
}

bool StateTrie::verify(const Proof& proof, const Hash256& root) {
  if (proof.siblings.size() != kDepth) return false;
  Hash256 acc = proof.leaf;
  for (unsigned level = 0; level < kDepth; ++level) {
    const unsigned depth = kDepth - 1 - level;  // depth of this step's bit
    const bool right = bit_at(proof.address, depth);
    acc = right ? combine(proof.siblings[level], acc)
                : combine(acc, proof.siblings[level]);
  }
  return acc == root;
}

Hash256 account_leaf_digest(const StateDb& state, const Address& addr) {
  return state.account_digest(addr);
}

StateTrie build_state_trie(const StateDb& state) {
  StateTrie trie;
  state.for_each_account([&](const Address& addr) {
    const Hash256 digest = state.account_digest(addr);
    if (!digest.is_zero()) {
      trie.update(addr, digest);
    }
  });
  return trie;
}

}  // namespace txconc::account
