// World state for the account model, with journaling and overlays.
//
// State is the abstract interface the VM and runtime execute against.
// StateDb is the authoritative store; OverlayState is a copy-on-write view
// over a frozen base used by the speculative executors, so parallel workers
// never contend on shared mutable data.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <variant>
#include <vector>

#include "account/types.h"
#include "common/flat_table.h"
#include "common/hot_path.h"
#include "common/hash.h"

namespace txconc::account {

/// Storage key within one account.
using StorageKey = std::uint64_t;

/// Opaque journal position returned by snapshot().
using Snapshot = std::size_t;

/// One (account, storage key) coordinate, the overlay's storage index.
struct SlotId {
  Address addr;
  StorageKey key = 0;
  bool operator==(const SlotId&) const = default;
};
struct SlotIdHash {
  std::size_t operator()(const SlotId& s) const noexcept {
    // Same hash_combine mixing as SlotAccessHash: XOR-folding the raw
    // key aliases related (address, key) pairs.
    return SlotAccessHash{}(SlotAccess{s.addr, s.key});
  }
};

/// Abstract mutable world state with nested rollback.
///
/// All mutations are journaled; revert(snapshot()) undoes everything since.
/// Implementations are NOT thread-safe; give each worker its own overlay.
class State {
 public:
  virtual ~State() = default;

  virtual std::uint64_t balance(const Address& addr) const = 0;
  virtual void set_balance(const Address& addr, std::uint64_t value) = 0;

  virtual std::uint64_t nonce(const Address& addr) const = 0;
  virtual void set_nonce(const Address& addr, std::uint64_t value) = 0;

  /// nullptr when the account has no code.
  virtual const ContractCode* code(const Address& addr) const = 0;
  virtual void set_code(const Address& addr, ContractCode code) = 0;

  virtual std::uint64_t storage(const Address& addr, StorageKey key) const = 0;
  virtual void set_storage(const Address& addr, StorageKey key,
                           std::uint64_t value) = 0;

  virtual Snapshot snapshot() const = 0;
  virtual void revert(Snapshot snap) = 0;

  // Non-virtual helpers.
  /// Throws ValidationError when the payer lacks funds.
  void transfer(const Address& from, const Address& to, std::uint64_t value);
  /// Balance decrease that throws ValidationError on underflow.
  void debit(const Address& addr, std::uint64_t value);
  void credit(const Address& addr, std::uint64_t value);
};

/// Replayable record of an overlay's final values: a handful of flat
/// vectors instead of a whole OverlayState. The speculative engines
/// extract one per attempt (OverlayState::export_writes) and batch-apply
/// the non-conflicted logs at commit, so the per-transaction retained
/// footprint is capacity-reusing PODs and the commit walk is one linear
/// pass.
class WriteLog {
 public:
  void clear() {
    balances_.clear();
    nonces_.clear();
    storage_.clear();
    codes_.clear();
  }

  bool empty() const {
    return balances_.empty() && nonces_.empty() && storage_.empty() &&
           codes_.empty();
  }

  std::size_t num_ops() const {
    return balances_.size() + nonces_.size() + storage_.size() +
           codes_.size();
  }

  /// Replay every recorded value onto the target, mirroring
  /// OverlayState::apply_to.
  TXCONC_HOT void apply_to(State& target) const;

 private:
  friend class OverlayState;
  struct BalanceOp {
    Address addr;
    std::uint64_t value = 0;
  };
  struct StorageOp {
    SlotId slot;
    std::uint64_t value = 0;
  };
  std::vector<BalanceOp> balances_;
  std::vector<BalanceOp> nonces_;  // same shape: (addr, value)
  std::vector<StorageOp> storage_;
  std::vector<std::pair<Address, std::shared_ptr<const ContractCode>>> codes_;
};

/// The authoritative account store.
class StateDb final : public State {
 public:
  StateDb() = default;

  std::uint64_t balance(const Address& addr) const override;
  void set_balance(const Address& addr, std::uint64_t value) override;
  std::uint64_t nonce(const Address& addr) const override;
  void set_nonce(const Address& addr, std::uint64_t value) override;
  const ContractCode* code(const Address& addr) const override;
  void set_code(const Address& addr, ContractCode code) override;
  std::uint64_t storage(const Address& addr, StorageKey key) const override;
  void set_storage(const Address& addr, StorageKey key,
                   std::uint64_t value) override;
  Snapshot snapshot() const override;
  void revert(Snapshot snap) override;

  /// Drop the journal (changes become permanent; snapshots invalidated).
  TXCONC_HOT void flush_journal();

  /// Toggle undo journaling. While off, writes skip the journal entirely,
  /// and snapshot()/revert() throw UsageError: a rollback attempted during
  /// a pause could not see the paused writes and would silently persist
  /// them. The engines'
  /// commit phases use this (via JournalPause) because committed overlay
  /// values are never rolled back — journaling them only to flush is pure
  /// allocation traffic on the hot path.
  void set_journaling(bool on) { journaling_ = on; }
  bool journaling() const { return journaling_; }

  std::size_t num_accounts() const { return accounts_.size(); }
  /// Sum of all balances (invariant checks in tests).
  std::uint64_t total_supply() const;

  /// Order-independent digest over the full state (balances, nonces,
  /// storage, code). Two StateDbs with equal digests hold equal state;
  /// used by the executor-equivalence tests.
  Hash256 digest() const;

  /// Canonical digest of one account (the state-trie leaf value); the
  /// zero hash for accounts in their default state.
  Hash256 account_digest(const Address& addr) const;

  /// Invoke fn for every stored account address (unspecified order).
  void for_each_account(
      const std::function<void(const Address&)>& fn) const;

 private:
  struct AccountRecord {
    std::uint64_t balance = 0;
    std::uint64_t nonce = 0;
    std::shared_ptr<const ContractCode> code;  // shared with overlays
    std::unordered_map<StorageKey, std::uint64_t> storage;
  };

  struct BalanceEntry {
    Address addr;
    std::uint64_t old_value;
  };
  struct NonceEntry {
    Address addr;
    std::uint64_t old_value;
  };
  struct CodeEntry {
    Address addr;
    std::shared_ptr<const ContractCode> old_code;
  };
  struct StorageEntry {
    Address addr;
    StorageKey key;
    std::uint64_t old_value;
  };
  using JournalEntry =
      std::variant<BalanceEntry, NonceEntry, CodeEntry, StorageEntry>;

  AccountRecord& record(const Address& addr) { return accounts_[addr]; }
  const AccountRecord* find(const Address& addr) const;

  std::unordered_map<Address, AccountRecord> accounts_;
  mutable std::vector<JournalEntry> journal_;
  bool journaling_ = true;
};

/// RAII journaling pause for a commit phase (see StateDb::set_journaling).
class JournalPause {
 public:
  explicit JournalPause(StateDb& db) : db_(db), prev_(db.journaling()) {
    db_.set_journaling(false);
  }
  ~JournalPause() { db_.set_journaling(prev_); }

  JournalPause(const JournalPause&) = delete;
  JournalPause& operator=(const JournalPause&) = delete;

 private:
  StateDb& db_;
  bool prev_;
};

/// Copy-on-write view over a frozen base state.
///
/// Reads fall through to the base until the overlay has written the entry;
/// writes stay local. apply_to() merges the overlay's final values into a
/// mutable target (normally the base itself, after conflict checks pass).
///
/// The local entries live in open-addressed FlatTables whose capacity
/// persists across reset(): workers keep one overlay each and rebase it
/// per attempt, so the steady-state speculation path never allocates.
class OverlayState final : public State {
 public:
  /// An unbased overlay; reset() must run before any access.
  OverlayState() = default;
  explicit OverlayState(const State& base) : base_(&base) {}

  /// Rebase onto `base` and logically drop every local entry and journal
  /// record. O(1) except for the (rare) code map; capacity is retained.
  TXCONC_HOT void reset(const State& base) {
    base_ = &base;
    balances_.clear();
    nonces_.clear();
    storage_.clear();
    if (!codes_.empty()) codes_.clear();
    journal_.clear();
  }

  std::uint64_t balance(const Address& addr) const override;
  void set_balance(const Address& addr, std::uint64_t value) override;
  std::uint64_t nonce(const Address& addr) const override;
  void set_nonce(const Address& addr, std::uint64_t value) override;
  const ContractCode* code(const Address& addr) const override;
  void set_code(const Address& addr, ContractCode code) override;
  std::uint64_t storage(const Address& addr, StorageKey key) const override;
  void set_storage(const Address& addr, StorageKey key,
                   std::uint64_t value) override;
  Snapshot snapshot() const override;
  void revert(Snapshot snap) override;

  /// Write every overlay value into the target state.
  TXCONC_HOT void apply_to(State& target) const;

  /// Append every overlay value to `out` (cleared first), detaching the
  /// attempt's effects from the overlay so the overlay can be rebased for
  /// the next transaction.
  TXCONC_HOT void export_writes(WriteLog& out) const;

  bool dirty() const;

 private:
  struct BalanceEntry {
    Address addr;
    bool existed;
    std::uint64_t old_value;
  };
  struct NonceEntry {
    Address addr;
    bool existed;
    std::uint64_t old_value;
  };
  struct CodeEntry {
    Address addr;
    bool existed;
    std::shared_ptr<const ContractCode> old_code;
  };
  struct StorageEntry {
    SlotId slot;
    bool existed;
    std::uint64_t old_value;
  };
  using JournalEntry =
      std::variant<BalanceEntry, NonceEntry, CodeEntry, StorageEntry>;

  const State* base_ = nullptr;
  common::FlatTable<Address, std::uint64_t> balances_;
  common::FlatTable<Address, std::uint64_t> nonces_;
  // Code deployments are rare (creations only) and carry shared_ptrs;
  // a node-based map is fine here and keeps FlatTable POD-friendly.
  std::unordered_map<Address, std::shared_ptr<const ContractCode>> codes_;
  common::FlatTable<SlotId, std::uint64_t, SlotIdHash> storage_;
  mutable std::vector<JournalEntry> journal_;
};

/// Addresses whose canonical account digest differs between two states
/// (over the union of both account sets, in unspecified order). The
/// conformance oracle uses this to name the diverged accounts when an
/// executor's final state digest mismatches the sequential baseline.
std::vector<Address> diff_accounts(const StateDb& a, const StateDb& b);

/// Records the read/write sets of one transaction, at account and slot
/// granularity; attached to the VM by the runtime.
class AccessTracker {
 public:
  void read_balance(const Address& addr) { reads_.push_back({addr, kBalanceKey}); }
  void write_balance(const Address& addr) { writes_.push_back({addr, kBalanceKey}); }
  void read_slot(const Address& addr, StorageKey key) { reads_.push_back({addr, key}); }
  void write_slot(const Address& addr, StorageKey key) { writes_.push_back({addr, key}); }

  /// Drop the recorded accesses, keeping the vectors' capacity (the
  /// runtime reuses one tracker per worker across transactions).
  void clear() {
    reads_.clear();
    writes_.clear();
  }

  /// Sorted, deduplicated access lists (copies).
  std::vector<SlotAccess> reads() const;
  std::vector<SlotAccess> writes() const;

  /// Sort + dedupe in place and return a reference to the internal list,
  /// valid until the next mutation. The allocation-free flavor of
  /// reads()/writes() used by the per-transaction hot path.
  const std::vector<SlotAccess>& finalize_reads();
  const std::vector<SlotAccess>& finalize_writes();

  /// Sentinel storage key representing the account balance/nonce itself.
  static constexpr StorageKey kBalanceKey = ~StorageKey{0};

 private:
  std::vector<SlotAccess> reads_;
  std::vector<SlotAccess> writes_;
};

}  // namespace txconc::account
