// Transaction application for the account model.
//
// apply_transaction is the single entry point every executor (sequential,
// speculative, group-scheduled) uses to run one transaction against a State.
#pragma once

#include "account/state.h"
#include "account/types.h"
#include "account/vm.h"
#include "obs/context.h"

namespace txconc::obs {
struct Scope;  // tracer + metrics bundle, see obs/scope.h
}

namespace txconc::account {

/// Test-only fault injection: when RuntimeConfig::fault_injector is set,
/// apply_transaction consults it once per transaction; a selected
/// transaction traps right after its value transfer, exactly like a VM
/// fault — the execution effects roll back while the nonce bump, intrinsic
/// gas and fee stand. Selection must be a pure function of the transaction
/// (not of executor, phase or retry count) so every engine traps the same
/// set and the conformance oracle can assert their receipts converge.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  virtual bool should_trap(const AccountTx& tx) const = 0;
};

/// Observer of transaction execution attempts, installed through
/// RuntimeConfig::recorder (same hook pattern as the fault injector).
///
/// apply_transaction calls on_begin once the validity checks have passed
/// (so rejected transactions are never recorded) and on_complete just
/// before returning the receipt, on the executing thread. Executors may
/// run a transaction several times (speculation retries, OCC waves); each
/// attempt produces one begin/complete pair, and the pairs never nest on
/// one thread because apply_transaction does not recurse. Implementations
/// must be internally synchronized: hooks fire concurrently from every
/// pool worker. The audit layer (src/audit) builds its interval-based
/// ordering checks on exactly this contract.
class AccessRecorder {
 public:
  virtual ~AccessRecorder() = default;
  virtual void on_begin(const AccountTx& tx) const = 0;
  virtual void on_complete(const AccountTx& tx,
                           const Receipt& receipt) const = 0;
};

/// Configuration of the runtime semantics.
struct RuntimeConfig {
  GasSchedule gas;
  VmLimits limits;
  /// Enforce sender nonces (transactions must apply in nonce order).
  bool enforce_nonce = true;
  /// Charge gas fees from the sender (fees are burned — crediting a miner
  /// would make every transaction conflict on the miner's balance, which
  /// the paper's TDG, like its coinbase handling, deliberately excludes).
  bool charge_fees = true;
  /// Record storage/balance read-write sets in the receipt.
  bool track_accesses = true;
  /// Test-only: trap the transactions this injector selects (see above).
  const FaultInjector* fault_injector = nullptr;
  /// Observe execution attempts (see AccessRecorder). When set, access
  /// tracking is forced on so the recorder always sees real read/write
  /// sets, regardless of track_accesses.
  const AccessRecorder* recorder = nullptr;
  /// Observability sink (span tracer + metrics registry, see obs/scope.h).
  /// Null is the zero-cost disabled path; executors emit their per-phase
  /// and per-transaction spans and block metrics through it.
  const obs::Scope* obs = nullptr;
  /// Causal trace context of the enclosing block (see obs/context.h).
  /// Executors start their block/phase spans as children of this, so a
  /// node relaying a block hands the whole execution to the block's
  /// trace. The zero default means "start a fresh trace root".
  obs::TraceContext trace;
  /// Synthetic per-transaction compute cost: after the validity checks,
  /// burn this many deterministic hash-mix iterations before executing.
  /// Models heavier contracts (EVM interpretation, signature recovery)
  /// without touching the VM; benches use it to move the workload from
  /// overhead-bound to compute-bound (bench/ablation_engines --tx-work).
  std::uint32_t synthetic_work = 0;
};

/// Apply one transaction to the state.
///
/// Invalid transactions — bad nonce, sender cannot cover value plus the
/// maximum fee — throw ValidationError and leave the state untouched (they
/// would never have entered a block). Execution failures (out of gas,
/// contract fault, revert) return an unsuccessful Receipt: the state
/// changes are rolled back but gas is still consumed, exactly as on
/// Ethereum.
Receipt apply_transaction(State& state, const AccountTx& tx,
                          const RuntimeConfig& config = {});

/// Allocation-free flavor of apply_transaction for the engines' per-worker
/// hot paths: the receipt is reset() and filled in place (vector/string
/// capacity reused) and the caller-owned tracker replaces the per-call
/// AccessTracker. Identical semantics otherwise, including the
/// ValidationError throws.
void apply_transaction_into(State& state, const AccountTx& tx,
                            const RuntimeConfig& config, Receipt& receipt,
                            AccessTracker& tracker);

/// The validity checks of apply_transaction as a non-throwing predicate:
/// returns nullptr when the transaction would pass them against `state`,
/// else a static description of the first failing check. Speculative
/// engines call this before apply_transaction_into so the common stale-
/// nonce rejection costs neither an exception throw nor the error-string
/// allocations. Must stay in lockstep with apply_transaction's checks.
const char* precheck_transaction(const State& state, const AccountTx& tx,
                                 const RuntimeConfig& config);

/// Install a contract at an address without a creation transaction
/// (genesis-style bootstrap used by tests and the workload generator).
void genesis_deploy(State& state, const Address& addr, ContractCode code);

/// Gas cost of a contract creation with the given code size.
std::uint64_t creation_gas(const GasSchedule& gas, std::size_t code_size);

}  // namespace txconc::account
