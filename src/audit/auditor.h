// TDG-aware access auditor: a runtime cross-check of the paper's central
// soundness assumption — that the a-priori conflict prediction (the
// approximate TDG of Section V-C) covers everything the executors actually
// touch, and that conflicting transactions never commit without ordering.
//
// The auditor is an account::AccessRecorder installed through
// RuntimeConfig (the same hook pattern as the fault injector). While a
// block executes it records, per execution attempt, the interval
// [begin_seq, end_seq] on a global monotonic counter plus the attempt's
// slot read/write sets; finish_block() then verifies post-hoc that
//
//  (a) every recorded access address lies inside the transaction's
//      predicted closure (exec::predicted_addresses — the same sets
//      predict_groups feeds the schedulers), and
//  (b) every conflicting pair of committed runs is properly ordered:
//      a true or output dependency (earlier tx's writes intersect the
//      later tx's reads or writes) requires the earlier final run to
//      finish strictly before the later one begins, while a pure
//      anti-dependency (later tx only overwrites what the earlier one
//      read) is violated only when the earlier reader ran strictly after
//      the later writer — OCC legitimately overlaps anti-dependencies
//      under snapshot isolation with in-order commit.
//
// When uninstalled (RuntimeConfig::recorder == nullptr) the executors pay
// nothing: apply_transaction takes one pointer comparison per call.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "account/runtime.h"
#include "account/state.h"
#include "account/types.h"
#include "common/thread_annotations.h"

namespace txconc::audit {

/// One audit failure, pinned to block positions.
struct AuditViolation {
  enum class Kind {
    kUndeclaredAccess,   ///< Recorded address outside the predicted closure.
    kUnorderedConflict,  ///< Conflicting finals without the required order.
    kUnmatchedRecord,    ///< begin/complete pairing broke down.
  };
  Kind kind = Kind::kUnmatchedRecord;
  std::size_t tx_a = 0;  ///< Block position of the (first) transaction.
  std::size_t tx_b = 0;  ///< Second position, for kUnorderedConflict.
  std::string detail;    ///< Human-readable account, incl. the repro hint.
};

const char* to_string(AuditViolation::Kind kind);

/// How the executor under audit orders conflicting commits — selects which
/// check-(b) rules finish_block applies.
enum class CommitDiscipline {
  /// Interval exclusivity (every engine up to occ): a true or output
  /// dependency requires the earlier final run to end strictly before the
  /// later one begins; anti-dependencies may overlap but the reader must
  /// not run strictly after the writer; abandoned attempts are broken
  /// recorder pairings.
  kInterval,
  /// Multi-version stores (block-stm): concurrent attempts over the same
  /// slots are the design. Reads resolve strictly-lower-index versions, so
  /// anti-dependencies are structurally safe, and write-write pairs
  /// coexist as separate versions. The checkable ordering is publication:
  /// a later transaction whose final run read a slot the earlier one wrote
  /// (with no intermediate same-component writer of that slot) must have
  /// completed after the earlier one did — its validated read saw a value
  /// published only after the writer's completion. Abandoned attempts are
  /// counted, and only the *last* attempt of a transaction being abandoned
  /// is a violation (the committed value must come from the final run).
  kMultiVersion,
};

/// What one audited block looked like.
struct AuditReport {
  std::size_t transactions_declared = 0;
  std::size_t attempts_recorded = 0;     ///< Completed execution attempts.
  /// Attempts begun but never completed. A violation under kInterval;
  /// expected under kMultiVersion (ESTIMATE aborts unwind mid-execution).
  std::size_t attempts_abandoned = 0;
  std::size_t conflict_pairs_checked = 0;
  std::size_t threads_seen = 0;          ///< Distinct executing threads.
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
};

/// Render a report's violations, one "TXCONC_AUDIT ..." line each.
std::string format_violations(const AuditReport& report);

/// The auditor itself. Usage:
///
///   audit::AccessAuditor auditor;
///   config.recorder = &auditor;            // or replayer.set_access_recorder
///   auditor.begin_block(txs, state);       // before execute_block
///   ... executor runs the block ...
///   const audit::AuditReport report = auditor.finish_block();
///
/// Thread-safe: the recorder hooks fire concurrently from every pool
/// worker and serialize on an internal mutex (the audit path is a test
/// harness; simplicity beats scalability here). begin_block/finish_block
/// must be called from the driving thread with no block in flight.
class AccessAuditor final : public account::AccessRecorder {
 public:
  AccessAuditor() = default;
  AccessAuditor(const AccessAuditor&) = delete;
  AccessAuditor& operator=(const AccessAuditor&) = delete;

  /// Replay hint appended to every violation detail as
  /// "TXCONC_REPRO='<hint>'" (via exec::format_repro_env); typically
  /// format_spec of the failing cell.
  void set_repro_hint(std::string hint);

  /// Executor under audit; when set, every violation detail names it
  /// ("executor=<name>") so a violation line is attributable without the
  /// surrounding harness context.
  void set_executor(std::string name);

  /// Select the commit-ordering rules for the engine under audit (see
  /// CommitDiscipline). Defaults to kInterval; harnesses set kMultiVersion
  /// for registry entries flagged ExecutorSpec::multi_version.
  void set_commit_discipline(CommitDiscipline discipline);

  /// Declare the next block: computes each transaction's predicted
  /// address closure and conflict component. Attempts reported through
  /// the recorder hooks are attributed by (from, nonce), which is unique
  /// within a valid block. Throws UsageError when a block is already
  /// open.
  void begin_block(std::span<const account::AccountTx> txs,
                   const account::State& state);

  /// Verify everything recorded since begin_block, reset, and report.
  AuditReport finish_block();

  // account::AccessRecorder:
  void on_begin(const account::AccountTx& tx) const override;
  void on_complete(const account::AccountTx& tx,
                   const account::Receipt& receipt) const override;

 private:
  struct TxKey {
    Address from;
    std::uint64_t nonce = 0;
    bool operator==(const TxKey&) const = default;
  };
  struct TxKeyHash {
    std::size_t operator()(const TxKey& k) const noexcept {
      return std::hash<Address>{}(k.from) ^
             (k.nonce * 0x9e3779b97f4a7c15ULL);
    }
  };

  /// One execution attempt of one transaction.
  struct Attempt {
    std::uint64_t begin_seq = 0;
    std::uint64_t end_seq = 0;
    std::size_t thread = 0;  ///< Dense per-block thread index.
    bool open = true;
    std::vector<account::SlotAccess> reads;
    std::vector<account::SlotAccess> writes;
  };

  /// Declared (predicted) view of one block transaction.
  struct Declared {
    std::size_t index = 0;       ///< Block position.
    std::size_t component = 0;   ///< Predicted conflict component.
    std::unordered_set<Address> predicted;
    std::vector<Attempt> attempts;
  };

  std::size_t thread_index_locked() const REQUIRES(mu_);

  mutable Mutex mu_;
  mutable std::uint64_t clock_ GUARDED_BY(mu_) = 0;
  mutable std::unordered_map<TxKey, Declared, TxKeyHash> txs_
      GUARDED_BY(mu_);
  /// Dense ids for executing threads (diagnostics: threads_seen).
  mutable std::unordered_map<std::size_t, std::size_t> threads_
      GUARDED_BY(mu_);
  /// Hook-side failures (undeclared transaction, complete without begin)
  /// held until finish_block.
  mutable std::vector<AuditViolation> stray_ GUARDED_BY(mu_);
  bool block_open_ GUARDED_BY(mu_) = false;
  std::string repro_hint_ GUARDED_BY(mu_);
  std::string executor_name_ GUARDED_BY(mu_);
  CommitDiscipline discipline_ GUARDED_BY(mu_) = CommitDiscipline::kInterval;
};

}  // namespace txconc::audit
