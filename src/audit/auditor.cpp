#include "audit/auditor.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "exec/predict.h"
#include "exec/replay.h"

namespace txconc::audit {

namespace {

using SlotSet =
    std::unordered_set<account::SlotAccess, account::SlotAccessHash>;

/// Render a slot for violation messages; the balance sentinel reads as
/// "balance" rather than a 64-bit blob.
std::string slot_name(const account::SlotAccess& slot) {
  std::ostringstream out;
  out << slot.address.short_hex();
  if (slot.key == account::AccessTracker::kBalanceKey) {
    out << "/balance";
  } else {
    out << "/slot" << slot.key;
  }
  return out.str();
}

const account::SlotAccess* first_common(const SlotSet& set,
                                        std::span<const account::SlotAccess>
                                            probe) {
  for (const account::SlotAccess& s : probe) {
    const auto it = set.find(s);
    if (it != set.end()) return &*it;
  }
  return nullptr;
}

}  // namespace

const char* to_string(AuditViolation::Kind kind) {
  switch (kind) {
    case AuditViolation::Kind::kUndeclaredAccess:
      return "undeclared-access";
    case AuditViolation::Kind::kUnorderedConflict:
      return "unordered-conflict";
    case AuditViolation::Kind::kUnmatchedRecord:
      return "unmatched-record";
  }
  return "unknown";
}

std::string format_violations(const AuditReport& report) {
  std::ostringstream out;
  for (const AuditViolation& v : report.violations) {
    out << "TXCONC_AUDIT " << to_string(v.kind) << " tx#" << v.tx_a;
    if (v.kind == AuditViolation::Kind::kUnorderedConflict) {
      out << " tx#" << v.tx_b;
    }
    out << ": " << v.detail << "\n";
  }
  return out.str();
}

void AccessAuditor::set_repro_hint(std::string hint) {
  const MutexLock lock(mu_);
  repro_hint_ = std::move(hint);
}

void AccessAuditor::set_executor(std::string name) {
  const MutexLock lock(mu_);
  executor_name_ = std::move(name);
}

void AccessAuditor::set_commit_discipline(CommitDiscipline discipline) {
  const MutexLock lock(mu_);
  discipline_ = discipline;
}

void AccessAuditor::begin_block(std::span<const account::AccountTx> txs,
                                const account::State& state) {
  const MutexLock lock(mu_);
  if (block_open_) {
    throw UsageError("AccessAuditor: begin_block with a block in flight");
  }
  block_open_ = true;
  clock_ = 0;
  txs_.clear();
  threads_.clear();

  for (std::size_t i = 0; i < txs.size(); ++i) {
    const account::AccountTx& tx = txs[i];
    Declared declared;
    declared.index = i;
    const std::vector<Address> closure =
        exec::predicted_addresses(tx, state);
    declared.predicted.insert(closure.begin(), closure.end());
    const auto [it, inserted] =
        txs_.emplace(TxKey{tx.from, tx.nonce}, std::move(declared));
    if (!inserted) {
      AuditViolation v;
      v.kind = AuditViolation::Kind::kUnmatchedRecord;
      v.tx_a = i;
      v.detail = "duplicate (from, nonce) in block: " + tx.from.short_hex() +
                 " nonce " + std::to_string(tx.nonce) +
                 " collides with tx#" + std::to_string(it->second.index);
      stray_.push_back(std::move(v));
    }
  }

  // The conflict components, straight from the scheduler's own predictor:
  // check (b) only needs to compare transactions the prediction says may
  // conflict — txs in different components have disjoint closures, so
  // once check (a) holds their recorded sets cannot overlap either.
  const exec::PredictedGroups groups = exec::predict_groups(txs, state);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const auto it = txs_.find(TxKey{txs[i].from, txs[i].nonce});
    if (it != txs_.end() && it->second.index == i) {
      it->second.component = groups.component_of_tx[i];
    }
  }
}

void AccessAuditor::on_begin(const account::AccountTx& tx) const {
  const MutexLock lock(mu_);
  const auto it = txs_.find(TxKey{tx.from, tx.nonce});
  if (!block_open_ || it == txs_.end()) {
    AuditViolation v;
    v.kind = AuditViolation::Kind::kUnmatchedRecord;
    v.detail = "execution attempt for undeclared transaction " +
               tx.from.short_hex() + " nonce " + std::to_string(tx.nonce);
    stray_.push_back(std::move(v));
    return;
  }
  Attempt attempt;
  attempt.begin_seq = clock_++;
  attempt.thread = thread_index_locked();
  it->second.attempts.push_back(std::move(attempt));
}

void AccessAuditor::on_complete(const account::AccountTx& tx,
                                const account::Receipt& receipt) const {
  const MutexLock lock(mu_);
  const auto it = txs_.find(TxKey{tx.from, tx.nonce});
  Attempt* open = nullptr;
  if (block_open_ && it != txs_.end()) {
    // Attempts never nest on one thread (apply_transaction does not
    // recurse), so the open attempt of this (tx, thread) is unique.
    const std::size_t thread = thread_index_locked();
    for (Attempt& a : it->second.attempts) {
      if (a.open && a.thread == thread) open = &a;
    }
  }
  if (open == nullptr) {
    AuditViolation v;
    v.kind = AuditViolation::Kind::kUnmatchedRecord;
    if (it != txs_.end()) v.tx_a = it->second.index;
    v.detail = "completion without a matching begin for " +
               tx.from.short_hex() + " nonce " + std::to_string(tx.nonce);
    stray_.push_back(std::move(v));
    return;
  }
  open->end_seq = clock_++;
  open->open = false;
  open->reads = receipt.reads;
  open->writes = receipt.writes;
}

std::size_t AccessAuditor::thread_index_locked() const {
  const std::size_t id =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  const auto [it, inserted] = threads_.emplace(id, threads_.size());
  return it->second;
}

AuditReport AccessAuditor::finish_block() {
  const MutexLock lock(mu_);
  if (!block_open_) {
    throw UsageError("AccessAuditor: finish_block without begin_block");
  }
  block_open_ = false;

  AuditReport report;
  report.transactions_declared = txs_.size();
  report.threads_seen = threads_.size();
  report.violations = std::move(stray_);
  stray_.clear();

  // Deterministic order: walk transactions by block position.
  std::vector<Declared*> by_index(txs_.size(), nullptr);
  for (auto& [key, declared] : txs_) {
    if (declared.index < by_index.size()) by_index[declared.index] = &declared;
  }

  // ---- Check (a): recorded accesses within the predicted closure; also
  // locate each transaction's final (committed) attempt — the completed
  // attempt with the greatest begin sequence, since every executor's last
  // run of a transaction is the one whose effects commit.
  std::vector<const Attempt*> finals(by_index.size(), nullptr);
  for (std::size_t i = 0; i < by_index.size(); ++i) {
    Declared* declared = by_index[i];
    if (declared == nullptr) continue;
    // Under kMultiVersion an abandoned attempt is legitimate (an ESTIMATE
    // read unwound the execution) — unless it is the transaction's LAST
    // attempt, since the committed value must come from the final run.
    const Attempt* latest = nullptr;
    for (const Attempt& attempt : declared->attempts) {
      if (latest == nullptr || attempt.begin_seq > latest->begin_seq) {
        latest = &attempt;
      }
    }
    for (const Attempt& attempt : declared->attempts) {
      if (attempt.open) {
        if (discipline_ == CommitDiscipline::kMultiVersion) {
          ++report.attempts_abandoned;
          if (&attempt != latest) continue;
        }
        AuditViolation v;
        v.kind = AuditViolation::Kind::kUnmatchedRecord;
        v.tx_a = i;
        v.detail =
            (discipline_ == CommitDiscipline::kMultiVersion
                 ? "last execution attempt was abandoned (begin_seq "
                 : "execution attempt never completed (begin_seq ") +
            std::to_string(attempt.begin_seq) + ")";
        report.violations.push_back(std::move(v));
        continue;
      }
      ++report.attempts_recorded;
      for (const auto* accesses : {&attempt.reads, &attempt.writes}) {
        for (const account::SlotAccess& slot : *accesses) {
          if (declared->predicted.count(slot.address) == 0) {
            AuditViolation v;
            v.kind = AuditViolation::Kind::kUndeclaredAccess;
            v.tx_a = i;
            v.detail = std::string(accesses == &attempt.writes ? "write"
                                                               : "read") +
                       " of " + slot_name(slot) +
                       " outside the predicted closure";
            report.violations.push_back(std::move(v));
          }
        }
      }
      if (finals[i] == nullptr || attempt.begin_seq > finals[i]->begin_seq) {
        finals[i] = &attempt;
      }
    }
  }

  // ---- Check (b): ordering of conflicting committed runs, restricted to
  // predicted components (see begin_block).
  std::unordered_map<std::size_t, std::vector<std::size_t>> by_component;
  for (std::size_t i = 0; i < by_index.size(); ++i) {
    if (by_index[i] != nullptr && finals[i] != nullptr) {
      by_component[by_index[i]->component].push_back(i);
    }
  }
  for (auto& [component, members] : by_component) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    // Hash the write/read sets of each member's final once.
    std::unordered_map<std::size_t, SlotSet> write_sets;
    std::unordered_map<std::size_t, SlotSet> read_sets;
    for (const std::size_t i : members) {
      write_sets[i] = SlotSet(finals[i]->writes.begin(),
                              finals[i]->writes.end());
      read_sets[i] = SlotSet(finals[i]->reads.begin(),
                             finals[i]->reads.end());
    }
    for (std::size_t a = 0; a < members.size(); ++a) {
      for (std::size_t b = a + 1; b < members.size(); ++b) {
        const std::size_t i = members[a];  // earlier in block order
        const std::size_t j = members[b];
        const Attempt& fi = *finals[i];
        const Attempt& fj = *finals[j];

        if (discipline_ == CommitDiscipline::kMultiVersion) {
          // Publication ordering: for every slot j's final run read that
          // i's final run wrote — and no intermediate same-component
          // transaction's final wrote (j read *that* version instead) —
          // j's validated read can only have seen a value published after
          // i completed, so i's final must end before j's does. Output and
          // anti-dependencies carry no constraint: versions coexist in the
          // store, and reads resolve strictly-lower indices.
          const account::SlotAccess* dep = nullptr;
          for (const account::SlotAccess& slot : fj.reads) {
            if (write_sets[i].count(slot) == 0) continue;
            bool shadowed = false;
            for (std::size_t m = a + 1; m < b; ++m) {
              if (write_sets[members[m]].count(slot) != 0) {
                shadowed = true;
                break;
              }
            }
            if (!shadowed) {
              dep = &slot;
              break;
            }
          }
          if (dep != nullptr) {
            ++report.conflict_pairs_checked;
            if (fi.end_seq >= fj.end_seq) {
              AuditViolation v;
              v.kind = AuditViolation::Kind::kUnorderedConflict;
              v.tx_a = i;
              v.tx_b = j;
              v.detail = "reader's final run completed before its "
                         "writer's on " +
                         slot_name(*dep) + ": tx#" + std::to_string(i) +
                         " ended at " + std::to_string(fi.end_seq) +
                         ", tx#" + std::to_string(j) + " ended at " +
                         std::to_string(fj.end_seq);
              report.violations.push_back(std::move(v));
            }
          }
          continue;
        }

        // True or output dependency: i's writes feed (or race with) j.
        const account::SlotAccess* true_dep =
            first_common(write_sets[i], fj.reads);
        if (true_dep == nullptr) {
          true_dep = first_common(write_sets[i], fj.writes);
        }
        if (true_dep != nullptr) {
          ++report.conflict_pairs_checked;
          if (fi.end_seq >= fj.begin_seq) {
            AuditViolation v;
            v.kind = AuditViolation::Kind::kUnorderedConflict;
            v.tx_a = i;
            v.tx_b = j;
            v.detail = "dependent runs overlap on " + slot_name(*true_dep) +
                       ": tx#" + std::to_string(i) + " [" +
                       std::to_string(fi.begin_seq) + "," +
                       std::to_string(fi.end_seq) + "] vs tx#" +
                       std::to_string(j) + " [" +
                       std::to_string(fj.begin_seq) + "," +
                       std::to_string(fj.end_seq) + "]";
            report.violations.push_back(std::move(v));
          }
          continue;
        }

        // Pure anti-dependency: j overwrites what i read. Overlap is
        // legitimate (OCC reads its pre-wave snapshot and commits in
        // block order), but i running strictly after j would have read
        // j's future.
        const account::SlotAccess* anti_dep =
            first_common(write_sets[j], fi.reads);
        if (anti_dep != nullptr) {
          ++report.conflict_pairs_checked;
          if (fi.begin_seq > fj.end_seq) {
            AuditViolation v;
            v.kind = AuditViolation::Kind::kUnorderedConflict;
            v.tx_a = i;
            v.tx_b = j;
            v.detail = "anti-dependent reader ran after the writer on " +
                       slot_name(*anti_dep) + ": tx#" + std::to_string(i) +
                       " began at " + std::to_string(fi.begin_seq) +
                       ", tx#" + std::to_string(j) + " ended at " +
                       std::to_string(fj.end_seq);
            report.violations.push_back(std::move(v));
          }
        }
      }
    }
  }

  for (AuditViolation& v : report.violations) {
    if (!executor_name_.empty()) {
      v.detail += "; executor=" + executor_name_;
    }
    if (!repro_hint_.empty()) {
      v.detail += "; " + exec::format_repro_env(repro_hint_);
    }
  }

  txs_.clear();
  threads_.clear();
  clock_ = 0;
  return report;
}

}  // namespace txconc::audit
