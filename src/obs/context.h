// Causal trace context: the message-envelope analogue of a W3C
// traceparent, carried across threads, nodes and shard committees so one
// Chrome trace shows a block's whole multi-node lifecycle (produce ->
// gossip -> pbft rounds -> cross-shard 2PC -> remote re-execution) as a
// single parent-linked tree.
//
// This header is deliberately dependency-free: account::RuntimeConfig
// embeds a TraceContext by value, and the account layer must not pull in
// the full tracer.
#pragma once

#include <cstdint>

namespace txconc::obs {

/// A reference to a span in some (possibly remote) process.
///
/// `trace_id` groups every span of one causal story (minted once per
/// block); `parent_span` is the span id the receiver should link to as
/// its parent; `flow_id`, when non-zero, names a flow-start event the
/// forwarding site emitted so the viewer draws the cross-thread arrow
/// (see CausalSpan::fork in obs/trace.h).
///
/// The zero-initialized context means "no context": spans started under
/// it mint a fresh trace root. Copying is free; forwarding a context
/// through a disabled tracer allocates nothing (enforced by
/// tests/obs_test.cpp).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t flow_id = 0;

  bool valid() const { return trace_id != 0; }
};

}  // namespace txconc::obs
