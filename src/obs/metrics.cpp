#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/csv.h"

namespace txconc::obs {

namespace {

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bits_double(std::uint64_t b) { return std::bit_cast<double>(b); }

/// CAS-accumulate `delta` into a double stored as bits.
void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      expected, double_bits(bits_double(expected) + delta),
      std::memory_order_relaxed)) {
  }
}

template <typename Less>
void atomic_extreme_double(std::atomic<std::uint64_t>& bits, double v,
                           Less less) {
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (less(v, bits_double(expected)) &&
         !bits.compare_exchange_weak(expected, double_bits(v),
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

std::uint64_t Gauge::pack(double v) { return double_bits(v); }
double Gauge::unpack(std::uint64_t bits) { return bits_double(bits); }

Histogram::Histogram()
    : min_bits_(double_bits(std::numeric_limits<double>::infinity())),
      max_bits_(double_bits(-std::numeric_limits<double>::infinity())) {}

std::size_t Histogram::bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // < 1, negatives and NaN
  const int exponent = std::ilogb(v);  // floor(log2(v)) for finite v >= 1
  if (exponent >= 63 || exponent == FP_ILOGBNAN) return kNumBuckets - 1;
  return static_cast<std::size_t>(exponent) + 1;
}

double Histogram::bucket_lower(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(bucket) - 1);  // 2^(i-1)
}

double Histogram::bucket_upper(std::size_t bucket) {
  return std::ldexp(1.0, static_cast<int>(bucket));  // 2^i
}

void Histogram::observe(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_bits_, v);
  atomic_extreme_double(min_bits_, v, std::less<double>());
  atomic_extreme_double(max_bits_, v, std::greater<double>());
}

double Histogram::sum() const {
  return bits_double(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const {
  return count() == 0 ? 0.0
                      : bits_double(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  return count() == 0 ? 0.0
                      : bits_double(max_bits_.load(std::memory_order_relaxed));
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    const auto in_bucket = static_cast<double>(
        buckets_[b].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      const double lo = bucket_lower(b);
      const double hi = bucket_upper(b);
      const double frac = (target - cumulative) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    cumulative += in_bucket;
  }
  return max();  // rounding fell past the last bucket
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // leaked, like the tracer
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  const MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::size_t Registry::size() const {
  const MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

namespace {

void write_json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void Registry::write_json(std::ostream& out) const {
  const MutexLock lock(mu_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": " << counter->value();
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": " << gauge->value();
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
        << ", \"min\": " << h->min() << ", \"max\": " << h->max()
        << ", \"p50\": " << h->quantile(0.50)
        << ", \"p95\": " << h->quantile(0.95)
        << ", \"p99\": " << h->quantile(0.99) << "}";
  }
  out << "\n  }\n}\n";
}

void Registry::write_csv(std::ostream& out) const {
  const MutexLock lock(mu_);
  CsvWriter csv(out);
  csv.header({"kind", "name", "count", "value", "p50", "p95", "p99"});
  const auto fmt = [](double v) {
    std::ostringstream s;
    s << v;
    return s.str();
  };
  for (const auto& [name, counter] : counters_) {
    csv.row({"counter", name, "", std::to_string(counter->value()), "", "",
             ""});
  }
  for (const auto& [name, gauge] : gauges_) {
    csv.row({"gauge", name, "", fmt(gauge->value()), "", "", ""});
  }
  for (const auto& [name, h] : histograms_) {
    csv.row({"histogram", name, std::to_string(h->count()), fmt(h->sum()),
             fmt(h->quantile(0.50)), fmt(h->quantile(0.95)),
             fmt(h->quantile(0.99))});
  }
}

}  // namespace txconc::obs
