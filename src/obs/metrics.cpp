#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/csv.h"

namespace txconc::obs {

namespace {

std::uint64_t double_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bits_double(std::uint64_t b) { return std::bit_cast<double>(b); }

/// CAS-accumulate `delta` into a double stored as bits.
/// ordering: relaxed throughout — instruments are statistical; each CAS
/// only needs atomicity of its own word, never publication of other data.
void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) {
  // ordering: relaxed — see above.
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      expected, double_bits(bits_double(expected) + delta),
      // ordering: relaxed — see above; the retry loop re-reads anyway.
      std::memory_order_relaxed)) {
  }
}

template <typename Less>
void atomic_extreme_double(std::atomic<std::uint64_t>& bits, double v,
                           Less less) {
  // ordering: relaxed — see atomic_add_double.
  std::uint64_t expected = bits.load(std::memory_order_relaxed);
  while (less(v, bits_double(expected)) &&
         !bits.compare_exchange_weak(expected, double_bits(v),
                                     // ordering: relaxed — as above.
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

std::uint64_t Gauge::pack(double v) { return double_bits(v); }
double Gauge::unpack(std::uint64_t bits) { return bits_double(bits); }

Histogram::Histogram()
    : min_bits_(double_bits(std::numeric_limits<double>::infinity())),
      max_bits_(double_bits(-std::numeric_limits<double>::infinity())) {}

std::size_t Histogram::bucket_index(double v) {
  if (!(v >= 1.0)) return 0;  // < 1, negatives and NaN
  const int exponent = std::ilogb(v);  // floor(log2(v)) for finite v >= 1
  if (exponent >= 63 || exponent == FP_ILOGBNAN) return kNumBuckets - 1;
  return static_cast<std::size_t>(exponent) + 1;
}

double Histogram::bucket_lower(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(bucket) - 1);  // 2^(i-1)
}

double Histogram::bucket_upper(std::size_t bucket) {
  return std::ldexp(1.0, static_cast<int>(bucket));  // 2^i
}

void Histogram::observe(double v) {
  // ordering: relaxed — buckets/count/extremes are each independently
  // atomic; readers take a statistical snapshot, never a transaction.
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);  // ordering: ditto
  atomic_add_double(sum_bits_, v);
  atomic_extreme_double(min_bits_, v, std::less<double>());
  atomic_extreme_double(max_bits_, v, std::greater<double>());
}

double Histogram::sum() const {
  // ordering: relaxed — statistical snapshot; see observe().
  return bits_double(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::min() const {
  // ordering: relaxed — statistical snapshot; see observe().
  return count() == 0 ? 0.0
                      : bits_double(min_bits_.load(std::memory_order_relaxed));
}

double Histogram::max() const {
  // ordering: relaxed — statistical snapshot; see observe().
  return count() == 0 ? 0.0
                      : bits_double(max_bits_.load(std::memory_order_relaxed));
}

void Histogram::merge_from(const Histogram& other) {
  // ordering: relaxed — the copy is a statistical snapshot, not an
  // atomic transaction across instruments (see the header contract).
  const std::uint64_t n = other.count_.load(std::memory_order_relaxed);
  if (n == 0) return;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    // ordering: relaxed — as above.
    const std::uint64_t in_bucket =
        other.buckets_[b].load(std::memory_order_relaxed);
    if (in_bucket != 0) {
      // ordering: relaxed — as above.
      buckets_[b].fetch_add(in_bucket, std::memory_order_relaxed);
    }
  }
  // ordering: relaxed — as above.
  count_.fetch_add(n, std::memory_order_relaxed);
  atomic_add_double(sum_bits_, other.sum());
  // min/max start at +/-inf, so merging an untouched side is a no-op.
  // ordering: relaxed — statistical snapshot, as above.
  atomic_extreme_double(
      min_bits_, bits_double(other.min_bits_.load(std::memory_order_relaxed)),
      std::less<double>());
  atomic_extreme_double(
      // ordering: relaxed — statistical snapshot, as above.
      max_bits_, bits_double(other.max_bits_.load(std::memory_order_relaxed)),
      std::greater<double>());
}

std::uint64_t Histogram::bucket_count(std::size_t bucket) const {
  // ordering: relaxed — statistical snapshot; see observe().
  return bucket < kNumBuckets
             ? buckets_[bucket].load(std::memory_order_relaxed)
             : 0;
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    // ordering: relaxed — statistical snapshot; see observe().
    const auto in_bucket = static_cast<double>(
        buckets_[b].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      const double lo = bucket_lower(b);
      const double hi = bucket_upper(b);
      const double frac = (target - cumulative) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    cumulative += in_bucket;
  }
  return max();  // rounding fell past the last bucket
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // leaked, like the tracer
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  const MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::size_t Registry::size() const {
  const MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::merge_from(const Registry& other) {
  // Snapshot the other registry's instrument pointers under its lock,
  // then fold them in through our own lookup path — instruments are
  // never deleted, so the pointers outlive the lock, and taking one
  // mutex at a time cannot deadlock with a concurrent opposite merge.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    const MutexLock lock(other.mu_);
    counters.reserve(other.counters_.size());
    for (const auto& [name, c] : other.counters_) {
      counters.emplace_back(name, c.get());
    }
    gauges.reserve(other.gauges_.size());
    for (const auto& [name, g] : other.gauges_) {
      gauges.emplace_back(name, g.get());
    }
    histograms.reserve(other.histograms_.size());
    for (const auto& [name, h] : other.histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  for (const auto& [name, c] : counters) counter(name).add(c->value());
  for (const auto& [name, g] : gauges) {
    Gauge& mine = gauge(name);
    mine.set(std::max(mine.value(), g->value()));
  }
  for (const auto& [name, h] : histograms) histogram(name).merge_from(*h);
}

std::map<std::string, std::uint64_t> Registry::counter_values() const {
  const MutexLock lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, double> Registry::gauge_values() const {
  const MutexLock lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g->value());
  return out;
}

namespace {

void write_json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void Registry::write_json(std::ostream& out) const {
  const MutexLock lock(mu_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": " << counter->value();
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": " << gauge->value();
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_json_string(out, name);
    out << ": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
        << ", \"min\": " << h->min() << ", \"max\": " << h->max()
        << ", \"p50\": " << h->quantile(0.50)
        << ", \"p95\": " << h->quantile(0.95)
        << ", \"p99\": " << h->quantile(0.99) << "}";
  }
  out << "\n  }\n}\n";
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:] and a non-digit lead;
/// our dotted names ("node.blocks_produced") map dots to underscores.
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

void Registry::write_prometheus(std::ostream& out) const {
  const MutexLock lock(mu_);
  for (const auto& [name, counter] : counters_) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << " counter\n"
        << metric << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << " gauge\n"
        << metric << " " << gauge->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string metric = prometheus_name(name);
    out << "# TYPE " << metric << " summary\n"
        << metric << "{quantile=\"0.5\"} " << h->quantile(0.50) << "\n"
        << metric << "{quantile=\"0.95\"} " << h->quantile(0.95) << "\n"
        << metric << "{quantile=\"0.99\"} " << h->quantile(0.99) << "\n"
        << metric << "_sum " << h->sum() << "\n"
        << metric << "_count " << h->count() << "\n";
  }
}

void Registry::write_csv(std::ostream& out) const {
  const MutexLock lock(mu_);
  CsvWriter csv(out);
  csv.header({"kind", "name", "count", "value", "p50", "p95", "p99"});
  const auto fmt = [](double v) {
    std::ostringstream s;
    s << v;
    return s.str();
  };
  for (const auto& [name, counter] : counters_) {
    csv.row({"counter", name, "", std::to_string(counter->value()), "", "",
             ""});
  }
  for (const auto& [name, gauge] : gauges_) {
    csv.row({"gauge", name, "", fmt(gauge->value()), "", "", ""});
  }
  for (const auto& [name, h] : histograms_) {
    csv.row({"histogram", name, std::to_string(h->count()), fmt(h->sum()),
             fmt(h->quantile(0.50)), fmt(h->quantile(0.95)),
             fmt(h->quantile(0.99))});
  }
}

}  // namespace txconc::obs
