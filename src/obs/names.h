// Central registry of span / instant / metric name literals.
//
// The trace-driven profiler (obs/critpath.h) reconstructs engine behavior
// from span NAMES: a renamed emitter would silently fall into the
// "untracked" attribution bucket and a renamed analyzer constant would
// stop matching every emitter at once. Keeping both sides on these
// constants makes that drift a compile error instead of a quiet report
// regression. New spans: add the constant here, emit it, and (if the
// profiler should bucket it) extend the taxonomy in obs/critpath.cpp —
// see DESIGN.md §16 for the add-a-bucket recipe.
#pragma once

namespace txconc::obs::names {

// ----------------------------------------------------------- categories
inline constexpr const char* kCatExec = "exec";
inline constexpr const char* kCatPool = "pool";
inline constexpr const char* kCatChain = "chain";
inline constexpr const char* kCatShard = "shard";

// ----------------------------------------------- executor phase spans
// Every registry engine emits the same top-level contract under its
// execute_block root: predict / schedule / execute / commit (+ seq_bin
// for engines with a sequential tail). bench/ablation_engines validates
// the set per engine and obs/critpath.cpp anchors its analysis on it.
inline constexpr const char* kSpanExecuteBlock = "execute_block";
inline constexpr const char* kSpanPredict = "predict";
/// predict sub-phase: building the approximate TDG (per-tx closure walk).
inline constexpr const char* kSpanPredictClosure = "predict.closure";
/// predict sub-phase: connected components over the TDG + group fill.
inline constexpr const char* kSpanPredictComponents = "predict.components";
inline constexpr const char* kSpanSchedule = "schedule";
inline constexpr const char* kSpanExecute = "execute";
inline constexpr const char* kSpanCommit = "commit";
inline constexpr const char* kSpanSeqBin = "seq_bin";
/// One speculative execution attempt; arg = tx index. A tx's LAST attempt
/// is its committed execution, earlier ones are abort/retry rework.
inline constexpr const char* kSpanAttempt = "attempt";
/// One final (sequential / seq_bin) tx execution; arg = tx index.
inline constexpr const char* kSpanTx = "tx";
/// Block-STM read-set validation; arg = tx index.
inline constexpr const char* kSpanValidate = "validate";
/// A scheduler participant waiting for claimable work (dependency wait);
/// arg = participant slot.
inline constexpr const char* kSpanWait = "wait";
/// One dequeued pool task (covers a worker's whole batch participation).
inline constexpr const char* kSpanPoolTask = "pool_task";

// ------------------------------------------------------ instant events
/// Thread budget of one block execution; arg = participants (pool
/// workers + the caller). Emitted inside execute_block so the profiler
/// knows the denominator of the threads x wall attribution budget.
inline constexpr const char* kEvThreads = "threads";
/// Block-STM reader suspended on an ESTIMATE marker; arg = blocking tx.
inline constexpr const char* kEvSuspend = "suspend";
/// One discarded execution attempt at an engine abort site; arg = tx
/// index. The abort reason lands in the exec.abort.* counters and the
/// contention sink's key attribution (obs/contention.h).
inline constexpr const char* kEvAbort = "abort";

// ----------------------------------------------------------- chain spans
inline constexpr const char* kSpanProduceBlock = "produce_block";
inline constexpr const char* kSpanPack = "pack";
inline constexpr const char* kSpanStateRoot = "state_root";
inline constexpr const char* kSpanPow = "pow";
inline constexpr const char* kSpanReceiveBlock = "receive_block";

// ----------------------------------------------------------- shard spans
inline constexpr const char* kSpanPbftRound = "pbft_round";
inline constexpr const char* kSpanPbftPrePrepare = "pbft_pre_prepare";
inline constexpr const char* kSpanPbftPrepare = "pbft_prepare";
inline constexpr const char* kSpanPbftCommit = "pbft_commit";
inline constexpr const char* kSpanXshardTransfer = "xshard_transfer";
inline constexpr const char* kSpanXshardLock = "xshard_lock";
inline constexpr const char* kSpanXshardRedeem = "xshard_redeem";
inline constexpr const char* kSpanXshardUnlock = "xshard_unlock";
inline constexpr const char* kSpanEpoch = "epoch";

// -------------------------------------------------------------- metrics
inline constexpr const char* kMetricExecBlocks = "exec.blocks";
inline constexpr const char* kMetricExecTxs = "exec.txs";
inline constexpr const char* kMetricExecExecutions = "exec.executions";
inline constexpr const char* kMetricExecSequentialTxs =
    "exec.sequential_txs";
inline constexpr const char* kMetricExecBlockWallUs = "exec.block_wall_us";
inline constexpr const char* kMetricExecPhase1Us = "exec.phase1_us";
inline constexpr const char* kMetricExecPhase2Us = "exec.phase2_us";
inline constexpr const char* kMetricExecSeqBinTxs = "exec.seq_bin_txs";
inline constexpr const char* kMetricExecConflictStallUs =
    "exec.conflict_stall_us";
inline constexpr const char* kMetricExecAttemptsPerTx =
    "exec.attempts_per_tx";
inline constexpr const char* kMetricExecLargestComponentTxs =
    "exec.largest_component_txs";
inline constexpr const char* kMetricExecOccWaves = "exec.occ_waves";
inline constexpr const char* kMetricExecBlockStmValidations =
    "exec.block_stm_validations";
inline constexpr const char* kMetricExecBlockStmAborts =
    "exec.block_stm_aborts";
/// Per-reason abort counters: kMetricExecAbortPrefix +
/// obs::abort_reason_name(reason), e.g. "exec.abort.spec_conflict".
inline constexpr const char* kMetricExecAbortPrefix = "exec.abort.";
// Contention explainer (obs/contention.h, DESIGN.md §17): measured
// conflict rates, prediction quality and hot-key telemetry per block.
inline constexpr const char* kMetricContentionMeasuredC =
    "exec.contention.measured_c";
inline constexpr const char* kMetricContentionMeasuredL =
    "exec.contention.measured_l";
inline constexpr const char* kMetricContentionPredPrecision =
    "exec.contention.pred_precision";
inline constexpr const char* kMetricContentionPredRecall =
    "exec.contention.pred_recall";
inline constexpr const char* kMetricContentionPredOverApprox =
    "exec.contention.pred_over_approx";
inline constexpr const char* kMetricContentionComponentTxs =
    "exec.contention.component_txs";
inline constexpr const char* kMetricContentionTouches =
    "exec.contention.touches";
inline constexpr const char* kMetricPoolDequeueGapUs = "pool.dequeue_gap_us";
inline constexpr const char* kMetricNodeBlocksProduced =
    "node.blocks_produced";
inline constexpr const char* kMetricNodeTxsIncluded = "node.txs_included";
inline constexpr const char* kMetricNodeProduceUs = "node.produce_us";
inline constexpr const char* kMetricNodeBlocksReceived =
    "node.blocks_received";
inline constexpr const char* kMetricNodeTxsExecuted = "node.txs_executed";
inline constexpr const char* kMetricNodeReceiveUs = "node.receive_us";
inline constexpr const char* kMetricPbftRounds = "pbft.rounds";
inline constexpr const char* kMetricPbftMessages = "pbft.messages";
inline constexpr const char* kMetricPbftViewChanges = "pbft.view_changes";
inline constexpr const char* kMetricXshardTransfers = "xshard.transfers";
inline constexpr const char* kMetricXshardCommits = "xshard.commits";
inline constexpr const char* kMetricXshardAborts = "xshard.aborts";
inline constexpr const char* kMetricXshardLatencyS = "xshard.latency_s";
inline constexpr const char* kMetricShardEpochs = "shard.epochs";
inline constexpr const char* kMetricShardMessages = "shard.messages";
inline constexpr const char* kMetricShardRejectedCrossShard =
    "shard.rejected_cross_shard";
inline constexpr const char* kMetricShardFinalBlockTxs =
    "shard.final_block_txs";
inline constexpr const char* kMetricShardEpochLatencyS =
    "shard.epoch_latency_s";

}  // namespace txconc::obs::names
