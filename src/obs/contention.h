// Contention explainer: measured conflict telemetry, hot-key attribution
// and prediction-quality metrics (DESIGN.md §17).
//
// The paper's argument rests on two measured quantities — the single-
// transaction conflict rate `c` and the group conflict rate `l` — but the
// runtime only ever sees their *predicted* versions. This layer closes
// the loop from the engines' side: every execution attempt feeds its
// observed read/write sets into a lane-sharded, allocation-free
// SpaceSaving top-k sketch over (address, slot, channel) touches, engines
// attribute their aborts (speculative conflicts, fww poisonings, OCC wave
// retries, Block-STM estimate-aborts / validation failures) to the
// specific keys that caused them, and a per-block observer computes
// measured `c`, `l`, the component-size histogram and the quality of
// `exec::predicted_addresses` closures (precision / recall /
// over-approximation) from the final receipts.
//
// Layering: this header depends on common + core + account only. The
// prediction closures are computed by exec and handed in as data
// (see exec/contention_probe.h), so obs never links exec.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "account/runtime.h"
#include "account/types.h"
#include "common/flat_table.h"
#include "common/hash.h"
#include "common/hot_path.h"
#include "common/thread_annotations.h"

namespace txconc::obs {

class Registry;

// ------------------------------------------------------------ taxonomy

/// Why an execution attempt's work was discarded, uniform across engines.
/// Extending: add the enumerator before kCount, name it in
/// abort_reason_name(), record it at the engine's abort site (report +
/// sink), and the exec.abort.* counters, trace instants, CLI breakdowns
/// and bench artifact pick it up automatically — see DESIGN.md §17.4.
enum class AbortReason : std::uint8_t {
  /// speculative(all-conflicted): tx touched a slot with a writer and
  /// another accessor in phase 1, so it joins the sequential bin.
  kSpecConflict = 0,
  /// speculative: the attempt failed validity (stale nonce/balance); its
  /// predicted component is poisoned into the sequential bin.
  kInvalidAttempt,
  /// speculative(first-writer-wins): tx read or wrote a slot already
  /// committed or poisoned by an earlier transaction.
  kFwwPoisoned,
  /// occ: in-order validation found a read/write clashing with an
  /// earlier transaction's write in the same wave; tx retries next wave.
  kOccWaveRetry,
  /// occ: tx deferred because an earlier member of its predicted
  /// component already clashed (no specific key).
  kOccDeferred,
  /// block-stm: a read hit an ESTIMATE marker and the attempt suspended
  /// or restarted behind the blocking transaction.
  kBlockStmEstimateAbort,
  /// block-stm: read-set validation observed a different version than
  /// the attempt read; the incarnation is discarded.
  kBlockStmValidationFail,
  kCount,
};

inline constexpr std::size_t kNumAbortReasons =
    static_cast<std::size_t>(AbortReason::kCount);

/// Stable snake_case identifier ("spec_conflict", ...); doubles as the
/// exec.abort.<name> counter suffix and the JSON key.
const char* abort_reason_name(AbortReason reason);

/// Per-reason abort tallies, indexed by AbortReason.
using AbortCounts = std::array<std::uint64_t, kNumAbortReasons>;

// ------------------------------------------------------------ touch keys

/// Which facet of an account a touch hit, aligned with the multi-version
/// engines' channel split (exec/block_stm.h) so MvKeys map 1:1.
enum class TouchChannel : std::uint8_t {
  kBalance = 0,
  kNonce,
  kStorage,
  kCode,
};

const char* touch_channel_name(TouchChannel channel);

/// AccessTracker records balance/nonce touches as storage key ~0 (see
/// account::AccessTracker::kBalanceKey; contention.cpp static_asserts the
/// two constants agree so the layers cannot drift).
inline constexpr std::uint64_t kBalanceSlotSentinel = ~std::uint64_t{0};

/// One sketchable key: the (address, slot, channel) triple engines
/// conflict on.
struct TouchKey {
  Address addr;
  std::uint64_t slot = 0;
  TouchChannel channel = TouchChannel::kStorage;

  auto operator<=>(const TouchKey&) const = default;
};

struct TouchKeyHash {
  std::size_t operator()(const TouchKey& k) const noexcept {
    std::size_t seed = std::hash<Address>{}(k.addr);
    std::uint64_t v =
        k.slot ^ (static_cast<std::uint64_t>(k.channel) << 56);
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    seed ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL +
            (seed << 6) + (seed >> 2);
    return seed;
  }
};

/// Map one recorded storage-layer access to its sketch key (the balance
/// sentinel becomes the balance channel).
inline TouchKey touch_key(const account::SlotAccess& access) {
  if (access.key == kBalanceSlotSentinel) {
    return TouchKey{access.address, 0, TouchChannel::kBalance};
  }
  return TouchKey{access.address, access.key, TouchChannel::kStorage};
}

// ------------------------------------------------------------- sketch

/// SpaceSaving top-k heavy-hitter sketch (Metwally et al.) over TouchKeys.
///
/// Fixed k counter slots plus a FlatTable index; when a new key arrives at
/// capacity it evicts the minimum-count entry, inheriting its count as the
/// `error` bound (true count is in [count - error, count]). The guarantee:
/// any key with true frequency > total/k is present. Steady state is
/// allocation-free — the entry array never resizes and the index is
/// rebuilt in place (epoch clear + reinsert) before tombstones could force
/// a growth; tests/contention_test.cpp enforces this with a counting
/// operator new, like hotpath_test does for the engines.
///
/// Not thread-safe; ContentionSink shards instances per lane.
class SpaceSavingSketch {
 public:
  struct Entry {
    TouchKey key;
    std::uint64_t count = 0;
    /// Maximum overestimation of count (min-count at takeover time).
    std::uint64_t error = 0;
    /// Per-reason attribution (used by the abort sketch; zero for pure
    /// touch sketches).
    AbortCounts reasons{};
  };

  explicit SpaceSavingSketch(std::size_t k = kDefaultK);

  /// Count `weight` touches of `key`.
  TXCONC_HOT void admit(const TouchKey& key, std::uint64_t weight = 1);
  /// Count one abort of `reason` attributed to `key`.
  TXCONC_HOT void admit_abort(const TouchKey& key, AbortReason reason);

  /// Fold another sketch into this one (counts add, errors add for shared
  /// keys; standard SpaceSaving merge). Allocation-free once warm.
  TXCONC_HOT void absorb(const SpaceSavingSketch& other);

  /// Logically empty the sketch, retaining capacity.
  TXCONC_HOT void clear();

  /// Live entries, unsorted (cold-path accessor for merge/report).
  std::span<const Entry> entries() const { return {entries_.data(), live_}; }
  /// Entries sorted by descending count (cold path; allocates).
  std::vector<Entry> top() const;

  std::size_t capacity() const { return entries_.size(); }
  std::size_t live() const { return live_; }
  /// Total weight admitted (exact, independent of evictions).
  std::uint64_t total() const { return total_; }

  static constexpr std::size_t kDefaultK = 32;

 private:
  TXCONC_HOT Entry& slot_for(const TouchKey& key, std::uint64_t weight);
  TXCONC_HOT void rebuild_index();

  std::vector<Entry> entries_;  ///< fixed size k after construction
  std::size_t live_ = 0;
  std::uint64_t total_ = 0;
  /// Evictions tombstone the index; rebuild_index() reclaims them in
  /// place before FlatTable's load factor could trigger a (re)allocation.
  std::size_t tombstones_ = 0;
  common::FlatTable<TouchKey, std::uint32_t, TouchKeyHash> index_;
};

// -------------------------------------------------------------- sink

/// Thread-safe contention event collector, carried next to the tracer and
/// metrics registry in obs::Scope. Writers (pool workers inside engines
/// and the access-recorder hook) hash their thread id onto one of a few
/// mutex-guarded lanes, each holding a private touch sketch, abort sketch
/// and abort tally — near-zero contention, no registration, and the hot
/// path stays allocation-free once the lanes are warm. finish_block()
/// merges the lanes into the block-level view the reports render.
class ContentionSink {
 public:
  explicit ContentionSink(std::size_t sketch_k = SpaceSavingSketch::kDefaultK,
                          std::size_t lanes = kDefaultLanes);

  // --- hot path (any thread) ---

  /// Record the observed access sets of one execution attempt.
  TXCONC_HOT void record_touches(
      std::span<const account::SlotAccess> reads,
      std::span<const account::SlotAccess> writes);
  /// Record one touch directly (engines with their own key types).
  TXCONC_HOT void record_touch(const TouchKey& key);
  /// Record an abort attributed to a specific key.
  TXCONC_HOT void record_abort(AbortReason reason, const TouchKey& key);
  /// Record an abort with no attributable key (e.g. occ's deferred
  /// components): counted in the totals, absent from the key sketch.
  TXCONC_HOT void record_abort(AbortReason reason);

  // --- block lifecycle (one thread, between executions) ---

  /// Reset every lane and the merged view for a new block.
  void begin_block();
  /// Merge the lanes into the block-level sketches/tallies.
  void finish_block();

  /// Merged views (valid after finish_block()).
  const SpaceSavingSketch& touches() const { return merged_touches_; }
  const SpaceSavingSketch& aborts() const { return merged_aborts_; }
  const AbortCounts& abort_totals() const { return merged_abort_totals_; }
  std::uint64_t total_touches() const { return merged_touches_.total(); }

  static constexpr std::size_t kDefaultLanes = 8;

 private:
  struct Lane {
    Mutex mu;
    SpaceSavingSketch touches GUARDED_BY(mu);
    SpaceSavingSketch aborts GUARDED_BY(mu);
    AbortCounts abort_tally GUARDED_BY(mu){};

    explicit Lane(std::size_t sketch_k) : touches(sketch_k), aborts(sketch_k) {}
  };

  TXCONC_HOT Lane& lane() const;

  std::vector<std::unique_ptr<Lane>> lanes_;
  SpaceSavingSketch merged_touches_;
  SpaceSavingSketch merged_aborts_;
  AbortCounts merged_abort_totals_{};
};

// ----------------------------------------------------- per-block report

/// One bar of the observed component-size histogram: `count` components
/// of `size` transactions each (size 1 = unconflicted singletons).
struct ComponentBucket {
  std::size_t size = 0;
  std::size_t count = 0;
};

/// One rendered heavy hitter.
struct HotKey {
  TouchKey key;
  std::uint64_t count = 0;
  std::uint64_t error = 0;
  AbortCounts reasons{};
};

/// Everything the contention explainer can say about one executed block.
struct BlockContention {
  std::size_t num_txs = 0;

  /// Measured conflicts at storage-slot granularity (Saraph & Herlihy):
  /// two transactions conflict when they touch the same (address, slot)
  /// and at least one writes — computed from the final receipts' recorded
  /// access sets, not from any prediction.
  std::size_t conflicted_txs = 0;
  std::size_t lcc_txs = 0;
  std::size_t num_components = 0;
  double measured_c = 0.0;
  double measured_l = 0.0;
  std::vector<ComponentBucket> component_histogram;

  /// Measured conflicts at address granularity (the paper's TDG over
  /// sender/receiver/internal-tx edges) — directly comparable to the
  /// workload generator's calibrated intent via
  /// analysis::analyze_account_block (the bench_gate --contend check).
  double measured_c_address = 0.0;
  double measured_l_address = 0.0;

  /// Quality of the predicted closures vs the observed address sets,
  /// micro-averaged over transactions: precision = |P∩O|/|P|, recall =
  /// |P∩O|/|O|, over_approx = |P|/|O|. Sound prediction ⇒ recall 1.
  std::uint64_t predicted_addresses = 0;
  std::uint64_t observed_addresses = 0;
  std::uint64_t overlap_addresses = 0;
  double precision = 1.0;
  double recall = 1.0;
  double over_approx = 1.0;
  bool has_prediction = false;

  /// Heavy hitters (descending count) and abort attribution.
  std::uint64_t total_touches = 0;
  std::vector<HotKey> hot_keys;
  std::vector<HotKey> abort_keys;
  /// Aborts attributed through the sink (key-level, may undercount
  /// keyless reasons) vs the engine's authoritative report tallies.
  AbortCounts sink_abort_totals{};
  AbortCounts engine_abort_totals{};
};

// ---------------------------------------------------------- observer

/// The per-block driver: an account::AccessRecorder that feeds every
/// execution attempt's observed access sets into the sink, plus the cold
/// post-block analysis producing a BlockContention. Install it through
/// RuntimeConfig::recorder (or HistoryReplayer::set_access_recorder) and
/// point Scope::contention at sink() so engines can attribute aborts.
///
/// Lifecycle per block: begin_block(txs) → [engine runs; hooks and abort
/// sites fire concurrently] → finish_block(receipts). Prediction closures
/// are optional data, loaded with set_predicted (exec computes them; see
/// exec/contention_probe.h).
class ContentionObserver final : public account::AccessRecorder {
 public:
  explicit ContentionObserver(
      std::size_t sketch_k = SpaceSavingSketch::kDefaultK);

  ContentionSink& sink() { return sink_; }
  const ContentionSink& sink() const { return sink_; }

  void begin_block(std::span<const account::AccountTx> txs);
  /// Load transaction `tx_index`'s predicted address closure.
  void set_predicted(std::size_t tx_index, std::span<const Address> closure);
  /// Merge the sink and compute the block's measured metrics from the
  /// final receipts (cold path; allocates freely).
  BlockContention finish_block(std::span<const account::Receipt> receipts);

  // AccessRecorder: fires per execution attempt from every pool worker.
  void on_begin(const account::AccountTx& tx) const override;
  void on_complete(const account::AccountTx& tx,
                   const account::Receipt& receipt) const override;

 private:
  mutable ContentionSink sink_;
  std::span<const account::AccountTx> txs_;
  std::vector<std::vector<Address>> predicted_;
  bool has_prediction_ = false;
};

// ---------------------------------------------------------- rendering

/// Human-readable report (txconc_contend default, parallel_executor
/// --contend).
void write_text(std::ostream& out, const BlockContention& block,
                std::size_t top_k = 10);
/// Machine-readable report (txconc_contend --format=json; the bench
/// artifact embeds the same shape per cell).
void write_json(std::ostream& out, const BlockContention& block,
                std::size_t top_k = 10);

/// Fold one block's contention summary into the metrics registry
/// (exec.contention.* gauges/histograms; null-safe).
void record_contention_metrics(Registry* registry,
                               const BlockContention& block);

}  // namespace txconc::obs
