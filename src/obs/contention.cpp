#include "obs/contention.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "account/state.h"
#include "common/error.h"
#include "core/components.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace txconc::obs {

// The sketch's balance sentinel and the tracker's must be the same value;
// touch_key() depends on it.
static_assert(kBalanceSlotSentinel == account::AccessTracker::kBalanceKey,
              "balance-channel sentinel drifted from AccessTracker");

const char* abort_reason_name(AbortReason reason) {
  switch (reason) {
    case AbortReason::kSpecConflict:
      return "spec_conflict";
    case AbortReason::kInvalidAttempt:
      return "invalid_attempt";
    case AbortReason::kFwwPoisoned:
      return "fww_poisoned";
    case AbortReason::kOccWaveRetry:
      return "occ_wave_retry";
    case AbortReason::kOccDeferred:
      return "occ_deferred";
    case AbortReason::kBlockStmEstimateAbort:
      return "estimate_abort";
    case AbortReason::kBlockStmValidationFail:
      return "validation_fail";
    case AbortReason::kCount:
      break;
  }
  return "unknown";
}

const char* touch_channel_name(TouchChannel channel) {
  switch (channel) {
    case TouchChannel::kBalance:
      return "balance";
    case TouchChannel::kNonce:
      return "nonce";
    case TouchChannel::kStorage:
      return "storage";
    case TouchChannel::kCode:
      return "code";
  }
  return "unknown";
}

// --------------------------------------------------------------- sketch

SpaceSavingSketch::SpaceSavingSketch(std::size_t k)
    : entries_(k == 0 ? 1 : k), index_((k == 0 ? 1 : k) * 2) {}

TXCONC_HOT SpaceSavingSketch::Entry& SpaceSavingSketch::slot_for(
    const TouchKey& key, std::uint64_t weight) {
  if (std::uint32_t* idx = index_.find(key)) {
    Entry& hit = entries_[*idx];
    hit.count += weight;
    return hit;
  }
  if (live_ < entries_.size()) {
    Entry& fresh = entries_[live_];
    fresh.key = key;
    fresh.count = weight;
    fresh.error = 0;
    fresh.reasons = {};
    index_[key] = static_cast<std::uint32_t>(live_);
    ++live_;
    return fresh;
  }
  // At capacity: the minimum-count entry hands its slot (and its count,
  // as the new entry's error bound) to the arriving key.
  std::size_t victim = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[victim].count) victim = i;
  }
  Entry& taken = entries_[victim];
  index_.erase(taken.key);
  ++tombstones_;
  taken.error = taken.count;
  taken.count += weight;
  taken.key = key;
  taken.reasons = {};
  // Reclaim tombstones in place well before FlatTable's 3/4 load factor
  // could make the insert below allocate.
  if ((live_ + tombstones_) * 2 >= index_.capacity()) rebuild_index();
  index_[key] = static_cast<std::uint32_t>(victim);
  return taken;
}

TXCONC_HOT void SpaceSavingSketch::rebuild_index() {
  index_.clear();
  tombstones_ = 0;
  for (std::size_t i = 0; i < live_; ++i) {
    index_[entries_[i].key] = static_cast<std::uint32_t>(i);
  }
}

TXCONC_HOT void SpaceSavingSketch::admit(const TouchKey& key,
                                         std::uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;
  slot_for(key, weight);
}

TXCONC_HOT void SpaceSavingSketch::admit_abort(const TouchKey& key,
                                               AbortReason reason) {
  total_ += 1;
  Entry& entry = slot_for(key, 1);
  ++entry.reasons[static_cast<std::size_t>(reason)];
}

TXCONC_HOT void SpaceSavingSketch::absorb(const SpaceSavingSketch& other) {
  for (const Entry& theirs : other.entries()) {
    if (theirs.count == 0) continue;
    total_ += theirs.count;
    Entry& mine = slot_for(theirs.key, theirs.count);
    mine.error += theirs.error;
    for (std::size_t r = 0; r < kNumAbortReasons; ++r) {
      mine.reasons[r] += theirs.reasons[r];
    }
  }
}

TXCONC_HOT void SpaceSavingSketch::clear() {
  live_ = 0;
  total_ = 0;
  tombstones_ = 0;
  index_.clear();
}

std::vector<SpaceSavingSketch::Entry> SpaceSavingSketch::top() const {
  std::vector<Entry> out(entries().begin(), entries().end());
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.error != b.error) return a.error < b.error;
    return a.key < b.key;  // deterministic render order among ties
  });
  return out;
}

// ----------------------------------------------------------------- sink

ContentionSink::ContentionSink(std::size_t sketch_k, std::size_t lanes)
    : merged_touches_(sketch_k), merged_aborts_(sketch_k) {
  if (lanes == 0) lanes = 1;
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(sketch_k));
  }
}

TXCONC_HOT ContentionSink::Lane& ContentionSink::lane() const {
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return *lanes_[h % lanes_.size()];
}

TXCONC_HOT void ContentionSink::record_touches(
    std::span<const account::SlotAccess> reads,
    std::span<const account::SlotAccess> writes) {
  Lane& mine = lane();
  MutexLock lock(mine.mu);
  for (const account::SlotAccess& r : reads) mine.touches.admit(touch_key(r));
  for (const account::SlotAccess& w : writes) {
    mine.touches.admit(touch_key(w));
  }
}

TXCONC_HOT void ContentionSink::record_touch(const TouchKey& key) {
  Lane& mine = lane();
  MutexLock lock(mine.mu);
  mine.touches.admit(key);
}

TXCONC_HOT void ContentionSink::record_abort(AbortReason reason,
                                             const TouchKey& key) {
  Lane& mine = lane();
  MutexLock lock(mine.mu);
  ++mine.abort_tally[static_cast<std::size_t>(reason)];
  mine.aborts.admit_abort(key, reason);
}

TXCONC_HOT void ContentionSink::record_abort(AbortReason reason) {
  Lane& mine = lane();
  MutexLock lock(mine.mu);
  ++mine.abort_tally[static_cast<std::size_t>(reason)];
}

void ContentionSink::begin_block() {
  for (auto& lane : lanes_) {
    MutexLock lock(lane->mu);
    lane->touches.clear();
    lane->aborts.clear();
    lane->abort_tally = {};
  }
  merged_touches_.clear();
  merged_aborts_.clear();
  merged_abort_totals_ = {};
}

void ContentionSink::finish_block() {
  merged_touches_.clear();
  merged_aborts_.clear();
  merged_abort_totals_ = {};
  for (auto& lane : lanes_) {
    MutexLock lock(lane->mu);
    merged_touches_.absorb(lane->touches);
    merged_aborts_.absorb(lane->aborts);
    for (std::size_t r = 0; r < kNumAbortReasons; ++r) {
      merged_abort_totals_[r] += lane->abort_tally[r];
    }
  }
}

// ------------------------------------------------------------- observer

ContentionObserver::ContentionObserver(std::size_t sketch_k)
    : sink_(sketch_k) {}

void ContentionObserver::begin_block(
    std::span<const account::AccountTx> txs) {
  txs_ = txs;
  predicted_.assign(txs.size(), {});
  has_prediction_ = false;
  sink_.begin_block();
}

void ContentionObserver::set_predicted(std::size_t tx_index,
                                       std::span<const Address> closure) {
  if (tx_index >= predicted_.size()) {
    throw UsageError("ContentionObserver::set_predicted: tx out of range");
  }
  predicted_[tx_index].assign(closure.begin(), closure.end());
  has_prediction_ = true;
}

void ContentionObserver::on_begin(const account::AccountTx&) const {}

void ContentionObserver::on_complete(const account::AccountTx&,
                                     const account::Receipt& receipt) const {
  sink_.record_touches(receipt.reads, receipt.writes);
}

namespace {

std::vector<HotKey> to_hot_keys(const SpaceSavingSketch& sketch) {
  std::vector<HotKey> out;
  for (const SpaceSavingSketch::Entry& e : sketch.top()) {
    if (e.count == 0) continue;
    out.push_back(HotKey{e.key, e.count, e.error, e.reasons});
  }
  return out;
}

}  // namespace

BlockContention ContentionObserver::finish_block(
    std::span<const account::Receipt> receipts) {
  if (receipts.size() != txs_.size()) {
    throw UsageError("ContentionObserver::finish_block: receipt count "
                     "mismatch (pass the report's final receipts)");
  }
  sink_.finish_block();

  BlockContention block;
  const std::size_t n = txs_.size();
  block.num_txs = n;

  // --- measured conflicts, storage-slot granularity -----------------
  // Transactions conflict when they touch the same (address, slot) and at
  // least one writes. Union every accessor with the slot's first writer;
  // same partition as analysis::analyze_account_block_slots, computed
  // independently from the sink side of the loop.
  {
    core::DisjointSets dsu(n);
    std::unordered_map<account::SlotAccess, std::uint32_t,
                       account::SlotAccessHash>
        first_writer;
    for (std::uint32_t i = 0; i < n; ++i) {
      for (const account::SlotAccess& w : receipts[i].writes) {
        auto [it, fresh] = first_writer.emplace(w, i);
        if (!fresh) dsu.merge(it->second, i);
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      for (const account::SlotAccess& r : receipts[i].reads) {
        auto it = first_writer.find(r);
        if (it != first_writer.end()) dsu.merge(it->second, i);
      }
    }
    std::unordered_map<std::size_t, std::size_t> component_size;
    for (std::size_t i = 0; i < n; ++i) ++component_size[dsu.find(i)];
    std::map<std::size_t, std::size_t> histogram;  // size -> component count
    for (const auto& [root, size] : component_size) {
      (void)root;
      ++histogram[size];
      block.lcc_txs = std::max(block.lcc_txs, size);
      if (size >= 2) block.conflicted_txs += size;
    }
    block.num_components = component_size.size();
    for (const auto& [size, count] : histogram) {
      block.component_histogram.push_back(ComponentBucket{size, count});
    }
    if (n > 0) {
      block.measured_c =
          static_cast<double>(block.conflicted_txs) / static_cast<double>(n);
      block.measured_l =
          static_cast<double>(block.lcc_txs) / static_cast<double>(n);
    }
  }

  // --- measured conflicts, address granularity (the paper's TDG) ----
  // Same edge rules as analysis::build_account_tdg: sender -> receiver
  // (creations edge to the deployed address) plus every internal tx.
  {
    std::unordered_map<Address, std::size_t> id_of;
    core::DisjointSets dsu(0);
    auto intern = [&](const Address& a) {
      auto [it, fresh] = id_of.emplace(a, dsu.size());
      if (fresh) dsu.add();
      return it->second;
    };
    std::vector<std::size_t> sender_node(n);
    for (std::size_t i = 0; i < n; ++i) {
      const account::AccountTx& tx = txs_[i];
      Address to;
      if (tx.to.has_value()) {
        to = *tx.to;
      } else if (receipts[i].created.has_value()) {
        to = *receipts[i].created;
      } else {
        to = Address::derive_contract(tx.from, tx.nonce);
      }
      sender_node[i] = intern(tx.from);
      dsu.merge(sender_node[i], intern(to));
      for (const account::InternalTx& itx : receipts[i].internal_txs) {
        dsu.merge(intern(itx.from), intern(itx.to));
      }
    }
    std::unordered_map<std::size_t, std::size_t> txs_per_component;
    for (std::size_t i = 0; i < n; ++i) {
      ++txs_per_component[dsu.find(sender_node[i])];
    }
    std::size_t conflicted = 0;
    std::size_t lcc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t members = txs_per_component[dsu.find(sender_node[i])];
      if (members >= 2) ++conflicted;
      lcc = std::max(lcc, members);
    }
    if (n > 0) {
      block.measured_c_address =
          static_cast<double>(conflicted) / static_cast<double>(n);
      block.measured_l_address =
          static_cast<double>(lcc) / static_cast<double>(n);
    }
  }

  // --- prediction quality -------------------------------------------
  if (has_prediction_) {
    block.has_prediction = true;
    std::unordered_set<Address> predicted;
    std::unordered_set<Address> observed;
    for (std::size_t i = 0; i < n; ++i) {
      predicted.clear();
      observed.clear();
      for (const Address& a : predicted_[i]) predicted.insert(a);
      for (const account::SlotAccess& r : receipts[i].reads) {
        observed.insert(r.address);
      }
      for (const account::SlotAccess& w : receipts[i].writes) {
        observed.insert(w.address);
      }
      block.predicted_addresses += predicted.size();
      block.observed_addresses += observed.size();
      for (const Address& a : observed) {
        if (predicted.count(a) != 0) ++block.overlap_addresses;
      }
    }
    if (block.predicted_addresses > 0) {
      block.precision = static_cast<double>(block.overlap_addresses) /
                        static_cast<double>(block.predicted_addresses);
    }
    if (block.observed_addresses > 0) {
      block.recall = static_cast<double>(block.overlap_addresses) /
                     static_cast<double>(block.observed_addresses);
      block.over_approx = static_cast<double>(block.predicted_addresses) /
                          static_cast<double>(block.observed_addresses);
    }
  }

  // --- sketch views --------------------------------------------------
  block.total_touches = sink_.total_touches();
  block.hot_keys = to_hot_keys(sink_.touches());
  block.abort_keys = to_hot_keys(sink_.aborts());
  block.sink_abort_totals = sink_.abort_totals();
  return block;
}

// ------------------------------------------------------------ rendering

namespace {

std::string key_label(const TouchKey& key) {
  std::string out = key.addr.short_hex();
  out += ' ';
  out += touch_channel_name(key.channel);
  if (key.channel == TouchChannel::kStorage) {
    out += '[';
    out += std::to_string(key.slot);
    out += ']';
  }
  return out;
}

void write_reason_json(std::ostream& out, const AbortCounts& counts) {
  out << '{';
  bool first = true;
  for (std::size_t r = 0; r < kNumAbortReasons; ++r) {
    if (counts[r] == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << abort_reason_name(static_cast<AbortReason>(r)) << "\":"
        << counts[r];
  }
  out << '}';
}

void write_keys_json(std::ostream& out, const std::vector<HotKey>& keys,
                     std::size_t top_k) {
  out << '[';
  for (std::size_t i = 0; i < keys.size() && i < top_k; ++i) {
    if (i != 0) out << ',';
    const HotKey& k = keys[i];
    out << "{\"addr\":\"" << k.key.addr.to_hex() << "\",\"channel\":\""
        << touch_channel_name(k.key.channel) << "\",\"slot\":" << k.key.slot
        << ",\"count\":" << k.count << ",\"error\":" << k.error
        << ",\"reasons\":";
    write_reason_json(out, k.reasons);
    out << '}';
  }
  out << ']';
}

std::uint64_t total_of(const AbortCounts& counts) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  return total;
}

}  // namespace

void write_text(std::ostream& out, const BlockContention& block,
                std::size_t top_k) {
  out << "block: " << block.num_txs << " txs\n";
  out << "measured conflict rates (slot granularity): c="
      << block.measured_c << " l=" << block.measured_l << " ("
      << block.conflicted_txs << " conflicted, lcc " << block.lcc_txs
      << " txs, " << block.num_components << " components)\n";
  out << "measured conflict rates (address TDG):      c="
      << block.measured_c_address << " l=" << block.measured_l_address
      << "\n";
  out << "component histogram:";
  for (const ComponentBucket& b : block.component_histogram) {
    out << ' ' << b.size << "x" << b.count;
  }
  out << '\n';
  if (block.has_prediction) {
    out << "prediction quality: precision=" << block.precision
        << " recall=" << block.recall << " over_approx=" << block.over_approx
        << " (predicted " << block.predicted_addresses << ", observed "
        << block.observed_addresses << ", overlap "
        << block.overlap_addresses << ")\n";
  } else {
    out << "prediction quality: (no predicted closures loaded)\n";
  }
  out << "aborts: " << total_of(block.engine_abort_totals)
      << " reported by the engine";
  bool any = false;
  for (std::size_t r = 0; r < kNumAbortReasons; ++r) {
    if (block.engine_abort_totals[r] == 0) continue;
    out << (any ? ", " : " — ")
        << abort_reason_name(static_cast<AbortReason>(r)) << ' '
        << block.engine_abort_totals[r];
    any = true;
  }
  out << '\n';
  out << "hot keys (top " << std::min(top_k, block.hot_keys.size()) << " of "
      << block.total_touches << " touches):\n";
  for (std::size_t i = 0; i < block.hot_keys.size() && i < top_k; ++i) {
    const HotKey& k = block.hot_keys[i];
    out << "  " << key_label(k.key) << "  " << k.count;
    if (k.error != 0) out << " (+-" << k.error << ")";
    out << '\n';
  }
  if (!block.abort_keys.empty()) {
    out << "abort attribution (top "
        << std::min(top_k, block.abort_keys.size()) << "):\n";
    for (std::size_t i = 0; i < block.abort_keys.size() && i < top_k; ++i) {
      const HotKey& k = block.abort_keys[i];
      out << "  " << key_label(k.key) << "  " << k.count << "  ";
      bool first = true;
      for (std::size_t r = 0; r < kNumAbortReasons; ++r) {
        if (k.reasons[r] == 0) continue;
        if (!first) out << ", ";
        first = false;
        out << abort_reason_name(static_cast<AbortReason>(r)) << ' '
            << k.reasons[r];
      }
      out << '\n';
    }
  }
}

void write_json(std::ostream& out, const BlockContention& block,
                std::size_t top_k) {
  out << "{\"num_txs\":" << block.num_txs
      << ",\"measured_c\":" << block.measured_c
      << ",\"measured_l\":" << block.measured_l
      << ",\"conflicted_txs\":" << block.conflicted_txs
      << ",\"lcc_txs\":" << block.lcc_txs
      << ",\"num_components\":" << block.num_components
      << ",\"measured_c_address\":" << block.measured_c_address
      << ",\"measured_l_address\":" << block.measured_l_address
      << ",\"component_histogram\":[";
  for (std::size_t i = 0; i < block.component_histogram.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"size\":" << block.component_histogram[i].size
        << ",\"count\":" << block.component_histogram[i].count << '}';
  }
  out << "],\"prediction\":{\"available\":"
      << (block.has_prediction ? "true" : "false")
      << ",\"precision\":" << block.precision
      << ",\"recall\":" << block.recall
      << ",\"over_approx\":" << block.over_approx
      << ",\"predicted_addresses\":" << block.predicted_addresses
      << ",\"observed_addresses\":" << block.observed_addresses
      << ",\"overlap_addresses\":" << block.overlap_addresses << '}'
      << ",\"total_touches\":" << block.total_touches
      << ",\"engine_abort_totals\":";
  write_reason_json(out, block.engine_abort_totals);
  out << ",\"sink_abort_totals\":";
  write_reason_json(out, block.sink_abort_totals);
  out << ",\"hot_keys\":";
  write_keys_json(out, block.hot_keys, top_k);
  out << ",\"abort_keys\":";
  write_keys_json(out, block.abort_keys, top_k);
  out << '}';
}

void record_contention_metrics(Registry* registry,
                               const BlockContention& block) {
  if (registry == nullptr) return;
  registry->gauge(names::kMetricContentionMeasuredC).set(block.measured_c);
  registry->gauge(names::kMetricContentionMeasuredL).set(block.measured_l);
  if (block.has_prediction) {
    registry->gauge(names::kMetricContentionPredPrecision)
        .set(block.precision);
    registry->gauge(names::kMetricContentionPredRecall).set(block.recall);
    registry->gauge(names::kMetricContentionPredOverApprox)
        .set(block.over_approx);
  }
  Histogram& components =
      registry->histogram(names::kMetricContentionComponentTxs);
  for (const ComponentBucket& b : block.component_histogram) {
    for (std::size_t i = 0; i < b.count; ++i) {
      components.observe(static_cast<double>(b.size));
    }
  }
  registry->counter(names::kMetricContentionTouches)
      .add(block.total_touches);
}

}  // namespace txconc::obs
