// Low-overhead span tracing with Chrome trace_event JSON export.
//
// The tracer records begin/end/instant events into per-thread buffers so
// that a fully parallel block execution can be opened in Perfetto or
// chrome://tracing and inspected span by span: which transactions ran
// where, how long the scheduler sat idle, and how the wall clock splits
// into the paper's predict / parallel / sequential-tail phases.
//
// Cost model (see DESIGN.md §11):
//  * disabled (the default): every TXCONC_SPAN site is one relaxed atomic
//    load — no clock read, no allocation, no lock;
//  * enabled: two steady_clock reads per span plus a lock-free write into
//    the emitting thread's buffer. The tracer's common::Mutex is taken
//    only on thread registration, buffer-chunk growth (every
//    kChunkEvents events) and flush, never per event.
//
// Buffers grow in fixed chunks up to a per-thread event cap, then wrap
// (oldest events are overwritten and counted as dropped). Flush while
// emitters are still running is safe for published events but may miss
// in-flight ones; export quiescently for exact traces.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/context.h"

namespace txconc::obs {

/// Intern a label so the returned pointer stays valid for the process
/// lifetime (trace events store raw const char*; pool / executor names
/// must outlive their buffers). Interning the same text twice returns the
/// same pointer, which is what folds a pool's workers and its executor's
/// caller-thread spans into one trace process.
const char* intern_label(const char* label);

/// Label the calling thread for trace export: `process` becomes the
/// Chrome-trace pid group (executor / pool name), `worker` the thread
/// name ("worker-N"; pass -1 for a caller thread). Thread pools call this
/// once per worker at startup; ThreadProcessScope flips it temporarily on
/// caller threads. `process` must be interned or a string literal.
void set_thread_label(const char* process, int worker);

/// RAII: relabel the calling thread's process for one block execution so
/// every span the caller emits (predict, schedule, commit, caller-run
/// grains) lands under the executor's pid next to its workers.
class ThreadProcessScope {
 public:
  explicit ThreadProcessScope(const char* process);
  ~ThreadProcessScope();

  ThreadProcessScope(const ThreadProcessScope&) = delete;
  ThreadProcessScope& operator=(const ThreadProcessScope&) = delete;

 private:
  const char* saved_;
};

/// One recorded event. `name`, `category` and `process` are unowned
/// pointers to string literals or interned labels.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  const char* process = nullptr;
  std::uint64_t ts_ns = 0;  ///< steady-clock, relative to the tracer epoch
  std::int64_t arg = -1;    ///< optional integer payload (tx index, wave)
  /// Causal identity of a 'B' event (all zero for plain spans); for flow
  /// events ('s'/'f'), span_id doubles as the flow id.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  char phase = 'i';  ///< 'B' begin, 'E' end, 'i' instant, 's'/'f' flow
};

/// One causally-identified span as seen by validate_chrome_trace.
struct CausalSpanInfo {
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  ///< 0 = trace root
  /// True when the parent chain reaches a root span of the same trace.
  bool linked = false;
};

/// Outcome of validate_chrome_trace (used by tests and the CI smoke).
struct TraceValidation {
  bool ok = false;
  std::string error;
  std::size_t events = 0;  ///< trace events parsed ('B'/'E'/'i'/'s'/'f')
  std::size_t complete_spans = 0;  ///< matched B/E pairs
  /// process name -> span names with at least one balanced B/E pair.
  std::map<std::string, std::set<std::string>> spans_by_process;
  /// Spans carrying a trace context, in parse order.
  std::vector<CausalSpanInfo> causal;
  std::size_t causal_roots = 0;   ///< causal spans with parent_span == 0
  std::size_t causal_linked = 0;  ///< causal spans reachable from a root
  std::size_t flow_binds = 0;     ///< 'f' events matched to an 's'
};

/// Minimal Chrome-trace JSON checker: parses the traceEvents array and
/// verifies that every 'E' matches the innermost open 'B' of its
/// (pid, tid), that timestamps are monotone per (pid, tid), that every
/// span's parent reference resolves inside its own trace (no dangling
/// parent ids, no duplicate span ids), and that every flow bind ('f')
/// has a matching flow start ('s').
TraceValidation validate_chrome_trace(const std::string& json);

/// Span/instant recorder. One process-wide instance (global()) backs the
/// TXCONC_SPAN macros; tests may construct private tracers.
class Tracer {
 public:
  /// @param max_events_per_thread ring cap per emitting thread; buffers
  ///        grow chunk-by-chunk toward it and wrap beyond it.
  explicit Tracer(std::size_t max_events_per_thread = 1 << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process tracer the TXCONC_SPAN/TXCONC_INSTANT macros target.
  static Tracer& global();

  // ordering: relaxed — the flag is an advisory on/off switch, not a
  // publication: event data travels through each ThreadBuffer's `written`
  // release/acquire pair, and emitters only race harmlessly with a
  // toggle (a span around the flip may or may not be recorded). The
  // stores used to be `release`, but with every reader relaxed that
  // release synchronized with nothing — a lone-release publication the
  // atomics-discipline lint rule now rejects outright.
  // ordering: relaxed — advisory flag, see above.
  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  // ordering: relaxed — as above.
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  // ordering: relaxed — as above.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Raw event emission (the macros are the intended entry points).
  void begin(const char* name, const char* category, std::int64_t arg = -1);
  /// Causal begin: like begin(), stamping the span's trace identity into
  /// the event (exported as args and checked by validate_chrome_trace).
  void begin_causal(const char* name, const char* category,
                    std::uint64_t trace_id, std::uint64_t span_id,
                    std::uint64_t parent_span, std::int64_t arg = -1);
  /// @param process pass the process label captured at begin() so a
  ///        ThreadProcessScope ending mid-span cannot unbalance the pair.
  void end(const char* name, const char* category, const char* process);
  void instant(const char* name, const char* category, std::int64_t arg = -1);
  /// Flow events: flow_start ('s') at the forwarding site, flow_bind
  /// ('f', bp=e) inside the receiving span. Same id links the pair and
  /// makes Perfetto draw the cross-thread/cross-node arrow.
  void flow_start(std::uint64_t flow_id);
  void flow_bind(std::uint64_t flow_id);

  /// Process-unique non-zero id (trace / span / flow ids). One relaxed
  /// atomic increment; never allocates.
  static std::uint64_t next_id();

  /// Drop every recorded event and detach all thread buffers; threads
  /// re-register on their next emission. Call quiescently.
  void clear();

  /// Raise/lower the per-thread ring cap for buffers registered from now
  /// on (existing buffers keep their size — call clear() first so every
  /// thread re-registers). Deep-profiling runs (e.g. the bench's
  /// attribution cells, where occ emits an attempt span per wave
  /// re-execution) need more than the default before the ring wraps and
  /// drops 'B' events. Call quiescently, like clear().
  void set_ring_capacity(std::size_t max_events_per_thread);

  /// Events currently held (optionally only those named `name`).
  std::size_t event_count(const char* name = nullptr) const;
  /// Events lost to ring wrap-around across all buffers.
  std::uint64_t dropped() const;

  /// Chrome trace_event JSON ("traceEvents" array object form), loadable
  /// in Perfetto / chrome://tracing. pid = process label (executor /
  /// pool), tid = registration order, with process_name / thread_name
  /// metadata records.
  void write_chrome_trace(std::ostream& out) const;
  /// Convenience: write_chrome_trace to `path`; false on I/O failure.
  bool write_chrome_trace_file(const std::string& path) const;

  /// Internal per-thread event store (defined in trace.cpp); public only
  /// so the thread-local registration slot can hold a shared_ptr to it.
  struct ThreadBuffer;

 private:
  ThreadBuffer* buffer_for_this_thread();

  const std::uint64_t id_;  ///< process-unique, guards thread-local reuse
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};  ///< bumped by clear()
  std::uint64_t epoch_ns_;                    ///< construction timestamp

  mutable Mutex mu_;
  std::size_t cap_ GUARDED_BY(mu_);  ///< ring cap for NEW buffers
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mu_);
};

/// RAII begin/end pair. Does nothing (and allocates nothing) when the
/// tracer is null or disabled at construction; once begun, the end event
/// is always emitted so traces stay balanced even if the tracer is
/// disabled mid-span.
class SpanGuard {
 public:
  SpanGuard(Tracer* tracer, const char* name, const char* category,
            std::int64_t arg = -1);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  Tracer* tracer_;  ///< null when the span was skipped
  const char* name_;
  const char* category_;
  const char* process_;
};

/// Manually toggled span for sites where the open/close points are not
/// lexical scopes — e.g. a scheduler participant opening a "wait" span on
/// a fruitless claim pass and closing it when work arrives. The pair is
/// still enforced: open() while open and close() while closed are no-ops,
/// and the destructor closes an open span, so traces stay balanced.
/// Null-safe and allocation-free like SpanGuard; the enabled check runs
/// per open() so a tracer enabled mid-lifetime is picked up.
class ToggleSpan {
 public:
  ToggleSpan(Tracer* tracer, const char* name, const char* category);
  ~ToggleSpan();

  ToggleSpan(const ToggleSpan&) = delete;
  ToggleSpan& operator=(const ToggleSpan&) = delete;

  /// Emit the begin event (no-op when already open or tracer off).
  void open(std::int64_t arg = -1);
  /// Emit the matching end event (no-op when not open).
  void close();
  bool is_open() const { return open_; }

 private:
  Tracer* const tracer_;
  const char* name_;
  const char* category_;
  const char* process_ = nullptr;  ///< captured at open()
  bool open_ = false;
};

/// RAII span that participates in causal tracing (see obs/context.h).
///
/// Started under a valid parent context it joins that trace and links to
/// the parent span; started under the zero context it mints a fresh
/// trace root. Either way it hands out contexts for its children:
///
///   obs::CausalSpan block(tracer, "produce_block", "chain");   // root
///   obs::CausalSpan pack(tracer, "pack", "chain", block.context());
///   relay_to_peer(block_bytes, block.fork());  // cross-node edge
///
/// context() is for same-process children (parent linkage only);
/// fork() additionally emits a flow-start event on the calling thread —
/// use it when the context crosses a thread, node or committee boundary
/// so the trace viewer draws the arrow. Both are null-safe and
/// allocation-free when the span was skipped (tracer null or disabled):
/// they return the zero context and emit nothing.
class CausalSpan {
 public:
  CausalSpan(Tracer* tracer, const char* name, const char* category,
             const TraceContext& parent = {}, std::int64_t arg = -1);
  ~CausalSpan();

  CausalSpan(const CausalSpan&) = delete;
  CausalSpan& operator=(const CausalSpan&) = delete;

  /// Context for children of this span (zero when the span was skipped).
  TraceContext context() const { return {trace_id_, span_id_, 0}; }
  /// Like context(), plus a flow-start event so the consumer's flow_bind
  /// draws a cross-thread arrow. Call from the thread that owns the span.
  TraceContext fork() const;

  std::uint64_t trace_id() const { return trace_id_; }
  std::uint64_t span_id() const { return span_id_; }

 private:
  Tracer* tracer_;  ///< null when the span was skipped
  const char* name_;
  const char* category_;
  const char* process_;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
};

}  // namespace txconc::obs

// Span macros. The _T variants take an explicit `obs::Tracer*` (null-safe;
// executors route the scope threaded through RuntimeConfig here), the
// plain ones target Tracer::global() (thread pool, chain, shard layers).
#define TXCONC_OBS_CONCAT2(a, b) a##b
#define TXCONC_OBS_CONCAT(a, b) TXCONC_OBS_CONCAT2(a, b)

#define TXCONC_SPAN_T(tracer, name, category, ...)                       \
  ::txconc::obs::SpanGuard TXCONC_OBS_CONCAT(txconc_span_, __LINE__)(    \
      (tracer), (name), (category), ##__VA_ARGS__)
#define TXCONC_SPAN(name, category, ...)                                 \
  TXCONC_SPAN_T(&::txconc::obs::Tracer::global(), (name), (category),    \
                ##__VA_ARGS__)
#define TXCONC_INSTANT_T(tracer, name, category, ...)                    \
  do {                                                                   \
    ::txconc::obs::Tracer* txconc_obs_t = (tracer);                      \
    if (txconc_obs_t != nullptr && txconc_obs_t->enabled()) {            \
      txconc_obs_t->instant((name), (category), ##__VA_ARGS__);          \
    }                                                                    \
  } while (0)
#define TXCONC_INSTANT(name, category, ...)                              \
  TXCONC_INSTANT_T(&::txconc::obs::Tracer::global(), (name), (category), \
                   ##__VA_ARGS__)
