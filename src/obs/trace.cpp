#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "obs/json_reader.h"

namespace txconc::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr const char* kDefaultProcess = "main";

// Thread labels are process-wide (not per tracer): a pool worker is the
// same worker no matter which tracer snapshots it.
struct ThreadLabel {
  const char* process = kDefaultProcess;
  int worker = -1;
};
thread_local ThreadLabel t_label;

std::atomic<std::uint64_t> g_next_tracer_id{1};

}  // namespace

const char* intern_label(const char* label) {
  static Mutex mu;
  // unordered_set<std::string> is node-based: element addresses (and so
  // c_str()) survive rehashing. Leaked intentionally with the process.
  static std::unordered_set<std::string>* const interned =
      new std::unordered_set<std::string>();
  const MutexLock lock(mu);
  return interned->emplace(label).first->c_str();
}

void set_thread_label(const char* process, int worker) {
  t_label.process = process;
  t_label.worker = worker;
}

ThreadProcessScope::ThreadProcessScope(const char* process)
    : saved_(t_label.process) {
  t_label.process = process;
}

ThreadProcessScope::~ThreadProcessScope() { t_label.process = saved_; }

/// Per-thread event store. The owning thread appends lock-free and
/// publishes through `written`; `mu` guards only the chunk list (grown
/// every kChunkEvents events) and is shared with the flushing reader.
struct Tracer::ThreadBuffer {
  static constexpr std::size_t kChunkEvents = 1024;

  explicit ThreadBuffer(std::size_t capacity) : cap(capacity) {}

  const std::size_t cap;
  const char* process_at_registration = kDefaultProcess;
  int worker = -1;

  mutable Mutex mu;
  std::vector<std::unique_ptr<TraceEvent[]>> chunks GUARDED_BY(mu);
  std::atomic<std::uint64_t> written{0};

  // Owner-thread-only cache of the chunk being filled, so the hot path
  // never takes mu; the lock is only needed when a new chunk is appended
  // (every kChunkEvents events, never again once the ring has wrapped).
  TraceEvent* current_chunk = nullptr;
  std::size_t current_chunk_index = ~std::size_t{0};

  void push(const TraceEvent& event) {
    // ordering: relaxed — written is only advanced by this owner thread;
    // the load just reads our own last store.
    const std::uint64_t n = written.load(std::memory_order_relaxed);
    const std::size_t slot = static_cast<std::size_t>(n % cap);
    const std::size_t chunk = slot / kChunkEvents;
    if (chunk != current_chunk_index) {
      const MutexLock lock(mu);
      while (chunks.size() <= chunk) {
        chunks.push_back(std::make_unique<TraceEvent[]>(kChunkEvents));
      }
      current_chunk = chunks[chunk].get();
      current_chunk_index = chunk;
    }
    current_chunk[slot % kChunkEvents] = event;
    // ordering: release publishes the slot write above; pairs with the
    // acquire loads in scan()/dropped().
    written.store(n + 1, std::memory_order_release);
  }

  template <typename Fn>
  void scan(Fn&& fn) const REQUIRES(mu) {
    // ordering: acquire pairs with push()'s release so every event below
    // index n is fully visible before we read it.
    const std::uint64_t n = written.load(std::memory_order_acquire);
    const std::uint64_t first = n > cap ? n - cap : 0;
    for (std::uint64_t i = first; i < n; ++i) {
      const std::size_t slot = static_cast<std::size_t>(i % cap);
      fn(chunks[slot / kChunkEvents][slot % kChunkEvents]);
    }
  }

  std::uint64_t dropped() const {
    // ordering: acquire pairs with push()'s release (same as scan()).
    const std::uint64_t n = written.load(std::memory_order_acquire);
    return n > cap ? n - cap : 0;
  }
};

namespace {

/// Thread-local registration cache: which tracer (id + clear generation)
/// this thread last registered with, and its buffer. The shared_ptr keeps
/// the buffer alive even if the tracer is destroyed first.
struct ThreadSlot {
  std::uint64_t tracer_id = 0;
  std::uint64_t generation = 0;
  std::shared_ptr<Tracer::ThreadBuffer> buffer;
};
thread_local ThreadSlot t_slot;

}  // namespace

Tracer::Tracer(std::size_t max_events_per_thread)
    // ordering: relaxed — unique-id ticket; no data rides on it.
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(now_ns()),
      cap_(std::max<std::size_t>(max_events_per_thread,
                                 ThreadBuffer::kChunkEvents)) {}

Tracer::~Tracer() = default;

Tracer& Tracer::global() {
  // Leaked: spans may fire from worker threads during static destruction.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer* Tracer::buffer_for_this_thread() {
  if (t_slot.tracer_id == id_ &&
      // ordering: acquire pairs with clear()'s acq_rel bump so a thread
      // re-registering after a clear sees the emptied buffer list.
      t_slot.generation == generation_.load(std::memory_order_acquire)) {
    return t_slot.buffer.get();
  }
  std::shared_ptr<ThreadBuffer> buffer;
  {
    const MutexLock lock(mu_);
    buffer = std::make_shared<ThreadBuffer>(cap_);
    buffer->process_at_registration = t_label.process;
    buffer->worker = t_label.worker;
    buffers_.push_back(buffer);
  }
  t_slot.tracer_id = id_;
  // ordering: acquire — same pairing as the fast-path check above.
  t_slot.generation = generation_.load(std::memory_order_acquire);
  t_slot.buffer = std::move(buffer);
  return t_slot.buffer.get();
}

void Tracer::begin(const char* name, const char* category, std::int64_t arg) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.process = t_label.process;
  event.ts_ns = now_ns() - epoch_ns_;
  event.arg = arg;
  event.phase = 'B';
  buffer_for_this_thread()->push(event);
}

void Tracer::begin_causal(const char* name, const char* category,
                          std::uint64_t trace_id, std::uint64_t span_id,
                          std::uint64_t parent_span, std::int64_t arg) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.process = t_label.process;
  event.ts_ns = now_ns() - epoch_ns_;
  event.arg = arg;
  event.trace_id = trace_id;
  event.span_id = span_id;
  event.parent_span = parent_span;
  event.phase = 'B';
  buffer_for_this_thread()->push(event);
}

void Tracer::end(const char* name, const char* category,
                 const char* process) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.process = process != nullptr ? process : t_label.process;
  event.ts_ns = now_ns() - epoch_ns_;
  event.phase = 'E';
  buffer_for_this_thread()->push(event);
}

void Tracer::instant(const char* name, const char* category,
                     std::int64_t arg) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.process = t_label.process;
  event.ts_ns = now_ns() - epoch_ns_;
  event.arg = arg;
  event.phase = 'i';
  buffer_for_this_thread()->push(event);
}

void Tracer::flow_start(std::uint64_t flow_id) {
  TraceEvent event;
  event.name = "flow";
  event.category = "ctx";
  event.process = t_label.process;
  event.ts_ns = now_ns() - epoch_ns_;
  event.span_id = flow_id;  // span_id doubles as the flow id
  event.phase = 's';
  buffer_for_this_thread()->push(event);
}

void Tracer::flow_bind(std::uint64_t flow_id) {
  TraceEvent event;
  event.name = "flow";
  event.category = "ctx";
  event.process = t_label.process;
  event.ts_ns = now_ns() - epoch_ns_;
  event.span_id = flow_id;
  event.phase = 'f';
  buffer_for_this_thread()->push(event);
}

std::uint64_t Tracer::next_id() {
  static std::atomic<std::uint64_t> next{1};
  // ordering: relaxed — unique-id ticket; no data rides on it.
  return next.fetch_add(1, std::memory_order_relaxed);
}

void Tracer::clear() {
  const MutexLock lock(mu_);
  buffers_.clear();
  // ordering: acq_rel — the release side publishes the cleared list to
  // buffer_for_this_thread()'s acquire loads of generation_.
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

void Tracer::set_ring_capacity(std::size_t max_events_per_thread) {
  const MutexLock lock(mu_);
  cap_ = std::max<std::size_t>(max_events_per_thread,
                               ThreadBuffer::kChunkEvents);
}

std::size_t Tracer::event_count(const char* name) const {
  const MutexLock lock(mu_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) {
    const MutexLock buffer_lock(buffer->mu);
    buffer->scan([&](const TraceEvent& event) {
      if (name == nullptr || std::string_view(event.name) == name) ++count;
    });
  }
  return count;
}

std::uint64_t Tracer::dropped() const {
  const MutexLock lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->dropped();
  return total;
}

namespace {

void write_json_escaped(std::ostream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
              << "0123456789abcdef"[c & 0xf];
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

void Tracer::write_chrome_trace(std::ostream& out) const {
  const MutexLock lock(mu_);

  // pid assignment: dense ids over the process labels referenced by any
  // event, in first-seen order across buffers (stable for one snapshot).
  // Keyed by CONTENT, not pointer: a pool's interned label and a
  // ThreadProcessScope's string literal must land in the same process or
  // the profiler would see the workers as a separate engine (and book
  // every worker as idle).
  std::unordered_map<std::string_view, int> pid_of;
  std::vector<const char*> pid_labels;
  const auto pid_for = [&](const char* process) {
    const auto [it, inserted] = pid_of.emplace(
        std::string_view(process), static_cast<int>(pid_labels.size()));
    if (inserted) pid_labels.push_back(process);
    return it->second;
  };

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const TraceEvent& event, int tid) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"";
    write_json_escaped(out, event.name);
    out << "\",\"cat\":\"";
    write_json_escaped(out, event.category);
    out << "\",\"ph\":\"" << event.phase << "\",\"pid\":"
        << pid_for(event.process) << ",\"tid\":" << tid << ",\"ts\":"
        << static_cast<double>(event.ts_ns) / 1000.0;
    if (event.phase == 'i') out << ",\"s\":\"t\"";
    if (event.phase == 's' || event.phase == 'f') {
      out << ",\"id\":" << event.span_id;
      if (event.phase == 'f') out << ",\"bp\":\"e\"";
    }
    const bool causal = event.phase == 'B' && event.trace_id != 0;
    const bool has_arg = event.arg >= 0 && event.phase != 'E';
    if (causal || has_arg) {
      out << ",\"args\":{";
      if (causal) {
        out << "\"trace_id\":" << event.trace_id
            << ",\"span_id\":" << event.span_id
            << ",\"parent_span\":" << event.parent_span;
      }
      if (has_arg) {
        if (causal) out << ",";
        out << "\"arg\":" << event.arg;
      }
      out << "}";
    }
    out << "}";
  };

  // (pid, tid) pairs seen, for thread_name metadata after the scan.
  std::set<std::pair<int, int>> threads_seen;
  std::vector<std::string> thread_names;
  for (std::size_t b = 0; b < buffers_.size(); ++b) {
    const ThreadBuffer& buffer = *buffers_[b];
    const int tid = static_cast<int>(b);
    std::string name = buffer.worker >= 0
                           ? "worker-" + std::to_string(buffer.worker)
                           : "caller-" + std::to_string(tid);
    thread_names.push_back(std::move(name));
    const MutexLock buffer_lock(buffer.mu);
    buffer.scan([&](const TraceEvent& event) {
      threads_seen.emplace(pid_for(event.process), tid);
      emit(event, tid);
    });
  }

  // Metadata: process and thread names.
  for (std::size_t p = 0; p < pid_labels.size(); ++p) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << p
        << ",\"tid\":0,\"args\":{\"name\":\"";
    write_json_escaped(out, pid_labels[p]);
    out << "\"}}";
  }
  for (const auto& [pid, tid] : threads_seen) {
    out << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << tid << ",\"args\":{\"name\":\"";
    write_json_escaped(out, thread_names[static_cast<std::size_t>(tid)]);
    out << "\"}}";
  }
  out << "\n]}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

SpanGuard::SpanGuard(Tracer* tracer, const char* name, const char* category,
                     std::int64_t arg)
    : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
      name_(name),
      category_(category),
      process_(t_label.process) {
  if (tracer_ != nullptr) tracer_->begin(name, category, arg);
}

SpanGuard::~SpanGuard() {
  if (tracer_ != nullptr) tracer_->end(name_, category_, process_);
}

ToggleSpan::ToggleSpan(Tracer* tracer, const char* name,
                       const char* category)
    : tracer_(tracer), name_(name), category_(category) {}

ToggleSpan::~ToggleSpan() { close(); }

void ToggleSpan::open(std::int64_t arg) {
  if (open_ || tracer_ == nullptr || !tracer_->enabled()) return;
  // Like SpanGuard, capture the process at begin so a ThreadProcessScope
  // ending between open() and close() cannot unbalance the pair.
  process_ = t_label.process;
  tracer_->begin(name_, category_, arg);
  open_ = true;
}

void ToggleSpan::close() {
  if (!open_) return;
  tracer_->end(name_, category_, process_);
  open_ = false;
}

CausalSpan::CausalSpan(Tracer* tracer, const char* name, const char* category,
                       const TraceContext& parent, std::int64_t arg)
    : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
      name_(name),
      category_(category),
      process_(t_label.process) {
  if (tracer_ == nullptr) return;
  trace_id_ = parent.valid() ? parent.trace_id : Tracer::next_id();
  span_id_ = Tracer::next_id();
  tracer_->begin_causal(name, category, trace_id_, span_id_,
                        parent.valid() ? parent.parent_span : 0, arg);
  // Bind the incoming flow inside this slice so the viewer draws the
  // arrow from the forwarding site into this span.
  if (parent.flow_id != 0) tracer_->flow_bind(parent.flow_id);
}

CausalSpan::~CausalSpan() {
  if (tracer_ != nullptr) tracer_->end(name_, category_, process_);
}

TraceContext CausalSpan::fork() const {
  if (tracer_ == nullptr) return {};
  const std::uint64_t flow_id = Tracer::next_id();
  tracer_->flow_start(flow_id);
  return {trace_id_, span_id_, flow_id};
}

// ---------------------------------------------------------------- validator

namespace {

using internal::JsonReader;

struct ParsedEvent {
  std::string name;
  char phase = '\0';
  int pid = 0;
  int tid = 0;
  double ts = 0.0;
  bool has_ts = false;
  // Causal identity from args ('B' events) / top-level id ('s'/'f').
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::uint64_t flow_id = 0;
};

}  // namespace

TraceValidation validate_chrome_trace(const std::string& json) {
  TraceValidation result;
  JsonReader reader(json);

  const auto fail = [&](std::string why) {
    result.ok = false;
    result.error = std::move(why);
    return result;
  };

  if (!reader.consume('{')) return fail("trace is not a JSON object");
  std::vector<ParsedEvent> events;
  std::map<int, std::string> process_names;
  bool saw_array = false;
  if (!reader.consume('}')) {
    do {
      const std::string key = reader.parse_string();
      if (!reader.consume(':')) return fail("expected ':' after key");
      if (key != "traceEvents") {
        reader.skip_value();
        continue;
      }
      saw_array = true;
      if (!reader.consume('[')) return fail("traceEvents is not an array");
      if (reader.consume(']')) break;
      do {
        if (!reader.consume('{')) return fail("event is not an object");
        ParsedEvent event;
        std::string meta_name;
        if (!reader.consume('}')) {
          do {
            const std::string field = reader.parse_string();
            if (!reader.consume(':')) return fail("expected ':' in event");
            if (field == "name") {
              event.name = reader.parse_string();
            } else if (field == "ph") {
              const std::string ph = reader.parse_string();
              event.phase = ph.empty() ? '\0' : ph[0];
            } else if (field == "pid") {
              event.pid = static_cast<int>(reader.parse_number());
            } else if (field == "tid") {
              event.tid = static_cast<int>(reader.parse_number());
            } else if (field == "ts") {
              event.ts = reader.parse_number();
              event.has_ts = true;
            } else if (field == "id") {
              event.flow_id =
                  static_cast<std::uint64_t>(reader.parse_number());
            } else if (field == "args") {
              // Metadata name plus the causal identity of 'B' events.
              if (!reader.consume('{')) return fail("args not an object");
              if (!reader.consume('}')) {
                do {
                  const std::string arg_key = reader.parse_string();
                  if (!reader.consume(':')) return fail("bad args");
                  if (arg_key == "name") {
                    meta_name = reader.parse_string();
                  } else if (arg_key == "trace_id") {
                    event.trace_id =
                        static_cast<std::uint64_t>(reader.parse_number());
                  } else if (arg_key == "span_id") {
                    event.span_id =
                        static_cast<std::uint64_t>(reader.parse_number());
                  } else if (arg_key == "parent_span") {
                    event.parent_span =
                        static_cast<std::uint64_t>(reader.parse_number());
                  } else {
                    reader.skip_value();
                  }
                } while (reader.consume(','));
                if (!reader.consume('}')) return fail("unclosed args");
              }
            } else {
              reader.skip_value();
            }
            if (reader.failed()) return fail(reader.error());
          } while (reader.consume(','));
          if (!reader.consume('}')) return fail("unclosed event object");
        }
        if (event.phase == 'M' && event.name == "process_name") {
          process_names[event.pid] = meta_name;
        } else if (event.phase == 'B' || event.phase == 'E' ||
                   event.phase == 'i' || event.phase == 's' ||
                   event.phase == 'f') {
          events.push_back(std::move(event));
        }
      } while (reader.consume(','));
      if (!reader.consume(']')) return fail("unclosed traceEvents array");
    } while (reader.consume(','));
  }
  if (!saw_array) return fail("no traceEvents array");

  // Balanced B/E per (pid, tid), with monotone timestamps. The open stack
  // keeps each begin's timestamp so an end can be checked for a negative
  // duration with a specific message (instead of the generic monotonicity
  // failure it also implies).
  struct OpenSpan {
    std::string name;
    double ts = 0.0;
  };
  std::map<std::pair<int, int>, std::vector<OpenSpan>> open;
  std::map<std::pair<int, int>, double> last_ts;
  // A tid is one emitting thread's buffer, exported in push order: its
  // timestamps stay monotone even when a ThreadProcessScope moves the
  // thread between pids mid-trace, so the check also spans pids.
  std::map<int, double> last_ts_by_tid;
  for (const ParsedEvent& event : events) {
    const std::pair<int, int> key{event.pid, event.tid};
    if (!event.has_ts) return fail("event without ts: " + event.name);
    if (event.phase == 'E') {
      auto& stack = open[key];
      if (stack.empty()) {
        return fail("unbalanced 'E' for '" + event.name + "' on pid " +
                    std::to_string(event.pid) + " tid " +
                    std::to_string(event.tid) + " with no open span");
      }
      if (stack.back().name != event.name) {
        return fail("unbalanced 'E': got '" + event.name +
                    "' but innermost open span is '" + stack.back().name +
                    "' on pid " + std::to_string(event.pid) + " tid " +
                    std::to_string(event.tid));
      }
      if (event.ts < stack.back().ts) {
        return fail("span '" + event.name + "' has negative duration (E ts " +
                    std::to_string(event.ts) + " < B ts " +
                    std::to_string(stack.back().ts) +
                    "): timestamps not monotone on pid " +
                    std::to_string(event.pid) + " tid " +
                    std::to_string(event.tid));
      }
    }
    const auto it = last_ts.find(key);
    if (it != last_ts.end() && event.ts < it->second) {
      return fail("timestamps not monotone on pid " +
                  std::to_string(event.pid) + " tid " +
                  std::to_string(event.tid) + " at '" + event.name + "'");
    }
    last_ts[key] = event.ts;
    const auto tid_it = last_ts_by_tid.find(event.tid);
    if (tid_it != last_ts_by_tid.end() && event.ts < tid_it->second) {
      return fail("timestamps not monotone on tid " +
                  std::to_string(event.tid) + " across pids at '" +
                  event.name + "'");
    }
    last_ts_by_tid[event.tid] = event.ts;
    if (event.phase == 'B') {
      open[key].push_back(OpenSpan{event.name, event.ts});
    } else if (event.phase == 'E') {
      open[key].pop_back();
      ++result.complete_spans;
      const auto name_it = process_names.find(event.pid);
      const std::string process = name_it != process_names.end()
                                      ? name_it->second
                                      : std::to_string(event.pid);
      result.spans_by_process[process].insert(event.name);
    }
  }
  for (const auto& [key, stack] : open) {
    if (!stack.empty()) {
      return fail("span '" + stack.back().name + "' never closed on pid " +
                  std::to_string(key.first) + " tid " +
                  std::to_string(key.second));
    }
  }

  // Causal identity: span ids must be unique, every non-root parent must
  // resolve to a span of the same trace, and parent chains must be
  // acyclic. A trace passing these checks has every causal span reachable
  // from a root of its own trace.
  std::unordered_map<std::uint64_t, std::size_t> span_index;
  for (const ParsedEvent& event : events) {
    if (event.phase != 'B' || event.trace_id == 0) continue;
    if (event.span_id == 0) {
      return fail("causal span '" + event.name + "' has span_id 0");
    }
    if (!span_index.emplace(event.span_id, result.causal.size()).second) {
      return fail("duplicate span_id " + std::to_string(event.span_id) +
                  " on '" + event.name + "'");
    }
    CausalSpanInfo info;
    info.name = event.name;
    info.trace_id = event.trace_id;
    info.span_id = event.span_id;
    info.parent_span = event.parent_span;
    result.causal.push_back(std::move(info));
  }
  for (const CausalSpanInfo& info : result.causal) {
    if (info.parent_span == 0) continue;
    const auto it = span_index.find(info.parent_span);
    if (it == span_index.end()) {
      return fail("span '" + info.name + "' references unknown parent_span " +
                  std::to_string(info.parent_span));
    }
    if (result.causal[it->second].trace_id != info.trace_id) {
      return fail("span '" + info.name + "' links to parent_span " +
                  std::to_string(info.parent_span) +
                  " in a different trace");
    }
  }
  // Parent chains resolve within their trace; walking one longer than the
  // span count means it loops.
  std::vector<char> chain_ok(result.causal.size(), 0);
  for (std::size_t i = 0; i < result.causal.size(); ++i) {
    std::vector<std::size_t> path;
    std::size_t cur = i;
    while (chain_ok[cur] == 0 && result.causal[cur].parent_span != 0) {
      path.push_back(cur);
      if (path.size() > result.causal.size()) {
        return fail("parent chain of span '" + result.causal[i].name +
                    "' contains a cycle");
      }
      cur = span_index.at(result.causal[cur].parent_span);
    }
    chain_ok[cur] = 1;
    for (const std::size_t j : path) chain_ok[j] = 1;
  }
  for (CausalSpanInfo& info : result.causal) {
    info.linked = true;
    if (info.parent_span == 0) ++result.causal_roots;
  }
  result.causal_linked = result.causal.size();

  // Flow events: every bind ('f') must name a started flow ('s').
  std::unordered_set<std::uint64_t> flow_starts;
  for (const ParsedEvent& event : events) {
    if (event.phase != 's' && event.phase != 'f') continue;
    if (event.flow_id == 0) {
      return fail(std::string("flow event ('") + event.phase +
                  "') without an id");
    }
    if (event.phase == 's') flow_starts.insert(event.flow_id);
  }
  for (const ParsedEvent& event : events) {
    if (event.phase != 'f') continue;
    if (flow_starts.count(event.flow_id) == 0) {
      return fail("flow bind " + std::to_string(event.flow_id) +
                  " has no matching flow start");
    }
    ++result.flow_binds;
  }

  result.events = events.size();
  result.ok = true;
  return result;
}

}  // namespace txconc::obs
