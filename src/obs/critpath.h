// Trace-driven critical-path profiler with wall-clock stall attribution.
//
// Consumes a Chrome trace produced by obs::Tracer (validate it first with
// validate_chrome_trace) and, for every `execute_block` span found,
// answers the two questions the wall-clock ROADMAP item needs:
//
//  1. Where does the block's wall time go? The caller's phase chain and
//     the busiest worker chains are reported as critical paths with
//     per-segment durations (top-k, aggregated by span name).
//
//  2. Where do ALL the microseconds go? Every span's self time (duration
//     minus direct children) is bucketed by name into a fixed taxonomy —
//     graph build, schedule, tx execute, rework, dependency wait, commit,
//     pool idle, untracked — over the full budget of threads x wall
//     (participants come from the `threads` instant every engine emits).
//     Worker time not covered by a pool task is measured pool idle;
//     participants that never emitted an event contribute a full wall of
//     pool idle. The one deliberate hole is the caller's execute_block
//     self time (inter-phase gaps, reported as `uncovered`): healthy
//     traces keep it at a few microseconds, so "buckets must sum to the
//     budget within eps" is a falsifiable invariant — drop a phase span
//     from the trace and check_attribution fails.
//
// Span and bucket names are pinned in obs/names.h; DESIGN.md §16 has the
// span-DAG model and the add-a-bucket recipe.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace txconc::obs {

/// Attribution buckets of the threads x wall budget, in report order.
enum class Bucket : unsigned {
  kGraphBuild = 0,  ///< predict + TDG closure/components sub-phases
  kSchedule,        ///< schedule span + pool-task dispatch/claim overhead
  kTxExecute,       ///< final (committed) transaction executions
  kRework,          ///< aborted/duplicate attempts + validation sweeps
  kDependencyWait,  ///< join/barrier residuals + scheduler wait spans
  kCommit,          ///< commit walks + sequential-tail orchestration
  kPoolIdle,        ///< participant time with no task in the block window
  kUntracked,       ///< spans the taxonomy does not recognize
  kCount,
};

/// Stable snake_case identifier ("graph_build", ...), shared by the text
/// and JSON reports and by scripts/bench_gate.
const char* bucket_name(Bucket bucket);

/// One segment of a critical-path chain (spans aggregated by name, in
/// order of first appearance on the chain).
struct PathSegment {
  std::string name;
  double us = 0.0;
  std::size_t count = 0;  ///< spans folded into this segment
};

/// One chain: the caller's top-level phase chain, or one worker's busy
/// chain inside the block window (ranked by busy time).
struct CritPath {
  std::string label;  ///< "caller" or the worker's thread name
  double us = 0.0;    ///< total time on the chain
  std::vector<PathSegment> segments;
};

/// Profile of one execute_block span.
struct BlockProfile {
  std::string process;      ///< engine label (trace process name)
  std::size_t num_txs = 0;  ///< execute_block arg
  double wall_us = 0.0;     ///< execute_block duration
  unsigned threads = 0;     ///< participants (the `threads` instant arg)
  double budget_us = 0.0;   ///< threads x wall
  double buckets_us[static_cast<std::size_t>(Bucket::kCount)] = {};
  double bucket_sum_us = 0.0;
  /// budget - bucket sum: the caller's inter-phase gaps (plus clipping /
  /// float residue). The sum invariant bounds this, see check_attribution.
  double uncovered_us = 0.0;
  std::vector<CritPath> paths;  ///< [0] = caller chain, then top workers
  std::string dominant_segment;  ///< largest segment of paths[0]
  double dominant_us = 0.0;
  /// Largest caller-chain segment that is engine overhead rather than
  /// execution work (execute / seq_bin / tx excluded): the measurable
  /// form of the DESIGN.md §13.3 finding — for speculative at 1 thread
  /// this names predict (graph build).
  std::string dominant_overhead_segment;
  double dominant_overhead_us = 0.0;
  /// Block-STM suspended-reader instants inside the window.
  std::size_t suspend_count = 0;
  /// blocker tx index -> number of suspensions it caused.
  std::map<std::int64_t, std::size_t> suspend_blockers;
};

struct ProfileResult {
  bool ok = false;
  std::string error;
  std::vector<BlockProfile> blocks;  ///< one per execute_block, file order
};

/// Analyze a Chrome trace. Returns ok=false with an error when the trace
/// cannot be interpreted (malformed JSON, unbalanced spans, an
/// execute_block without a `threads` instant). `top_k` bounds the chains
/// reported per block (1 caller chain + up to top_k-1 worker chains).
ProfileResult profile_chrome_trace(const std::string& json,
                                   std::size_t top_k = 4);

/// Attribution sanity gates for one block profile: the buckets must sum
/// to the threads x wall budget within eps_fraction, and the untracked
/// bucket must stay below untracked_max of the budget. Returns the empty
/// string when both hold, else a human-readable violation.
std::string check_attribution(const BlockProfile& profile,
                              double eps_fraction = 0.02,
                              double untracked_max = 0.10);

/// Text report for one block profile (the txconc_profile default).
void write_profile_text(std::ostream& out, const BlockProfile& profile);
/// JSON object for one block profile (txconc_profile --format=json and
/// the bench's BENCH_profile.json rows share this shape).
void write_profile_json(std::ostream& out, const BlockProfile& profile);

}  // namespace txconc::obs
