// The observability hook threaded through account::RuntimeConfig next to
// the fault-injector and access-recorder hooks: a nullable bundle of the
// tracer and metrics registry a block execution should report into.
//
// A null Scope pointer (the default) is the null sink: the helpers below
// return nullptr and every TXCONC_*_T macro site degrades to a relaxed
// atomic load at most.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace txconc::obs {

class ContentionSink;  // hot-key / abort attribution, see obs/contention.h

struct Scope {
  Tracer* tracer = nullptr;
  Registry* metrics = nullptr;
  /// Contention explainer sink (null = disabled): engines feed abort
  /// attribution into it and the access-recorder hook feeds touches.
  ContentionSink* contention = nullptr;
};

/// Null-safe accessors for the pointer carried in RuntimeConfig.
inline Tracer* tracer(const Scope* scope) {
  return scope != nullptr ? scope->tracer : nullptr;
}
inline Registry* metrics(const Scope* scope) {
  return scope != nullptr ? scope->metrics : nullptr;
}
inline ContentionSink* contention(const Scope* scope) {
  return scope != nullptr ? scope->contention : nullptr;
}

/// The default scope: global tracer + global registry. Benches and
/// examples install this into RuntimeConfig when TXCONC_TRACE is set.
inline const Scope& global_scope() {
  static const Scope scope{&Tracer::global(), &Registry::global()};
  return scope;
}

}  // namespace txconc::obs
