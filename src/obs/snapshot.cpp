#include "obs/snapshot.h"

#include <chrono>
#include <ostream>

namespace txconc::obs {

namespace {

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SnapshotWriter::SnapshotWriter(const Registry* registry, Options options)
    : registry_(registry), options_(options) {}

void SnapshotWriter::capture(std::uint64_t ts_ms) {
  Snapshot snap;
  snap.ts_ms = ts_ms;
  snap.counters = registry_->counter_values();
  snap.gauges = registry_->gauge_values();
  ring_.push_back(std::move(snap));
  while (ring_.size() > options_.capacity && !ring_.empty()) {
    ring_.pop_front();
  }
}

void SnapshotWriter::snapshot(std::uint64_t ts_ms) {
  const MutexLock lock(mu_);
  capture(ts_ms);
}

void SnapshotWriter::tick() {
  const std::uint64_t now = steady_ms();
  const MutexLock lock(mu_);
  if (ticked_ && now - last_tick_ms_ < options_.min_interval_ms) return;
  ticked_ = true;
  last_tick_ms_ = now;
  capture(now);
}

std::size_t SnapshotWriter::size() const {
  const MutexLock lock(mu_);
  return ring_.size();
}

SnapshotWriter::Snapshot SnapshotWriter::latest() const {
  const MutexLock lock(mu_);
  return ring_.empty() ? Snapshot{} : ring_.back();
}

std::map<std::string, double> SnapshotWriter::rates_per_second() const {
  const MutexLock lock(mu_);
  std::map<std::string, double> rates;
  if (ring_.size() < 2) return rates;
  const Snapshot& oldest = ring_.front();
  const Snapshot& newest = ring_.back();
  if (newest.ts_ms <= oldest.ts_ms) return rates;
  const double window_s =
      static_cast<double>(newest.ts_ms - oldest.ts_ms) / 1000.0;
  for (const auto& [name, value] : newest.counters) {
    const auto it = oldest.counters.find(name);
    const std::uint64_t before = it != oldest.counters.end() ? it->second : 0;
    // Counters are monotonic, but guard the subtraction anyway (a merge
    // into the registry mid-window only ever increases them).
    const std::uint64_t delta = value >= before ? value - before : 0;
    rates.emplace(name, static_cast<double>(delta) / window_s);
  }
  return rates;
}

void SnapshotWriter::write_json(std::ostream& out) const {
  const MutexLock lock(mu_);
  out << "[";
  bool first_snap = true;
  for (const Snapshot& snap : ring_) {
    out << (first_snap ? "\n" : ",\n") << " {\"ts_ms\": " << snap.ts_ms
        << ", \"counters\": {";
    first_snap = false;
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
      out << (first ? "" : ", ") << "\"" << name << "\": " << value;
      first = false;
    }
    out << "}, \"gauges\": {";
    first = true;
    for (const auto& [name, value] : snap.gauges) {
      out << (first ? "" : ", ") << "\"" << name << "\": " << value;
      first = false;
    }
    out << "}}";
  }
  out << "\n]\n";
}

}  // namespace txconc::obs
