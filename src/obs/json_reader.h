// Minimal JSON reader shared by the trace validator (obs/trace.cpp) and
// the critical-path profiler (obs/critpath.cpp). Internal to obs: it
// handles exactly the subset Chrome trace files use — objects, arrays,
// strings with escapes, numbers, true/false/null — and reports the first
// failure with its byte offset instead of throwing.
#pragma once

#include <cctype>
#include <string>

namespace txconc::obs::internal {

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string parse_string() {
    skip_ws();
    std::string out;
    if (!consume('"')) return fail("expected string"), out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            pos_ += 4;  // trace labels are ASCII; skip the code point
            c = '?';
            break;
          default: c = esc;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string"), out;
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number"), 0.0;
    return std::stod(text_.substr(start, pos_ - start));
  }

  /// Skip any value (used for unrecognized object members).
  void skip_value() {
    skip_ws();
    const char c = peek();
    if (c == '"') {
      parse_string();
    } else if (c == '{') {
      consume('{');
      if (consume('}')) return;
      do {
        parse_string();
        if (!consume(':')) return fail("expected ':'");
        skip_value();
      } while (consume(',') && !failed_);
      if (!consume('}')) fail("expected '}'");
    } else if (c == '[') {
      consume('[');
      if (consume(']')) return;
      do {
        skip_value();
      } while (consume(',') && !failed_);
      if (!consume(']')) fail("expected ']'");
    } else if (c == 't' || c == 'f' || c == 'n') {
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    } else {
      parse_number();
    }
  }

  void fail(const std::string& why) {
    if (!failed_) {
      failed_ = true;
      error_ = why + " at offset " + std::to_string(pos_);
    }
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace txconc::obs::internal
