#include "obs/critpath.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/json_reader.h"
#include "obs/names.h"

namespace txconc::obs {
namespace {

using internal::JsonReader;

struct PEvent {
  std::string name;
  char phase = '?';
  int pid = 0;
  int tid = 0;
  double ts = 0.0;
  std::int64_t arg = -1;
  std::string meta_name;  ///< args.name of 'M' metadata records
};

/// One reconstructed B/E span. parent/children describe the per-thread
/// nesting tree; spans never closed in the trace are repaired after the
/// parse (extended to the end of their last finished descendant, see
/// parse_trace) so a lost trailing 'E' cannot double-count its children
/// against the thread's idle time.
struct Span {
  std::string name;
  int pid = 0;
  int tid = 0;
  double b = 0.0;
  double e = 0.0;
  std::int64_t arg = -1;
  int parent = -1;
  std::vector<int> children;
};

struct ParsedTrace {
  bool ok = false;
  std::string error;
  std::vector<Span> spans;
  std::vector<PEvent> instants;
  std::map<int, std::string> process_names;
  std::map<std::pair<int, int>, std::string> thread_names;
};

ParsedTrace parse_trace(const std::string& json) {
  ParsedTrace out;
  JsonReader reader(json);
  const auto fail = [&out](std::string why) {
    out.ok = false;
    out.error = std::move(why);
    return out;
  };

  if (!reader.consume('{')) return fail("trace is not a JSON object");
  // Per-(pid,tid) stack of open span indices, for parent links.
  std::map<std::pair<int, int>, std::vector<int>> open;
  bool saw_array = false;
  if (!reader.consume('}')) {
    do {
      const std::string key = reader.parse_string();
      if (!reader.consume(':')) return fail("expected ':' after key");
      if (key != "traceEvents") {
        reader.skip_value();
        if (reader.failed()) return fail(reader.error());
        continue;
      }
      saw_array = true;
      if (!reader.consume('[')) return fail("traceEvents is not an array");
      if (reader.consume(']')) break;
      do {
        PEvent event;
        if (!reader.consume('{')) return fail("event is not an object");
        if (!reader.consume('}')) {
          do {
            const std::string field = reader.parse_string();
            if (!reader.consume(':')) return fail("expected ':' in event");
            if (field == "name") {
              event.name = reader.parse_string();
            } else if (field == "ph") {
              const std::string ph = reader.parse_string();
              event.phase = ph.empty() ? '?' : ph[0];
            } else if (field == "pid") {
              event.pid = static_cast<int>(reader.parse_number());
            } else if (field == "tid") {
              event.tid = static_cast<int>(reader.parse_number());
            } else if (field == "ts") {
              event.ts = reader.parse_number();
            } else if (field == "args") {
              if (!reader.consume('{')) return fail("args not an object");
              if (!reader.consume('}')) {
                do {
                  const std::string arg_key = reader.parse_string();
                  if (!reader.consume(':')) return fail("bad args");
                  if (arg_key == "arg") {
                    event.arg =
                        static_cast<std::int64_t>(reader.parse_number());
                  } else if (arg_key == "name") {
                    event.meta_name = reader.parse_string();
                  } else {
                    reader.skip_value();
                  }
                } while (reader.consume(','));
                if (!reader.consume('}')) return fail("unclosed args");
              }
            } else {
              reader.skip_value();
            }
            if (reader.failed()) return fail(reader.error());
          } while (reader.consume(','));
          if (!reader.consume('}')) return fail("unclosed event object");
        }
        if (event.phase == 'M') {
          if (event.name == "process_name") {
            out.process_names[event.pid] = event.meta_name;
          } else if (event.name == "thread_name") {
            out.thread_names[{event.pid, event.tid}] = event.meta_name;
          }
        } else if (event.phase == 'B') {
          auto& stack = open[{event.pid, event.tid}];
          Span span;
          span.name = event.name;
          span.pid = event.pid;
          span.tid = event.tid;
          span.b = event.ts;
          span.e = event.ts;  // stays zero-length if never closed
          span.arg = event.arg;
          span.parent = stack.empty() ? -1 : stack.back();
          const int index = static_cast<int>(out.spans.size());
          if (span.parent >= 0) {
            out.spans[static_cast<std::size_t>(span.parent)]
                .children.push_back(index);
          }
          out.spans.push_back(std::move(span));
          stack.push_back(index);
        } else if (event.phase == 'E') {
          auto& stack = open[{event.pid, event.tid}];
          if (stack.empty()) {
            return fail("unbalanced 'E' for '" + event.name +
                        "': validate the trace first");
          }
          out.spans[static_cast<std::size_t>(stack.back())].e = event.ts;
          stack.pop_back();
        } else if (event.phase == 'i') {
          out.instants.push_back(std::move(event));
        }
        // 's'/'f' flow events carry no duration; the profiler skips them.
      } while (reader.consume(','));
      if (!reader.consume(']')) return fail("unterminated traceEvents");
    } while (reader.consume(','));
    if (!reader.consume('}') && !reader.failed()) {
      // '}' may already be consumed when traceEvents was the last key.
    }
  }
  if (reader.failed()) return fail(reader.error());
  if (!saw_array) return fail("no traceEvents array");

  // Repair spans whose 'E' never made it into the trace. This is a real
  // serialization race, not a bug in the emitters: a worker's final
  // pool_task end is pushed after the grain-completion notify that wakes
  // the exporting thread, so a trace written right after a join can miss
  // it. Left zero-length, such a span would book its children's busy
  // time into the buckets while the thread also books a full wall of
  // idle (the children no longer overlap any top-level span), breaking
  // the sum invariant from above. Extending the span to its last
  // finished descendant restores the nesting the emitter intended.
  // Reverse index order repairs children before their parents (a span's
  // children always carry higher indices than the span itself).
  std::vector<char> unclosed(out.spans.size(), 0);
  for (const auto& [thread, stack] : open) {
    for (const int index : stack) {
      unclosed[static_cast<std::size_t>(index)] = 1;
    }
  }
  for (std::size_t i = out.spans.size(); i-- > 0;) {
    if (unclosed[i] == 0) continue;
    Span& span = out.spans[i];
    for (const int child : span.children) {
      span.e = std::max(span.e, out.spans[static_cast<std::size_t>(child)].e);
    }
  }
  out.ok = true;
  return out;
}

/// Overlap of span s with the window [w0, w1], clamped at zero.
double overlap_us(const Span& s, double w0, double w1) {
  return std::max(0.0, std::min(s.e, w1) - std::max(s.b, w0));
}

/// Generic span-name -> bucket mapping. `attempt` spans need per-tx
/// context (last attempt vs rework) and are resolved by the caller; the
/// fallback here treats them as tx execute for display purposes.
Bucket bucket_for(const std::string& name) {
  if (name == names::kSpanPredict || name == names::kSpanPredictClosure ||
      name == names::kSpanPredictComponents) {
    return Bucket::kGraphBuild;
  }
  if (name == names::kSpanSchedule || name == names::kSpanPoolTask) {
    return Bucket::kSchedule;
  }
  if (name == names::kSpanTx || name == names::kSpanAttempt) {
    return Bucket::kTxExecute;
  }
  if (name == names::kSpanValidate) return Bucket::kRework;
  if (name == names::kSpanExecute || name == names::kSpanWait) {
    return Bucket::kDependencyWait;
  }
  if (name == names::kSpanCommit || name == names::kSpanSeqBin) {
    return Bucket::kCommit;
  }
  return Bucket::kUntracked;
}

/// Caller-chain segments that ARE the block's execution work (the
/// parallel phase, the sequential tail, raw tx/attempt spans). Every
/// other chain segment is engine overhead the paper's §V model does not
/// charge for — the largest of those is reported as the dominant
/// overhead (for speculative at 1 thread: predict, i.e. graph build).
bool is_execution_segment(const std::string& name) {
  return name == names::kSpanExecute || name == names::kSpanSeqBin ||
         name == names::kSpanTx || name == names::kSpanAttempt;
}

/// Fold a span list (already ordered by start time) into named segments.
std::vector<PathSegment> fold_segments(
    const std::vector<std::pair<std::string, double>>& parts) {
  std::vector<PathSegment> segments;
  std::unordered_map<std::string, std::size_t> index_of;
  for (const auto& [name, us] : parts) {
    auto it = index_of.find(name);
    if (it == index_of.end()) {
      index_of.emplace(name, segments.size());
      segments.push_back(PathSegment{name, us, 1});
    } else {
      segments[it->second].us += us;
      ++segments[it->second].count;
    }
  }
  return segments;
}

std::string profile_block(const ParsedTrace& trace, int eb_index,
                          std::size_t top_k, BlockProfile* out) {
  const Span& eb = trace.spans[static_cast<std::size_t>(eb_index)];
  const double w0 = eb.b;
  const double w1 = eb.e;
  const double wall = w1 - w0;
  if (wall <= 0.0) return "execute_block span has no duration";

  const auto pname = trace.process_names.find(eb.pid);
  out->process = pname != trace.process_names.end()
                     ? pname->second
                     : "pid-" + std::to_string(eb.pid);
  out->num_txs = eb.arg > 0 ? static_cast<std::size_t>(eb.arg) : 0;
  out->wall_us = wall;

  // Thread budget: the `threads` instant the engine emits inside its
  // execute_block (arg = pool workers + caller).
  for (const PEvent& ev : trace.instants) {
    if (ev.pid == eb.pid && ev.name == names::kEvThreads && ev.ts >= w0 &&
        ev.ts <= w1) {
      out->threads = ev.arg > 0 ? static_cast<unsigned>(ev.arg) : 0;
      break;
    }
  }
  if (out->threads == 0) {
    return "no '" + std::string(names::kEvThreads) +
           "' instant inside execute_block for process " + out->process +
           " (emitter predates the thread-budget contract?)";
  }
  out->budget_us = static_cast<double>(out->threads) * wall;

  // Spans of this engine overlapping the block window. Earlier blocks on
  // the same pid occupy disjoint windows and fall out here.
  std::vector<int> relevant;
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const Span& s = trace.spans[i];
    if (s.pid == eb.pid && s.e > w0 && s.b < w1) {
      relevant.push_back(static_cast<int>(i));
    }
  }

  // Per-tx attempt classification: a tx whose committed run is a `tx`
  // span (seq_bin fallback) had ALL its attempts aborted; otherwise its
  // last attempt by start time is the committed one.
  std::set<std::int64_t> has_final_tx;
  std::map<std::int64_t, std::pair<double, int>> last_attempt;
  for (const int i : relevant) {
    const Span& s = trace.spans[static_cast<std::size_t>(i)];
    if (s.name == names::kSpanTx) has_final_tx.insert(s.arg);
    if (s.name == names::kSpanAttempt) {
      auto it = last_attempt.find(s.arg);
      if (it == last_attempt.end() || s.b > it->second.first) {
        last_attempt[s.arg] = {s.b, i};
      }
    }
  }

  auto& buckets = out->buckets_us;
  const auto add = [&buckets](Bucket b, double us) {
    buckets[static_cast<unsigned>(b)] += us;
  };

  std::set<int> worker_tids;
  for (const int i : relevant) {
    const Span& s = trace.spans[static_cast<std::size_t>(i)];
    if (s.tid != eb.tid) worker_tids.insert(s.tid);
    if (i == eb_index) continue;  // caller self time stays uncovered
    double child_us = 0.0;
    for (const int c : s.children) {
      child_us +=
          overlap_us(trace.spans[static_cast<std::size_t>(c)], w0, w1);
    }
    const double self = std::max(0.0, overlap_us(s, w0, w1) - child_us);
    if (s.name == names::kSpanAttempt) {
      const bool committed = has_final_tx.count(s.arg) == 0 &&
                             last_attempt[s.arg].second == i;
      add(committed ? Bucket::kTxExecute : Bucket::kRework, self);
    } else {
      add(bucket_for(s.name), self);
    }
  }

  // Pool idle: worker time inside the window not covered by any
  // top-level span (measured), plus a full wall for each participant
  // that never surfaced in the trace.
  std::map<int, double> busy_by_tid;
  for (const int i : relevant) {
    const Span& s = trace.spans[static_cast<std::size_t>(i)];
    if (s.tid == eb.tid || s.parent != -1) continue;
    busy_by_tid[s.tid] += overlap_us(s, w0, w1);
  }
  for (const int tid : worker_tids) {
    add(Bucket::kPoolIdle, std::max(0.0, wall - busy_by_tid[tid]));
  }
  const std::size_t expected_workers = out->threads - 1;
  if (worker_tids.size() < expected_workers) {
    add(Bucket::kPoolIdle,
        static_cast<double>(expected_workers - worker_tids.size()) * wall);
  }

  double sum = 0.0;
  for (const double b : buckets) sum += b;
  out->bucket_sum_us = sum;
  out->uncovered_us = out->budget_us - sum;

  // Critical path 0: the caller's phase chain (direct children of
  // execute_block, folded by name in first-appearance order).
  std::vector<int> caller_children = eb.children;
  std::sort(caller_children.begin(), caller_children.end(),
            [&trace](int a, int b) {
              return trace.spans[static_cast<std::size_t>(a)].b <
                     trace.spans[static_cast<std::size_t>(b)].b;
            });
  std::vector<std::pair<std::string, double>> parts;
  for (const int c : caller_children) {
    const Span& s = trace.spans[static_cast<std::size_t>(c)];
    parts.emplace_back(s.name, s.e - s.b);
  }
  CritPath caller_path;
  caller_path.label = "caller";
  caller_path.segments = fold_segments(parts);
  for (const PathSegment& seg : caller_path.segments) {
    caller_path.us += seg.us;
    if (seg.us > out->dominant_us) {
      out->dominant_us = seg.us;
      out->dominant_segment = seg.name;
    }
    if (!is_execution_segment(seg.name) &&
        seg.us > out->dominant_overhead_us) {
      out->dominant_overhead_us = seg.us;
      out->dominant_overhead_segment = seg.name;
    }
  }
  out->paths.push_back(std::move(caller_path));

  // Worker chains ranked by busy time: each worker's spans folded by
  // name over their SELF time, so nested spans are not double counted.
  std::vector<std::pair<double, int>> ranked;
  for (const auto& [tid, busy] : busy_by_tid) ranked.emplace_back(busy, tid);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [busy, tid] : ranked) {
    if (out->paths.size() >= top_k) break;
    std::vector<std::pair<std::string, double>> worker_parts;
    for (const int i : relevant) {
      const Span& s = trace.spans[static_cast<std::size_t>(i)];
      if (s.tid != tid) continue;
      double child_us = 0.0;
      for (const int c : s.children) {
        child_us +=
            overlap_us(trace.spans[static_cast<std::size_t>(c)], w0, w1);
      }
      worker_parts.emplace_back(
          s.name, std::max(0.0, overlap_us(s, w0, w1) - child_us));
    }
    CritPath path;
    const auto tname = trace.thread_names.find({eb.pid, tid});
    path.label = tname != trace.thread_names.end()
                     ? tname->second
                     : "tid-" + std::to_string(tid);
    path.us = busy;
    path.segments = fold_segments(worker_parts);
    out->paths.push_back(std::move(path));
  }

  // Block-STM suspended-reader instants, grouped by blocking tx.
  for (const PEvent& ev : trace.instants) {
    if (ev.pid == eb.pid && ev.name == names::kEvSuspend && ev.ts >= w0 &&
        ev.ts <= w1) {
      ++out->suspend_count;
      ++out->suspend_blockers[ev.arg];
    }
  }
  return std::string();
}

/// Display label for a critical-path SEGMENT. Distinct from bucket_for:
/// a caller-chain segment spans the whole phase (the execute segment is
/// mostly worker tx time, only its residual is dependency wait), so the
/// phase names get phase-level labels here.
const char* segment_kind(const std::string& name) {
  if (name == names::kSpanPredict || name == names::kSpanPredictClosure ||
      name == names::kSpanPredictComponents) {
    return "graph build";
  }
  if (name == names::kSpanSchedule) return "schedule";
  if (name == names::kSpanExecute) return "parallel execute";
  if (name == names::kSpanSeqBin) return "sequential tail";
  if (name == names::kSpanCommit) return "commit";
  if (name == names::kSpanPoolTask) return "pool task";
  if (name == names::kSpanWait) return "dependency wait";
  return "span";
}

std::string format_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", us);
  return buf;
}

std::string format_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

const char* bucket_name(Bucket bucket) {
  switch (bucket) {
    case Bucket::kGraphBuild: return "graph_build";
    case Bucket::kSchedule: return "schedule";
    case Bucket::kTxExecute: return "tx_execute";
    case Bucket::kRework: return "rework";
    case Bucket::kDependencyWait: return "dependency_wait";
    case Bucket::kCommit: return "commit";
    case Bucket::kPoolIdle: return "pool_idle";
    case Bucket::kUntracked: return "untracked";
    case Bucket::kCount: break;
  }
  return "?";
}

ProfileResult profile_chrome_trace(const std::string& json,
                                   std::size_t top_k) {
  ProfileResult result;
  if (top_k == 0) top_k = 1;
  ParsedTrace trace = parse_trace(json);
  if (!trace.ok) {
    result.error = trace.error;
    return result;
  }
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    if (trace.spans[i].name != names::kSpanExecuteBlock) continue;
    BlockProfile profile;
    std::string error =
        profile_block(trace, static_cast<int>(i), top_k, &profile);
    if (!error.empty()) {
      result.error = std::move(error);
      return result;
    }
    result.blocks.push_back(std::move(profile));
  }
  if (result.blocks.empty()) {
    result.error = "trace contains no execute_block span";
    return result;
  }
  result.ok = true;
  return result;
}

std::string check_attribution(const BlockProfile& profile,
                              double eps_fraction, double untracked_max) {
  if (profile.budget_us <= 0.0) {
    return "block '" + profile.process + "' has a non-positive budget";
  }
  const double diff =
      std::fabs(profile.bucket_sum_us - profile.budget_us);
  if (diff > eps_fraction * profile.budget_us) {
    return "block '" + profile.process + "': attribution sum " +
           format_us(profile.bucket_sum_us) + " us vs budget " +
           format_us(profile.budget_us) + " us differs by " +
           format_pct(diff / profile.budget_us) + " (limit " +
           format_pct(eps_fraction) + ") -- a stall source is untraced";
  }
  const double untracked =
      profile.buckets_us[static_cast<unsigned>(Bucket::kUntracked)];
  if (untracked > untracked_max * profile.budget_us) {
    return "block '" + profile.process + "': untracked share " +
           format_pct(untracked / profile.budget_us) + " exceeds " +
           format_pct(untracked_max) +
           " -- unknown span names dominate, extend the taxonomy";
  }
  return std::string();
}

void write_profile_text(std::ostream& out, const BlockProfile& p) {
  out << "block profile: " << p.process << "  txs=" << p.num_txs
      << "  threads=" << p.threads << "  wall=" << format_us(p.wall_us)
      << " us  budget=" << format_us(p.budget_us) << " us\n";
  out << "  bucket            time (us)    share\n";
  for (unsigned b = 0; b < static_cast<unsigned>(Bucket::kCount); ++b) {
    char line[96];
    std::snprintf(line, sizeof(line), "  %-16s %11.1f   %6.1f%%\n",
                  bucket_name(static_cast<Bucket>(b)), p.buckets_us[b],
                  p.budget_us > 0.0
                      ? 100.0 * p.buckets_us[b] / p.budget_us
                      : 0.0);
    out << line;
  }
  char line[96];
  std::snprintf(line, sizeof(line), "  %-16s %11.1f   %6.1f%%\n", "sum",
                p.bucket_sum_us,
                p.budget_us > 0.0 ? 100.0 * p.bucket_sum_us / p.budget_us
                                  : 0.0);
  out << line;
  std::snprintf(line, sizeof(line), "  %-16s %11.1f   %6.1f%%\n",
                "uncovered", p.uncovered_us,
                p.budget_us > 0.0 ? 100.0 * p.uncovered_us / p.budget_us
                                  : 0.0);
  out << line;
  for (const CritPath& path : p.paths) {
    out << "  " << (path.label == "caller" ? "critical path" : "worker chain")
        << " [" << path.label << ", " << format_us(path.us) << " us]: ";
    bool first = true;
    for (const PathSegment& seg : path.segments) {
      if (!first) out << " -> ";
      first = false;
      out << seg.name << " " << format_us(seg.us);
      if (seg.count > 1) out << " (x" << seg.count << ")";
    }
    out << "\n";
  }
  if (!p.dominant_segment.empty()) {
    out << "  dominant segment: " << p.dominant_segment << " ("
        << segment_kind(p.dominant_segment) << ", "
        << format_us(p.dominant_us) << " us)\n";
  }
  if (!p.dominant_overhead_segment.empty()) {
    out << "  dominant overhead: " << p.dominant_overhead_segment << " ("
        << segment_kind(p.dominant_overhead_segment) << ", "
        << format_us(p.dominant_overhead_us) << " us)\n";
  }
  if (p.suspend_count > 0) {
    out << "  suspends: " << p.suspend_count << " (blockers:";
    for (const auto& [tx, count] : p.suspend_blockers) {
      out << " tx" << tx << " x" << count;
    }
    out << ")\n";
  }
}

void write_profile_json(std::ostream& out, const BlockProfile& p) {
  char buf[64];
  const auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    out << buf;
  };
  out << "{\"process\":";
  write_json_string(out, p.process);
  out << ",\"num_txs\":" << p.num_txs << ",\"threads\":" << p.threads
      << ",\"wall_us\":";
  num(p.wall_us);
  out << ",\"budget_us\":";
  num(p.budget_us);
  out << ",\"buckets\":{";
  for (unsigned b = 0; b < static_cast<unsigned>(Bucket::kCount); ++b) {
    if (b != 0) out << ",";
    out << '"' << bucket_name(static_cast<Bucket>(b)) << "\":";
    num(p.buckets_us[b]);
  }
  out << "},\"bucket_sum_us\":";
  num(p.bucket_sum_us);
  out << ",\"uncovered_us\":";
  num(p.uncovered_us);
  out << ",\"dominant_segment\":";
  write_json_string(out, p.dominant_segment);
  out << ",\"dominant_kind\":";
  write_json_string(out, segment_kind(p.dominant_segment));
  out << ",\"dominant_us\":";
  num(p.dominant_us);
  out << ",\"dominant_overhead_segment\":";
  write_json_string(out, p.dominant_overhead_segment);
  out << ",\"dominant_overhead_kind\":";
  write_json_string(out, segment_kind(p.dominant_overhead_segment));
  out << ",\"dominant_overhead_us\":";
  num(p.dominant_overhead_us);
  out << ",\"paths\":[";
  for (std::size_t i = 0; i < p.paths.size(); ++i) {
    if (i != 0) out << ",";
    const CritPath& path = p.paths[i];
    out << "{\"label\":";
    write_json_string(out, path.label);
    out << ",\"us\":";
    num(path.us);
    out << ",\"segments\":[";
    for (std::size_t s = 0; s < path.segments.size(); ++s) {
      if (s != 0) out << ",";
      out << "{\"name\":";
      write_json_string(out, path.segments[s].name);
      out << ",\"us\":";
      num(path.segments[s].us);
      out << ",\"count\":" << path.segments[s].count << "}";
    }
    out << "]}";
  }
  out << "],\"suspends\":{\"count\":" << p.suspend_count << ",\"blockers\":[";
  bool first = true;
  for (const auto& [tx, count] : p.suspend_blockers) {
    if (!first) out << ",";
    first = false;
    out << "{\"tx\":" << tx << ",\"count\":" << count << "}";
  }
  out << "]}}";
}

}  // namespace txconc::obs
