// Periodic metrics snapshots: a ring of timestamped counter/gauge
// captures taken off a Registry, plus delta rates across the window.
//
// chain::Node and the shard simulator call tick() on their per-block
// paths; the writer rate-limits on the steady clock so a hot loop costs
// one mutex + clock read per block and a full capture only every
// min_interval_ms. Export the ring with write_json for offline rate
// plots, or ask rates_per_second() for the roll-up a dashboard shows.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>

#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace txconc::obs {

class SnapshotWriter {
 public:
  struct Options {
    /// Snapshots kept; the ring drops the oldest beyond this.
    std::size_t capacity = 128;
    /// tick() captures at most once per this many wall milliseconds
    /// (0 = capture on every tick). snapshot() ignores the limit.
    std::uint64_t min_interval_ms = 0;
  };

  /// One capture. Timestamps are caller-defined for snapshot() (the
  /// simulators pass logical time) and steady-clock ms for tick().
  struct Snapshot {
    std::uint64_t ts_ms = 0;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
  };

  /// `registry` must outlive the writer (not owned).
  explicit SnapshotWriter(const Registry* registry)
      : SnapshotWriter(registry, Options()) {}
  SnapshotWriter(const Registry* registry, Options options);

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Capture now, stamped `ts_ms` (no rate limit).
  void snapshot(std::uint64_t ts_ms);

  /// Rate-limited capture on the steady clock; cheap no-op when the
  /// newest snapshot is younger than min_interval_ms.
  void tick();

  std::size_t size() const;
  /// Newest snapshot; default-constructed when empty.
  Snapshot latest() const;

  /// Counter deltas per second from the oldest to the newest snapshot in
  /// the ring; empty with fewer than two snapshots or a zero-length
  /// window. Counters absent from the oldest snapshot count from 0.
  std::map<std::string, double> rates_per_second() const;

  /// JSON array: [{"ts_ms":..,"counters":{..},"gauges":{..}},...].
  void write_json(std::ostream& out) const;

 private:
  void capture(std::uint64_t ts_ms) REQUIRES(mu_);

  const Registry* const registry_;
  const Options options_;

  mutable Mutex mu_;
  std::deque<Snapshot> ring_ GUARDED_BY(mu_);
  bool ticked_ GUARDED_BY(mu_) = false;
  std::uint64_t last_tick_ms_ GUARDED_BY(mu_) = 0;
};

}  // namespace txconc::obs
