// Metrics registry: named counters, gauges and log-bucketed histograms
// with JSON and CSV export.
//
// Lookup (counter()/gauge()/histogram()) takes the registry mutex and
// returns a stable reference; cache it in hot loops. Updates on the
// returned instruments are lock-free atomics, safe from every pool
// worker concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace txconc::obs {

/// Monotonic counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    // ordering: relaxed — statistical instrument; no data rides on it.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    // ordering: relaxed — readers tolerate a stale count.
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins gauge.
class Gauge {
 public:
  // ordering: relaxed — last-write-wins value; no data rides on it.
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  double value() const {
    // ordering: relaxed — readers tolerate a stale value.
    return unpack(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t pack(double v);
  static double unpack(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};
};

/// Log-bucketed histogram over non-negative values.
///
/// Bucket 0 holds values < 1 (including any clamped negatives); bucket i
/// (1 <= i <= 63) holds [2^(i-1), 2^i); bucket 64 holds everything from
/// 2^63 up. Quantiles interpolate linearly inside the containing bucket:
/// for target rank r = q * count, the first bucket whose cumulative count
/// reaches r contributes lo + (hi - lo) * (r - cum_before) / bucket_count.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;

  void observe(double v);

  std::uint64_t count() const {
    // ordering: relaxed — statistical snapshot; see observe().
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  double min() const;
  double max() const;
  /// Interpolated quantile estimate, q in [0, 1]; 0 when empty.
  double quantile(double q) const;

  /// Fold another histogram into this one: buckets and counts add, min /
  /// max widen. Concurrent observes on either side stay safe (the copy is
  /// a relaxed snapshot, not an atomic transaction across instruments).
  void merge_from(const Histogram& other);

  /// Observations recorded in one bucket (exposed for merge tests).
  std::uint64_t bucket_count(std::size_t bucket) const;

  /// Bucket index for a value (exposed for the boundary tests).
  static std::size_t bucket_index(double v);
  /// Inclusive lower / exclusive upper bound of a bucket.
  static double bucket_lower(std::size_t bucket);
  static double bucket_upper(std::size_t bucket);

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  ///< double, CAS-accumulated
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;

 public:
  Histogram();
};

/// Named instrument store.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry used by layers without config plumbing
  /// (thread pool, pbft) and exported by the benches.
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Multi-node roll-up: fold every instrument of `other` into this
  /// registry, creating same-named instruments on demand. Counters and
  /// histograms add; gauges take the max of the two values (a gauge
  /// cannot distinguish "never set" from 0.0, and for the fleet gauges we
  /// export — depths, sizes, speedups — the per-node max is the roll-up a
  /// dashboard wants; see DESIGN.md §12). Safe against concurrent updates
  /// on either registry; don't merge a registry into itself.
  void merge_from(const Registry& other);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  /// max,p50,p95,p99}}} with keys sorted (std::map iteration order).
  void write_json(std::ostream& out) const;
  /// CSV rows (common/csv quoting): kind,name,value,p50,p95,p99.
  void write_csv(std::ostream& out) const;
  /// Prometheus text exposition format: counters and gauges as single
  /// samples, histograms as <name>{quantile="..."} summaries plus _count /
  /// _sum. Names are sanitized to [a-zA-Z0-9_:] (dots become underscores).
  void write_prometheus(std::ostream& out) const;

  /// Point-in-time snapshots of the scalar instruments (for the
  /// SnapshotWriter ring and tests).
  std::map<std::string, std::uint64_t> counter_values() const;
  std::map<std::string, double> gauge_values() const;

  /// Instruments registered so far (all three kinds).
  std::size_t size() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace txconc::obs
