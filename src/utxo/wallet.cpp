#include "utxo/wallet.h"

#include <algorithm>

#include "common/error.h"

namespace txconc::utxo {

std::uint64_t Wallet::key_seed(std::uint32_t key_index) const {
  return seed_ ^ (0x57a11e7ULL << 32) ^ (static_cast<std::uint64_t>(key_index) * 0x9e3779b97f4a7c15ULL);
}

Bytes Wallet::pubkey(std::uint32_t key_index) const {
  const Hash256 h = Hash256::from_seed(key_seed(key_index));
  return Bytes(h.bytes.begin(), h.bytes.end());
}

Script Wallet::lock_script(std::uint32_t key_index) const {
  const Script lock = p2pkh_lock(Hash256::digest_of(pubkey(key_index)));
  watch_.emplace(std::string(lock.code.begin(), lock.code.end()), key_index);
  return lock;
}

Script Wallet::next_receive_script() { return lock_script(next_key_++); }

std::uint64_t Wallet::balance() const {
  std::uint64_t sum = 0;
  for (const WalletCoin& coin : coins_) sum += coin.value;
  return sum;
}

std::optional<std::uint32_t> Wallet::recognize(const Script& lock) const {
  const auto it = watch_.find(std::string(lock.code.begin(), lock.code.end()));
  if (it == watch_.end()) return std::nullopt;
  return it->second;
}

void Wallet::process_block(std::span<const Transaction> transactions) {
  // Drop coins spent by this block.
  for (const Transaction& tx : transactions) {
    for (const TxInput& in : tx.inputs()) {
      const auto spent =
          std::find_if(coins_.begin(), coins_.end(),
                       [&](const WalletCoin& c) {
                         return c.outpoint == in.prevout;
                       });
      if (spent != coins_.end()) coins_.erase(spent);
    }
  }
  // Absorb outputs paying any watched key.
  for (const Transaction& tx : transactions) {
    for (std::uint32_t i = 0; i < tx.outputs().size(); ++i) {
      const auto key = recognize(tx.outputs()[i].lock);
      if (key.has_value()) {
        coins_.push_back({{tx.txid(), i}, tx.outputs()[i].value, *key});
      }
    }
  }
}

Transaction Wallet::pay(const Script& destination, std::uint64_t value,
                        std::uint64_t fee) {
  // Largest-first coin selection.
  std::vector<WalletCoin> sorted = coins_;
  std::sort(sorted.begin(), sorted.end(),
            [](const WalletCoin& a, const WalletCoin& b) {
              return a.value > b.value;
            });
  std::vector<WalletCoin> selected;
  std::uint64_t selected_value = 0;
  for (const WalletCoin& coin : sorted) {
    if (selected_value >= value + fee) break;
    selected.push_back(coin);
    selected_value += coin.value;
  }
  if (selected_value < value + fee) {
    throw ValidationError("wallet balance insufficient");
  }

  std::vector<TxOutput> outputs;
  outputs.push_back({value, destination});
  const std::uint64_t change = selected_value - value - fee;
  if (change > 0) {
    outputs.push_back({change, next_receive_script()});
  }

  std::vector<TxInput> inputs;
  inputs.reserve(selected.size());
  for (const WalletCoin& coin : selected) {
    TxInput in;
    in.prevout = coin.outpoint;
    inputs.push_back(std::move(in));
  }

  // Sign: the sighash covers the transaction with blanked unlock scripts.
  const Transaction unsigned_tx(inputs, outputs);
  const Hash256 sighash = unsigned_tx.sighash();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i].unlock = p2pkh_unlock(pubkey(selected[i].key_index), sighash);
  }
  Transaction tx(std::move(inputs), std::move(outputs));

  // Optimistically mark the coins spent; a re-scan of the including block
  // is a no-op for them.
  for (const WalletCoin& coin : selected) {
    const auto it = std::find_if(coins_.begin(), coins_.end(),
                                 [&](const WalletCoin& c) {
                                   return c.outpoint == coin.outpoint;
                                 });
    if (it != coins_.end()) coins_.erase(it);
  }
  return tx;
}

}  // namespace txconc::utxo
