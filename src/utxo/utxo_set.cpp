#include "utxo/utxo_set.h"

#include "common/error.h"

namespace txconc::utxo {

std::optional<TxOutput> UtxoSet::get(const OutPoint& op) const {
  const auto it = utxos_.find(op);
  if (it == utxos_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t UtxoSet::total_value() const {
  std::uint64_t sum = 0;
  for (const auto& [op, out] : utxos_) sum += out.value;
  return sum;
}

void UtxoSet::validate(const Transaction& tx,
                       const ValidationOptions& options) const {
  if (tx.is_coinbase()) {
    if (!options.allow_minting) {
      throw ValidationError("coinbase transaction outside block context");
    }
    return;
  }

  std::uint64_t input_value = 0;
  // Detect duplicate spends within the same transaction.
  std::unordered_map<OutPoint, bool> seen;
  for (const TxInput& in : tx.inputs()) {
    if (seen.contains(in.prevout)) {
      throw ValidationError("transaction spends the same outpoint twice");
    }
    seen.emplace(in.prevout, true);

    const auto it = utxos_.find(in.prevout);
    if (it == utxos_.end()) {
      throw ValidationError("input TXO not in the current UTXO set: " +
                            in.prevout.txid.short_hex() + ":" +
                            std::to_string(in.prevout.index));
    }
    input_value += it->second.value;

    if (options.run_scripts) {
      const ScriptResult result =
          run_scripts(in.unlock, it->second.lock, tx.sighash());
      if (!result.success) {
        throw ValidationError("script rejected input: " +
                              result.failure_reason);
      }
    }
  }

  if (!options.allow_minting && tx.total_output() > input_value) {
    throw ValidationError("outputs exceed inputs (no minting)");
  }
}

TxUndo UtxoSet::apply(const Transaction& tx, const ValidationOptions& options) {
  validate(tx, options);

  TxUndo undo_record;
  undo_record.txid = tx.txid();
  undo_record.num_outputs = static_cast<std::uint32_t>(tx.outputs().size());
  undo_record.spent.reserve(tx.inputs().size());

  for (const TxInput& in : tx.inputs()) {
    const auto it = utxos_.find(in.prevout);
    undo_record.spent.emplace_back(in.prevout, it->second);
    utxos_.erase(it);
  }
  for (std::uint32_t i = 0; i < tx.outputs().size(); ++i) {
    const auto [it, inserted] =
        utxos_.emplace(OutPoint{tx.txid(), i}, tx.outputs()[i]);
    if (!inserted) {
      // Identical txids can only happen for identical transactions, which
      // duplicate-spend protection prevents for regular transactions; the
      // coinbase tag prevents it for coinbases.
      throw ValidationError("duplicate outpoint created: " +
                            tx.txid().short_hex());
    }
  }
  return undo_record;
}

void UtxoSet::undo(const TxUndo& undo_record) {
  for (std::uint32_t i = 0; i < undo_record.num_outputs; ++i) {
    const auto erased = utxos_.erase(OutPoint{undo_record.txid, i});
    if (erased == 0) {
      throw UsageError("undo: created output already spent; undo in order");
    }
  }
  for (const auto& [op, out] : undo_record.spent) {
    utxos_.emplace(op, out);
  }
}

std::vector<TxUndo> UtxoSet::apply_block(
    std::span<const Transaction> transactions,
    const ValidationOptions& options) {
  std::vector<TxUndo> undos;
  undos.reserve(transactions.size());
  try {
    for (const Transaction& tx : transactions) {
      ValidationOptions tx_options = options;
      if (tx.is_coinbase()) tx_options.allow_minting = true;
      undos.push_back(apply(tx, tx_options));
    }
  } catch (...) {
    undo_block(undos);
    throw;
  }
  return undos;
}

void UtxoSet::undo_block(std::span<const TxUndo> undos) {
  for (auto it = undos.rbegin(); it != undos.rend(); ++it) {
    undo(*it);
  }
}

}  // namespace txconc::utxo
