// UTXO-model transactions (paper Section II-A, "Data model").
//
// "A transaction takes outputs of other transactions as inputs and creates
// its own transaction outputs (or TXOs). [...] A special type of transaction,
// called coinbase, has no input UTXOs and produces one output TXO."
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "utxo/script.h"

namespace txconc::utxo {

/// Reference to a transaction output: (creating txid, output index).
struct OutPoint {
  Hash256 txid;
  std::uint32_t index = 0;

  auto operator<=>(const OutPoint&) const = default;
};

/// A transaction output: a value locked by a script.
struct TxOutput {
  std::uint64_t value = 0;  ///< In base units (satoshi-like).
  Script lock;

  bool operator==(const TxOutput&) const = default;
};

/// A transaction input: the outpoint being spent plus the unlocking script.
struct TxInput {
  OutPoint prevout;
  Script unlock;

  bool operator==(const TxInput&) const = default;
};

/// A UTXO-model transaction.
class Transaction {
 public:
  Transaction() = default;
  Transaction(std::vector<TxInput> inputs, std::vector<TxOutput> outputs);

  /// Coinbase: no inputs, a single subsidy output. The paper's analysis
  /// ignores coinbase transactions; builders tag them via is_coinbase().
  static Transaction coinbase(std::uint64_t subsidy, const Script& lock,
                              std::uint64_t block_height);

  const std::vector<TxInput>& inputs() const { return inputs_; }
  const std::vector<TxOutput>& outputs() const { return outputs_; }

  bool is_coinbase() const { return inputs_.empty(); }

  /// Sum of output values.
  std::uint64_t total_output() const;

  /// Canonical serialization (what the txid commits to).
  Bytes serialize() const;
  static Transaction deserialize(std::span<const std::uint8_t> data);

  /// Transaction id: double SHA-256 of the serialization, cached.
  const Hash256& txid() const;

  /// Signature hash: like txid() but computed over the serialization with
  /// all unlock scripts blanked, since signatures are themselves part of
  /// the unlock scripts (Bitcoin SIGHASH_ALL-style).
  Hash256 sighash() const;

  /// Approximate byte size (the block-size weight used by the figures).
  std::size_t byte_size() const { return serialize().size(); }

  bool operator==(const Transaction& other) const;

 private:
  std::vector<TxInput> inputs_;
  std::vector<TxOutput> outputs_;
  // Coinbase uniqueness: real Bitcoin embeds the height in the coinbase
  // script; we carry it as an explicit field committed in the serialization.
  std::uint64_t coinbase_tag_ = 0;
  mutable Hash256 cached_txid_{};
  mutable bool txid_valid_ = false;
};

}  // namespace txconc::utxo

template <>
struct std::hash<txconc::utxo::OutPoint> {
  std::size_t operator()(const txconc::utxo::OutPoint& op) const noexcept {
    return std::hash<txconc::Hash256>{}(op.txid) ^
           (static_cast<std::size_t>(op.index) * 0x9e3779b97f4a7c15ULL);
  }
};
