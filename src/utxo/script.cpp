#include "utxo/script.h"

#include <string>

#include "common/error.h"
#include "common/sha256.h"

namespace txconc::utxo {

ScriptBuilder& ScriptBuilder::op(Op opcode) {
  code_.push_back(static_cast<std::uint8_t>(opcode));
  return *this;
}

ScriptBuilder& ScriptBuilder::push(std::span<const std::uint8_t> data) {
  if (data.size() > 255) {
    throw UsageError("ScriptBuilder::push: datum too large");
  }
  code_.push_back(static_cast<std::uint8_t>(Op::kPush));
  code_.push_back(static_cast<std::uint8_t>(data.size()));
  code_.insert(code_.end(), data.begin(), data.end());
  return *this;
}

ScriptBuilder& ScriptBuilder::push_int(std::uint64_t v) {
  std::array<std::uint8_t, 8> raw;
  for (std::size_t i = 0; i < 8; ++i) {
    raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return push(raw);
}

Bytes make_signature(std::span<const std::uint8_t> pubkey,
                     const Hash256& txid) {
  ByteWriter w;
  w.raw(pubkey);
  w.raw(txid.bytes);
  const auto digest = Sha256::hash(w.data());
  return Bytes(digest.begin(), digest.end());
}

Script p2pkh_lock(const Hash256& pubkey_hash) {
  ScriptBuilder b;
  b.op(Op::kDup).op(Op::kHash256).push(pubkey_hash.bytes).op(Op::kEqualVerify)
      .op(Op::kCheckSig);
  return b.build();
}

Script p2pkh_unlock(std::span<const std::uint8_t> pubkey, const Hash256& txid) {
  ScriptBuilder b;
  b.push(make_signature(pubkey, txid)).push(pubkey);
  return b.build();
}

namespace {

using Stack = std::vector<Bytes>;

bool truthy(const Bytes& v) {
  for (std::uint8_t b : v) {
    if (b != 0) return true;
  }
  return false;
}

std::uint64_t to_int(const Bytes& v) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < v.size() && i < 8; ++i) {
    out |= static_cast<std::uint64_t>(v[i]) << (8 * i);
  }
  return out;
}

Bytes from_int(std::uint64_t v) {
  Bytes out(8);
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return out;
}

// Executes one script over the shared stack. Returns empty optional on
// success, otherwise a failure reason.
std::optional<std::string> run_one(const Script& script, const Hash256& txid,
                                   Stack& stack, std::size_t& ops) {
  constexpr std::size_t kMaxOps = 1000;
  std::size_t pc = 0;
  const Bytes& code = script.code;

  auto pop = [&]() -> Bytes {
    if (stack.empty()) throw VmError("stack underflow");
    Bytes v = std::move(stack.back());
    stack.pop_back();
    return v;
  };

  try {
    while (pc < code.size()) {
      if (++ops > kMaxOps) return "script too long";
      const Op op = static_cast<Op>(code[pc++]);
      switch (op) {
        case Op::kFalse:
          stack.push_back({});
          break;
        case Op::kTrue:
          stack.push_back({1});
          break;
        case Op::kPush: {
          if (pc >= code.size()) return "truncated push";
          const std::size_t len = code[pc++];
          if (pc + len > code.size()) return "truncated push data";
          stack.emplace_back(code.begin() + static_cast<std::ptrdiff_t>(pc),
                             code.begin() + static_cast<std::ptrdiff_t>(pc + len));
          pc += len;
          break;
        }
        case Op::kDup: {
          if (stack.empty()) return "dup on empty stack";
          stack.push_back(stack.back());
          break;
        }
        case Op::kDrop:
          pop();
          break;
        case Op::kSwap: {
          if (stack.size() < 2) return "swap needs two items";
          std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
          break;
        }
        case Op::kEqual: {
          const Bytes a = pop();
          const Bytes b = pop();
          stack.push_back(a == b ? Bytes{1} : Bytes{});
          break;
        }
        case Op::kEqualVerify: {
          const Bytes a = pop();
          const Bytes b = pop();
          if (a != b) return "equalverify failed";
          break;
        }
        case Op::kVerify: {
          if (!truthy(pop())) return "verify failed";
          break;
        }
        case Op::kAdd: {
          const std::uint64_t a = to_int(pop());
          const std::uint64_t b = to_int(pop());
          stack.push_back(from_int(a + b));
          break;
        }
        case Op::kSub: {
          const std::uint64_t a = to_int(pop());
          const std::uint64_t b = to_int(pop());
          stack.push_back(from_int(b - a));
          break;
        }
        case Op::kHash256: {
          const Bytes v = pop();
          const auto digest = Sha256::hash(v);
          stack.emplace_back(digest.begin(), digest.end());
          break;
        }
        case Op::kCheckSig: {
          const Bytes pubkey = pop();
          const Bytes sig = pop();
          stack.push_back(sig == make_signature(pubkey, txid) ? Bytes{1}
                                                              : Bytes{});
          break;
        }
        default:
          return "unknown opcode " + std::to_string(code[pc - 1]);
      }
    }
  } catch (const VmError& e) {
    return std::string(e.what());
  }
  return std::nullopt;
}

}  // namespace

ScriptResult run_scripts(const Script& unlock, const Script& lock,
                         const Hash256& txid) {
  ScriptResult result;
  Stack stack;
  if (auto fail = run_one(unlock, txid, stack, result.ops_executed)) {
    result.failure_reason = "unlock: " + *fail;
    return result;
  }
  if (auto fail = run_one(lock, txid, stack, result.ops_executed)) {
    result.failure_reason = "lock: " + *fail;
    return result;
  }
  if (stack.empty() || !truthy(stack.back())) {
    result.failure_reason = "final stack not truthy";
    return result;
  }
  result.success = true;
  return result;
}

}  // namespace txconc::utxo
