#include "utxo/transaction.h"

#include "common/error.h"
#include "common/sha256.h"

namespace txconc::utxo {

Transaction::Transaction(std::vector<TxInput> inputs,
                         std::vector<TxOutput> outputs)
    : inputs_(std::move(inputs)), outputs_(std::move(outputs)) {
  if (inputs_.empty()) {
    throw UsageError(
        "Transaction: regular transactions need inputs; use coinbase()");
  }
  if (outputs_.empty()) {
    throw UsageError("Transaction: at least one output required");
  }
}

Transaction Transaction::coinbase(std::uint64_t subsidy, const Script& lock,
                                  std::uint64_t block_height) {
  Transaction tx;
  tx.outputs_.push_back({subsidy, lock});
  tx.coinbase_tag_ = block_height;
  return tx;
}

std::uint64_t Transaction::total_output() const {
  std::uint64_t sum = 0;
  for (const TxOutput& out : outputs_) sum += out.value;
  return sum;
}

Bytes Transaction::serialize() const {
  ByteWriter w;
  w.u64(coinbase_tag_);
  w.u32(static_cast<std::uint32_t>(inputs_.size()));
  for (const TxInput& in : inputs_) {
    w.raw(in.prevout.txid.bytes);
    w.u32(in.prevout.index);
    w.bytes(in.unlock.code);
  }
  w.u32(static_cast<std::uint32_t>(outputs_.size()));
  for (const TxOutput& out : outputs_) {
    w.u64(out.value);
    w.bytes(out.lock.code);
  }
  return w.take();
}

Transaction Transaction::deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  Transaction tx;
  tx.coinbase_tag_ = r.u64();
  const std::uint32_t num_inputs = r.u32();
  tx.inputs_.reserve(num_inputs);
  for (std::uint32_t i = 0; i < num_inputs; ++i) {
    TxInput in;
    in.prevout.txid = Hash256::from_bytes(r.raw(32));
    in.prevout.index = r.u32();
    in.unlock.code = r.bytes();
    tx.inputs_.push_back(std::move(in));
  }
  const std::uint32_t num_outputs = r.u32();
  if (num_outputs == 0) throw ParseError("transaction has no outputs");
  tx.outputs_.reserve(num_outputs);
  for (std::uint32_t i = 0; i < num_outputs; ++i) {
    TxOutput out;
    out.value = r.u64();
    out.lock.code = r.bytes();
    tx.outputs_.push_back(std::move(out));
  }
  if (!r.done()) throw ParseError("trailing bytes after transaction");
  return tx;
}

Hash256 Transaction::sighash() const {
  Transaction blanked = *this;
  for (TxInput& in : blanked.inputs_) {
    in.unlock = Script{};
  }
  blanked.txid_valid_ = false;
  return blanked.txid();
}

const Hash256& Transaction::txid() const {
  if (!txid_valid_) {
    const Bytes raw = serialize();
    const auto digest = Sha256::hash_twice(raw);
    cached_txid_.bytes = digest;
    txid_valid_ = true;
  }
  return cached_txid_;
}

bool Transaction::operator==(const Transaction& other) const {
  return inputs_ == other.inputs_ && outputs_ == other.outputs_ &&
         coinbase_tag_ == other.coinbase_tag_;
}

}  // namespace txconc::utxo
