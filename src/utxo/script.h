// A Bitcoin-like transaction scripting language (deliberately small).
//
// Bitcoin "does not support smart contracts, but there is a simple scripting
// language for transactions" (paper, Section II-B). This module implements a
// stack machine sufficient for pay-to-pubkey-hash locking plus the simple
// arithmetic scripts used by higher-level protocols, so that UTXO-model
// transaction validation exercises a realistic execution cost.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"

namespace txconc::utxo {

/// Script opcodes. Single byte each; OP_PUSH is followed by a u8 length and
/// that many data bytes.
enum class Op : std::uint8_t {
  kFalse = 0x00,
  kTrue = 0x01,
  kPush = 0x02,
  kDup = 0x10,
  kDrop = 0x11,
  kSwap = 0x12,
  kEqual = 0x20,
  kEqualVerify = 0x21,
  kVerify = 0x22,
  kAdd = 0x30,
  kSub = 0x31,
  kHash256 = 0x40,
  kCheckSig = 0x50,
};

/// A compiled script (bytecode).
struct Script {
  Bytes code;

  bool empty() const { return code.empty(); }
  bool operator==(const Script&) const = default;
};

/// Builder for scripts.
class ScriptBuilder {
 public:
  ScriptBuilder& op(Op opcode);
  /// Push up to 255 bytes of data.
  ScriptBuilder& push(std::span<const std::uint8_t> data);
  /// Push a 64-bit integer (8-byte little-endian datum).
  ScriptBuilder& push_int(std::uint64_t v);

  Script build() { return Script{std::move(code_)}; }

 private:
  Bytes code_;
};

/// "Signatures" in the simulation: sig = SHA-256(pubkey || txid). This keeps
/// validation deterministic and cheap while preserving the shape of real
/// P2PKH verification (per-input hashing work).
Bytes make_signature(std::span<const std::uint8_t> pubkey, const Hash256& txid);

/// Standard pay-to-pubkey-hash locking script:
///   DUP HASH256 <pubkey-hash> EQUALVERIFY CHECKSIG
Script p2pkh_lock(const Hash256& pubkey_hash);

/// Matching unlocking script: <sig> <pubkey>.
Script p2pkh_unlock(std::span<const std::uint8_t> pubkey, const Hash256& txid);

/// Outcome of a script run.
struct ScriptResult {
  bool success = false;
  std::size_t ops_executed = 0;  ///< Execution cost proxy.
  std::string failure_reason;    ///< Empty on success.
};

/// Execute unlock then lock script on one stack (Bitcoin semantics);
/// succeeds when the final stack is non-empty with a truthy top.
///
/// @param txid  the id of the *spending* transaction, bound into signatures.
ScriptResult run_scripts(const Script& unlock, const Script& lock,
                         const Hash256& txid);

}  // namespace txconc::utxo
