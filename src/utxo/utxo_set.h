// The UTXO set: the global state of a UTXO-model blockchain.
//
// "Nodes keep track of unspent TXOs (or UTXOs). A transaction is valid if
// the total value of the output TXOs matches that of the input TXOs (minus
// some transaction fees), and if the input TXOs are in the current UTXO
// set." — paper, Section II-A.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "utxo/transaction.h"

namespace txconc::utxo {

/// Undo record for one applied transaction: the outputs it consumed.
struct TxUndo {
  std::vector<std::pair<OutPoint, TxOutput>> spent;
  Hash256 txid;
  std::uint32_t num_outputs = 0;
};

/// Validation / application options.
struct ValidationOptions {
  /// Run unlock+lock scripts (costly); off for pure structural validation.
  bool run_scripts = true;
  /// Allow outputs to exceed inputs (only coinbase may mint).
  bool allow_minting = false;
};

/// The set of unspent transaction outputs, with transactional apply/undo.
class UtxoSet {
 public:
  UtxoSet() = default;

  std::size_t size() const { return utxos_.size(); }
  bool contains(const OutPoint& op) const { return utxos_.contains(op); }
  std::optional<TxOutput> get(const OutPoint& op) const;

  /// Sum of all unspent values (O(n); for tests and invariant checks).
  std::uint64_t total_value() const;

  /// Check a transaction against the current set without applying it.
  /// Throws ValidationError with a reason when invalid.
  void validate(const Transaction& tx,
                const ValidationOptions& options = {}) const;

  /// Validate then apply: spend the inputs, create the outputs.
  /// Returns the undo record needed to roll back.
  TxUndo apply(const Transaction& tx, const ValidationOptions& options = {});

  /// Roll back a previously applied transaction. Undos must be replayed in
  /// reverse application order.
  void undo(const TxUndo& undo_record);

  /// Apply a whole block's transactions in order. If any transaction fails
  /// validation, the whole block is rolled back and ValidationError is
  /// rethrown (all-or-nothing). Coinbase transactions are applied with
  /// minting allowed.
  std::vector<TxUndo> apply_block(std::span<const Transaction> transactions,
                                  const ValidationOptions& options = {});

  /// Roll back a whole block given its undo records.
  void undo_block(std::span<const TxUndo> undos);

 private:
  std::unordered_map<OutPoint, TxOutput> utxos_;
};

}  // namespace txconc::utxo
