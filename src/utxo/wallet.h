// A deterministic UTXO wallet: key derivation, coin tracking, transaction
// construction with real P2PKH signing, and block scanning.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "utxo/transaction.h"
#include "utxo/utxo_set.h"

namespace txconc::utxo {

/// Wallet-owned coin.
struct WalletCoin {
  OutPoint outpoint;
  std::uint64_t value = 0;
  std::uint32_t key_index = 0;
};

/// Deterministic wallet: key i is derived from the wallet seed, addresses
/// are pay-to-pubkey-hash locks. The wallet watches blocks to discover
/// incoming coins and forget spent ones.
class Wallet {
 public:
  explicit Wallet(std::uint64_t seed) : seed_(seed) {}

  /// Public key of the i-th wallet key (derives new keys on demand).
  Bytes pubkey(std::uint32_t key_index) const;
  /// P2PKH locking script for the i-th key.
  Script lock_script(std::uint32_t key_index) const;
  /// A fresh receive script (advances the key counter).
  Script next_receive_script();

  /// Coins currently spendable by this wallet.
  const std::vector<WalletCoin>& coins() const { return coins_; }
  std::uint64_t balance() const;

  /// Scan a block: absorb outputs paying our keys, drop spent coins.
  void process_block(std::span<const Transaction> transactions);

  /// Build and sign a payment of `value` to `destination`, consuming the
  /// smallest sufficient set of coins (largest-first selection) and paying
  /// change back to a fresh key. Throws ValidationError when the balance
  /// (minus fee) cannot cover the payment. The returned transaction
  /// passes full script validation against a UtxoSet holding our coins.
  Transaction pay(const Script& destination, std::uint64_t value,
                  std::uint64_t fee = 0);

 private:
  std::uint64_t key_seed(std::uint32_t key_index) const;
  /// Key index for a lock script, if it is ours.
  std::optional<std::uint32_t> recognize(const Script& lock) const;

  std::uint64_t seed_;
  std::uint32_t next_key_ = 0;
  std::vector<WalletCoin> coins_;
  // lock-script bytes -> key index, for O(1) recognition.
  mutable std::unordered_map<std::string, std::uint32_t> watch_;
};

}  // namespace txconc::utxo
