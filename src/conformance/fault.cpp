#include "conformance/fault.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"

namespace txconc::conformance {

SeededFaultInjector::SeededFaultInjector(std::uint64_t seed, double rate)
    : seed_(seed) {
  if (!(rate >= 0.0 && rate <= 1.0)) {
    throw UsageError("SeededFaultInjector: rate must be in [0, 1]");
  }
  threshold_ =
      rate >= 1.0
          ? std::numeric_limits<std::uint64_t>::max()
          : static_cast<std::uint64_t>(
                std::ldexp(rate, 64));  // rate * 2^64, exact for rate < 1
}

bool SeededFaultInjector::should_trap(const account::AccountTx& tx) const {
  // hash_combine the identifying fields into the seed, then finalize.
  std::uint64_t s = seed_;
  s ^= tx.from.low64() + 0x9e3779b97f4a7c15ULL + (s << 6) + (s >> 2);
  s ^= tx.nonce + 0x9e3779b97f4a7c15ULL + (s << 6) + (s >> 2);
  const std::uint64_t h = splitmix64(s);
  if (threshold_ == std::numeric_limits<std::uint64_t>::max()) return true;
  return h < threshold_;
}

}  // namespace txconc::conformance
