// Differential-conformance oracle for the executor zoo.
//
// Every parallel BlockExecutor is contractually required to produce state,
// receipts and balances identical to sequential execution. The oracle
// turns that contract into a swept property: it replays the same
// profile-seeded block corpus through a candidate engine and the
// sequential baseline in lockstep — under a seeded schedule perturber and
// optionally a seeded fault injector — and reports the first divergence
// with a one-line repro command.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "workload/profile.h"

namespace txconc::conformance {

/// One differential cell: everything needed to reproduce a run exactly.
struct RunSpec {
  std::string executor = "speculative";  ///< Registry name of the engine.
  unsigned threads = 4;
  std::string profile = "ethereum";  ///< Workload profile (see profile_by_name).
  std::uint64_t profile_seed = 1;    ///< Corpus seed.
  std::uint64_t schedule_seed = 0;   ///< Perturber seed.
  double fault_rate = 0.0;           ///< 0 disables fault injection.
  std::uint64_t fault_seed = 0;
  std::uint64_t num_blocks = 3;
  /// Scales every era's txs_per_block (tier budgets vs stress sweeps).
  double tx_scale = 1.0;
};

/// First point where a candidate engine diverged from sequential.
struct Divergence {
  RunSpec spec;
  std::uint64_t block = 0;  ///< 0-based block index within the replay.
  std::string detail;       ///< What differed (receipt / digest / supply).
  std::string repro;        ///< One-line repro command.
};

/// Grid swept by run_grid: the cross product of the vectors below, with
/// schedule seeds schedule_seed_base .. +num_schedule_seeds-1.
struct GridOptions {
  std::vector<std::string> profiles = {"ethereum", "ethereum_classic",
                                       "zilliqa"};
  /// Empty selects every parallel entry of the executor registry.
  std::vector<std::string> executors;
  std::vector<unsigned> thread_grid = {1, 2, 4};
  std::uint64_t num_schedule_seeds = 10;
  std::uint64_t schedule_seed_base = 0;
  std::uint64_t profile_seed = 1;
  std::uint64_t num_blocks = 3;
  double fault_rate = 0.0;  ///< >0 keys a fault injector off the schedule seed.
  double tx_scale = 1.0;
  /// Stop collecting (not checking) after this many divergences.
  std::size_t max_divergences = 8;
};

struct GridOutcome {
  std::size_t cells = 0;            ///< Differential pairs executed.
  std::uint64_t blocks_checked = 0; ///< Blocks compared across all cells.
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
};

/// Look up a chain profile by normalized name ("ethereum",
/// "ethereum_classic", "zilliqa", "bitcoin", ...). Throws UsageError for
/// unknown names, listing the known ones.
workload::ChainProfile profile_by_name(const std::string& name);

/// Run one differential pair (candidate vs fresh sequential baseline,
/// block-by-block). Returns the first divergence, or nullopt on agreement.
std::optional<Divergence> run_pair(const RunSpec& spec);

/// Sweep the full grid.
GridOutcome run_grid(const GridOptions& options);

/// Audit sweep: replays each grid cell once through the engine with an
/// audit::AccessAuditor installed (src/audit) and scoped per block, and
/// reports any audit violation — an access outside the predicted closure,
/// or a conflicting pair of committed runs without the required ordering —
/// as a Divergence whose detail is prefixed "audit:". Unlike run_grid, an
/// empty executors list selects EVERY registry entry, sequential included
/// (the auditor must hold trivially for the baseline too).
GridOutcome run_audit_grid(const GridOptions& options);

/// One-line repro command for a cell:
///   TXCONC_REPRO='<format_spec(spec)>' ./build/tests/conformance_test
///       --gtest_filter='ReproCommand.ReplaysEnvSpec'
std::string repro_command(const RunSpec& spec);

/// Key=value encoding embedded in repro commands; parse_spec inverts it
/// (unknown keys are rejected with UsageError).
std::string format_spec(const RunSpec& spec);
RunSpec parse_spec(const std::string& text);

}  // namespace txconc::conformance
