// Seeded schedule perturber: a ThreadPool grain hook that injects
// deterministic, seed-derived delays and yields at grain boundaries.
//
// The executors' results are required to be schedule-independent; the
// perturber makes that property testable by forcing many distinct worker
// interleavings (OCC wave claim orders, speculative overlay completion
// orders, caller-runs vs helper-runs races) out of one binary, one seed
// per interleaving family.
#pragma once

#include <cstdint>

namespace txconc::conformance {

/// What the perturber does at one grain boundary.
enum class PerturbAction : unsigned {
  kNone = 0,
  kYield,       ///< std::this_thread::yield()
  kShortSleep,  ///< 1-5 us: reorders adjacent grain claims
  kLongSleep,   ///< 20-100 us: lets whole waves drain past this thread
};

struct Perturbation {
  PerturbAction action = PerturbAction::kNone;
  unsigned micros = 0;  ///< Sleep length for the sleep actions.
};

/// The pure delay schedule: what happens at the k-th grain boundary under
/// a given seed. Exposed separately from the installer so determinism is
/// directly testable.
Perturbation perturbation_for(std::uint64_t seed, std::uint64_t grain_seq);

/// RAII installer of the process-wide ThreadPool grain hook. While alive,
/// every grain of every pool follows the seeded schedule above. At most
/// one perturber may be alive at a time, and pools must be idle at
/// (de)installation — the conformance oracle scopes one per run.
class SchedulePerturber {
 public:
  explicit SchedulePerturber(std::uint64_t seed);
  ~SchedulePerturber();

  SchedulePerturber(const SchedulePerturber&) = delete;
  SchedulePerturber& operator=(const SchedulePerturber&) = delete;
};

}  // namespace txconc::conformance
