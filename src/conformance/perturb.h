// Seeded schedule perturber: a ThreadPool grain hook that injects
// deterministic, seed-derived delays and yields at grain boundaries.
//
// The executors' results are required to be schedule-independent; the
// perturber makes that property testable by forcing many distinct worker
// interleavings (OCC wave claim orders, speculative overlay completion
// orders, caller-runs vs helper-runs races) out of one binary, one seed
// per interleaving family.
#pragma once

#include <cstdint>

#include "common/thread_annotations.h"
#include "exec/thread_pool.h"

namespace txconc::conformance {

/// What the perturber does at one grain boundary.
enum class PerturbAction : unsigned {
  kNone = 0,
  kYield,       ///< std::this_thread::yield()
  kShortSleep,  ///< 1-5 us: reorders adjacent grain claims
  kLongSleep,   ///< 20-100 us: lets whole waves drain past this thread
};

struct Perturbation {
  PerturbAction action = PerturbAction::kNone;
  unsigned micros = 0;  ///< Sleep length for the sleep actions.
};

/// The pure delay schedule: what happens at the k-th grain boundary under
/// a given seed. Exposed separately from the installer so determinism is
/// directly testable.
Perturbation perturbation_for(std::uint64_t seed, std::uint64_t grain_seq);

/// What one perturber injected while installed. Lets tests assert the
/// perturbation actually exercised schedules (a wired-but-dead hook would
/// silently weaken every conformance sweep).
struct PerturbStats {
  std::uint64_t grains_seen = 0;
  std::uint64_t yields = 0;
  std::uint64_t sleeps = 0;
  std::uint64_t slept_micros = 0;
};

/// RAII installer of the process-wide ThreadPool grain hook. While alive,
/// every grain of every pool follows the seeded schedule above; the
/// underlying GrainHookGuard restores whatever hook was installed before,
/// so nested perturbers compose and a grid that unwinds through a test
/// failure can never leak perturbation into later tests or benches. Pools
/// must be idle at (de)installation — the conformance oracle scopes one
/// per run.
class SchedulePerturber {
 public:
  explicit SchedulePerturber(std::uint64_t seed);
  ~SchedulePerturber() = default;

  SchedulePerturber(const SchedulePerturber&) = delete;
  SchedulePerturber& operator=(const SchedulePerturber&) = delete;

  /// Snapshot of the actions injected so far. The counters are written by
  /// every pool thread that claims a grain, so they live behind a Mutex
  /// (the hook path is test-only; contention is irrelevant there).
  PerturbStats stats() const;

 private:
  void record(const Perturbation& p);

  static exec::ThreadPool::GrainHook make_hook(SchedulePerturber* self,
                                               std::uint64_t seed);

  mutable Mutex mu_;
  PerturbStats stats_ GUARDED_BY(mu_);
  // Declared last: installs the hook only after mu_/stats_ are live.
  exec::ThreadPool::GrainHookGuard guard_;
};

}  // namespace txconc::conformance
