#include "conformance/differential.h"

#include <cctype>
#include <sstream>

#include "account/state.h"
#include "audit/auditor.h"
#include "common/error.h"
#include "conformance/fault.h"
#include "conformance/perturb.h"
#include "exec/executor.h"
#include "exec/replay.h"
#include "workload/profiles.h"

namespace txconc::conformance {

namespace {

/// "Ethereum Classic" -> "ethereum_classic".
std::string normalize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out.push_back(c == ' ' ? '_'
                           : static_cast<char>(std::tolower(
                                 static_cast<unsigned char>(c))));
  }
  return out;
}

/// Compare one block's receipts and post-states; empty string on match.
std::string compare_block(const exec::ExecutionReport& want,
                          const exec::ExecutionReport& got,
                          const account::StateDb& want_state,
                          const account::StateDb& got_state) {
  std::ostringstream detail;
  if (want.receipts.size() != got.receipts.size()) {
    detail << "receipt count mismatch: sequential=" << want.receipts.size()
           << " got=" << got.receipts.size();
    return detail.str();
  }
  for (std::size_t i = 0; i < want.receipts.size(); ++i) {
    const account::Receipt& w = want.receipts[i];
    const account::Receipt& g = got.receipts[i];
    const char* field = nullptr;
    if (w.success != g.success) field = "success";
    else if (w.gas_used != g.gas_used) field = "gas_used";
    else if (w.return_value != g.return_value) field = "return_value";
    else if (w.error != g.error) field = "error";
    else if (w.logs != g.logs) field = "logs";
    else if (w.created != g.created) field = "created";
    else if (w.internal_txs.size() != g.internal_txs.size()) {
      field = "internal_tx count";
    }
    if (field != nullptr) {
      detail << "receipt " << i << " " << field
             << " mismatch (sequential: success=" << w.success
             << " gas=" << w.gas_used << " error='" << w.error
             << "'; got: success=" << g.success << " gas=" << g.gas_used
             << " error='" << g.error << "')";
      return detail.str();
    }
  }
  // Balance conservation relative to the baseline: identical corpus and
  // top-ups mean the total supply must track sequential exactly.
  if (want_state.total_supply() != got_state.total_supply()) {
    detail << "total supply mismatch: sequential="
           << want_state.total_supply() << " got=" << got_state.total_supply();
    return detail.str();
  }
  if (want_state.digest() != got_state.digest()) {
    detail << "state digest mismatch; diverged accounts:";
    const std::vector<Address> diverged =
        account::diff_accounts(want_state, got_state);
    std::size_t listed = 0;
    for (const Address& addr : diverged) {
      if (++listed > 5) {
        detail << " ... (" << diverged.size() << " total)";
        break;
      }
      detail << " " << addr.to_hex();
    }
    return detail.str();
  }
  return {};
}

/// The cell's profile with the spec's block count and tx scaling applied.
workload::ChainProfile scaled_profile(const RunSpec& spec) {
  workload::ChainProfile profile = profile_by_name(spec.profile);
  if (profile.model != workload::DataModel::kAccount) {
    throw UsageError("conformance oracle needs an account-model profile, '" +
                     spec.profile + "' is UTXO");
  }
  profile.default_blocks = spec.num_blocks;
  if (spec.tx_scale != 1.0) {
    for (workload::EraParams& era : profile.eras) {
      era.txs_per_block *= spec.tx_scale;
    }
  }
  return profile;
}

/// Scopes one auditor block per replayed block.
class AuditObserver final : public exec::BlockObserver {
 public:
  explicit AuditObserver(audit::AccessAuditor& auditor) : auditor_(auditor) {}

  void before_block(std::span<const account::AccountTx> txs,
                    const account::StateDb& state) override {
    auditor_.begin_block(txs, state);
  }
  void after_block(const exec::ExecutionReport& /*report*/) override {
    last_report_ = auditor_.finish_block();
  }

  const audit::AuditReport& last_report() const { return last_report_; }

 private:
  audit::AccessAuditor& auditor_;
  audit::AuditReport last_report_;
};

/// Replay one cell under the auditor; first audit failure, or nullopt.
std::optional<Divergence> run_audit_cell(const RunSpec& spec) {
  const workload::ChainProfile profile = scaled_profile(spec);

  std::optional<SeededFaultInjector> faults;
  if (spec.fault_rate > 0.0) faults.emplace(spec.fault_seed, spec.fault_rate);

  exec::HistoryReplayer replayer(profile, spec.profile_seed);
  if (faults) replayer.set_fault_injector(&*faults);

  audit::AccessAuditor auditor;
  auditor.set_repro_hint(format_spec(spec));
  auditor.set_executor(spec.executor);
  for (const exec::ExecutorSpec& entry : exec::executor_registry()) {
    if (entry.name == spec.executor && entry.multi_version) {
      auditor.set_commit_discipline(audit::CommitDiscipline::kMultiVersion);
    }
  }
  AuditObserver observer(auditor);
  replayer.set_access_recorder(&auditor);
  replayer.set_block_observer(&observer);

  const auto engine = exec::make_executor(spec.executor, spec.threads);
  const SchedulePerturber perturber(spec.schedule_seed);
  for (std::uint64_t block = 0; replayer.remaining() > 0; ++block) {
    replayer.replay_next(*engine);
    const audit::AuditReport& report = observer.last_report();
    // A recorder that never fires would make every check below pass
    // vacuously; treat silence as a failure of the harness itself.
    if (report.transactions_declared > 0 && report.attempts_recorded == 0) {
      return Divergence{spec, block,
                        "audit: recorder saw no execution attempts for " +
                            std::to_string(report.transactions_declared) +
                            " declared transactions (harness miswired?)",
                        repro_command(spec)};
    }
    if (!report.ok()) {
      std::string detail = "audit: " + std::to_string(report.violations.size()) +
                           " violation(s); first: " +
                           to_string(report.violations.front().kind) + " " +
                           report.violations.front().detail;
      return Divergence{spec, block, std::move(detail), repro_command(spec)};
    }
  }
  return std::nullopt;
}

}  // namespace

workload::ChainProfile profile_by_name(const std::string& name) {
  const std::string wanted = normalize(name);
  std::string known;
  for (const workload::ChainProfile& profile : workload::all_profiles()) {
    if (normalize(profile.name) == wanted) return profile;
    if (!known.empty()) known += ", ";
    known += normalize(profile.name);
  }
  throw UsageError("unknown profile '" + name + "' (known: " + known + ")");
}

std::optional<Divergence> run_pair(const RunSpec& spec) {
  const workload::ChainProfile profile = scaled_profile(spec);

  std::optional<SeededFaultInjector> faults;
  if (spec.fault_rate > 0.0) faults.emplace(spec.fault_seed, spec.fault_rate);

  exec::HistoryReplayer baseline(profile, spec.profile_seed);
  exec::HistoryReplayer candidate(profile, spec.profile_seed);
  if (faults) {
    baseline.set_fault_injector(&*faults);
    candidate.set_fault_injector(&*faults);
  }

  const auto sequential = exec::make_executor("sequential", 1);
  const auto engine = exec::make_executor(spec.executor, spec.threads);

  // The perturber shuffles only the candidate's pool scheduling (the
  // sequential baseline never touches a pool), so both replays can run
  // inside its scope, lockstep per block.
  const SchedulePerturber perturber(spec.schedule_seed);
  for (std::uint64_t block = 0; baseline.remaining() > 0; ++block) {
    const exec::ExecutionReport want = baseline.replay_next(*sequential);
    const exec::ExecutionReport got = candidate.replay_next(*engine);
    const std::string detail =
        compare_block(want, got, baseline.state(), candidate.state());
    if (!detail.empty()) {
      return Divergence{spec, block, detail, repro_command(spec)};
    }
  }
  return std::nullopt;
}

GridOutcome run_grid(const GridOptions& options) {
  std::vector<std::string> executors = options.executors;
  if (executors.empty()) {
    for (const exec::ExecutorSpec& spec : exec::executor_registry()) {
      if (spec.parallel) executors.push_back(spec.name);
    }
  }

  GridOutcome outcome;
  for (const std::string& profile : options.profiles) {
    for (const std::string& executor : executors) {
      for (const unsigned threads : options.thread_grid) {
        for (std::uint64_t s = 0; s < options.num_schedule_seeds; ++s) {
          RunSpec spec;
          spec.executor = executor;
          spec.threads = threads;
          spec.profile = profile;
          spec.profile_seed = options.profile_seed;
          spec.schedule_seed = options.schedule_seed_base + s;
          spec.fault_rate = options.fault_rate;
          spec.fault_seed = spec.schedule_seed;
          spec.num_blocks = options.num_blocks;
          spec.tx_scale = options.tx_scale;

          ++outcome.cells;
          outcome.blocks_checked += spec.num_blocks;
          const std::optional<Divergence> divergence = run_pair(spec);
          if (divergence &&
              outcome.divergences.size() < options.max_divergences) {
            outcome.divergences.push_back(*divergence);
          }
        }
      }
    }
  }
  return outcome;
}

GridOutcome run_audit_grid(const GridOptions& options) {
  std::vector<std::string> executors = options.executors;
  if (executors.empty()) {
    // Every registry entry — the sequential baseline must pass the audit
    // trivially (block-ordered, disjoint intervals), so auditing it too
    // is a cheap self-check of the auditor.
    for (const exec::ExecutorSpec& spec : exec::executor_registry()) {
      executors.push_back(spec.name);
    }
  }

  GridOutcome outcome;
  for (const std::string& profile : options.profiles) {
    for (const std::string& executor : executors) {
      for (const unsigned threads : options.thread_grid) {
        for (std::uint64_t s = 0; s < options.num_schedule_seeds; ++s) {
          RunSpec spec;
          spec.executor = executor;
          spec.threads = threads;
          spec.profile = profile;
          spec.profile_seed = options.profile_seed;
          spec.schedule_seed = options.schedule_seed_base + s;
          spec.fault_rate = options.fault_rate;
          spec.fault_seed = spec.schedule_seed;
          spec.num_blocks = options.num_blocks;
          spec.tx_scale = options.tx_scale;

          ++outcome.cells;
          outcome.blocks_checked += spec.num_blocks;
          const std::optional<Divergence> divergence = run_audit_cell(spec);
          if (divergence &&
              outcome.divergences.size() < options.max_divergences) {
            outcome.divergences.push_back(*divergence);
          }
        }
      }
    }
  }
  return outcome;
}

std::string format_spec(const RunSpec& spec) {
  std::ostringstream out;
  out << "executor=" << spec.executor << " threads=" << spec.threads
      << " profile=" << spec.profile << " profile_seed=" << spec.profile_seed
      << " schedule_seed=" << spec.schedule_seed
      << " fault_rate=" << spec.fault_rate
      << " fault_seed=" << spec.fault_seed << " blocks=" << spec.num_blocks
      << " tx_scale=" << spec.tx_scale;
  return out.str();
}

RunSpec parse_spec(const std::string& text) {
  RunSpec spec;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw UsageError("repro spec token without '=': " + token);
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "executor") spec.executor = value;
      else if (key == "threads") spec.threads = static_cast<unsigned>(std::stoul(value));
      else if (key == "profile") spec.profile = value;
      else if (key == "profile_seed") spec.profile_seed = std::stoull(value);
      else if (key == "schedule_seed") spec.schedule_seed = std::stoull(value);
      else if (key == "fault_rate") spec.fault_rate = std::stod(value);
      else if (key == "fault_seed") spec.fault_seed = std::stoull(value);
      else if (key == "blocks") spec.num_blocks = std::stoull(value);
      else if (key == "tx_scale") spec.tx_scale = std::stod(value);
      else throw UsageError("unknown repro spec key: " + key);
    } catch (const std::invalid_argument&) {
      throw UsageError("bad repro spec value for " + key + ": " + value);
    } catch (const std::out_of_range&) {
      throw UsageError("repro spec value out of range for " + key);
    }
  }
  return spec;
}

std::string repro_command(const RunSpec& spec) {
  return exec::format_repro_env(format_spec(spec)) +
         " ./build/tests/conformance_test "
         "--gtest_filter='ReproCommand.ReplaysEnvSpec'";
}

}  // namespace txconc::conformance
