#include "conformance/perturb.h"

#include <chrono>
#include <thread>

#include "common/rng.h"
#include "exec/thread_pool.h"

namespace txconc::conformance {

Perturbation perturbation_for(std::uint64_t seed, std::uint64_t grain_seq) {
  // One splitmix64 draw keyed on (seed, sequence); the golden-ratio
  // multiply decorrelates consecutive sequence numbers.
  std::uint64_t state = seed ^ (grain_seq * 0x9e3779b97f4a7c15ULL) ^
                        0x7e57ab1e5eedULL;
  const std::uint64_t h = splitmix64(state);

  Perturbation p;
  // 3/8 no-op, 2/8 yield, 2/8 short sleep, 1/8 long sleep: enough delay
  // variance to shuffle claim orders without dominating the wall clock.
  switch (h & 7) {
    case 0:
    case 1:
    case 2:
      p.action = PerturbAction::kNone;
      break;
    case 3:
    case 4:
      p.action = PerturbAction::kYield;
      break;
    case 5:
    case 6:
      p.action = PerturbAction::kShortSleep;
      p.micros = 1 + static_cast<unsigned>((h >> 8) % 5);
      break;
    default:
      p.action = PerturbAction::kLongSleep;
      p.micros = 20 + static_cast<unsigned>((h >> 8) % 81);
      break;
  }
  return p;
}

void SchedulePerturber::record(const Perturbation& p) {
  const MutexLock lock(mu_);
  ++stats_.grains_seen;
  switch (p.action) {
    case PerturbAction::kNone:
      break;
    case PerturbAction::kYield:
      ++stats_.yields;
      break;
    case PerturbAction::kShortSleep:
    case PerturbAction::kLongSleep:
      ++stats_.sleeps;
      stats_.slept_micros += p.micros;
      break;
  }
}

PerturbStats SchedulePerturber::stats() const {
  const MutexLock lock(mu_);
  return stats_;
}

exec::ThreadPool::GrainHook SchedulePerturber::make_hook(
    SchedulePerturber* self, std::uint64_t seed) {
  // The hook closure only calls record(), which takes mu_ itself: the
  // thread-safety analysis cannot see a held capability inside a lambda
  // body, so guarded members must never be touched here directly.
  return [self, seed](std::uint64_t grain_seq) {
    const Perturbation p = perturbation_for(seed, grain_seq);
    self->record(p);
    switch (p.action) {
      case PerturbAction::kNone:
        break;
      case PerturbAction::kYield:
        std::this_thread::yield();
        break;
      case PerturbAction::kShortSleep:
      case PerturbAction::kLongSleep:
        std::this_thread::sleep_for(std::chrono::microseconds(p.micros));
        break;
    }
  };
}

SchedulePerturber::SchedulePerturber(std::uint64_t seed)
    : guard_(make_hook(this, seed)) {}

}  // namespace txconc::conformance
