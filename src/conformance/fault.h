// Seed-derived fault plan for the conformance harness.
#pragma once

#include <cstdint>

#include "account/runtime.h"

namespace txconc::conformance {

/// Traps a pseudo-random subset of transactions at a given rate.
///
/// Selection is a pure function of (seed, tx.from, tx.nonce) — the pair
/// that uniquely identifies a transaction within a nonce-enforced block —
/// so every executor, phase and retry of the same transaction reaches the
/// same verdict, and the differential oracle can require that all engines
/// agree on exactly which receipts fail and that the rollback/poisoning
/// paths still converge on the sequential state.
class SeededFaultInjector final : public account::FaultInjector {
 public:
  /// @param rate  probability in [0, 1] that a transaction traps.
  SeededFaultInjector(std::uint64_t seed, double rate);

  bool should_trap(const account::AccountTx& tx) const override;

 private:
  std::uint64_t seed_;
  std::uint64_t threshold_;  ///< Trap when the keyed hash falls below this.
};

}  // namespace txconc::conformance
