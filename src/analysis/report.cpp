#include "analysis/report.h"

#include <algorithm>

#include "common/error.h"
#include "common/fmt.h"

namespace txconc::analysis {

TextTable::TextTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) throw UsageError("TextTable: no columns");
}

void TextTable::row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw UsageError("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(columns_);
  std::size_t rule = 0;
  for (const std::size_t w : widths) rule += w + 2;
  out.append(rule > 2 ? rule - 2 : rule, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

void print_panel(std::ostream& out, const std::string& title,
                 const std::vector<LabelledSeries>& series,
                 const PlotOptions& options, bool dump_values) {
  out << "== " << title << " ==\n";
  PlotOptions with_title = options;
  with_title.title = title;
  out << render_plot(series, with_title);
  if (dump_values) {
    out << "  series values (position, value):\n";
    for (const LabelledSeries& s : series) {
      out << "  " << s.label << ":";
      for (const SeriesPoint& p : s.points) {
        out << strfmt(" (%.4g, %.4g)", p.position, p.value);
      }
      out << "\n";
    }
  }
  out << "\n";
}

std::string fmt_double(double v, int decimals) {
  return strfmt("%.*f", decimals, v);
}

}  // namespace txconc::analysis
