#include "analysis/paper_reference.h"

#include <algorithm>

#include "common/error.h"

namespace txconc::analysis {

double ReferenceSeries::at(double year) const {
  if (points.empty()) throw UsageError("empty reference series");
  if (year <= points.front().year) return points.front().value;
  if (year >= points.back().year) return points.back().value;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (year <= points[i].year) {
      const ReferencePoint& lo = points[i - 1];
      const ReferencePoint& hi = points[i];
      const double t = (year - lo.year) / (hi.year - lo.year);
      return lo.value + t * (hi.value - lo.value);
    }
  }
  return points.back().value;
}

std::vector<ChainTargets> chain_targets() {
  return {
      // chain           single  tol    group  tol    txs/blk (late)
      {"Bitcoin",          0.14, 0.06,  0.015, 0.015, 2200},
      {"Bitcoin Cash",     0.30, 0.15,  0.07,  0.06,  180},
      {"Litecoin",         0.10, 0.07,  0.05,  0.04,  80},
      {"Dogecoin",         0.13, 0.08,  0.07,  0.06,  35},
      {"Ethereum",         0.60, 0.10,  0.20,  0.09,  110},
      {"Ethereum Classic", 0.80, 0.12,  0.70,  0.15,  8},
      {"Zilliqa",          0.90, 0.10,  0.80,  0.15,  25},
  };
}

ReferenceSeries ethereum_single_rate_reference() {
  return {"Fig. 4b (tx-weighted)",
          "Ethereum",
          {{2016.0, 0.80},
           {2017.0, 0.78},
           {2018.0, 0.68},
           {2019.0, 0.62},
           {2019.5, 0.60}}};
}

ReferenceSeries ethereum_group_rate_reference() {
  return {"Fig. 4c (tx-weighted)",
          "Ethereum",
          {{2016.0, 0.50},
           {2017.0, 0.38},
           {2018.0, 0.22},
           {2019.0, 0.20},
           {2019.5, 0.20}}};
}

ReferenceSeries bitcoin_single_rate_reference() {
  return {"Fig. 5b",
          "Bitcoin",
          {{2010.0, 0.05},
           {2012.0, 0.08},
           {2014.0, 0.10},
           {2016.0, 0.12},
           {2018.0, 0.14},
           {2019.5, 0.14}}};
}

ReferenceSeries bitcoin_group_rate_reference() {
  return {"Fig. 5c",
          "Bitcoin",
          {{2010.0, 0.02},
           {2012.0, 0.015},
           {2014.0, 0.012},
           {2016.0, 0.010},
           {2019.5, 0.010}}};
}

HeadlineNumbers headline_numbers() { return {}; }

}  // namespace txconc::analysis
