// History sweeps: run a generator to completion, analyze every block, and
// bucket the metrics exactly as the paper prepares its figures
// ("dividing these histories into fixed-size buckets for which we compute
// weighted averages", Section IV).
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "core/metrics.h"
#include "workload/history.h"

namespace txconc::analysis {

/// All bucketed series for one chain history, named after the figure
/// panels they feed.
struct ChainSeries {
  std::string chain;
  double start_year = 0.0;
  double end_year = 0.0;
  std::uint64_t blocks = 0;

  /// Mean regular transactions per block (Figs. 4a, 5a, 8a, 9a).
  std::vector<SeriesPoint> regular_txs;
  /// Regular plus internal transactions (the "all TXs" curve of Fig. 4a).
  std::vector<SeriesPoint> total_txs;
  /// Input TXOs per block (UTXO chains; Fig. 5a).
  std::vector<SeriesPoint> input_txos;

  /// Single-transaction conflict rate, blocks weighted by tx count.
  std::vector<SeriesPoint> single_rate_txw;
  /// Single-transaction conflict rate, gas-weighted within and across
  /// blocks (account chains only; thin line of Fig. 4b).
  std::vector<SeriesPoint> single_rate_gasw;
  /// Group conflict rate, tx-weighted.
  std::vector<SeriesPoint> group_rate_txw;
  /// Group conflict rate, gas-weighted.
  std::vector<SeriesPoint> group_rate_gasw;
  /// Absolute LCC size (Fig. 9c).
  std::vector<SeriesPoint> abs_lcc;

  // Whole-history aggregates (tx-weighted), used for calibration checks
  // and the summary tables.
  double overall_single_rate = 0.0;
  double overall_group_rate = 0.0;
  double overall_single_rate_gasw = 0.0;
  double overall_group_rate_gasw = 0.0;
  double mean_txs_per_block = 0.0;
  std::uint64_t total_transactions = 0;
  std::uint64_t total_internal = 0;

  /// Convert a series' positions from block heights to years for display.
  std::vector<SeriesPoint> in_years(const std::vector<SeriesPoint>& s) const;
};

struct CollectOptions {
  std::size_t num_buckets = 40;  ///< The paper uses 20 to 200.
  /// Include internal transactions in the account TDG (true = the paper's
  /// full analysis; false = the "approximate TDG" of Section V-C).
  bool include_internal = true;
};

/// Run the generator to completion and collect every series.
ChainSeries collect_series(workload::HistoryGenerator& generator,
                           const CollectOptions& options = {});

}  // namespace txconc::analysis
