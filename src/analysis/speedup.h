// Speed-up series: Figure 10's computation as a library — combine a
// chain's bucketed conflict-rate series with the Section V closed forms.
#pragma once

#include "analysis/series.h"

namespace txconc::analysis {

/// The Figure 10 curves for one core count.
struct SpeedupSeries {
  unsigned cores = 0;
  /// Equation (1) applied bucket-by-bucket to the single-transaction
  /// conflict rate and the mean block size.
  std::vector<SeriesPoint> speculative;
  /// Equation (2) applied to the group conflict rate.
  std::vector<SeriesPoint> group;
  /// The perfect-information variant (Section V-A, K = 0): conflicted
  /// transactions are known up front and execute exactly once.
  std::vector<SeriesPoint> oracle;
};

/// Aggregates over a (suffix of a) speed-up curve.
struct SpeedupSummary {
  double mean = 1.0;
  double peak = 1.0;
};

/// Compute both model curves from a collected history.
SpeedupSeries compute_speedup_series(const ChainSeries& series,
                                     unsigned cores);

/// Mean/peak over the last `fraction` of a curve (Fig. 10's headline
/// numbers use the late history).
SpeedupSummary summarize_late(const std::vector<SeriesPoint>& curve,
                              double fraction = 0.25);

}  // namespace txconc::analysis
