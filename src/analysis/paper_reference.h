// Reference values digitized from the paper's figures, used by the bench
// binaries to print paper-vs-measured comparisons and by the calibration
// tests to keep the workload profiles honest.
//
// Values are approximate anchor points read off the published plots; each
// comes with the tolerance the calibration tests assert.
#pragma once

#include <string>
#include <vector>

namespace txconc::analysis {

/// One digitized anchor point of a paper figure.
struct ReferencePoint {
  double year;
  double value;
};

/// A digitized curve from one figure panel.
struct ReferenceSeries {
  std::string figure;  ///< e.g. "Fig. 4b (tx-weighted)"
  std::string chain;
  std::vector<ReferencePoint> points;

  /// Linear interpolation at a year (clamped at the ends).
  double at(double year) const;
};

/// Whole-history summary targets per chain (tx-weighted), used by the
/// calibration tests. Tolerances are generous: the goal is the paper's
/// *shape* (who is high, who is low, what the trend is), not pixel-perfect
/// curve matching.
struct ChainTargets {
  std::string chain;
  double single_rate_late;       ///< Rate near the end of the history.
  double single_rate_tolerance;
  double group_rate_late;
  double group_rate_tolerance;
  double txs_per_block_late;     ///< Regular txs near the end.
};

/// Targets for all seven chains (Table I order).
std::vector<ChainTargets> chain_targets();

/// Ethereum single-transaction conflict rate over time (Fig. 4b).
ReferenceSeries ethereum_single_rate_reference();
/// Ethereum group conflict rate over time (Fig. 4c).
ReferenceSeries ethereum_group_rate_reference();
/// Bitcoin single-transaction conflict rate over time (Fig. 5b).
ReferenceSeries bitcoin_single_rate_reference();
/// Bitcoin group conflict rate over time (Fig. 5c).
ReferenceSeries bitcoin_group_rate_reference();

/// The paper's headline numbers (abstract / Section V-C).
struct HeadlineNumbers {
  double ethereum_group_speedup_8_cores = 6.0;   ///< "up to 6x with 8 cores"
  double ethereum_group_speedup_64_cores = 8.0;  ///< "8x with 64 cores"
  double ethereum_single_rate = 0.6;   ///< "single-transaction ... ~60%"
  double ethereum_group_rate = 0.2;    ///< "group conflict rate ~20%"
  double bitcoin_single_rate = 0.13;   ///< "~13%"
};

HeadlineNumbers headline_numbers();

}  // namespace txconc::analysis
