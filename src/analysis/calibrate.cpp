#include "analysis/calibrate.h"

#include "analysis/block_analyzer.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"
#include "workload/account_workload.h"
#include "workload/utxo_workload.h"

namespace txconc::analysis {

namespace {

struct Measured {
  double single_rate = 0.0;
  double group_rate = 0.0;
  /// Mean transactions and mean LCC (in transactions) per era window.
  std::vector<double> era_txs;
  double mean_lcc = 1.0;
};

Measured measure_dataset(const Dataset& dataset, unsigned num_eras) {
  const std::vector<core::ConflictStats> per_block = analyze_dataset(dataset);
  if (per_block.empty()) throw UsageError("fit_profile: empty dataset");

  Measured out;
  WeightedMean single;
  WeightedMean group;
  RunningStats lcc;
  std::vector<RunningStats> era_txs(num_eras);

  for (std::size_t h = 0; h < per_block.size(); ++h) {
    const core::ConflictStats& stats = per_block[h];
    const std::size_t era =
        std::min<std::size_t>(h * num_eras / per_block.size(), num_eras - 1);
    era_txs[era].add(static_cast<double>(stats.total_transactions));
    if (stats.total_transactions == 0) continue;
    const double weight = static_cast<double>(stats.total_transactions);
    single.add(stats.single_rate(), weight);
    group.add(stats.group_rate(), weight);
    lcc.add(static_cast<double>(stats.lcc_transactions));
  }
  out.single_rate = single.mean();
  out.group_rate = group.mean();
  out.mean_lcc = std::max(1.0, lcc.mean());
  for (auto& stats : era_txs) {
    out.era_txs.push_back(std::max(1.0, stats.mean()));
  }
  return out;
}

/// Generate a short history from the candidate and measure its rates.
std::pair<double, double> evaluate(const workload::ChainProfile& profile,
                                   std::uint64_t blocks, std::uint64_t seed) {
  std::unique_ptr<workload::HistoryGenerator> generator;
  if (profile.model == workload::DataModel::kUtxo) {
    generator = std::make_unique<workload::UtxoWorkloadGenerator>(
        profile, seed, blocks);
  } else {
    generator = std::make_unique<workload::AccountWorkloadGenerator>(
        profile, seed, blocks);
  }
  WeightedMean single;
  WeightedMean group;
  for (std::uint64_t h = 0; h < blocks; ++h) {
    const workload::GeneratedBlock block = generator->next_block();
    const std::size_t n = block.num_regular_txs();
    if (n == 0) continue;
    core::ConflictStats stats;
    if (block.model == workload::DataModel::kUtxo) {
      stats = analyze_utxo_block(block.utxo_txs);
    } else {
      stats = analyze_account_block(block.account_txs, block.receipts);
    }
    single.add(stats.single_rate(), static_cast<double>(n));
    group.add(stats.group_rate(), static_cast<double>(n));
  }
  return {single.mean(), group.mean()};
}

double clamp_ratio(double ratio) { return std::clamp(ratio, 0.6, 1.7); }

}  // namespace

FitResult fit_profile(const Dataset& dataset, const FitOptions& options) {
  if (options.num_eras == 0 || options.eval_blocks == 0) {
    throw UsageError("fit_profile: bad options");
  }
  const Measured measured = measure_dataset(dataset, options.num_eras);

  FitResult result;
  result.source_single_rate = measured.single_rate;
  result.source_group_rate = measured.group_rate;

  // ---- Skeleton profile with heuristic knob seeds.
  workload::ChainProfile profile;
  profile.name = dataset.chain + " (fitted)";
  profile.model = dataset.model;
  profile.default_blocks = std::max<std::uint64_t>(dataset.num_blocks, 10);

  for (unsigned e = 0; e < options.num_eras; ++e) {
    workload::EraParams era;
    era.position = options.num_eras == 1
                       ? static_cast<double>(e)
                       : static_cast<double>(e) /
                             static_cast<double>(options.num_eras - 1);
    era.txs_per_block = measured.era_txs[e];
    if (dataset.model == workload::DataModel::kUtxo) {
      // Each in-block chain spend conflicts roughly two transactions.
      era.chain_spend_prob = std::clamp(measured.single_rate / 2.2, 0.0, 0.4);
      // Sweep chains reproduce the observed mean LCC length.
      era.sweeps_per_block = 0.5;
      era.sweep_continue_prob =
          std::clamp(1.0 - 1.0 / std::max(2.0, measured.mean_lcc), 0.3, 0.97);
    } else {
      // The group rate is driven by cross-category bridging, the single
      // rate by exchange fan-in; both get refined below.
      era.population_overlap = std::clamp(measured.group_rate * 1.1, 0.02, 0.95);
      era.exchange_share = std::clamp(measured.single_rate * 0.45, 0.05, 0.6);
      era.num_users = std::clamp(
          era.txs_per_block * 40.0 * (1.0 - measured.single_rate) + 30.0,
          30.0, 100000.0);
      era.contract_share = 0.15;
      era.pool_share = 0.05;
      era.creation_share = 0.01;
    }
    profile.eras.push_back(era);
  }

  // ---- Refine the dominant knobs against short generated histories.
  for (unsigned iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    const auto [single, group] =
        evaluate(profile, options.eval_blocks, options.seed);
    result.fitted_single_rate = single;
    result.fitted_group_rate = group;
    result.iterations = iteration + 1;

    const bool single_ok =
        std::abs(single - measured.single_rate) <= options.tolerance;
    const bool group_ok =
        std::abs(group - measured.group_rate) <= options.tolerance;
    if (single_ok && group_ok) break;

    const double single_ratio =
        clamp_ratio((measured.single_rate + 0.01) / (single + 0.01));
    const double group_ratio =
        clamp_ratio((measured.group_rate + 0.01) / (group + 0.01));
    for (workload::EraParams& era : profile.eras) {
      if (dataset.model == workload::DataModel::kUtxo) {
        era.chain_spend_prob =
            std::clamp(era.chain_spend_prob * single_ratio, 0.0, 0.45);
        era.sweeps_per_block =
            std::clamp(era.sweeps_per_block * group_ratio, 0.0, 5.0);
      } else {
        era.exchange_share =
            std::clamp(era.exchange_share * single_ratio, 0.02, 0.65);
        era.population_overlap =
            std::clamp(era.population_overlap * group_ratio, 0.02, 0.95);
        // A too-low single rate also responds to population size.
        if (single_ratio > 1.2) {
          era.num_users = std::max(30.0, era.num_users / 1.5);
        } else if (single_ratio < 0.8) {
          era.num_users = std::min(100000.0, era.num_users * 1.5);
        }
      }
    }
  }

  result.profile = std::move(profile);
  return result;
}

}  // namespace txconc::analysis
