#include "analysis/series.h"

#include "analysis/block_analyzer.h"
#include "common/error.h"

namespace txconc::analysis {

std::vector<SeriesPoint> ChainSeries::in_years(
    const std::vector<SeriesPoint>& s) const {
  std::vector<SeriesPoint> out = s;
  const double span = blocks > 1 ? static_cast<double>(blocks - 1) : 1.0;
  for (SeriesPoint& p : out) {
    p.position = start_year + (p.position / span) * (end_year - start_year);
  }
  return out;
}

ChainSeries collect_series(workload::HistoryGenerator& generator,
                           const CollectOptions& options) {
  const workload::ChainProfile& profile = generator.profile();
  const std::uint64_t blocks = generator.num_blocks();
  if (blocks == 0) throw UsageError("collect_series: empty history");

  ChainSeries out;
  out.chain = profile.name;
  out.start_year = profile.start_year;
  out.end_year = profile.end_year;
  out.blocks = blocks;

  const std::uint64_t last = blocks - 1;
  Bucketizer regular_txs(options.num_buckets, 0, last);
  Bucketizer total_txs(options.num_buckets, 0, last);
  Bucketizer input_txos(options.num_buckets, 0, last);
  Bucketizer single_txw(options.num_buckets, 0, last);
  Bucketizer single_gasw(options.num_buckets, 0, last);
  Bucketizer group_txw(options.num_buckets, 0, last);
  Bucketizer group_gasw(options.num_buckets, 0, last);
  Bucketizer abs_lcc(options.num_buckets, 0, last);

  WeightedMean overall_single;
  WeightedMean overall_group;
  WeightedMean overall_single_gas;
  WeightedMean overall_group_gas;
  RunningStats txs_per_block;

  for (std::uint64_t h = 0; h < blocks; ++h) {
    const workload::GeneratedBlock block = generator.next_block();
    const std::size_t regular = block.num_regular_txs();
    const std::size_t total = block.num_total_txs();

    regular_txs.add(h, static_cast<double>(regular), 1.0);
    total_txs.add(h, static_cast<double>(total), 1.0);
    txs_per_block.add(static_cast<double>(regular));
    out.total_transactions += regular;
    out.total_internal += total - regular;

    core::ConflictStats stats;
    if (block.model == workload::DataModel::kUtxo) {
      stats = analyze_utxo_block(block.utxo_txs);
      input_txos.add(h, static_cast<double>(block.num_input_txos), 1.0);
    } else {
      stats = analyze_account_block(block.account_txs, block.receipts,
                                    options.include_internal);
    }

    if (regular == 0) continue;
    const double tx_weight = static_cast<double>(regular);
    const double gas_weight = static_cast<double>(block.gas_used);

    single_txw.add(h, stats.single_rate(), tx_weight);
    group_txw.add(h, stats.group_rate(), tx_weight);
    abs_lcc.add(h, static_cast<double>(stats.lcc_transactions), 1.0);
    overall_single.add(stats.single_rate(), tx_weight);
    overall_group.add(stats.group_rate(), tx_weight);

    if (block.model == workload::DataModel::kAccount && gas_weight > 0.0) {
      single_gasw.add(h, stats.weighted_single_rate(), gas_weight);
      group_gasw.add(h, stats.weighted_group_rate(), gas_weight);
      overall_single_gas.add(stats.weighted_single_rate(), gas_weight);
      overall_group_gas.add(stats.weighted_group_rate(), gas_weight);
    }
  }

  out.regular_txs = regular_txs.series();
  out.total_txs = total_txs.series();
  out.input_txos = input_txos.series();
  out.single_rate_txw = single_txw.series();
  out.single_rate_gasw = single_gasw.series();
  out.group_rate_txw = group_txw.series();
  out.group_rate_gasw = group_gasw.series();
  out.abs_lcc = abs_lcc.series();

  out.overall_single_rate = overall_single.mean();
  out.overall_group_rate = overall_group.mean();
  out.overall_single_rate_gasw = overall_single_gas.mean();
  out.overall_group_rate_gasw = overall_group_gas.mean();
  out.mean_txs_per_block = txs_per_block.mean();
  return out;
}

}  // namespace txconc::analysis
