// Text report helpers shared by the bench binaries: fixed-width tables and
// figure-panel rendering (series + ASCII plot + CSV dump).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/ascii_plot.h"
#include "common/stats.h"

namespace txconc::analysis {

/// Fixed-width text table builder.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> columns);

  void row(std::vector<std::string> cells);

  /// Render with a header rule, columns padded to their widest cell.
  std::string render() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render one figure panel: title, ASCII plot of the series, and the
/// series values as CSV-ish rows for machine consumption.
void print_panel(std::ostream& out, const std::string& title,
                 const std::vector<LabelledSeries>& series,
                 const PlotOptions& options, bool dump_values = true);

/// Round to a fixed number of decimals as a string.
std::string fmt_double(double v, int decimals = 3);

}  // namespace txconc::analysis
