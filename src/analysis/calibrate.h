// Profile fitting: the inverse of the workload generators. Given a
// dataset (exported by this library, or your own chain's data shaped the
// same way), estimate a ChainProfile whose generated histories reproduce
// the dataset's transaction load and conflict rates.
//
// This automates the loop used to calibrate the seven shipped profiles:
// measure the dataset per era, seed the behavioural knobs from closed-form
// heuristics, then refine the dominant knobs against short generated
// histories until the rates converge.
#pragma once

#include "analysis/dataset.h"
#include "workload/profile.h"

namespace txconc::analysis {

/// What the fitter measured and produced.
struct FitResult {
  workload::ChainProfile profile;
  /// Tx-weighted rates measured from the source dataset.
  double source_single_rate = 0.0;
  double source_group_rate = 0.0;
  /// Rates of a short history generated from the fitted profile.
  double fitted_single_rate = 0.0;
  double fitted_group_rate = 0.0;
  /// Refinement iterations spent.
  unsigned iterations = 0;
};

struct FitOptions {
  /// Era points in the fitted profile.
  unsigned num_eras = 4;
  /// Blocks generated per refinement evaluation.
  std::uint64_t eval_blocks = 60;
  /// Maximum refinement iterations.
  unsigned max_iterations = 8;
  /// Stop refining once both rates are within this of the source.
  double tolerance = 0.05;
  /// Seed for the evaluation generator.
  std::uint64_t seed = 1;
};

/// Fit a profile to a dataset. Works for both data models; throws
/// UsageError on an empty dataset.
FitResult fit_profile(const Dataset& dataset, const FitOptions& options = {});

}  // namespace txconc::analysis
