// Per-block conflict analysis: the C++ equivalent of the paper's SQL +
// JavaScript UDF pipeline (Figures 2 and 3).
#pragma once

#include <span>

#include "account/types.h"
#include "core/metrics.h"
#include "core/tdg.h"
#include "utxo/transaction.h"

namespace txconc::analysis {

/// UTXO-model TDG: one node per non-coinbase transaction, an edge a -> b
/// whenever a TXO created by a is spent by b within the same block.
core::KeyedTdg<Hash256> build_utxo_tdg(
    std::span<const utxo::Transaction> transactions);

/// Conflict stats of a UTXO block (coinbase excluded). Optional weights are
/// per non-coinbase transaction, in block order (e.g. byte sizes).
core::ConflictStats analyze_utxo_block(
    std::span<const utxo::Transaction> transactions,
    std::span<const double> weights = {});

/// Account-model TDG: one node per referenced address; edges for every
/// regular transaction (sender -> receiver) and every internal transaction
/// from the execution traces.
struct AccountTdg {
  core::KeyedTdg<Address> addresses;
  /// One entry per regular transaction, referencing interned address ids;
  /// weight carries the transaction's gas.
  std::vector<core::AccountTxRef> tx_refs;
};

/// @param include_internal  when false, builds the approximate TDG the
/// paper's Section V-C mentions ("an approximate TDG can be constructed by
/// only using information about the regular transactions").
AccountTdg build_account_tdg(std::span<const account::AccountTx> transactions,
                             std::span<const account::Receipt> receipts,
                             bool include_internal = true);

/// Conflict stats of an account block; weighted metrics use per-tx gas.
core::ConflictStats analyze_account_block(
    std::span<const account::AccountTx> transactions,
    std::span<const account::Receipt> receipts,
    bool include_internal = true);

/// Storage-slot-granularity conflict stats (the definition of Saraph &
/// Herlihy [17]): transactions conflict when one writes a slot another
/// reads or writes. The paper argues this finds *fewer* conflicted pairs
/// than address granularity for same-address/different-slot traffic, but
/// cannot see group structure; the ablation bench quantifies the gap.
core::ConflictStats analyze_account_block_slots(
    std::span<const account::AccountTx> transactions,
    std::span<const account::Receipt> receipts);

}  // namespace txconc::analysis
