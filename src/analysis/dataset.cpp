#include "analysis/dataset.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "analysis/block_analyzer.h"
#include "common/error.h"
#include "core/components.h"

namespace txconc::analysis {

namespace {

std::vector<std::string> split(const std::string& line, char sep = ',') {
  std::vector<std::string> out;
  std::string cell;
  std::istringstream in(line);
  while (std::getline(in, cell, sep)) {
    out.push_back(cell);
  }
  return out;
}

std::uint64_t to_u64(const std::string& s) {
  try {
    return std::stoull(s);
  } catch (const std::exception&) {
    throw ParseError("dataset: bad integer '" + s + "'");
  }
}

}  // namespace

Dataset export_dataset(workload::HistoryGenerator& generator) {
  Dataset out;
  out.chain = generator.profile().name;
  out.model = generator.profile().model;
  out.num_blocks = generator.num_blocks();

  for (std::uint64_t h = 0; h < out.num_blocks; ++h) {
    const workload::GeneratedBlock block = generator.next_block();
    out.txs_per_block.push_back(
        static_cast<std::uint32_t>(block.num_regular_txs()));

    if (block.model == workload::DataModel::kUtxo) {
      for (const utxo::Transaction& tx : block.utxo_txs) {
        if (tx.is_coinbase()) {
          out.utxo_inputs.push_back({h, tx.txid(), Hash256{}, 0, true});
          continue;
        }
        for (const utxo::TxInput& in : tx.inputs()) {
          out.utxo_inputs.push_back(
              {h, tx.txid(), in.prevout.txid, in.prevout.index, false});
        }
      }
    } else {
      for (std::size_t i = 0; i < block.account_txs.size(); ++i) {
        const account::AccountTx& tx = block.account_txs[i];
        const account::Receipt& receipt = block.receipts[i];
        AccountRow row;
        row.block_number = h;
        row.tx_index = i;
        row.sender = tx.from;
        row.receiver = tx.to.has_value()
                           ? *tx.to
                           : receipt.created.value_or(
                                 Address::derive_contract(tx.from, tx.nonce));
        row.value = tx.value;
        row.gas_used = receipt.gas_used;
        row.creation = tx.is_creation();
        out.account_rows.push_back(row);

        for (const account::InternalTx& itx : receipt.internal_txs) {
          AccountRow trace;
          trace.block_number = h;
          trace.tx_index = i;
          trace.sender = itx.from;
          trace.receiver = itx.to;
          trace.value = itx.value;
          trace.internal = true;
          out.account_rows.push_back(trace);
        }
      }
    }
  }
  return out;
}

void write_csv(std::ostream& out, const Dataset& dataset) {
  out << "# txconc-dataset v1\n";
  out << "# chain," << dataset.chain << "\n";
  out << "# model,"
      << (dataset.model == workload::DataModel::kUtxo ? "utxo" : "account")
      << "\n";
  out << "# blocks," << dataset.num_blocks << "\n";
  out << "# txs_per_block";
  for (std::uint32_t n : dataset.txs_per_block) out << ',' << n;
  out << "\n";

  if (dataset.model == workload::DataModel::kUtxo) {
    out << "block_number,tx_hash,spent_tx_hash,spent_index,coinbase\n";
    for (const UtxoInputRow& row : dataset.utxo_inputs) {
      out << row.block_number << ',' << row.tx_hash.to_hex() << ','
          << row.spent_tx_hash.to_hex() << ',' << row.spent_index << ','
          << (row.coinbase ? 1 : 0) << "\n";
    }
  } else {
    out << "block_number,tx_index,sender,receiver,value,gas_used,internal,"
           "creation\n";
    for (const AccountRow& row : dataset.account_rows) {
      out << row.block_number << ',' << row.tx_index << ','
          << row.sender.to_hex() << ',' << row.receiver.to_hex() << ','
          << row.value << ',' << row.gas_used << ','
          << (row.internal ? 1 : 0) << ',' << (row.creation ? 1 : 0) << "\n";
    }
  }
}

Dataset read_csv(std::istream& in) {
  Dataset out;
  std::string line;
  if (!std::getline(in, line) || line != "# txconc-dataset v1") {
    throw ParseError("dataset: missing magic header");
  }
  // Metadata lines.
  bool have_model = false;
  while (in.peek() == '#') {
    std::getline(in, line);
    const auto cells = split(line.substr(2));
    if (cells.empty()) throw ParseError("dataset: bad metadata line");
    if (cells[0] == "chain" && cells.size() >= 2) {
      out.chain = cells[1];
    } else if (cells[0] == "model" && cells.size() >= 2) {
      if (cells[1] == "utxo") {
        out.model = workload::DataModel::kUtxo;
      } else if (cells[1] == "account") {
        out.model = workload::DataModel::kAccount;
      } else {
        throw ParseError("dataset: unknown model " + cells[1]);
      }
      have_model = true;
    } else if (cells[0] == "blocks" && cells.size() >= 2) {
      out.num_blocks = to_u64(cells[1]);
    } else if (cells[0] == "txs_per_block") {
      for (std::size_t i = 1; i < cells.size(); ++i) {
        out.txs_per_block.push_back(
            static_cast<std::uint32_t>(to_u64(cells[i])));
      }
    }
  }
  if (!have_model) throw ParseError("dataset: missing model metadata");

  // Column header.
  if (!std::getline(in, line)) throw ParseError("dataset: missing header");

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto cells = split(line);
    if (out.model == workload::DataModel::kUtxo) {
      if (cells.size() != 5) throw ParseError("dataset: bad utxo row");
      UtxoInputRow row;
      row.block_number = to_u64(cells[0]);
      row.tx_hash = Hash256::from_hex(cells[1]);
      row.spent_tx_hash = Hash256::from_hex(cells[2]);
      row.spent_index = static_cast<std::uint32_t>(to_u64(cells[3]));
      row.coinbase = cells[4] == "1";
      out.utxo_inputs.push_back(row);
    } else {
      if (cells.size() != 8) throw ParseError("dataset: bad account row");
      AccountRow row;
      row.block_number = to_u64(cells[0]);
      row.tx_index = to_u64(cells[1]);
      row.sender = Address::from_hex(cells[2]);
      row.receiver = Address::from_hex(cells[3]);
      row.value = to_u64(cells[4]);
      row.gas_used = to_u64(cells[5]);
      row.internal = cells[6] == "1";
      row.creation = cells[7] == "1";
      out.account_rows.push_back(row);
    }
  }
  return out;
}

std::vector<core::ConflictStats> analyze_dataset(const Dataset& dataset) {
  std::vector<core::ConflictStats> out(dataset.num_blocks);

  if (dataset.model == workload::DataModel::kUtxo) {
    // Group rows by block; within a block, nodes are the non-coinbase
    // spending transactions and edges the in-block spends — exactly the
    // paper's Figure 2 query.
    std::size_t i = 0;
    while (i < dataset.utxo_inputs.size()) {
      const std::uint64_t block = dataset.utxo_inputs[i].block_number;
      core::KeyedTdg<Hash256> tdg;
      const std::size_t begin = i;
      for (; i < dataset.utxo_inputs.size() &&
             dataset.utxo_inputs[i].block_number == block;
           ++i) {
        if (!dataset.utxo_inputs[i].coinbase) {
          tdg.node(dataset.utxo_inputs[i].tx_hash);
        }
      }
      for (std::size_t j = begin; j < i; ++j) {
        const UtxoInputRow& row = dataset.utxo_inputs[j];
        if (row.coinbase) continue;
        if (tdg.contains(row.spent_tx_hash)) {
          tdg.add_edge(row.spent_tx_hash, row.tx_hash);
        }
      }
      if (block < out.size()) {
        out[block] = core::utxo_conflict_stats(
            core::connected_components_bfs(tdg.graph()));
      }
    }
  } else {
    std::size_t i = 0;
    while (i < dataset.account_rows.size()) {
      const std::uint64_t block = dataset.account_rows[i].block_number;
      core::KeyedTdg<Address> tdg;
      std::vector<core::AccountTxRef> refs;
      for (; i < dataset.account_rows.size() &&
             dataset.account_rows[i].block_number == block;
           ++i) {
        const AccountRow& row = dataset.account_rows[i];
        tdg.add_edge(row.sender, row.receiver);
        if (!row.internal) {
          core::AccountTxRef ref;
          ref.sender = tdg.node(row.sender);
          ref.receiver = tdg.node(row.receiver);
          ref.weight = static_cast<double>(row.gas_used);
          refs.push_back(ref);
        }
      }
      if (block < out.size()) {
        out[block] = core::account_conflict_stats(
            core::connected_components_bfs(tdg.graph()), refs);
      }
    }
  }
  return out;
}

}  // namespace txconc::analysis
