#include "analysis/block_analyzer.h"

#include <unordered_map>

#include "common/error.h"
#include "core/components.h"

namespace txconc::analysis {

core::KeyedTdg<Hash256> build_utxo_tdg(
    std::span<const utxo::Transaction> transactions) {
  core::KeyedTdg<Hash256> tdg;
  // Intern every non-coinbase transaction as a node first (isolated
  // transactions must appear as singleton components).
  for (const utxo::Transaction& tx : transactions) {
    if (tx.is_coinbase()) continue;
    tdg.node(tx.txid());
  }
  // An edge per in-block spend: creator -> spender.
  for (const utxo::Transaction& tx : transactions) {
    if (tx.is_coinbase()) continue;
    for (const utxo::TxInput& in : tx.inputs()) {
      if (tdg.contains(in.prevout.txid)) {
        tdg.add_edge(in.prevout.txid, tx.txid());
      }
    }
  }
  return tdg;
}

core::ConflictStats analyze_utxo_block(
    std::span<const utxo::Transaction> transactions,
    std::span<const double> weights) {
  const core::KeyedTdg<Hash256> tdg = build_utxo_tdg(transactions);
  const core::ComponentSet components =
      core::connected_components_bfs(tdg.graph());

  if (weights.empty()) {
    return core::utxo_conflict_stats(components);
  }
  // Re-order caller weights (given in block order over non-coinbase txs)
  // to the TDG's node numbering.
  std::vector<double> node_weights(tdg.num_nodes(), 1.0);
  std::size_t index = 0;
  for (const utxo::Transaction& tx : transactions) {
    if (tx.is_coinbase()) continue;
    if (index >= weights.size()) {
      throw UsageError("analyze_utxo_block: weight count mismatch");
    }
    node_weights[tdg.find(tx.txid())] = weights[index++];
  }
  if (index != weights.size()) {
    throw UsageError("analyze_utxo_block: weight count mismatch");
  }
  return core::utxo_conflict_stats(components, node_weights);
}

AccountTdg build_account_tdg(std::span<const account::AccountTx> transactions,
                             std::span<const account::Receipt> receipts,
                             bool include_internal) {
  if (!receipts.empty() && receipts.size() != transactions.size()) {
    throw UsageError("build_account_tdg: receipt count mismatch");
  }
  AccountTdg out;
  for (std::size_t i = 0; i < transactions.size(); ++i) {
    const account::AccountTx& tx = transactions[i];
    // Creations edge to the deployed contract's address.
    Address to;
    if (tx.to.has_value()) {
      to = *tx.to;
    } else if (i < receipts.size() && receipts[i].created.has_value()) {
      to = *receipts[i].created;
    } else {
      to = Address::derive_contract(tx.from, tx.nonce);
    }
    out.addresses.add_edge(tx.from, to);

    core::AccountTxRef ref;
    ref.sender = out.addresses.node(tx.from);
    ref.receiver = out.addresses.node(to);
    ref.weight = i < receipts.size()
                     ? static_cast<double>(receipts[i].gas_used)
                     : 1.0;
    out.tx_refs.push_back(ref);

    if (include_internal && i < receipts.size()) {
      for (const account::InternalTx& itx : receipts[i].internal_txs) {
        out.addresses.add_edge(itx.from, itx.to);
      }
    }
  }
  return out;
}

core::ConflictStats analyze_account_block(
    std::span<const account::AccountTx> transactions,
    std::span<const account::Receipt> receipts, bool include_internal) {
  const AccountTdg tdg =
      build_account_tdg(transactions, receipts, include_internal);
  const core::ComponentSet components =
      core::connected_components_bfs(tdg.addresses.graph());
  return core::account_conflict_stats(components, tdg.tx_refs);
}

core::ConflictStats analyze_account_block_slots(
    std::span<const account::AccountTx> transactions,
    std::span<const account::Receipt> receipts) {
  if (receipts.size() != transactions.size()) {
    throw UsageError("analyze_account_block_slots: receipt count mismatch");
  }
  // Conflict graph over *transactions*: union transactions whose write set
  // intersects another's read or write set.
  struct SlotUse {
    std::vector<std::uint32_t> readers;
    std::vector<std::uint32_t> writers;
  };
  std::unordered_map<account::SlotAccess, SlotUse, account::SlotAccessHash>
      slots;
  for (std::uint32_t i = 0; i < receipts.size(); ++i) {
    for (const account::SlotAccess& r : receipts[i].reads) {
      slots[r].readers.push_back(i);
    }
    for (const account::SlotAccess& w : receipts[i].writes) {
      slots[w].writers.push_back(i);
    }
  }

  core::Tdg graph(transactions.size());
  for (const auto& [slot, use] : slots) {
    if (use.writers.empty()) continue;
    const std::uint32_t first_writer = use.writers.front();
    for (std::uint32_t w : use.writers) {
      if (w != first_writer) graph.add_edge(first_writer, w);
    }
    for (std::uint32_t r : use.readers) {
      if (r != first_writer) graph.add_edge(first_writer, r);
    }
  }

  const core::ComponentSet components = core::connected_components_dsu(graph);
  std::vector<double> gas(transactions.size());
  for (std::size_t i = 0; i < receipts.size(); ++i) {
    gas[i] = static_cast<double>(receipts[i].gas_used);
  }
  return core::utxo_conflict_stats(components, gas);
}

}  // namespace txconc::analysis
