// Dataset export/import: the BigQuery-shaped data pipeline.
//
// The paper queries public CSV-ish datasets (one row per transaction with
// block number, hash, inputs / sender, receiver, gas). This module dumps
// generated histories in the same spirit — a transactions table plus a
// traces table — and can load them back for analysis, so downstream users
// can run the measurement pipeline on exported data without the
// generators (or on their own data shaped the same way).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "workload/history.h"

namespace txconc::analysis {

/// One row of the UTXO-model transactions table (paper Fig. 2's shape:
/// spending tx hash + spent tx hash per input).
struct UtxoInputRow {
  std::uint64_t block_number = 0;
  Hash256 tx_hash;              ///< The spending transaction.
  Hash256 spent_tx_hash;        ///< Creator of the consumed TXO.
  std::uint32_t spent_index = 0;
  bool coinbase = false;        ///< The spending tx is a coinbase.
};

/// One row of the account-model transactions/traces table (the Ethereum
/// dataset's shape: regular transactions and internal traces share it).
struct AccountRow {
  std::uint64_t block_number = 0;
  std::uint64_t tx_index = 0;   ///< Position in the block.
  Address sender;
  Address receiver;
  std::uint64_t value = 0;
  std::uint64_t gas_used = 0;   ///< 0 for internal traces.
  bool internal = false;        ///< geth-style trace rather than a tx.
  bool creation = false;
};

/// An exported dataset (one chain).
struct Dataset {
  std::string chain;
  workload::DataModel model = workload::DataModel::kAccount;
  std::uint64_t num_blocks = 0;
  std::vector<UtxoInputRow> utxo_inputs;   ///< UTXO chains.
  std::vector<AccountRow> account_rows;    ///< Account chains.
  /// Regular-transaction counts per block (blocks with no inputs/rows
  /// would otherwise be invisible).
  std::vector<std::uint32_t> txs_per_block;
};

/// Drain a generator into a dataset.
Dataset export_dataset(workload::HistoryGenerator& generator);

/// CSV round-trip. write_csv emits a two-section file (header comments
/// carry the metadata); read_csv parses it back. Throws ParseError on
/// malformed input.
void write_csv(std::ostream& out, const Dataset& dataset);
Dataset read_csv(std::istream& in);

/// Per-block conflict stats straight from a dataset (no generator, no
/// receipts — the paper's SQL pipeline shape). Returns one entry per
/// block, in height order.
std::vector<core::ConflictStats> analyze_dataset(const Dataset& dataset);

}  // namespace txconc::analysis
