#include "analysis/speedup.h"

#include <algorithm>

#include "common/error.h"
#include "core/speedup_model.h"

namespace txconc::analysis {

SpeedupSeries compute_speedup_series(const ChainSeries& series,
                                     unsigned cores) {
  if (cores == 0) throw UsageError("compute_speedup_series: cores must be > 0");
  SpeedupSeries out;
  out.cores = cores;

  const std::size_t buckets =
      std::min({series.single_rate_txw.size(), series.group_rate_txw.size(),
                series.regular_txs.size()});
  out.speculative.reserve(buckets);
  out.group.reserve(buckets);
  out.oracle.reserve(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    const auto x =
        static_cast<std::size_t>(series.regular_txs[i].value + 0.5);

    SeriesPoint spec = series.single_rate_txw[i];
    spec.value = x == 0 ? 1.0
                        : core::SpeculativeModel::speedup(
                              x, series.single_rate_txw[i].value, cores);
    out.speculative.push_back(spec);

    SeriesPoint group = series.group_rate_txw[i];
    group.value =
        core::GroupModel::speedup_bound(cores, series.group_rate_txw[i].value);
    out.group.push_back(group);

    SeriesPoint oracle = series.single_rate_txw[i];
    oracle.value = x == 0 ? 1.0
                          : core::SpeculativeModel::oracle_speedup(
                                x, series.single_rate_txw[i].value, cores,
                                /*k_preprocess=*/0.0);
    out.oracle.push_back(oracle);
  }
  return out;
}

SpeedupSummary summarize_late(const std::vector<SeriesPoint>& curve,
                              double fraction) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw UsageError("summarize_late: fraction must be in (0, 1]");
  }
  SpeedupSummary out;
  if (curve.empty()) return out;

  const std::size_t window = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(curve.size())));
  double sum = 0.0;
  for (std::size_t i = curve.size() - window; i < curve.size(); ++i) {
    sum += curve[i].value;
  }
  out.mean = sum / static_cast<double>(window);
  out.peak = 0.0;
  for (const SeriesPoint& p : curve) {
    out.peak = std::max(out.peak, p.value);
  }
  return out;
}

}  // namespace txconc::analysis
