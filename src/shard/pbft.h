// PBFT cost model used inside Zilliqa committees.
//
// "nodes run PoW to determine their committees, and a variant of PBFT to
// ensure security at local committees" — paper, Section II-B. We model the
// protocol's message complexity and latency rather than running real
// network rounds: three all-to-all-ish phases, plus view changes when the
// leader is faulty.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "obs/context.h"

namespace txconc::obs {
struct Scope;  // tracer + metrics bundle, see obs/scope.h
}

namespace txconc::shard {

/// Parameters of one PBFT instance.
struct PbftConfig {
  unsigned committee_size = 600;
  double message_latency = 0.1;      ///< One-way delay in seconds.
  double view_change_timeout = 2.0;  ///< Seconds wasted per faulty leader.
  double faulty_leader_probability = 0.0;
  /// Observability sink for round spans and counters. Null keeps the old
  /// behavior: spans to the global tracer, counters to the global
  /// registry while the global tracer is enabled.
  const obs::Scope* obs = nullptr;
};

/// Result of one consensus round.
struct PbftOutcome {
  double latency_seconds = 0.0;
  std::uint64_t messages = 0;
  unsigned view_changes = 0;
};

/// Number of protocol messages in one fault-free round:
/// pre-prepare (n-1) + prepare (n*(n-1)) + commit (n*(n-1)).
std::uint64_t pbft_message_count(unsigned committee_size);

/// Latency of one fault-free round: three phases of one message delay each.
double pbft_round_latency(const PbftConfig& config);

/// Simulates consecutive PBFT rounds, sampling leader failures.
///
/// Thread-safe monitor: concurrent run_round() calls serialize on an
/// internal mutex (committees are driven independently, so the sharding
/// layer may fan rounds of different committees out across threads). The
/// leader-failure sampling order under concurrent callers is whatever the
/// lock hands out — per-committee determinism holds as long as each
/// committee is driven by one logical sequence of rounds.
class PbftSimulator {
 public:
  PbftSimulator(std::uint64_t seed, PbftConfig config);

  /// Run one round to completion (retrying through view changes).
  /// `trace` is the causal context of whatever the round decides on (a
  /// block, a cross-shard phase); the round span and its pre-prepare /
  /// prepare / commit children join that trace.
  PbftOutcome run_round(const obs::TraceContext& trace = {});

  const PbftConfig& config() const { return config_; }

 private:
  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  PbftConfig config_;  // immutable after construction
};

}  // namespace txconc::shard
