// PBFT cost model used inside Zilliqa committees.
//
// "nodes run PoW to determine their committees, and a variant of PBFT to
// ensure security at local committees" — paper, Section II-B. We model the
// protocol's message complexity and latency rather than running real
// network rounds: three all-to-all-ish phases, plus view changes when the
// leader is faulty.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace txconc::shard {

/// Parameters of one PBFT instance.
struct PbftConfig {
  unsigned committee_size = 600;
  double message_latency = 0.1;      ///< One-way delay in seconds.
  double view_change_timeout = 2.0;  ///< Seconds wasted per faulty leader.
  double faulty_leader_probability = 0.0;
};

/// Result of one consensus round.
struct PbftOutcome {
  double latency_seconds = 0.0;
  std::uint64_t messages = 0;
  unsigned view_changes = 0;
};

/// Number of protocol messages in one fault-free round:
/// pre-prepare (n-1) + prepare (n*(n-1)) + commit (n*(n-1)).
std::uint64_t pbft_message_count(unsigned committee_size);

/// Latency of one fault-free round: three phases of one message delay each.
double pbft_round_latency(const PbftConfig& config);

/// Simulates consecutive PBFT rounds, sampling leader failures.
class PbftSimulator {
 public:
  PbftSimulator(std::uint64_t seed, PbftConfig config);

  /// Run one round to completion (retrying through view changes).
  PbftOutcome run_round();

  const PbftConfig& config() const { return config_; }

 private:
  Rng rng_;
  PbftConfig config_;
};

}  // namespace txconc::shard
