#include "shard/pbft.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace txconc::shard {

std::uint64_t pbft_message_count(unsigned committee_size) {
  if (committee_size < 1) throw UsageError("pbft: empty committee");
  const std::uint64_t n = committee_size;
  return (n - 1) + 2 * n * (n - 1);
}

double pbft_round_latency(const PbftConfig& config) {
  return 3.0 * config.message_latency;
}

PbftSimulator::PbftSimulator(std::uint64_t seed, PbftConfig config)
    : rng_(seed), config_(config) {
  if (config_.committee_size < 4) {
    throw UsageError("pbft: committee must have >= 4 nodes (3f+1, f >= 1)");
  }
  if (config_.faulty_leader_probability < 0.0 ||
      config_.faulty_leader_probability >= 1.0) {
    throw UsageError("pbft: faulty leader probability must be in [0, 1)");
  }
}

PbftOutcome PbftSimulator::run_round(const obs::TraceContext& trace) {
  const MutexLock lock(mu_);
  obs::Tracer* tracer = obs::tracer(config_.obs);
  if (tracer == nullptr) tracer = &obs::Tracer::global();
  const obs::CausalSpan round_span(
      tracer, obs::names::kSpanPbftRound, obs::names::kCatShard, trace,
      static_cast<std::int64_t>(config_.committee_size));
  PbftOutcome outcome;
  // Pre-prepare: the leader proposes — view changes until an honest one
  // drives the round through.
  {
    const obs::CausalSpan span(tracer, obs::names::kSpanPbftPrePrepare,
                               obs::names::kCatShard,
                               round_span.context());
    while (rng_.bernoulli(config_.faulty_leader_probability)) {
      ++outcome.view_changes;
      outcome.latency_seconds += config_.view_change_timeout;
      // A view change is itself an all-to-all broadcast.
      outcome.messages += static_cast<std::uint64_t>(config_.committee_size) *
                          (config_.committee_size - 1);
    }
  }
  // Prepare and commit: modeled all-to-all phases; the spans carry the
  // causal linkage of the modeled rounds into the trace.
  {
    const obs::CausalSpan span(tracer, obs::names::kSpanPbftPrepare, obs::names::kCatShard,
                               round_span.context());
  }
  {
    const obs::CausalSpan span(tracer, obs::names::kSpanPbftCommit, obs::names::kCatShard,
                               round_span.context());
  }
  outcome.latency_seconds += pbft_round_latency(config_);
  outcome.messages += pbft_message_count(config_.committee_size);
  obs::Registry* registry = obs::metrics(config_.obs);
  if (registry == nullptr && obs::Tracer::global().enabled()) {
    registry = &obs::Registry::global();
  }
  if (registry != nullptr) {
    registry->counter(obs::names::kMetricPbftRounds).add(1);
    registry->counter(obs::names::kMetricPbftMessages).add(outcome.messages);
    registry->counter(obs::names::kMetricPbftViewChanges).add(outcome.view_changes);
  }
  return outcome;
}

}  // namespace txconc::shard
