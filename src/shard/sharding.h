// Zilliqa-style network sharding.
//
// "[Zilliqa] employs network sharding which assigns nodes to small
// committees ... transactions are processed independently at different
// committees that are selected based on the senders' addresses. A major
// limitation of Zilliqa is that it does not support cross-shard
// transactions." — paper, Section II-B.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "account/types.h"
#include "common/thread_annotations.h"
#include "shard/pbft.h"

namespace txconc::obs {
class SnapshotWriter;  // periodic metrics snapshots, see obs/snapshot.h
}

namespace txconc::shard {

/// Static sharding parameters.
struct ShardConfig {
  unsigned num_shards = 4;
  PbftConfig pbft;
  /// Maximum transactions per micro-block per epoch.
  std::size_t shard_capacity = 1000;
  /// Extra delay for cross-committee state synchronization ("it needs to
  /// wait for state synchronization between committees before transactions
  /// are confirmed").
  double state_sync_latency = 5.0;
  /// Optional periodic metrics snapshots, ticked once per epoch (and per
  /// cross-shard transfer). Not owned; must outlive the simulator.
  obs::SnapshotWriter* snapshots = nullptr;
};

/// Committee of a sender: the low bits of the address, as in Zilliqa.
unsigned shard_of(const Address& sender, unsigned num_shards);

/// A transaction is cross-shard when sender and receiver map to different
/// committees (creations count as same-shard: the new address is derived
/// but processed at the sender's committee).
bool is_cross_shard(const account::AccountTx& tx, unsigned num_shards);

/// The per-committee slice of an epoch's final block.
struct MicroBlock {
  unsigned shard = 0;
  std::vector<account::AccountTx> transactions;
  PbftOutcome consensus;
};

/// Outcome of one Zilliqa epoch.
struct EpochResult {
  std::vector<MicroBlock> micro_blocks;
  /// The DS-committee aggregation of all micro-blocks, in shard order.
  std::vector<account::AccountTx> final_block;
  /// Transactions rejected because they were cross-shard.
  std::vector<account::AccountTx> rejected_cross_shard;
  /// Transactions deferred because their shard was at capacity.
  std::vector<account::AccountTx> deferred;
  /// Wall-clock estimate: slowest committee + DS round + state sync.
  double latency_seconds = 0.0;
  std::uint64_t total_messages = 0;
};

/// Simulates Zilliqa epochs: partition by sender shard, run PBFT per
/// committee, aggregate micro-blocks, reject cross-shard traffic.
///
/// Thread-safe monitor: run_epoch() serializes on an internal mutex.
/// Epochs form one logical sequence — each committee's PBFT rounds must be
/// drawn in epoch order for per-seed determinism, so concurrent callers
/// may not interleave inside an epoch. The committees live in a deque
/// because PbftSimulator owns a Mutex and is therefore immovable.
class ZilliqaSimulator {
 public:
  ZilliqaSimulator(std::uint64_t seed, ShardConfig config);

  /// `trace` joins the epoch span (and every committee/DS round under it)
  /// to the caller's causal story (see obs/context.h).
  EpochResult run_epoch(std::vector<account::AccountTx> pending,
                        const obs::TraceContext& trace = {});

  const ShardConfig& config() const { return config_; }

 private:
  mutable Mutex mu_;
  ShardConfig config_;  // immutable after construction
  std::deque<PbftSimulator> committees_ GUARDED_BY(mu_);
  PbftSimulator ds_committee_ GUARDED_BY(mu_);
};

}  // namespace txconc::shard
