#include "shard/sharding.h"

#include <algorithm>

#include "common/error.h"
#include "obs/scope.h"
#include "obs/names.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace txconc::shard {

unsigned shard_of(const Address& sender, unsigned num_shards) {
  if (num_shards == 0) throw UsageError("shard_of: no shards");
  return static_cast<unsigned>(sender.low64() % num_shards);
}

bool is_cross_shard(const account::AccountTx& tx, unsigned num_shards) {
  if (!tx.to.has_value()) return false;
  return shard_of(tx.from, num_shards) != shard_of(*tx.to, num_shards);
}

ZilliqaSimulator::ZilliqaSimulator(std::uint64_t seed, ShardConfig config)
    : config_(config),
      ds_committee_(seed ^ 0xd5d5d5d5ULL, config.pbft) {
  if (config_.num_shards == 0) {
    throw UsageError("ZilliqaSimulator: need at least one shard");
  }
  for (unsigned s = 0; s < config_.num_shards; ++s) {
    committees_.emplace_back(seed + s, config_.pbft);
  }
}

EpochResult ZilliqaSimulator::run_epoch(
    std::vector<account::AccountTx> pending, const obs::TraceContext& trace) {
  const MutexLock lock(mu_);
  obs::Tracer* tracer = obs::tracer(config_.pbft.obs);
  if (tracer == nullptr) tracer = &obs::Tracer::global();
  const obs::CausalSpan epoch_span(
      tracer, obs::names::kSpanEpoch, obs::names::kCatShard, trace,
      static_cast<std::int64_t>(pending.size()));
  EpochResult result;
  result.micro_blocks.resize(config_.num_shards);
  for (unsigned s = 0; s < config_.num_shards; ++s) {
    result.micro_blocks[s].shard = s;
  }

  // Partition by sender committee; reject cross-shard, enforce capacity.
  for (auto& tx : pending) {
    if (is_cross_shard(tx, config_.num_shards)) {
      result.rejected_cross_shard.push_back(std::move(tx));
      continue;
    }
    MicroBlock& micro = result.micro_blocks[shard_of(tx.from, config_.num_shards)];
    if (micro.transactions.size() >= config_.shard_capacity) {
      result.deferred.push_back(std::move(tx));
      continue;
    }
    micro.transactions.push_back(std::move(tx));
  }

  // Each committee reaches consensus on its micro-block in parallel; the
  // epoch waits for the slowest one.
  double slowest = 0.0;
  for (MicroBlock& micro : result.micro_blocks) {
    micro.consensus = committees_[micro.shard].run_round(epoch_span.context());
    slowest = std::max(slowest, micro.consensus.latency_seconds);
    result.total_messages += micro.consensus.messages;
  }

  // The DS committee aggregates the micro-blocks into the final block.
  const PbftOutcome ds = ds_committee_.run_round(epoch_span.context());
  result.total_messages += ds.messages;
  result.latency_seconds =
      slowest + ds.latency_seconds + config_.state_sync_latency;

  for (const MicroBlock& micro : result.micro_blocks) {
    result.final_block.insert(result.final_block.end(),
                              micro.transactions.begin(),
                              micro.transactions.end());
  }
  obs::Registry* registry = obs::metrics(config_.pbft.obs);
  if (registry == nullptr && obs::Tracer::global().enabled()) {
    registry = &obs::Registry::global();
  }
  if (registry != nullptr) {
    registry->counter(obs::names::kMetricShardEpochs).add(1);
    registry->counter(obs::names::kMetricShardMessages).add(result.total_messages);
    registry->counter(obs::names::kMetricShardRejectedCrossShard)
        .add(result.rejected_cross_shard.size());
    registry->counter(obs::names::kMetricShardFinalBlockTxs).add(result.final_block.size());
    registry->histogram(obs::names::kMetricShardEpochLatencyS)
        .observe(result.latency_seconds);
  }
  if (config_.snapshots != nullptr) config_.snapshots->tick();
  return result;
}

}  // namespace txconc::shard
