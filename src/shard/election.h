// PoW-based committee election, Zilliqa-style: "nodes run PoW to determine
// their committees". Seats are won in proportion to hash power and
// assigned to committees uniformly, so each committee's adversarial
// fraction concentrates around the population fraction — the statistical
// argument that makes sharded consensus safe only when committees are
// large enough.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/thread_annotations.h"

namespace txconc::shard {

struct ElectionConfig {
  unsigned num_shards = 4;
  unsigned committee_size = 600;
};

/// Outcome of one election epoch.
struct ElectionResult {
  /// Winning node ids per committee.
  std::vector<std::vector<std::uint32_t>> committees;
  /// Fraction of adversarial members per committee.
  std::vector<double> adversary_fraction;
  /// Committees whose adversarial fraction reaches the BFT threshold
  /// (>= 1/3): consensus safety is lost there.
  unsigned compromised = 0;
};

/// Runs election epochs over a fixed node population.
///
/// Thread-safe monitor: run_epoch() serializes on an internal mutex so the
/// seeded RNG stream is drawn in one well-defined epoch order even when a
/// simulation driver runs elections from a worker thread.
class CommitteeElection {
 public:
  CommitteeElection(std::uint64_t seed, ElectionConfig config);

  /// One epoch: every seat is won by a PoW race (probability proportional
  /// to hash power, with replacement — one physical node can win several
  /// seats, as in real PoW identities) and placed in a random committee.
  ///
  /// @param node_power    relative hash power per node.
  /// @param adversarial   flag per node.
  ElectionResult run_epoch(std::span<const double> node_power,
                           std::span<const std::uint8_t> adversarial);

  const ElectionConfig& config() const { return config_; }

 private:
  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  ElectionConfig config_;  // immutable after construction
};

/// Exact binomial tail: probability that a committee of `committee_size`
/// seats, each adversarial independently with probability
/// `adversary_power`, contains at least `threshold` adversarial seats
/// (default: the BFT third).
double committee_compromise_probability(unsigned committee_size,
                                        double adversary_power,
                                        double threshold = 1.0 / 3.0);

}  // namespace txconc::shard
