#include "shard/cross_shard.h"

#include "chain/block.h"
#include "common/error.h"
#include "obs/scope.h"
#include "obs/names.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace txconc::shard {

namespace {

obs::Tracer* shard_tracer(const ShardConfig& config) {
  obs::Tracer* scoped = obs::tracer(config.pbft.obs);
  return scoped != nullptr ? scoped : &obs::Tracer::global();
}

obs::Registry* shard_registry(const ShardConfig& config) {
  obs::Registry* scoped = obs::metrics(config.pbft.obs);
  if (scoped != nullptr) return scoped;
  return obs::Tracer::global().enabled() ? &obs::Registry::global() : nullptr;
}

}  // namespace

CrossShardCoordinator::CrossShardCoordinator(std::uint64_t seed,
                                             ShardConfig config)
    : config_(config) {
  if (config_.num_shards == 0) {
    throw UsageError("CrossShardCoordinator: need at least one shard");
  }
  states_.resize(config_.num_shards);
  for (unsigned s = 0; s < config_.num_shards; ++s) {
    committees_.emplace_back(seed + s, config_.pbft);
  }
}

// tsa: quiescent escape, justified on the declaration (cross_shard.h);
// the attribute must be repeated on the definition for TSA to honor it.
const account::StateDb& CrossShardCoordinator::shard_state(
    unsigned shard) const NO_THREAD_SAFETY_ANALYSIS {
  if (shard >= states_.size()) throw UsageError("unknown shard");
  return states_[shard];
}

// tsa: same quiescent escape as the const overload above.
account::StateDb& CrossShardCoordinator::shard_state(unsigned shard)
    NO_THREAD_SAFETY_ANALYSIS {
  if (shard >= states_.size()) throw UsageError("unknown shard");
  return states_[shard];
}

std::uint64_t CrossShardCoordinator::escrow_total() const {
  const MutexLock lock(mu_);
  return escrow_total_;
}

std::uint64_t CrossShardCoordinator::total_supply() const {
  const MutexLock lock(mu_);
  // Deliberately reads escrow_total_ rather than calling escrow_total():
  // the monitor mutex is non-recursive (see header).
  std::uint64_t sum = escrow_total_;
  for (const auto& state : states_) sum += state.total_supply();
  return sum;
}

CrossShardOutcome CrossShardCoordinator::transfer(
    const account::AccountTx& tx, bool force_dest_reject,
    const obs::TraceContext& trace) {
  const MutexLock lock(mu_);
  obs::Tracer* const tracer = shard_tracer(config_);
  const obs::CausalSpan xfer_span(tracer, obs::names::kSpanXshardTransfer,
                                  obs::names::kCatShard, trace);
  obs::Registry* const registry = shard_registry(config_);
  const auto finish = [&](CrossShardOutcome outcome) {
    if (registry != nullptr) {
      registry->counter(obs::names::kMetricXshardTransfers).add(1);
      registry->counter(outcome.committed
                            ? obs::names::kMetricXshardCommits
                            : obs::names::kMetricXshardAborts)
          .add(1);
      registry->histogram(obs::names::kMetricXshardLatencyS).observe(outcome.latency_seconds);
    }
    if (config_.snapshots != nullptr) config_.snapshots->tick();
    return outcome;
  };

  CrossShardOutcome outcome;
  if (!tx.to.has_value()) {
    outcome.reason = "creations are not routed cross-shard";
    return finish(std::move(outcome));
  }
  const unsigned source = shard_of(tx.from, config_.num_shards);
  const unsigned dest = shard_of(*tx.to, config_.num_shards);

  outcome.proof.tx_hash = chain::tx_hash(tx);
  outcome.proof.source_shard = source;
  outcome.proof.dest_shard = dest;
  outcome.proof.value = tx.value;

  // Same-shard: one committee round, direct application.
  if (source == dest) {
    const PbftOutcome round =
        committees_[source].run_round(xfer_span.context());
    outcome.latency_seconds = round.latency_seconds;
    account::StateDb& state = states_[source];
    if (state.balance(tx.from) < tx.value) {
      outcome.reason = "insufficient funds";
      return finish(std::move(outcome));
    }
    state.transfer(tx.from, *tx.to, tx.value);
    state.flush_journal();
    outcome.proof.accepted = true;
    outcome.committed = true;
    return finish(std::move(outcome));
  }

  // Phase 1 — the source committee validates and locks the funds.
  account::StateDb& source_state = states_[source];
  {
    const obs::CausalSpan span(tracer, obs::names::kSpanXshardLock, obs::names::kCatShard,
                               xfer_span.context(),
                               static_cast<std::int64_t>(source));
    const PbftOutcome lock_round =
        committees_[source].run_round(span.context());
    outcome.latency_seconds += lock_round.latency_seconds;
    if (source_state.balance(tx.from) < tx.value) {
      // Proof-of-rejection: nothing was locked, the client learns why.
      outcome.proof.accepted = false;
      outcome.reason = "insufficient funds at source shard";
      return finish(std::move(outcome));
    }
    source_state.debit(tx.from, tx.value);
    source_state.flush_journal();
    escrow_total_ += tx.value;
    outcome.proof.accepted = true;
  }

  // Phase 2 — the destination committee verifies the proof and credits.
  {
    const obs::CausalSpan span(tracer, obs::names::kSpanXshardRedeem, obs::names::kCatShard,
                               xfer_span.context(),
                               static_cast<std::int64_t>(dest));
    const PbftOutcome redeem_round =
        committees_[dest].run_round(span.context());
    outcome.latency_seconds += redeem_round.latency_seconds;
  }
  if (force_dest_reject) {
    // Abort path: the client presents the rejection back to the source
    // committee, which unlocks the escrowed funds (one more round).
    const obs::CausalSpan span(tracer, obs::names::kSpanXshardUnlock, obs::names::kCatShard,
                               xfer_span.context(),
                               static_cast<std::int64_t>(source));
    const PbftOutcome unlock_round =
        committees_[source].run_round(span.context());
    outcome.latency_seconds += unlock_round.latency_seconds;
    source_state.credit(tx.from, tx.value);
    source_state.flush_journal();
    escrow_total_ -= tx.value;
    outcome.reason = "destination rejected; funds unlocked";
    return finish(std::move(outcome));
  }
  states_[dest].credit(*tx.to, tx.value);
  states_[dest].flush_journal();
  escrow_total_ -= tx.value;
  outcome.committed = true;
  return finish(std::move(outcome));
}

}  // namespace txconc::shard
