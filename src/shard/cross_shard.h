// Cross-shard transactions via a client-driven lock/unlock protocol
// (OmniLedger Atomix-style two-phase commit).
//
// The paper lists the lack of cross-shard transactions as Zilliqa's major
// limitation and cites OmniLedger as the fix; this module implements that
// fix over the sharded substrate: the source committee locks the funds and
// issues a proof-of-acceptance, the destination committee redeems it, and
// a rejection proof unlocks the funds at the source.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "account/state.h"
#include "account/types.h"
#include "common/thread_annotations.h"
#include "shard/pbft.h"
#include "shard/sharding.h"

namespace txconc::shard {

/// Proof emitted by the source committee in phase 1.
struct LockProof {
  Hash256 tx_hash;
  unsigned source_shard = 0;
  unsigned dest_shard = 0;
  std::uint64_t value = 0;
  bool accepted = false;  ///< false = proof-of-rejection
};

/// Outcome of a cross-shard transfer.
struct CrossShardOutcome {
  bool committed = false;
  std::string reason;            ///< Why the transfer aborted (if it did).
  double latency_seconds = 0.0;  ///< Lock round + redeem/unlock round.
  LockProof proof;
};

/// Drives cross-shard transfers across per-committee states.
///
/// Each committee owns an independent StateDb slice; a transfer touching
/// two committees goes through lock -> proof -> redeem (or unlock). Same-
/// shard transfers apply directly with a single consensus round.
///
/// Thread-safe monitor: transfer(), escrow_total() and total_supply()
/// serialize on an internal mutex, so the two-phase commit of one transfer
/// is atomic with respect to other transfers and to the conservation
/// check. shard_state() hands out raw references and is for quiescent use
/// only (setup and post-run inspection with no transfer in flight).
class CrossShardCoordinator {
 public:
  CrossShardCoordinator(std::uint64_t seed, ShardConfig config);

  /// Execute one value transfer (creations and contract calls are not
  /// routed cross-shard; they stay in the sender's committee, as in
  /// Zilliqa).
  ///
  /// @param force_dest_reject  fault injection: the destination committee
  /// rejects the proof, driving the abort path (unlock + refund at the
  /// source).
  /// @param trace  causal context of the originating block/transaction;
  /// the transfer span and its lock/redeem/unlock committee rounds join
  /// that trace (see obs/context.h).
  CrossShardOutcome transfer(const account::AccountTx& tx,
                             bool force_dest_reject = false,
                             const obs::TraceContext& trace = {});

  /// Committee-local state access. Quiescent use only: the returned
  /// reference escapes the monitor lock, so callers must not hold it
  /// across concurrent transfer() calls.
  // tsa: the escaping reference cannot carry a REQUIRES(mu_) contract;
  // tests use it strictly between transfers (see conservation checks).
  const account::StateDb& shard_state(unsigned shard) const
      NO_THREAD_SAFETY_ANALYSIS;
  // tsa: same quiescent escape as the const overload above.
  account::StateDb& shard_state(unsigned shard) NO_THREAD_SAFETY_ANALYSIS;

  /// Funds held in escrow by in-flight or leaked locks.
  std::uint64_t escrow_total() const;

  /// Sum of balances across every committee plus escrow (conservation
  /// invariant for tests). Reads escrow_total_ directly rather than via
  /// escrow_total() — the monitor mutex is not recursive, so a locked
  /// method must never call another locked method on the same object.
  std::uint64_t total_supply() const;

  const ShardConfig& config() const { return config_; }

 private:
  mutable Mutex mu_;
  ShardConfig config_;  // immutable after construction
  std::vector<account::StateDb> states_ GUARDED_BY(mu_);
  /// Deque because PbftSimulator owns a Mutex and is immovable.
  std::deque<PbftSimulator> committees_ GUARDED_BY(mu_);
  std::uint64_t escrow_total_ GUARDED_BY(mu_) = 0;
};

}  // namespace txconc::shard
