#include "shard/election.h"

#include <cmath>

#include "common/error.h"

namespace txconc::shard {

CommitteeElection::CommitteeElection(std::uint64_t seed, ElectionConfig config)
    : rng_(seed), config_(config) {
  if (config_.num_shards == 0 || config_.committee_size == 0) {
    throw UsageError("election: shards and committee size must be positive");
  }
}

ElectionResult CommitteeElection::run_epoch(
    std::span<const double> node_power, std::span<const std::uint8_t> adversarial) {
  if (node_power.empty() || node_power.size() != adversarial.size()) {
    throw UsageError("election: power/adversarial size mismatch");
  }
  const MutexLock lock(mu_);
  const WeightedSampler by_power(
      std::vector<double>(node_power.begin(), node_power.end()));

  ElectionResult result;
  result.committees.resize(config_.num_shards);
  std::vector<std::size_t> adversarial_seats(config_.num_shards, 0);

  const std::size_t total_seats =
      static_cast<std::size_t>(config_.num_shards) * config_.committee_size;
  for (std::size_t seat = 0; seat < total_seats; ++seat) {
    const std::size_t winner = by_power.sample(rng_);
    const unsigned committee =
        static_cast<unsigned>(rng_.uniform(config_.num_shards));
    // Committees fill round-robin once full (keeps sizes exact).
    unsigned placed = committee;
    for (unsigned i = 0; i < config_.num_shards; ++i) {
      const unsigned candidate = (committee + i) % config_.num_shards;
      if (result.committees[candidate].size() < config_.committee_size) {
        placed = candidate;
        break;
      }
    }
    result.committees[placed].push_back(static_cast<std::uint32_t>(winner));
    if (adversarial[winner]) ++adversarial_seats[placed];
  }

  result.adversary_fraction.resize(config_.num_shards);
  for (unsigned s = 0; s < config_.num_shards; ++s) {
    result.adversary_fraction[s] =
        static_cast<double>(adversarial_seats[s]) /
        static_cast<double>(config_.committee_size);
    if (result.adversary_fraction[s] >= 1.0 / 3.0) ++result.compromised;
  }
  return result;
}

double committee_compromise_probability(unsigned committee_size,
                                        double adversary_power,
                                        double threshold) {
  if (committee_size == 0) {
    throw UsageError("election: committee size must be positive");
  }
  if (adversary_power < 0.0 || adversary_power > 1.0) {
    throw UsageError("election: adversary power must be in [0, 1]");
  }
  if (adversary_power == 0.0) return threshold <= 0.0 ? 1.0 : 0.0;
  if (adversary_power == 1.0) return 1.0;

  const unsigned n = committee_size;
  const auto k_min = static_cast<unsigned>(
      std::ceil(threshold * static_cast<double>(n) - 1e-12));

  // Sum the binomial tail in log space for numerical stability.
  const double log_p = std::log(adversary_power);
  const double log_q = std::log1p(-adversary_power);
  double tail = 0.0;
  double log_choose = 0.0;  // log C(n, 0)
  for (unsigned k = 0; k <= n; ++k) {
    if (k >= k_min) {
      tail += std::exp(log_choose + static_cast<double>(k) * log_p +
                       static_cast<double>(n - k) * log_q);
    }
    // C(n, k+1) = C(n, k) * (n-k) / (k+1)
    if (k < n) {
      log_choose += std::log(static_cast<double>(n - k)) -
                    std::log(static_cast<double>(k + 1));
    }
  }
  return std::min(tail, 1.0);
}

}  // namespace txconc::shard
