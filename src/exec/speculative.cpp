// Two-phase speculative executors (blind and oracle variants).
//
// Hot-path discipline: an executor instance keeps per-worker scratch
// (overlays, trackers) and per-block flat tables alive across blocks, so
// the steady-state per-transaction path — rebase overlay, execute, export
// a write log, aggregate conflicts, batch-commit — performs no heap
// allocation (asserted by tests/hotpath_test.cpp).
#include <chrono>
#include <memory>

#include "account/state.h"
#include "common/error.h"
#include "core/components.h"
#include "exec/executor.h"
#include "exec/predict.h"
#include "exec/sched_trace.h"
#include "exec/scratch.h"
#include "exec/thread_pool.h"
#include "obs/names.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace txconc::exec {

namespace {

constexpr std::uint32_t kNoTx = 0xffffffffu;

/// Per-slot conflict aggregate: writer count plus distinct-accessor count
/// (deduplicated through last_tx — each transaction's access lists are
/// already sorted-unique, so a tx touches the aggregate at most once per
/// list and the read+write case collapses via the last_tx check).
struct SlotAgg {
  std::uint32_t writers = 0;
  std::uint32_t accessors = 0;
  std::uint32_t last_tx = kNoTx;
};

class SpeculativeExecutor final : public BlockExecutor {
 public:
  SpeculativeExecutor(unsigned num_threads, AbortPolicy policy)
      : label_(policy == AbortPolicy::kAllConflicted ? "speculative"
                                                     : "speculative-fww"),
        pool_(num_threads, label_),
        policy_(policy) {}

  ExecutionReport execute_block(
      account::StateDb& state,
      std::span<const account::AccountTx> transactions,
      const account::RuntimeConfig& config) override {
    obs::Tracer* const tracer = obs::tracer(config.obs);
    obs::Registry* const registry = obs::metrics(config.obs);
    const obs::ThreadProcessScope proc(label_);
    const obs::CausalSpan block_span(
        tracer, obs::names::kSpanExecuteBlock, obs::names::kCatExec,
        config.trace, static_cast<std::int64_t>(transactions.size()));
    emit_thread_budget(tracer, pool_.size() + 1);
    SchedTrace trace(&pool_);

    ExecutionReport report;
    report.executor = name();
    report.num_txs = transactions.size();
    report.receipts.resize(transactions.size());

    ensure_worker_scratch(scratch_, pool_.size());
    writes_.resize(std::max(writes_.size(), transactions.size()));
    valid_.assign(transactions.size(), 0);
    conflicted_.assign(transactions.size(), 0);

    // Phase 1 (concurrent, speculative). The a-priori components are only
    // consulted to bound what failed attempts could touch; the happy path
    // stays purely speculative as in [17].
    PredictedGroups groups;
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanPredict,
                                 obs::names::kCatExec, block_span.context());
      groups = predict_groups(transactions, state, tracer);
    }
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanExecute,
                                 obs::names::kCatExec, block_span.context(),
                                 static_cast<std::int64_t>(transactions.size()));
      speculate(state, transactions, config, report, tracer);
    }
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanSchedule,
                                 obs::names::kCatExec, block_span.context());
      detect_conflicts(transactions, report, groups,
                       obs::contention(config.obs), tracer);
    }

    // Commit the non-conflicted write logs (their access sets are disjoint
    // from everyone else's, so block order is immaterial). Committed
    // values are final — pause the undo journal instead of filling it
    // only to flush it.
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanCommit,
                                 obs::names::kCatExec, block_span.context());
      const account::JournalPause pause(state);
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        if (!conflicted_[i]) writes_[i].apply_to(state);
      }
    }
    trace.phase_boundary();

    // Phase 2 (sequential bin, in block order). The conflict stall is the
    // apply work only — summed per transaction so span construction and
    // per-tx tracer overhead stay out of the histogram, mirroring the
    // sequential executor's phase-2 timing.
    double stall_seconds = 0.0;
    std::size_t bin = 0;
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanSeqBin,
                                 obs::names::kCatExec, block_span.context());
      account::AccessTracker& bin_tracker = scratch_[0].tracker;
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        if (!conflicted_[i]) continue;
        ++bin;
        const TXCONC_SPAN_T(tracer, obs::names::kSpanTx,
                            obs::names::kCatExec,
                            static_cast<std::int64_t>(i));
        if (registry != nullptr) {
          const auto apply_start = std::chrono::steady_clock::now();
          account::apply_transaction_into(state, transactions[i], config,
                                          report.receipts[i], bin_tracker);
          stall_seconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - apply_start)
                               .count();
        } else {
          account::apply_transaction_into(state, transactions[i], config,
                                          report.receipts[i], bin_tracker);
        }
      }
      state.flush_journal();
    }
    if (registry != nullptr) {
      registry->histogram(obs::names::kMetricExecConflictStallUs)
          .observe(stall_seconds * 1e6);
      obs::Histogram& attempts_hist =
          registry->histogram(obs::names::kMetricExecAttemptsPerTx);
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        attempts_hist.observe(conflicted_[i] ? 2.0 : 1.0);
      }
    }

    report.sequential_txs = bin;
    report.executions = transactions.size() + bin;
    const unsigned cores = pool_.size();
    const std::size_t phase1 =
        transactions.empty()
            ? 0
            : (transactions.size() + cores - 1) / cores;
    report.simulated_units = static_cast<double>(phase1 + bin);
    report.simulated_speedup =
        report.simulated_units > 0.0
            ? static_cast<double>(transactions.size()) / report.simulated_units
            : 1.0;
    report.wall_seconds = trace.finish(report.sched);
    record_block_metrics(registry, report);
    return report;
  }

  std::string name() const override { return label_; }

 private:
  /// Phase 1: run every transaction concurrently, each worker slot
  /// rebasing its private copy-on-write overlay over the frozen base.
  /// Receipts land directly in the report; the overlay's effects are
  /// exported to the per-transaction write log.
  void speculate(const account::StateDb& base,
                 std::span<const account::AccountTx> txs,
                 const account::RuntimeConfig& config,
                 ExecutionReport& report, obs::Tracer* tracer) {
    account::RuntimeConfig tracked = config;
    tracked.track_accesses = true;

    const ThreadPool::SlotFn body = [&](unsigned slot, std::size_t i) {
      const TXCONC_SPAN_T(tracer, obs::names::kSpanAttempt,
                          obs::names::kCatExec,
                          static_cast<std::int64_t>(i));
      WorkerScratch& ws = scratch_[slot];
      // The cheap non-throwing precheck screens out stale-nonce /
      // underfunded attempts (common under speculation: the transaction
      // depends on an earlier in-block transaction) before the throwing
      // path would allocate an exception and error strings.
      if (account::precheck_transaction(base, txs[i], tracked) != nullptr) {
        writes_[i].clear();
        return;
      }
      ws.overlay.reset(base);
      try {
        account::apply_transaction_into(ws.overlay, txs[i], tracked,
                                        report.receipts[i], ws.tracker);
        valid_[i] = 1;
        ws.overlay.export_writes(writes_[i]);
      } catch (const ValidationError&) {
        // Unreachable when the precheck is in lockstep; kept as a belt so
        // a future check added to apply_transaction fails soft here.
        writes_[i].clear();
      }
    };
    pool_.parallel_for_slots(txs.size(), body);
  }

  /// Conflict detection over the recorded access sets: a slot is
  /// contended when it has at least one writer and at least two distinct
  /// accessors.
  ///
  /// Soundness subtlety: an attempt that failed validation (stale nonce)
  /// has no recorded access sets beyond its sender, yet it WILL touch
  /// state when the sequential phase re-runs it. Any transaction that
  /// could overlap with it must therefore also go to the bin; the
  /// a-priori address components bound that overlap, so invalid attempts
  /// poison their whole predicted component.
  void detect_conflicts(std::span<const account::AccountTx> txs,
                        ExecutionReport& report,
                        const PredictedGroups& groups,
                        obs::ContentionSink* sink, obs::Tracer* tracer) {
    // Per-tx abort attribution scratch: which taxonomy reason sent the
    // transaction to the bin, and (when one exists) the specific key.
    abort_reason_.assign(txs.size(), kNoAbort);
    abort_key_.resize(std::max(abort_key_.size(), txs.size()));
    abort_has_key_.assign(txs.size(), 0);
    const auto attribute = [&](std::uint32_t tx, obs::AbortReason reason,
                               const account::SlotAccess* key) {
      abort_reason_[tx] = static_cast<unsigned char>(reason);
      if (key != nullptr) {
        abort_key_[tx] = *key;
        abort_has_key_[tx] = 1;
      }
    };
    if (policy_ == AbortPolicy::kAllConflicted) {
      slot_agg_.clear();
      const auto touch = [&](const account::SlotAccess& slot,
                             std::uint32_t tx, bool write) {
        SlotAgg& agg = slot_agg_[slot];
        if (agg.last_tx != tx) {
          agg.last_tx = tx;
          ++agg.accessors;
        }
        if (write) ++agg.writers;
      };
      for (std::uint32_t i = 0; i < txs.size(); ++i) {
        if (valid_[i]) {
          for (const auto& r : report.receipts[i].reads) touch(r, i, false);
          for (const auto& w : report.receipts[i].writes) touch(w, i, true);
        } else {
          const account::SlotAccess sender{
              txs[i].from, account::AccessTracker::kBalanceKey};
          touch(sender, i, false);
          touch(sender, i, true);
        }
      }
      const auto contended = [&](const account::SlotAccess& slot) {
        const SlotAgg* agg = slot_agg_.find(slot);
        return agg != nullptr && agg->writers >= 1 && agg->accessors >= 2;
      };
      for (std::uint32_t i = 0; i < txs.size(); ++i) {
        if (valid_[i]) {
          const account::SlotAccess* hit = nullptr;
          for (const auto& r : report.receipts[i].reads) {
            if (contended(r)) {
              hit = &r;
              break;
            }
          }
          if (hit == nullptr) {
            for (const auto& w : report.receipts[i].writes) {
              if (contended(w)) {
                hit = &w;
                break;
              }
            }
          }
          conflicted_[i] = hit != nullptr ? 1 : 0;
          if (hit != nullptr) {
            attribute(i, obs::AbortReason::kSpecConflict, hit);
          }
        } else {
          const account::SlotAccess sender{
              txs[i].from, account::AccessTracker::kBalanceKey};
          conflicted_[i] = contended(sender) ? 1 : 0;
        }
      }
      // Invalid attempts poison their predicted component.
      poisoned_components_.assign(groups.num_components(), 0);
      for (std::size_t i = 0; i < txs.size(); ++i) {
        if (!valid_[i]) poisoned_components_[groups.component_of_tx[i]] = 1;
      }
      for (std::uint32_t i = 0; i < txs.size(); ++i) {
        if (poisoned_components_[groups.component_of_tx[i]]) {
          conflicted_[i] = 1;
          // Cause-based attribution: the whole poisoned component rides on
          // the invalid attempt, keyed by the invalid tx's sender balance
          // where that is the tx itself.
          if (!valid_[i]) {
            const account::SlotAccess sender{
                txs[i].from, account::AccessTracker::kBalanceKey};
            attribute(i, obs::AbortReason::kInvalidAttempt, &sender);
          } else if (abort_reason_[i] == kNoAbort) {
            attribute(i, obs::AbortReason::kInvalidAttempt, nullptr);
          }
        }
      }
    } else {
      // First writer wins: walk in block order, committing a transaction
      // only when its accesses avoid (a) every previously committed write,
      // (b) every slot a previously *binned* transaction touched (the bin
      // re-runs after the commits, out of block order), and (c) the
      // predicted component of any earlier invalid attempt.
      committed_writes_.clear();
      poisoned_slots_.clear();
      poisoned_components_.assign(groups.num_components(), 0);
      for (std::uint32_t i = 0; i < txs.size(); ++i) {
        const account::SlotAccess sender{
            txs[i].from, account::AccessTracker::kBalanceKey};
        const std::span<const account::SlotAccess> reads =
            valid_[i] ? std::span<const account::SlotAccess>(
                            report.receipts[i].reads)
                      : std::span<const account::SlotAccess>(&sender, 1);
        const std::span<const account::SlotAccess> writes =
            valid_[i] ? std::span<const account::SlotAccess>(
                            report.receipts[i].writes)
                      : std::span<const account::SlotAccess>(&sender, 1);
        bool clash = !valid_[i] ||
                     poisoned_components_[groups.component_of_tx[i]] != 0;
        if (!valid_[i]) {
          attribute(i, obs::AbortReason::kInvalidAttempt, &sender);
        } else if (clash) {
          attribute(i, obs::AbortReason::kInvalidAttempt, nullptr);
        }
        if (!clash) {
          for (const auto& r : reads) {
            if (committed_writes_.contains(r) ||
                poisoned_slots_.contains(r)) {
              clash = true;
              attribute(i, obs::AbortReason::kFwwPoisoned, &r);
              break;
            }
          }
        }
        if (!clash) {
          for (const auto& w : writes) {
            if (committed_writes_.contains(w) ||
                poisoned_slots_.contains(w)) {
              clash = true;
              attribute(i, obs::AbortReason::kFwwPoisoned, &w);
              break;
            }
          }
        }
        if (clash) {
          conflicted_[i] = 1;
          if (!valid_[i]) {
            poisoned_components_[groups.component_of_tx[i]] = 1;
          } else {
            for (const auto& r : reads) poisoned_slots_.insert(r);
            for (const auto& w : writes) poisoned_slots_.insert(w);
          }
        } else {
          for (const auto& w : writes) committed_writes_.insert(w);
        }
      }
    }
    // Invalid attempts always re-run.
    for (std::size_t i = 0; i < txs.size(); ++i) {
      if (!valid_[i]) conflicted_[i] = 1;
    }
    // Surface the attribution: taxonomy tallies in the report, instants
    // on the trace, key-level counts into the contention sink (when one
    // is installed through the Scope).
    for (std::uint32_t i = 0; i < txs.size(); ++i) {
      if (abort_reason_[i] == kNoAbort) continue;
      const auto reason = static_cast<obs::AbortReason>(abort_reason_[i]);
      ++report.abort_reasons[static_cast<std::size_t>(reason)];
      TXCONC_INSTANT_T(tracer, obs::names::kEvAbort, obs::names::kCatExec,
                       static_cast<std::int64_t>(i));
      if (sink != nullptr) {
        if (abort_has_key_[i]) {
          sink->record_abort(reason, obs::touch_key(abort_key_[i]));
        } else {
          sink->record_abort(reason);
        }
      }
    }
  }

  const char* label_;  // string literal; doubles as the trace process
  ThreadPool pool_;
  AbortPolicy policy_;

  // Cross-block scratch: capacity persists, contents are per-block.
  std::vector<WorkerScratch> scratch_;
  std::vector<account::WriteLog> writes_;    // per tx
  std::vector<unsigned char> valid_;         // per tx
  std::vector<unsigned char> conflicted_;    // per tx
  std::vector<char> poisoned_components_;    // per predicted component
  SlotAccessTable<SlotAgg> slot_agg_;
  SlotAccessSet committed_writes_;
  SlotAccessSet poisoned_slots_;

  // Abort attribution scratch (per tx; capacity persists across blocks).
  static constexpr unsigned char kNoAbort = 0xff;
  std::vector<unsigned char> abort_reason_;
  std::vector<account::SlotAccess> abort_key_;
  std::vector<unsigned char> abort_has_key_;
};

class OracleExecutor final : public BlockExecutor {
 public:
  explicit OracleExecutor(unsigned num_threads)
      : pool_(num_threads, "oracle-speculative") {}

  ExecutionReport execute_block(
      account::StateDb& state,
      std::span<const account::AccountTx> transactions,
      const account::RuntimeConfig& config) override {
    obs::Tracer* const tracer = obs::tracer(config.obs);
    obs::Registry* const registry = obs::metrics(config.obs);
    const obs::ThreadProcessScope proc("oracle-speculative");
    const obs::CausalSpan block_span(
        tracer, obs::names::kSpanExecuteBlock, obs::names::kCatExec,
        config.trace, static_cast<std::int64_t>(transactions.size()));
    emit_thread_budget(tracer, pool_.size() + 1);
    SchedTrace trace(&pool_);

    ExecutionReport report;
    report.executor = name();
    report.num_txs = transactions.size();
    report.receipts.resize(transactions.size());

    ensure_worker_scratch(scratch_, pool_.size());
    conflicted_.assign(transactions.size(), 0);

    // Preprocessing: predict the conflict set a priori (cost K in the
    // model). A transaction whose predicted component holds >= 2
    // transactions goes straight to the sequential phase and is executed
    // exactly once.
    PredictedGroups groups;
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanPredict,
                                 obs::names::kCatExec, block_span.context());
      groups = predict_groups(transactions, state, tracer);
    }
    {
      // The oracle's schedule is the predicted component partition itself:
      // singleton components run concurrently, the rest go to the bin.
      const obs::CausalSpan span(tracer, obs::names::kSpanSchedule,
                                 obs::names::kCatExec, block_span.context());
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        conflicted_[i] =
            groups.component_sizes[groups.component_of_tx[i]] >= 2 ? 1 : 0;
      }
    }

    // Concurrent phase over the predicted-independent transactions. Txs
    // in distinct predicted components touch disjoint addresses, so each
    // worker slot accumulates its share into ONE private overlay and the
    // commit below merges per worker — a handful of batched merges
    // instead of one overlay allocation + merge per transaction.
    account::RuntimeConfig tracked = config;
    tracked.track_accesses = true;
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanExecute,
                                 obs::names::kCatExec, block_span.context(),
                                 static_cast<std::int64_t>(transactions.size()));
      for (WorkerScratch& ws : scratch_) ws.overlay.reset(state);
      const ThreadPool::SlotFn body = [&](unsigned slot, std::size_t i) {
        if (conflicted_[i]) return;
        const TXCONC_SPAN_T(tracer, obs::names::kSpanAttempt,
                            obs::names::kCatExec,
                            static_cast<std::int64_t>(i));
        WorkerScratch& ws = scratch_[slot];
        account::apply_transaction_into(ws.overlay, transactions[i], tracked,
                                        report.receipts[i], ws.tracker);
      };
      pool_.parallel_for_slots(transactions.size(), body);
    }
    std::size_t concurrent = 0;
    for (std::size_t i = 0; i < transactions.size(); ++i) {
      if (!conflicted_[i]) ++concurrent;
    }
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanCommit,
                                 obs::names::kCatExec, block_span.context());
      const account::JournalPause pause(state);
      for (WorkerScratch& ws : scratch_) {
        if (ws.overlay.dirty()) ws.overlay.apply_to(state);
      }
    }
    trace.phase_boundary();

    // Sequential phase, in block order. Stall = apply work only (see the
    // blind executor's bin).
    double stall_seconds = 0.0;
    std::size_t bin = 0;
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanSeqBin,
                                 obs::names::kCatExec, block_span.context());
      account::AccessTracker& bin_tracker = scratch_[0].tracker;
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        if (!conflicted_[i]) continue;
        ++bin;
        const TXCONC_SPAN_T(tracer, obs::names::kSpanTx,
                            obs::names::kCatExec,
                            static_cast<std::int64_t>(i));
        if (registry != nullptr) {
          const auto apply_start = std::chrono::steady_clock::now();
          account::apply_transaction_into(state, transactions[i], config,
                                          report.receipts[i], bin_tracker);
          stall_seconds += std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - apply_start)
                               .count();
        } else {
          account::apply_transaction_into(state, transactions[i], config,
                                          report.receipts[i], bin_tracker);
        }
      }
      state.flush_journal();
    }
    if (registry != nullptr) {
      registry->histogram(obs::names::kMetricExecConflictStallUs)
          .observe(stall_seconds * 1e6);
      obs::Histogram& attempts_hist =
          registry->histogram(obs::names::kMetricExecAttemptsPerTx);
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        attempts_hist.observe(1.0);  // the oracle never re-executes
      }
    }

    report.sequential_txs = bin;
    report.executions = transactions.size();
    const unsigned cores = pool_.size();
    const std::size_t phase1 =
        concurrent == 0 ? 0 : (concurrent + cores - 1) / cores;
    // K: one unit per transaction scanned during prediction, amortized to
    // a small constant per block in practice; charge 1 unit.
    const double k_preprocess = transactions.empty() ? 0.0 : 1.0;
    report.simulated_units =
        k_preprocess + static_cast<double>(phase1 + bin);
    report.simulated_speedup =
        report.simulated_units > 0.0
            ? static_cast<double>(transactions.size()) / report.simulated_units
            : 1.0;
    report.wall_seconds = trace.finish(report.sched);
    record_block_metrics(registry, report);
    return report;
  }

  std::string name() const override { return "oracle-speculative"; }

 private:
  ThreadPool pool_;
  std::vector<WorkerScratch> scratch_;
  std::vector<unsigned char> conflicted_;  // per tx
};

}  // namespace

std::unique_ptr<BlockExecutor> make_speculative_executor(unsigned num_threads,
                                                         AbortPolicy policy) {
  return std::make_unique<SpeculativeExecutor>(num_threads, policy);
}

std::unique_ptr<BlockExecutor> make_oracle_executor(unsigned num_threads) {
  return std::make_unique<OracleExecutor>(num_threads);
}

}  // namespace txconc::exec
