// Two-phase speculative executors (blind and oracle variants).
#include <chrono>
#include <memory>
#include <unordered_map>

#include "account/state.h"
#include "common/error.h"
#include "core/components.h"
#include "exec/executor.h"
#include "exec/predict.h"
#include "exec/sched_trace.h"
#include "exec/thread_pool.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace txconc::exec {

namespace {

using SlotHash = account::SlotAccessHash;

/// One speculative attempt: the overlay it ran on and what it touched.
struct Attempt {
  std::unique_ptr<account::OverlayState> overlay;
  account::Receipt receipt;
  bool valid = false;
  std::vector<account::SlotAccess> reads;
  std::vector<account::SlotAccess> writes;
};

/// Phase 1: run every transaction concurrently against copy-on-write
/// overlays over the frozen base state.
std::vector<Attempt> speculate(ThreadPool& pool, const account::StateDb& base,
                               std::span<const account::AccountTx> txs,
                               const account::RuntimeConfig& config,
                               obs::Tracer* tracer) {
  account::RuntimeConfig tracked = config;
  tracked.track_accesses = true;

  std::vector<Attempt> attempts(txs.size());
  pool.parallel_for(txs.size(), [&](std::size_t i) {
    const TXCONC_SPAN_T(tracer, "attempt", "exec",
                        static_cast<std::int64_t>(i));
    Attempt& attempt = attempts[i];
    attempt.overlay = std::make_unique<account::OverlayState>(base);
    try {
      attempt.receipt =
          account::apply_transaction(*attempt.overlay, txs[i], tracked);
      attempt.valid = true;
      attempt.reads = attempt.receipt.reads;
      attempt.writes = attempt.receipt.writes;
    } catch (const ValidationError&) {
      // Stale nonce / balance against the frozen base: the transaction
      // depends on an earlier in-block transaction. Record the sender
      // accesses we know it must make so conflict detection links it to
      // its same-sender predecessors.
      attempt.valid = false;
      const account::SlotAccess sender{
          txs[i].from, account::AccessTracker::kBalanceKey};
      attempt.reads = {sender};
      attempt.writes = {sender};
    }
  });
  return attempts;
}

/// Conflict detection over the recorded access sets: a slot is contended
/// when it has at least one writer and at least two distinct accessors.
///
/// Soundness subtlety: an attempt that failed validation (stale nonce)
/// has no recorded access sets beyond its sender, yet it WILL touch state
/// when the sequential phase re-runs it. Any transaction that could
/// overlap with it must therefore also go to the bin; the a-priori
/// address components bound that overlap, so invalid attempts poison
/// their whole predicted component.
std::vector<bool> detect_conflicts(const std::vector<Attempt>& attempts,
                                   const PredictedGroups& groups,
                                   AbortPolicy policy) {
  struct SlotUse {
    std::vector<std::uint32_t> readers;
    std::vector<std::uint32_t> writers;
  };
  std::unordered_map<account::SlotAccess, SlotUse, SlotHash> slots;
  for (std::uint32_t i = 0; i < attempts.size(); ++i) {
    for (const auto& r : attempts[i].reads) slots[r].readers.push_back(i);
    for (const auto& w : attempts[i].writes) slots[w].writers.push_back(i);
  }

  std::vector<bool> conflicted(attempts.size(), false);
  if (policy == AbortPolicy::kAllConflicted) {
    for (const auto& [slot, use] : slots) {
      if (use.writers.empty()) continue;
      const std::size_t accessors = use.writers.size() + use.readers.size();
      // readers may also appear as writers; contention needs a second
      // distinct accessor beyond a lone writer.
      if (use.writers.size() >= 2 ||
          (use.writers.size() == 1 && accessors >= 2 &&
           !(use.readers.size() == 1 &&
             use.readers[0] == use.writers[0]))) {
        for (std::uint32_t w : use.writers) conflicted[w] = true;
        for (std::uint32_t r : use.readers) conflicted[r] = true;
      }
    }
    // Invalid attempts poison their predicted component.
    std::vector<char> poisoned(groups.num_components(), 0);
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      if (!attempts[i].valid) poisoned[groups.component_of_tx[i]] = 1;
    }
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      if (poisoned[groups.component_of_tx[i]]) conflicted[i] = true;
    }
  } else {
    // First writer wins: walk in block order, committing a transaction
    // only when its accesses avoid (a) every previously committed write,
    // (b) every slot a previously *binned* transaction touched (the bin
    // re-runs after the commits, out of block order), and (c) the
    // predicted component of any earlier invalid attempt.
    std::unordered_map<account::SlotAccess, bool, SlotHash> committed_writes;
    std::unordered_map<account::SlotAccess, bool, SlotHash> poisoned_slots;
    std::vector<char> poisoned_components(groups.num_components(), 0);
    for (std::uint32_t i = 0; i < attempts.size(); ++i) {
      bool clash = !attempts[i].valid ||
                   poisoned_components[groups.component_of_tx[i]] != 0;
      if (!clash) {
        for (const auto& r : attempts[i].reads) {
          if (committed_writes.contains(r) || poisoned_slots.contains(r)) {
            clash = true;
            break;
          }
        }
      }
      if (!clash) {
        for (const auto& w : attempts[i].writes) {
          if (committed_writes.contains(w) || poisoned_slots.contains(w)) {
            clash = true;
            break;
          }
        }
      }
      if (clash) {
        conflicted[i] = true;
        if (!attempts[i].valid) {
          poisoned_components[groups.component_of_tx[i]] = 1;
        } else {
          for (const auto& r : attempts[i].reads) {
            poisoned_slots.emplace(r, true);
          }
          for (const auto& w : attempts[i].writes) {
            poisoned_slots.emplace(w, true);
          }
        }
      } else {
        for (const auto& w : attempts[i].writes) {
          committed_writes.emplace(w, true);
        }
      }
    }
  }
  // Invalid attempts always re-run.
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    if (!attempts[i].valid) conflicted[i] = true;
  }
  return conflicted;
}

class SpeculativeExecutor final : public BlockExecutor {
 public:
  SpeculativeExecutor(unsigned num_threads, AbortPolicy policy)
      : label_(policy == AbortPolicy::kAllConflicted ? "speculative"
                                                     : "speculative-fww"),
        pool_(num_threads, label_),
        policy_(policy) {}

  ExecutionReport execute_block(
      account::StateDb& state,
      std::span<const account::AccountTx> transactions,
      const account::RuntimeConfig& config) override {
    obs::Tracer* const tracer = obs::tracer(config.obs);
    obs::Registry* const registry = obs::metrics(config.obs);
    const obs::ThreadProcessScope proc(label_);
    const obs::CausalSpan block_span(
        tracer, "execute_block", "exec", config.trace,
        static_cast<std::int64_t>(transactions.size()));
    SchedTrace trace(&pool_);

    ExecutionReport report;
    report.executor = name();
    report.num_txs = transactions.size();
    report.receipts.resize(transactions.size());

    // Phase 1 (concurrent, speculative). The a-priori components are only
    // consulted to bound what failed attempts could touch; the happy path
    // stays purely speculative as in [17].
    PredictedGroups groups;
    {
      const obs::CausalSpan span(tracer, "predict", "exec",
                                 block_span.context());
      groups = predict_groups(transactions, state);
    }
    std::vector<Attempt> attempts;
    {
      const obs::CausalSpan span(tracer, "execute", "exec",
                                 block_span.context(),
                                 static_cast<std::int64_t>(transactions.size()));
      attempts = speculate(pool_, state, transactions, config, tracer);
    }
    std::vector<bool> conflicted;
    {
      const obs::CausalSpan span(tracer, "schedule", "exec",
                                 block_span.context());
      conflicted = detect_conflicts(attempts, groups, policy_);
    }

    // Commit the non-conflicted overlays (their access sets are disjoint
    // from everyone else's, so block order is immaterial).
    {
      const obs::CausalSpan span(tracer, "commit", "exec",
                                 block_span.context());
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        if (conflicted[i]) continue;
        attempts[i].overlay->apply_to(state);
        report.receipts[i] = std::move(attempts[i].receipt);
      }
    }
    trace.phase_boundary();

    // Phase 2 (sequential bin, in block order).
    const auto bin_start = std::chrono::steady_clock::now();
    std::size_t bin = 0;
    {
      const obs::CausalSpan span(tracer, "seq_bin", "exec",
                                 block_span.context());
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        if (!conflicted[i]) continue;
        ++bin;
        const TXCONC_SPAN_T(tracer, "tx", "exec",
                            static_cast<std::int64_t>(i));
        report.receipts[i] =
            account::apply_transaction(state, transactions[i], config);
      }
      state.flush_journal();
    }
    if (registry != nullptr) {
      // Conflict stall: wall time the block spent serialized in the bin.
      registry->histogram("exec.conflict_stall_us")
          .observe(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - bin_start)
                       .count());
      obs::Histogram& attempts_hist =
          registry->histogram("exec.attempts_per_tx");
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        attempts_hist.observe(conflicted[i] ? 2.0 : 1.0);
      }
    }

    report.sequential_txs = bin;
    report.executions = transactions.size() + bin;
    const unsigned cores = pool_.size();
    const std::size_t phase1 =
        transactions.empty()
            ? 0
            : (transactions.size() + cores - 1) / cores;
    report.simulated_units = static_cast<double>(phase1 + bin);
    report.simulated_speedup =
        report.simulated_units > 0.0
            ? static_cast<double>(transactions.size()) / report.simulated_units
            : 1.0;
    report.wall_seconds = trace.finish(report.sched);
    record_block_metrics(registry, report);
    return report;
  }

  std::string name() const override { return label_; }

 private:
  const char* label_;  // string literal; doubles as the trace process
  ThreadPool pool_;
  AbortPolicy policy_;
};

class OracleExecutor final : public BlockExecutor {
 public:
  explicit OracleExecutor(unsigned num_threads)
      : pool_(num_threads, "oracle-speculative") {}

  ExecutionReport execute_block(
      account::StateDb& state,
      std::span<const account::AccountTx> transactions,
      const account::RuntimeConfig& config) override {
    obs::Tracer* const tracer = obs::tracer(config.obs);
    obs::Registry* const registry = obs::metrics(config.obs);
    const obs::ThreadProcessScope proc("oracle-speculative");
    const obs::CausalSpan block_span(
        tracer, "execute_block", "exec", config.trace,
        static_cast<std::int64_t>(transactions.size()));
    SchedTrace trace(&pool_);

    ExecutionReport report;
    report.executor = name();
    report.num_txs = transactions.size();
    report.receipts.resize(transactions.size());

    // Preprocessing: predict the conflict set a priori (cost K in the
    // model). A transaction whose predicted component holds >= 2
    // transactions goes straight to the sequential phase and is executed
    // exactly once.
    PredictedGroups groups;
    std::vector<bool> conflicted(transactions.size(), false);
    {
      const obs::CausalSpan span(tracer, "predict", "exec",
                                 block_span.context());
      groups = predict_groups(transactions, state);
    }
    {
      // The oracle's schedule is the predicted component partition itself:
      // singleton components run concurrently, the rest go to the bin.
      const obs::CausalSpan span(tracer, "schedule", "exec",
                                 block_span.context());
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        conflicted[i] =
            groups.component_sizes[groups.component_of_tx[i]] >= 2;
      }
    }

    // Concurrent phase over the predicted-independent transactions.
    account::RuntimeConfig tracked = config;
    tracked.track_accesses = true;
    std::vector<std::unique_ptr<account::OverlayState>> overlays(
        transactions.size());
    {
      const obs::CausalSpan span(tracer, "execute", "exec",
                                 block_span.context(),
                                 static_cast<std::int64_t>(transactions.size()));
      pool_.parallel_for(transactions.size(), [&](std::size_t i) {
        if (conflicted[i]) return;
        const TXCONC_SPAN_T(tracer, "attempt", "exec",
                            static_cast<std::int64_t>(i));
        overlays[i] = std::make_unique<account::OverlayState>(state);
        report.receipts[i] =
            account::apply_transaction(*overlays[i], transactions[i], tracked);
      });
    }
    std::size_t concurrent = 0;
    {
      const obs::CausalSpan span(tracer, "commit", "exec",
                                 block_span.context());
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        if (conflicted[i]) continue;
        ++concurrent;
        overlays[i]->apply_to(state);
      }
    }
    trace.phase_boundary();

    // Sequential phase, in block order.
    const auto bin_start = std::chrono::steady_clock::now();
    std::size_t bin = 0;
    {
      const obs::CausalSpan span(tracer, "seq_bin", "exec",
                                 block_span.context());
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        if (!conflicted[i]) continue;
        ++bin;
        const TXCONC_SPAN_T(tracer, "tx", "exec",
                            static_cast<std::int64_t>(i));
        report.receipts[i] =
            account::apply_transaction(state, transactions[i], config);
      }
      state.flush_journal();
    }
    if (registry != nullptr) {
      registry->histogram("exec.conflict_stall_us")
          .observe(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - bin_start)
                       .count());
      obs::Histogram& attempts_hist =
          registry->histogram("exec.attempts_per_tx");
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        attempts_hist.observe(1.0);  // the oracle never re-executes
      }
    }

    report.sequential_txs = bin;
    report.executions = transactions.size();
    const unsigned cores = pool_.size();
    const std::size_t phase1 =
        concurrent == 0 ? 0 : (concurrent + cores - 1) / cores;
    // K: one unit per transaction scanned during prediction, amortized to
    // a small constant per block in practice; charge 1 unit.
    const double k_preprocess = transactions.empty() ? 0.0 : 1.0;
    report.simulated_units =
        k_preprocess + static_cast<double>(phase1 + bin);
    report.simulated_speedup =
        report.simulated_units > 0.0
            ? static_cast<double>(transactions.size()) / report.simulated_units
            : 1.0;
    report.wall_seconds = trace.finish(report.sched);
    record_block_metrics(registry, report);
    return report;
  }

  std::string name() const override { return "oracle-speculative"; }

 private:
  ThreadPool pool_;
};

}  // namespace

std::unique_ptr<BlockExecutor> make_speculative_executor(unsigned num_threads,
                                                         AbortPolicy policy) {
  return std::make_unique<SpeculativeExecutor>(num_threads, policy);
}

std::unique_ptr<BlockExecutor> make_oracle_executor(unsigned num_threads) {
  return std::make_unique<OracleExecutor>(num_threads);
}

}  // namespace txconc::exec
