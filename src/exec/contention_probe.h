// Glue between the contention explainer (obs/contention.h) and the
// execution layer: a BlockObserver that drives one ContentionObserver per
// replayed block and feeds it the a-priori prediction closures
// (exec::predicted_addresses) the obs layer cannot compute itself — the
// closures cross the layer boundary as data, keeping obs free of any exec
// dependency.
//
// Wiring (see tools/txconc_contend for the full example):
//   ContentionProbe probe;
//   replayer.set_block_observer(&probe);
//   replayer.set_access_recorder(probe.recorder());
//   scope.contention = probe.sink();   // engines attribute aborts here
//   replayer.set_obs(&scope);
#pragma once

#include <vector>

#include "exec/replay.h"
#include "obs/contention.h"

namespace txconc::exec {

class ContentionProbe final : public BlockObserver {
 public:
  explicit ContentionProbe(
      std::size_t sketch_k = obs::SpaceSavingSketch::kDefaultK)
      : observer_(sketch_k) {}

  /// Install through HistoryReplayer::set_access_recorder (or
  /// RuntimeConfig::recorder) so every execution attempt's observed
  /// access sets reach the sketch.
  const account::AccessRecorder* recorder() const { return &observer_; }
  /// Point obs::Scope::contention here so engines can attribute aborts.
  obs::ContentionSink* sink() { return &observer_.sink(); }

  /// Skip the per-transaction closure walk (prediction-quality metrics
  /// come out as "no prediction"); on by default.
  void set_predict(bool on) { predict_ = on; }

  // BlockObserver: bracket one executed block.
  void before_block(std::span<const account::AccountTx> txs,
                    const account::StateDb& state) override;
  void after_block(const ExecutionReport& report) override;

  /// One BlockContention per executed block, in replay order. The
  /// engine_abort_totals come from the report (authoritative), the rest
  /// from the observer's measured view.
  const std::vector<obs::BlockContention>& blocks() const { return blocks_; }
  void clear() { blocks_.clear(); }

 private:
  obs::ContentionObserver observer_;
  bool predict_ = true;
  std::vector<Address> closure_;  // per-tx scratch
  std::vector<obs::BlockContention> blocks_;
};

}  // namespace txconc::exec
