// Per-worker reusable execution scratch for the parallel engines.
//
// An executor owns one ThreadPool for its whole lifetime and runs one
// block at a time, so every per-attempt object — the copy-on-write
// overlay, the access tracker, the conflict tables — can live across
// blocks and be epoch-reset instead of reallocated. Workers index the
// scratch by the slot id of ThreadPool::parallel_for_slots (slot 0 is
// the caller), which guarantees two concurrently running grains never
// share an entry.
#pragma once

#include <vector>

#include "account/state.h"
#include "account/types.h"
#include "common/flat_table.h"

namespace txconc::exec {

/// One worker slot's private execution state.
struct WorkerScratch {
  account::OverlayState overlay;  ///< rebased per attempt (reset())
  account::AccessTracker tracker;
};

/// Flat conflict-set containers keyed like the engines' old
/// unordered_maps; clear() is O(1) and steady-state inserts are
/// allocation-free (see common/flat_table.h).
using SlotAccessSet =
    common::FlatSet<account::SlotAccess, account::SlotAccessHash>;

template <typename Value>
using SlotAccessTable =
    common::FlatTable<account::SlotAccess, Value, account::SlotAccessHash>;

/// Grow the scratch pool to cover every slot of `pool_size` workers plus
/// the caller. Existing entries (and their warmed capacity) survive.
inline void ensure_worker_scratch(std::vector<WorkerScratch>& scratch,
                                  unsigned pool_size) {
  if (scratch.size() < pool_size + 1u) scratch.resize(pool_size + 1u);
}

}  // namespace txconc::exec
