// History replay: re-execute a generated account history against any
// BlockExecutor, reproducing the generator's out-of-band top-ups so the
// same transactions stay valid. Shared by the model-validation and
// engine-figure benches and the executor equivalence tests.
#pragma once

#include <memory>

#include "exec/executor.h"
#include "workload/account_workload.h"

namespace txconc::obs {
struct Scope;  // tracer + metrics bundle, see obs/scope.h
}

namespace txconc::exec {

/// Render a replay spec as the environment assignment a human pastes to
/// reproduce a failure: "TXCONC_REPRO='<spec_text>'". Single quotes in
/// the spec are shell-escaped. Shared by the conformance divergence
/// reports and the audit violation details so the two harnesses cannot
/// drift apart on the repro syntax.
std::string format_repro_env(const std::string& spec_text);

/// Observes each replayed block around its execution. before_block fires
/// after the out-of-band top-ups (so the state it sees is exactly the
/// pre-execution state), after_block right after the executor returns.
/// The audit harness uses this to scope one AccessAuditor block per
/// replayed block without the replayer depending on the audit layer.
class BlockObserver {
 public:
  virtual ~BlockObserver() = default;
  virtual void before_block(std::span<const account::AccountTx> txs,
                            const account::StateDb& state) = 0;
  virtual void after_block(const ExecutionReport& report) = 0;
};

/// Replays an account-model history block-by-block through an executor.
///
/// The replayer clones the generator's genesis (contracts + state) by
/// re-running a twin generator with the same seed, then feeds each block's
/// transactions to the executor after applying the generator's out-of-band
/// funding rules (balance top-ups, token seeding). Fees are disabled: the
/// generator manages balances outside the fee flow.
class HistoryReplayer {
 public:
  /// @param skip_blocks  fast-forward this many blocks before replay
  ///                     starts (their effects come from the twin
  ///                     generator, not the executor under test).
  HistoryReplayer(workload::ChainProfile profile, std::uint64_t seed,
                  std::uint64_t skip_blocks = 0);

  /// Execute the next block through the executor; returns its report.
  ExecutionReport replay_next(BlockExecutor& executor);

  /// Blocks remaining in the history.
  std::uint64_t remaining() const;

  const account::StateDb& state() const { return state_; }
  const account::RuntimeConfig& config() const { return config_; }

  /// Route a fault injector into the replay config. The conformance
  /// harness points every engine of one differential pair at the same
  /// seeded injector so they trap identical transactions.
  void set_fault_injector(const account::FaultInjector* injector) {
    config_.fault_injector = injector;
  }

  /// Route an access recorder into the replay config (the audit harness
  /// installs its AccessAuditor here; see src/audit).
  void set_access_recorder(const account::AccessRecorder* recorder) {
    config_.recorder = recorder;
  }

  /// Observe each block around its execution (nullptr disables).
  void set_block_observer(BlockObserver* observer) { observer_ = observer; }

  /// Route an observability scope (tracer + metrics) into the replay
  /// config; executors emit their spans and block metrics through it.
  void set_obs(const obs::Scope* scope) { config_.obs = scope; }

 private:
  void apply_out_of_band(std::span<const account::AccountTx> txs);

  workload::AccountWorkloadGenerator generator_;
  account::StateDb state_;
  account::RuntimeConfig config_;
  BlockObserver* observer_ = nullptr;
  std::uint64_t replayed_ = 0;
  std::uint64_t limit_ = 0;
};

}  // namespace txconc::exec
