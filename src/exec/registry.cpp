// The executor registry: the single list of engine families the
// conformance harness, benches and tools iterate over.
#include "exec/executor.h"

#include "common/error.h"
#include "exec/block_stm.h"

namespace txconc::exec {

const std::vector<ExecutorSpec>& executor_registry() {
  static const std::vector<ExecutorSpec> registry = {
      {"sequential", false,
       [](unsigned) { return make_sequential_executor(); }},
      {"speculative", true,
       [](unsigned n) { return make_speculative_executor(n); }},
      {"speculative-fww", true,
       [](unsigned n) {
         return make_speculative_executor(n, AbortPolicy::kFirstWriterWins);
       }},
      {"oracle-speculative", true,
       [](unsigned n) { return make_oracle_executor(n); }},
      {"group-lpt", true, [](unsigned n) { return make_group_executor(n); }},
      {"group-list", true,
       [](unsigned n) { return make_group_executor(n, /*use_lpt=*/false); }},
      {"occ", true, [](unsigned n) { return make_occ_executor(n); }},
      {"block-stm", true,
       [](unsigned n) { return make_block_stm_executor(n); },
       /*multi_version=*/true},
  };
  return registry;
}

std::unique_ptr<BlockExecutor> make_executor(const std::string& name,
                                             unsigned num_threads) {
  for (const ExecutorSpec& spec : executor_registry()) {
    if (spec.name == name) return spec.make(num_threads);
  }
  std::string known;
  for (const ExecutorSpec& spec : executor_registry()) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  throw UsageError("unknown executor '" + name + "' (known: " + known + ")");
}

}  // namespace txconc::exec
