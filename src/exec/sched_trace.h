// Scheduling-overhead recorder shared by the parallel executors: diffs
// ThreadPool counters around one block execution and splits the wall time
// into a concurrent and a serial phase for the ExecutionReport.
#pragma once

#include <chrono>

#include "exec/executor.h"
#include "exec/thread_pool.h"

namespace txconc::exec {

class SchedTrace {
 public:
  explicit SchedTrace(const ThreadPool& pool)
      : pool_(pool),
        before_(pool.stats()),
        start_(std::chrono::steady_clock::now()),
        boundary_(start_) {}

  /// Two-phase executors: everything before this call is phase 1,
  /// everything after is phase 2.
  void phase_boundary() {
    boundary_ = std::chrono::steady_clock::now();
    boundary_set_ = true;
  }

  /// Wave-style executors attribute explicit segment durations instead.
  void add_phase1(double seconds) { extra_phase1_ += seconds; }
  void add_phase2(double seconds) { extra_phase2_ += seconds; }

  /// Fill the breakdown; returns total wall seconds since construction.
  double finish(SchedulingBreakdown& out) const {
    const auto now = std::chrono::steady_clock::now();
    const ThreadPoolStats after = pool_.stats();
    out.pool_tasks = after.tasks_run - before_.tasks_run;
    out.grains = after.grains_total - before_.grains_total;
    out.grains_caller_run =
        after.grains_caller_run - before_.grains_caller_run;
    out.phase1_seconds = extra_phase1_;
    out.phase2_seconds = extra_phase2_;
    if (boundary_set_) {
      out.phase1_seconds +=
          std::chrono::duration<double>(boundary_ - start_).count();
      out.phase2_seconds +=
          std::chrono::duration<double>(now - boundary_).count();
    }
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  const ThreadPool& pool_;
  ThreadPoolStats before_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point boundary_;
  bool boundary_set_ = false;
  double extra_phase1_ = 0.0;
  double extra_phase2_ = 0.0;
};

}  // namespace txconc::exec
