// Scheduling-overhead recorder shared by every executor: diffs ThreadPool
// counters around one block execution and splits the wall time into a
// concurrent and a serial phase for the ExecutionReport. The sequential
// baseline passes a null pool so its phase attribution flows through the
// exact same path as the parallel engines (comparable breakdowns).
#pragma once

#include <chrono>
#include <string>

#include "exec/executor.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace txconc::exec {

class SchedTrace {
 public:
  explicit SchedTrace(const ThreadPool& pool) : SchedTrace(&pool) {}

  /// Pool-less executors (sequential) pass nullptr: the task/grain
  /// counters stay zero but the phase timers still work.
  explicit SchedTrace(const ThreadPool* pool)
      : pool_(pool),
        before_(pool ? pool->stats() : ThreadPoolStats{}),
        start_(std::chrono::steady_clock::now()),
        boundary_(start_) {}

  /// Two-phase executors: everything before this call is phase 1,
  /// everything after is phase 2.
  void phase_boundary() {
    boundary_ = std::chrono::steady_clock::now();
    boundary_set_ = true;
  }

  /// Wave-style executors attribute explicit segment durations instead.
  void add_phase1(double seconds) { extra_phase1_ += seconds; }
  void add_phase2(double seconds) { extra_phase2_ += seconds; }

  /// Fill the breakdown; returns total wall seconds since construction.
  double finish(SchedulingBreakdown& out) const {
    const auto now = std::chrono::steady_clock::now();
    if (pool_ != nullptr) {
      const ThreadPoolStats after = pool_->stats();
      out.pool_tasks = after.tasks_run - before_.tasks_run;
      out.grains = after.grains_total - before_.grains_total;
      out.grains_caller_run =
          after.grains_caller_run - before_.grains_caller_run;
    }
    out.phase1_seconds = extra_phase1_;
    out.phase2_seconds = extra_phase2_;
    if (boundary_set_) {
      out.phase1_seconds +=
          std::chrono::duration<double>(boundary_ - start_).count();
      out.phase2_seconds +=
          std::chrono::duration<double>(now - boundary_).count();
    }
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  const ThreadPool* pool_;
  ThreadPoolStats before_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point boundary_;
  bool boundary_set_ = false;
  double extra_phase1_ = 0.0;
  double extra_phase2_ = 0.0;
};

/// Fold one finished block report into the metrics registry. Every
/// executor calls this with the RuntimeConfig's obs registry (null-safe)
/// so per-block counters and phase histograms accumulate uniformly.
inline void record_block_metrics(obs::Registry* registry,
                                 const ExecutionReport& report) {
  if (registry == nullptr) return;
  registry->counter(obs::names::kMetricExecBlocks).add(1);
  registry->counter(obs::names::kMetricExecTxs).add(report.num_txs);
  registry->counter(obs::names::kMetricExecExecutions)
      .add(report.executions);
  registry->counter(obs::names::kMetricExecSequentialTxs)
      .add(report.sequential_txs);
  registry->histogram(obs::names::kMetricExecBlockWallUs)
      .observe(report.wall_seconds * 1e6);
  registry->histogram(obs::names::kMetricExecPhase1Us)
      .observe(report.sched.phase1_seconds * 1e6);
  registry->histogram(obs::names::kMetricExecPhase2Us)
      .observe(report.sched.phase2_seconds * 1e6);
  registry->histogram(obs::names::kMetricExecSeqBinTxs)
      .observe(static_cast<double>(report.sequential_txs));
  for (std::size_t r = 0; r < obs::kNumAbortReasons; ++r) {
    if (report.abort_reasons[r] == 0) continue;
    registry
        ->counter(std::string(obs::names::kMetricExecAbortPrefix) +
                  obs::abort_reason_name(static_cast<obs::AbortReason>(r)))
        .add(report.abort_reasons[r]);
  }
}

/// Emit the thread-budget instant the critical-path profiler keys on:
/// arg = participants in this block execution (pool workers + the
/// caller). Every executor calls this right inside its execute_block
/// span so the trace carries the denominator of the threads x wall
/// attribution budget (obs/critpath.h).
inline void emit_thread_budget(obs::Tracer* tracer,
                               std::size_t participants) {
  TXCONC_INSTANT_T(tracer, obs::names::kEvThreads, obs::names::kCatExec,
                   static_cast<std::int64_t>(participants));
}

}  // namespace txconc::exec
