#include "exec/contention_probe.h"

#include "exec/predict.h"

namespace txconc::exec {

void ContentionProbe::before_block(std::span<const account::AccountTx> txs,
                                   const account::StateDb& state) {
  observer_.begin_block(txs);
  if (!predict_) return;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    closure_ = predicted_addresses(txs[i], state);
    observer_.set_predicted(i, closure_);
  }
}

void ContentionProbe::after_block(const ExecutionReport& report) {
  obs::BlockContention block = observer_.finish_block(report.receipts);
  block.engine_abort_totals = report.abort_reasons;
  blocks_.push_back(std::move(block));
}

}  // namespace txconc::exec
