#include "exec/schedule_sim.h"

#include <numeric>

#include "common/error.h"

namespace txconc::exec {

namespace {

SimOutcome outcome_for(std::size_t x, double time_units) {
  SimOutcome out;
  out.time_units = time_units;
  out.speedup =
      x == 0 || time_units <= 0.0
          ? 1.0
          : static_cast<double>(x) / time_units;
  return out;
}

}  // namespace

SimOutcome simulate_speculative(std::size_t x, std::size_t num_conflicted,
                                unsigned cores) {
  if (cores == 0) throw UsageError("simulate_speculative: cores must be > 0");
  if (num_conflicted > x) {
    throw UsageError("simulate_speculative: conflicted > total");
  }
  if (x == 0) return outcome_for(0, 0.0);
  const std::size_t phase1 = (x + cores - 1) / cores;  // ceil(x/n)
  const double total = static_cast<double>(phase1 + num_conflicted);
  return outcome_for(x, total);
}

SimOutcome simulate_oracle(std::size_t x, std::size_t num_conflicted,
                           unsigned cores, double k_preprocess) {
  if (cores == 0) throw UsageError("simulate_oracle: cores must be > 0");
  if (num_conflicted > x) {
    throw UsageError("simulate_oracle: conflicted > total");
  }
  if (k_preprocess < 0.0) throw UsageError("simulate_oracle: negative K");
  if (x == 0) return outcome_for(0, 0.0);
  const std::size_t concurrent = x - num_conflicted;
  const std::size_t phase1 =
      concurrent == 0 ? 0 : (concurrent + cores - 1) / cores;
  const double total = k_preprocess +
                       static_cast<double>(phase1 + num_conflicted);
  return outcome_for(x, total);
}

SimOutcome simulate_group(std::span<const double> component_sizes,
                          unsigned cores, double k_preprocess, bool use_lpt) {
  if (cores == 0) throw UsageError("simulate_group: cores must be > 0");
  if (k_preprocess < 0.0) throw UsageError("simulate_group: negative K");
  const double x =
      std::accumulate(component_sizes.begin(), component_sizes.end(), 0.0);
  const core::Schedule schedule =
      use_lpt ? core::schedule_lpt(component_sizes, cores)
              : core::schedule_list(component_sizes, cores);
  return outcome_for(static_cast<std::size_t>(x),
                     k_preprocess + schedule.makespan);
}

}  // namespace txconc::exec
