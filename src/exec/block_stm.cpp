// Block-STM executor: multi-version optimistic execution with dynamic
// dependency discovery and targeted re-execution (see block_stm.h).
//
// The moving parts, bottom-up:
//  * MultiVersionStore — sharded (key -> sorted version chain) map; reads
//    resolve to the highest lower-index write, aborts flip entries to
//    ESTIMATE markers in place.
//  * MvStateView — a read-only State over (store, base) that records every
//    read with the version it observed and throws EstimateAbort on
//    markers. Workers stack the usual OverlayState on top, so the write
//    side (journaling, rollback, export) is the engines' shared code.
//  * PublishSink — a write-only State that replays a WriteLog into the
//    store as (tx, incarnation) versions.
//  * TxSlot + the cooperative scheduler — per-transaction status machine
//    (Ready / Executing / Suspended / Executed) driven by two monotone
//    task cursors (execution in dispatch order, validation in block
//    order) that aborts rewind. Work-count accounting (`active_`)
//    guarantees the done check cannot fire while any task that might
//    rewind a cursor or resume a dependent is still in flight: every
//    rewind happens before its task releases `active_`.
//
// Correctness of the final state rests on two invariants:
//  1. every fall-through read is recorded with the version it resolved
//     (no deduplication — a later read of the same key may observe a
//     different version, and validation must check both); and
//  2. completion requires a full validation sweep after the last
//     (re-)execution: finish_execution always rewinds the validation
//     cursor at or below its index, so the block only quiesces when every
//     final incarnation validated against every other final incarnation.
#include "exec/block_stm.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "account/runtime.h"
#include "common/error.h"
#include "exec/sched_trace.h"
#include "exec/scratch.h"
#include "exec/thread_pool.h"
#include "obs/names.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace txconc::exec {

// ------------------------------------------------------ MultiVersionStore

MultiVersionStore::Chain* MultiVersionStore::Shard::find_chain(
    const MvKey& key) {
  const std::uint32_t* slot = index.find(key);
  if (slot == nullptr || *slot == 0) return nullptr;
  return &chains[*slot - 1];
}

const MultiVersionStore::Chain* MultiVersionStore::Shard::find_chain(
    const MvKey& key) const {
  const std::uint32_t* slot = index.find(key);
  if (slot == nullptr || *slot == 0) return nullptr;
  return &chains[*slot - 1];
}

MultiVersionStore::Chain& MultiVersionStore::Shard::chain_for(
    const MvKey& key) {
  std::uint32_t& slot = index[key];
  if (slot == 0) {
    if (chains_used == chains.size()) chains.emplace_back();
    Chain& chain = chains[chains_used];
    chain.clear();  // recycled from an earlier block; capacity retained
    slot = static_cast<std::uint32_t>(++chains_used);
    return chain;
  }
  return chains[slot - 1];
}

MultiVersionStore::Resolution MultiVersionStore::resolve(
    const MvKey& key, std::uint32_t reader_tx) const {
  Resolution out;
  if (key.channel == MvChannel::kCode) {
    MutexLock lock(code_mu_);
    auto it = code_versions_.find(key.addr);
    if (it == code_versions_.end()) return out;
    // Highest tx strictly below the reader (chains are tx-sorted).
    const CodeVersion* best = nullptr;
    for (const CodeVersion& v : it->second) {
      if (v.tx >= reader_tx) break;
      best = &v;
    }
    if (best == nullptr) return out;
    out.found = true;
    out.estimate = best->estimate;
    out.tx = best->tx;
    out.incarnation = best->incarnation;
    out.code = best->code;
    return out;
  }
  const Shard& shard = shard_for(key);
  MutexLock lock(shard.mu);
  const Chain* chain = shard.find_chain(key);
  if (chain == nullptr || chain->empty()) return out;
  // Binary search for the first version with tx >= reader_tx; the
  // predecessor (if any) is the read target.
  auto it = std::lower_bound(
      chain->begin(), chain->end(), reader_tx,
      [](const Version& v, std::uint32_t r) { return v.tx < r; });
  if (it == chain->begin()) return out;
  --it;
  out.found = true;
  out.estimate = it->estimate;
  out.tx = it->tx;
  out.incarnation = it->incarnation;
  out.value = it->value;
  return out;
}

void MultiVersionStore::publish(const MvKey& key, std::uint32_t tx,
                                std::uint32_t incarnation,
                                std::uint64_t value) {
  if (key.channel == MvChannel::kCode) {
    throw UsageError("MultiVersionStore::publish: use publish_code");
  }
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mu);
  Chain& chain = shard.chain_for(key);
  auto it = std::lower_bound(
      chain.begin(), chain.end(), tx,
      [](const Version& v, std::uint32_t t) { return v.tx < t; });
  if (it != chain.end() && it->tx == tx) {
    if (incarnation < it->incarnation) {
      throw UsageError(
          "MultiVersionStore::publish: incarnation must not decrease");
    }
    *it = Version{tx, incarnation, value, false};
    return;
  }
  chain.insert(it, Version{tx, incarnation, value, false});
}

void MultiVersionStore::publish_code(
    const Address& addr, std::uint32_t tx, std::uint32_t incarnation,
    std::shared_ptr<const account::ContractCode> code) {
  MutexLock lock(code_mu_);
  std::vector<CodeVersion>& chain = code_versions_[addr];
  auto it = std::lower_bound(
      chain.begin(), chain.end(), tx,
      [](const CodeVersion& v, std::uint32_t t) { return v.tx < t; });
  if (it != chain.end() && it->tx == tx) {
    if (incarnation < it->incarnation) {
      throw UsageError(
          "MultiVersionStore::publish_code: incarnation must not decrease");
    }
    *it = CodeVersion{tx, incarnation, std::move(code), false};
    return;
  }
  chain.insert(it, CodeVersion{tx, incarnation, std::move(code), false});
}

void MultiVersionStore::mark_estimate(const MvKey& key, std::uint32_t tx) {
  if (key.channel == MvChannel::kCode) {
    MutexLock lock(code_mu_);
    auto it = code_versions_.find(key.addr);
    if (it != code_versions_.end()) {
      for (CodeVersion& v : it->second) {
        if (v.tx == tx) {
          v.estimate = true;
          return;
        }
      }
    }
    throw UsageError("MultiVersionStore::mark_estimate: no such version");
  }
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mu);
  Chain* chain = shard.find_chain(key);
  if (chain != nullptr) {
    for (Version& v : *chain) {
      if (v.tx == tx) {
        v.estimate = true;
        return;
      }
    }
  }
  throw UsageError("MultiVersionStore::mark_estimate: no such version");
}

bool MultiVersionStore::remove(const MvKey& key, std::uint32_t tx) {
  if (key.channel == MvChannel::kCode) {
    MutexLock lock(code_mu_);
    auto it = code_versions_.find(key.addr);
    if (it == code_versions_.end()) return false;
    for (auto vit = it->second.begin(); vit != it->second.end(); ++vit) {
      if (vit->tx == tx) {
        it->second.erase(vit);
        return true;
      }
    }
    return false;
  }
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mu);
  Chain* chain = shard.find_chain(key);
  if (chain == nullptr) return false;
  for (auto it = chain->begin(); it != chain->end(); ++it) {
    if (it->tx == tx) {
      chain->erase(it);
      return true;
    }
  }
  return false;
}

void MultiVersionStore::reset() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.index.clear();  // epoch bump; chain vectors stay warm
    shard.chains_used = 0;
  }
  MutexLock lock(code_mu_);
  code_versions_.clear();
}

namespace {

using account::AccountTx;
using account::StorageKey;

/// Map a multi-version coordinate onto the contention sketch's key space
/// (the channel splits line up by design; obs/contention.h).
obs::TouchKey touch_key_of(const MvKey& key) {
  switch (key.channel) {
    case MvChannel::kBalance:
      return obs::TouchKey{key.addr, 0, obs::TouchChannel::kBalance};
    case MvChannel::kNonce:
      return obs::TouchKey{key.addr, 0, obs::TouchChannel::kNonce};
    case MvChannel::kCode:
      return obs::TouchKey{key.addr, 0, obs::TouchChannel::kCode};
    case MvChannel::kStorage:
      break;
  }
  return obs::TouchKey{key.addr, key.key, obs::TouchChannel::kStorage};
}

/// One recorded fall-through read: which version the execution observed
/// for `key` (writer_tx == MultiVersionStore::kBase for base-state reads).
struct ReadRecord {
  MvKey key;
  std::uint32_t writer_tx = 0;
  std::uint32_t writer_inc = 0;
};

// ------------------------------------------------------------ MvStateView

/// Read-only State over (multi-version store, frozen base). Every read is
/// appended to the attempt's read set — deliberately without
/// deduplication: two reads of one key can observe different versions
/// when a concurrent publish lands between them, and validation must see
/// (and reject) exactly that.
class MvStateView final : public account::State {
 public:
  void begin(const MultiVersionStore* store, const account::State* base,
             std::uint32_t reader_tx, std::vector<ReadRecord>* reads) {
    store_ = store;
    base_ = base;
    reader_ = reader_tx;
    reads_ = reads;
    reads_->clear();
    pinned_codes_.clear();
  }

  std::uint64_t balance(const Address& addr) const override {
    const MvKey key{addr, 0, MvChannel::kBalance};
    const MultiVersionStore::Resolution r = record_read(key);
    return r.found ? r.value : base_->balance(addr);
  }
  std::uint64_t nonce(const Address& addr) const override {
    const MvKey key{addr, 0, MvChannel::kNonce};
    const MultiVersionStore::Resolution r = record_read(key);
    return r.found ? r.value : base_->nonce(addr);
  }
  std::uint64_t storage(const Address& addr, StorageKey skey) const override {
    const MvKey key{addr, skey, MvChannel::kStorage};
    const MultiVersionStore::Resolution r = record_read(key);
    return r.found ? r.value : base_->storage(addr, skey);
  }
  const account::ContractCode* code(const Address& addr) const override {
    const MvKey key{addr, 0, MvChannel::kCode};
    const MultiVersionStore::Resolution r = record_read(key);
    if (!r.found) return base_->code(addr);
    if (r.code == nullptr) return nullptr;
    pinned_codes_.push_back(r.code);  // outlive the resolving shard lock
    return pinned_codes_.back().get();
  }

  // The view is strictly the read layer; all writes and rollback happen in
  // the OverlayState stacked on top of it.
  void set_balance(const Address&, std::uint64_t) override { read_only(); }
  void set_nonce(const Address&, std::uint64_t) override { read_only(); }
  void set_code(const Address&, account::ContractCode) override {
    read_only();
  }
  void set_storage(const Address&, StorageKey, std::uint64_t) override {
    read_only();
  }
  account::Snapshot snapshot() const override {
    read_only();
    return 0;
  }
  void revert(account::Snapshot) override { read_only(); }

 private:
  [[noreturn]] static void read_only() {
    throw UsageError("MvStateView is read-only (writes go to the overlay)");
  }

  MultiVersionStore::Resolution record_read(const MvKey& key) const {
    const MultiVersionStore::Resolution r = store_->resolve(key, reader_);
    if (r.estimate) throw EstimateAbort{r.tx, key};
    reads_->push_back(
        {key, r.found ? r.tx : MultiVersionStore::kBase, r.incarnation});
    return r;
  }

  const MultiVersionStore* store_ = nullptr;
  const account::State* base_ = nullptr;
  std::uint32_t reader_ = 0;
  std::vector<ReadRecord>* reads_ = nullptr;
  mutable std::vector<std::shared_ptr<const account::ContractCode>>
      pinned_codes_;
};

// ------------------------------------------------------------ PublishSink

/// Write-only State adapter: WriteLog::apply_to(sink) becomes a publish of
/// every written key as version (tx, incarnation), collecting the key set
/// for the wrote-new-path diff against the previous incarnation.
class PublishSink final : public account::State {
 public:
  void begin(MultiVersionStore* store, std::uint32_t tx,
             std::uint32_t incarnation, std::vector<MvKey>* keys) {
    store_ = store;
    tx_ = tx;
    incarnation_ = incarnation;
    keys_ = keys;
    keys_->clear();
  }

  void set_balance(const Address& addr, std::uint64_t value) override {
    publish({addr, 0, MvChannel::kBalance}, value);
  }
  void set_nonce(const Address& addr, std::uint64_t value) override {
    publish({addr, 0, MvChannel::kNonce}, value);
  }
  void set_storage(const Address& addr, StorageKey skey,
                   std::uint64_t value) override {
    publish({addr, skey, MvChannel::kStorage}, value);
  }
  void set_code(const Address& addr, account::ContractCode code) override {
    keys_->push_back({addr, 0, MvChannel::kCode});
    store_->publish_code(
        addr, tx_, incarnation_,
        std::make_shared<const account::ContractCode>(std::move(code)));
  }

  std::uint64_t balance(const Address&) const override { write_only(); }
  std::uint64_t nonce(const Address&) const override { write_only(); }
  std::uint64_t storage(const Address&, StorageKey) const override {
    write_only();
  }
  const account::ContractCode* code(const Address&) const override {
    write_only();
  }
  account::Snapshot snapshot() const override { write_only(); }
  void revert(account::Snapshot) override { write_only(); }

 private:
  [[noreturn]] static void write_only() {
    throw UsageError("PublishSink is write-only (a WriteLog replay target)");
  }

  void publish(const MvKey& key, std::uint64_t value) {
    keys_->push_back(key);
    store_->publish(key, tx_, incarnation_, value);
  }

  MultiVersionStore* store_ = nullptr;
  std::uint32_t tx_ = 0;
  std::uint32_t incarnation_ = 0;
  std::vector<MvKey>* keys_ = nullptr;
};

// ----------------------------------------------------- scheduler + engine

/// Per-transaction scheduler state.
struct TxSlot {
  enum class Status : std::uint8_t {
    kReady,      ///< wants (re-)execution; picked up via try_incarnate
    kExecuting,  ///< one worker owns it
    kSuspended,  ///< blocked on an ESTIMATE; parked in a dependents list
    kExecuted,   ///< current incarnation completed; validation may abort it
  };

  Mutex mu;
  Status status GUARDED_BY(mu) = Status::kReady;
  std::uint32_t incarnation GUARDED_BY(mu) = 0;
  /// Suspended transactions waiting for this one to finish executing.
  std::vector<std::uint32_t> dependents GUARDED_BY(mu);
  /// Keys the current incarnation published (the abort/diff working set).
  std::vector<MvKey> last_writes GUARDED_BY(mu);
  /// The incarnation failed the validity checks (stale nonce/balance
  /// against its view) and published nothing; if final, the commit phase
  /// reproduces the sequential ValidationError.
  bool validity_failed GUARDED_BY(mu) = false;
  /// Read set of the current incarnation. NOT guarded: written lock-free
  /// by the executing worker (status kExecuting excludes everyone else),
  /// read only under mu with status == kExecuted — which also blocks the
  /// next incarnation from starting, since try_incarnate needs mu.
  std::vector<ReadRecord> reads;
};

class BlockStmExecutor final : public BlockExecutor {
 public:
  BlockStmExecutor(unsigned num_threads, BlockStmOptions options)
      : pool_(num_threads, "block-stm"), options_(std::move(options)) {}

  std::string name() const override { return "block-stm"; }

  ExecutionReport execute_block(
      account::StateDb& state, std::span<const AccountTx> transactions,
      const account::RuntimeConfig& config) override {
    obs::Tracer* const tracer = obs::tracer(config.obs);
    obs::Registry* const registry = obs::metrics(config.obs);
    const obs::ThreadProcessScope proc("block-stm");
    const obs::CausalSpan block_span(
        tracer, obs::names::kSpanExecuteBlock, obs::names::kCatExec,
        config.trace, static_cast<std::int64_t>(transactions.size()));
    emit_thread_budget(tracer,
                       options_.deterministic ? 1 : pool_.size() + 1);
    SchedTrace trace(&pool_);

    ExecutionReport report;
    report.executor = name();
    report.num_txs = transactions.size();
    report.receipts.resize(transactions.size());

    {
      // Block-STM predicts nothing a-priori — dependencies are discovered
      // by executing — but the empty span keeps the predict / schedule /
      // execute / commit phase contract every parallel engine shares
      // (bench/ablation_engines validates the set from the trace).
      const obs::CausalSpan span(tracer, obs::names::kSpanPredict,
                                 obs::names::kCatExec, block_span.context());
    }

    n_ = transactions.size();
    txs_ = transactions;
    config_ = &config;
    base_ = &state;
    report_ = &report;
    tracer_ = tracer;
    sink_ = obs::contention(config.obs);
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanSchedule,
                                 obs::names::kCatExec, block_span.context());
      prepare_block();
    }

    const auto exec_start = std::chrono::steady_clock::now();
    if (n_ > 0) {
      const obs::CausalSpan span(tracer, obs::names::kSpanExecute,
                                 obs::names::kCatExec, block_span.context());
      if (options_.deterministic) {
        worker_body(0);
      } else {
        pool_.parallel_for_slots(
            pool_.size() + 1,
            [this](unsigned slot, std::size_t) { worker_body(slot); },
            /*grain=*/1);
      }
    }
    const auto exec_end = std::chrono::steady_clock::now();
    trace.add_phase1(
        std::chrono::duration<double>(exec_end - exec_start).count());

    {
      const obs::CausalSpan span(tracer, obs::names::kSpanCommit,
                                 obs::names::kCatExec, block_span.context());
      commit(state);
    }
    trace.add_phase2(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - exec_end)
                         .count());

    // ordering: relaxed — workers have joined by now (the scheduler
    // barrier), so the counter is quiescent; this is a plain read-back.
    report.executions = executions_.load(std::memory_order_relaxed);
    report.tx_attempts = attempts_;
    report.tx_incarnations.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      TxSlot& slot = slots_[i];
      MutexLock lock(slot.mu);
      report.tx_incarnations[i] = slot.incarnation + 1;
      if (slot.incarnation > 0) report.sequential_txs += 1;
    }
    report.abort_reasons[static_cast<std::size_t>(
        obs::AbortReason::kBlockStmEstimateAbort)] =
        // ordering: relaxed — quiescent read-back after the workers joined.
        estimate_aborts_.load(std::memory_order_relaxed);
    report.abort_reasons[static_cast<std::size_t>(
        obs::AbortReason::kBlockStmValidationFail)] =
        // ordering: relaxed — quiescent read-back, as above.
        aborts_.load(std::memory_order_relaxed);
    report.simulated_units = std::ceil(
        static_cast<double>(report.executions) / pool_.size());
    report.simulated_speedup =
        report.simulated_units > 0.0
            ? static_cast<double>(n_) / report.simulated_units
            : 1.0;
    report.wall_seconds = trace.finish(report.sched);

    if (registry != nullptr) {
      // The stall analog for Block-STM is the serial commit walk (phase 2
      // by construction), mirroring occ's attribution.
      registry->histogram(obs::names::kMetricExecConflictStallUs)
          .observe(report.sched.phase2_seconds * 1e6);
      obs::Histogram& attempts_hist =
          registry->histogram(obs::names::kMetricExecAttemptsPerTx);
      for (const std::uint32_t a : attempts_) {
        attempts_hist.observe(static_cast<double>(a));
      }
      registry->counter(obs::names::kMetricExecBlockStmValidations)
          // ordering: relaxed — quiescent read-back, as above.
          .add(validations_.load(std::memory_order_relaxed));
      registry->counter(obs::names::kMetricExecBlockStmAborts)
          // ordering: relaxed — quiescent read-back, as above.
          .add(aborts_.load(std::memory_order_relaxed));
    }
    record_block_metrics(registry, report);
    return report;
  }

 private:
  /// Per-slot engine scratch beyond the shared WorkerScratch.
  struct WorkerState {
    MvStateView view;
    PublishSink sink;
    std::vector<MvKey> new_writes;
    std::vector<std::uint32_t> resume;
  };

  void decrease(std::atomic<std::uint64_t>& cursor, std::uint64_t target) {
    std::uint64_t cur = cursor.load(std::memory_order_seq_cst);
    while (cur > target) {
      if (cursor.compare_exchange_weak(cur, target,
                                       std::memory_order_seq_cst)) {
        // Every successful rewind bumps the monotone counter AFTER the
        // cursor moves; the done check's double-collect of this counter
        // (see worker_loop) is what makes quiescence detection sound.
        rewind_cnt_.fetch_add(1, std::memory_order_seq_cst);
        break;
      }
    }
  }

  void prepare_block() {
    store_.reset();
    ensure_worker_scratch(scratch_, pool_.size());
    if (wstate_.size() < scratch_.size()) wstate_.resize(scratch_.size());
    if (writes_.size() < n_) writes_.resize(n_);
    attempts_.assign(n_, 0);
    if (slots_cap_ < n_) {
      slots_ = std::make_unique<TxSlot[]>(n_);
      slots_cap_ = n_;
    }
    for (std::size_t i = 0; i < n_; ++i) {
      TxSlot& slot = slots_[i];
      MutexLock lock(slot.mu);
      slot.status = TxSlot::Status::kReady;
      slot.incarnation = 0;
      slot.dependents.clear();
      slot.last_writes.clear();
      slot.validity_failed = false;
      slot.reads.clear();
    }

    order_.resize(n_);
    pos_of_.resize(n_);
    if (options_.first_dispatch.empty()) {
      for (std::size_t p = 0; p < n_; ++p) {
        order_[p] = static_cast<std::uint32_t>(p);
      }
    } else {
      if (options_.first_dispatch.size() != n_) {
        throw UsageError(
            "BlockStmOptions::first_dispatch must cover the whole block");
      }
      order_ = options_.first_dispatch;
      std::vector<char> seen(n_, 0);
      for (const std::uint32_t j : order_) {
        if (j >= n_ || seen[j] != 0) {
          throw UsageError(
              "BlockStmOptions::first_dispatch must be a permutation");
        }
        seen[j] = 1;
      }
    }
    for (std::size_t p = 0; p < n_; ++p) {
      pos_of_[order_[p]] = static_cast<std::uint32_t>(p);
    }

    exec_cursor_.store(0, std::memory_order_seq_cst);
    val_cursor_.store(options_.validate ? 0 : n_, std::memory_order_seq_cst);
    active_.store(0, std::memory_order_seq_cst);
    rewind_cnt_.store(0, std::memory_order_seq_cst);
    done_.store(n_ == 0, std::memory_order_seq_cst);
    // ordering: relaxed — statistical counters reset before the workers
    // start; the parallel_for hand-off publishes them.
    executions_.store(0, std::memory_order_relaxed);
    validations_.store(0, std::memory_order_relaxed);   // ordering: ditto
    aborts_.store(0, std::memory_order_relaxed);        // ordering: ditto
    estimate_aborts_.store(0, std::memory_order_relaxed);  // ordering: ditto
  }

  /// One scheduler participant: claim and run tasks until the block
  /// quiesces. Any exception marks the run done (so the other workers
  /// drain) and rethrows through parallel_for's aggregation.
  void worker_body(unsigned slot) {
    try {
      worker_loop(slot);
    } catch (...) {
      done_.store(true, std::memory_order_seq_cst);
      throw;
    }
  }

  void worker_loop(unsigned slot) {
    // Stall visibility: open while this participant spins without a
    // claimable task (everything executed, validations pending behind
    // suspended readers), closed the moment it claims work. The
    // critical-path profiler books the covered time as dependency wait.
    obs::ToggleSpan wait(tracer_, obs::names::kSpanWait,
                         obs::names::kCatExec);
    while (!done_.load(std::memory_order_seq_cst)) {
      active_.fetch_add(1, std::memory_order_seq_cst);
      bool ran_task = false;
      for (;;) {
        const std::uint64_t v = val_cursor_.load(std::memory_order_seq_cst);
        const std::uint64_t e = exec_cursor_.load(std::memory_order_seq_cst);
        if (v >= n_ && e >= n_) break;
        if (v < e || e >= n_) {
          const std::uint64_t idx =
              val_cursor_.fetch_add(1, std::memory_order_seq_cst);
          if (idx >= n_) continue;
          wait.close();
          run_validation(static_cast<std::uint32_t>(idx));
          ran_task = true;
          break;
        }
        const std::uint64_t pos =
            exec_cursor_.fetch_add(1, std::memory_order_seq_cst);
        if (pos >= n_) continue;
        const std::uint32_t j = order_[pos];
        std::uint32_t incarnation = 0;
        if (!try_incarnate(j, incarnation)) continue;
        wait.close();
        run_execution(slot, j, incarnation);
        ran_task = true;
        break;
      }
      active_.fetch_sub(1, std::memory_order_seq_cst);
      if (!ran_task) {
        // Idle: the block is done when both cursors are exhausted and no
        // task that could rewind them is in flight. Reading the cursors,
        // then active_, is not enough on its own: a task still holding
        // active_ can rewind a cursor after we sampled it and release
        // active_ before we sample that, making a rewound transaction look
        // complete. The double-collect of rewind_cnt_ around the whole
        // check closes that window (Block-STM's decrease_cnt mechanism):
        // any rewind landing inside the bracket changes the counter, and a
        // rewind whose counter bump lands after the second collect belongs
        // to a task whose active_ release also lands after it — so the
        // active_ == 0 read would have failed instead.
        const std::uint64_t rewinds =
            rewind_cnt_.load(std::memory_order_seq_cst);
        if (exec_cursor_.load(std::memory_order_seq_cst) >= n_ &&
            val_cursor_.load(std::memory_order_seq_cst) >= n_ &&
            active_.load(std::memory_order_seq_cst) == 0 &&
            rewind_cnt_.load(std::memory_order_seq_cst) == rewinds) {
          done_.store(true, std::memory_order_seq_cst);
          break;
        }
        wait.open(static_cast<std::int64_t>(slot));
        std::this_thread::yield();
      }
    }
  }

  bool try_incarnate(std::uint32_t j, std::uint32_t& incarnation_out) {
    TxSlot& slot = slots_[j];
    MutexLock lock(slot.mu);
    if (slot.status != TxSlot::Status::kReady) return false;
    slot.status = TxSlot::Status::kExecuting;
    incarnation_out = slot.incarnation;
    attempts_[j] += 1;  // serialized by slot.mu across incarnations
    return true;
  }

  void run_execution(unsigned slot_id, std::uint32_t j,
                     std::uint32_t incarnation) {
    const TXCONC_SPAN_T(tracer_, obs::names::kSpanAttempt,
                        obs::names::kCatExec, static_cast<std::int64_t>(j));
    const std::uint64_t total =
        // ordering: relaxed — statistical counter; the livelock cap only
        // needs an eventually-accurate total, not cross-thread ordering.
        executions_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (total > 64 * static_cast<std::uint64_t>(n_) + 1024) {
      throw Error("block-stm: execution count exceeded the livelock cap");
    }
    WorkerScratch& ws = scratch_[slot_id];
    WorkerState& wx = wstate_[slot_id];
    TxSlot& slot = slots_[j];
    wx.view.begin(&store_, base_, j, &slot.reads);
    try {
      if (account::precheck_transaction(wx.view, txs_[j], *config_) !=
          nullptr) {
        finish_execution(slot_id, j, incarnation, /*validity_failed=*/true,
                         nullptr);
        return;
      }
      ws.overlay.reset(wx.view);
      account::apply_transaction_into(ws.overlay, txs_[j], *config_,
                                      report_->receipts[j], ws.tracker);
      ws.overlay.export_writes(writes_[j]);
      finish_execution(slot_id, j, incarnation, /*validity_failed=*/false,
                       &writes_[j]);
    } catch (const EstimateAbort& blocked) {
      // ordering: relaxed — statistical counter, read quiescently.
      estimate_aborts_.fetch_add(1, std::memory_order_relaxed);
      TXCONC_INSTANT_T(tracer_, obs::names::kEvAbort, obs::names::kCatExec,
                       static_cast<std::int64_t>(j));
      if (sink_ != nullptr) {
        sink_->record_abort(obs::AbortReason::kBlockStmEstimateAbort,
                            touch_key_of(blocked.key));
      }
      suspend_on(j, blocked.blocking_tx);
    } catch (const ValidationError&) {
      // precheck passed but a concurrent publish changed the view before
      // apply re-checked validity; both reads are recorded, so validation
      // decides whether this outcome sticks.
      finish_execution(slot_id, j, incarnation, /*validity_failed=*/true,
                       nullptr);
    }
  }

  void finish_execution(unsigned slot_id, std::uint32_t j,
                        std::uint32_t incarnation, bool validity_failed,
                        const account::WriteLog* log) {
    WorkerState& wx = wstate_[slot_id];
    TxSlot& slot = slots_[j];
    bool wrote_new_path = false;
    {
      MutexLock lock(slot.mu);
      wx.sink.begin(&store_, j, incarnation, &wx.new_writes);
      if (log != nullptr) log->apply_to(wx.sink);
      for (const MvKey& old : slot.last_writes) {
        if (std::find(wx.new_writes.begin(), wx.new_writes.end(), old) ==
            wx.new_writes.end()) {
          store_.remove(old, j);
        }
      }
      for (const MvKey& key : wx.new_writes) {
        if (std::find(slot.last_writes.begin(), slot.last_writes.end(),
                      key) == slot.last_writes.end()) {
          wrote_new_path = true;
          break;
        }
      }
      slot.last_writes.assign(wx.new_writes.begin(), wx.new_writes.end());
      slot.validity_failed = validity_failed;
      slot.status = TxSlot::Status::kExecuted;
      wx.resume.assign(slot.dependents.begin(), slot.dependents.end());
      slot.dependents.clear();
    }
    // Resume the transactions suspended on us. This happens before the
    // enclosing task releases active_, so the done check cannot fire with
    // a resumable transaction still parked.
    std::uint64_t min_pos = ~std::uint64_t{0};
    for (const std::uint32_t d : wx.resume) {
      TxSlot& dep = slots_[d];
      MutexLock lock(dep.mu);
      if (dep.status == TxSlot::Status::kSuspended) {
        dep.status = TxSlot::Status::kReady;
        min_pos = std::min<std::uint64_t>(min_pos, pos_of_[d]);
      }
    }
    if (min_pos != ~std::uint64_t{0}) decrease(exec_cursor_, min_pos);
    if (options_.validate) {
      if (wrote_new_path) {
        // New keys may invalidate any higher reader: sweep from here.
        decrease(val_cursor_, j);
      } else {
        // Same write-set shape: only this transaction needs (re)checking —
        // the abort that caused this re-execution already queued the
        // suffix, and stale readers of the old values fail against the
        // replaced versions when that sweep reaches them.
        run_validation(j);
      }
    }
  }

  void suspend_on(std::uint32_t j, std::uint32_t blocker) {
    TxSlot& blk = slots_[blocker];
    bool registered = false;
    {
      // Lock order: blocker < j always (reads resolve strictly below the
      // reader), matching the lower-index-first discipline.
      MutexLock blocker_lock(blk.mu);
      if (blk.status != TxSlot::Status::kExecuted) {
        TxSlot& slot = slots_[j];
        MutexLock self_lock(slot.mu);
        slot.status = TxSlot::Status::kSuspended;
        blk.dependents.push_back(j);
        registered = true;
      }
    }
    if (registered) {
      // Mark the stall for the profiler: this reader is parked until the
      // blocking transaction finishes (arg = the blocker's index).
      TXCONC_INSTANT_T(tracer_, obs::names::kEvSuspend,
                       obs::names::kCatExec,
                       static_cast<std::int64_t>(blocker));
    }
    if (!registered) {
      // The blocker finished between our read and now: retry immediately.
      TxSlot& slot = slots_[j];
      {
        MutexLock lock(slot.mu);
        slot.status = TxSlot::Status::kReady;
      }
      decrease(exec_cursor_, pos_of_[j]);
    }
  }

  void run_validation(std::uint32_t j) {
    const TXCONC_SPAN_T(tracer_, obs::names::kSpanValidate,
                        obs::names::kCatExec, static_cast<std::int64_t>(j));
    TxSlot& slot = slots_[j];
    // Held for the whole check: keeps the read set stable (no new
    // incarnation can start) and makes concurrent validators of the same
    // index resolve to exactly one abort.
    MutexLock lock(slot.mu);
    if (slot.status != TxSlot::Status::kExecuted) return;
    // ordering: relaxed — statistical counter, read quiescently.
    validations_.fetch_add(1, std::memory_order_relaxed);
    bool valid = true;
    const MvKey* bad = nullptr;
    for (const ReadRecord& rec : slot.reads) {
      const MultiVersionStore::Resolution r = store_.resolve(rec.key, j);
      const bool match =
          !r.estimate &&
          (r.found ? (rec.writer_tx == r.tx && rec.writer_inc == r.incarnation)
                   : (rec.writer_tx == MultiVersionStore::kBase));
      if (!match) {
        valid = false;
        bad = &rec.key;
        break;
      }
    }
    if (valid) return;
    // ordering: relaxed — statistical counter, read quiescently.
    aborts_.fetch_add(1, std::memory_order_relaxed);
    TXCONC_INSTANT_T(tracer_, obs::names::kEvAbort, obs::names::kCatExec,
                     static_cast<std::int64_t>(j));
    if (sink_ != nullptr) {
      sink_->record_abort(obs::AbortReason::kBlockStmValidationFail,
                          touch_key_of(*bad));
    }
    // Expose ESTIMATE markers so dependents suspend instead of reading
    // doomed values, then requeue this transaction and the validation
    // suffix that may have read them.
    for (const MvKey& key : slot.last_writes) store_.mark_estimate(key, j);
    slot.incarnation += 1;
    slot.status = TxSlot::Status::kReady;
    decrease(val_cursor_, static_cast<std::uint64_t>(j) + 1);
    decrease(exec_cursor_, pos_of_[j]);
  }

  TXCONC_HOT void commit(account::StateDb& state) {
    const account::JournalPause pause(state);
    for (std::size_t i = 0; i < n_; ++i) {
      TxSlot& slot = slots_[i];
      bool validity_failed = false;
      {
        MutexLock lock(slot.mu);
        validity_failed = slot.validity_failed;
      }
      if (validity_failed) {
        // The final incarnation failed the validity checks against its
        // (validated) view; replaying it against the real prefix raises
        // the same ValidationError the sequential baseline would.
        // txconc-lint: allow(hot-path-alloc) — cold error replay, ends in throw
        account::apply_transaction_into(state, txs_[i], *config_,
                                        report_->receipts[i],
                                        scratch_[0].tracker);
      } else {
        writes_[i].apply_to(state);
      }
    }
    state.flush_journal();
  }

  ThreadPool pool_;
  BlockStmOptions options_;

  // Cross-block scratch: capacity persists, contents are per-block.
  std::vector<WorkerScratch> scratch_;
  std::vector<WorkerState> wstate_;
  std::vector<account::WriteLog> writes_;  // per tx, final incarnation
  std::vector<std::uint32_t> attempts_;    // per tx, under its slot mu
  std::unique_ptr<TxSlot[]> slots_;
  std::size_t slots_cap_ = 0;
  std::vector<std::uint32_t> order_;   // dispatch position -> tx index
  std::vector<std::uint32_t> pos_of_;  // tx index -> dispatch position
  MultiVersionStore store_;

  // Per-block run context (set in execute_block, read by the workers).
  std::size_t n_ = 0;
  std::span<const AccountTx> txs_;
  const account::RuntimeConfig* config_ = nullptr;
  const account::StateDb* base_ = nullptr;
  ExecutionReport* report_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::ContentionSink* sink_ = nullptr;

  std::atomic<std::uint64_t> exec_cursor_{0};  // dispatch-order position
  std::atomic<std::uint64_t> val_cursor_{0};   // block-order index
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> rewind_cnt_{0};  // monotone within a block
  std::atomic<bool> done_{false};
  std::atomic<std::uint64_t> executions_{0};
  std::atomic<std::uint64_t> validations_{0};
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> estimate_aborts_{0};
};

}  // namespace

std::unique_ptr<BlockExecutor> make_block_stm_executor(unsigned num_threads) {
  return make_block_stm_executor(num_threads, BlockStmOptions{});
}

std::unique_ptr<BlockExecutor> make_block_stm_executor(
    unsigned num_threads, const BlockStmOptions& options) {
  return std::make_unique<BlockStmExecutor>(num_threads, options);
}

}  // namespace txconc::exec
