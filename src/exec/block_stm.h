// Block-STM executor (Gelashvili et al., PPoPP'22): optimistic
// multi-version execution with dynamic dependency discovery.
//
// Unlike the OCC wave executor — which freezes the base state per wave and
// validates in order, serializing on the first conflict of every wave
// (DESIGN.md §13.3) — Block-STM gives every transaction a private view
// over a multi-version store: reads resolve to the highest lower-index
// speculative write, aborted incarnations leave ESTIMATE markers that
// suspend dependent reads instead of letting them run on garbage, and
// validation failures re-execute only the invalidated transaction (plus
// revalidation of its suffix), never the whole block.
//
// This header exposes the multi-version store itself so the unit tests in
// tests/block_stm_test.cpp can drive it directly; the engine, view, and
// cooperative scheduler live in block_stm.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "account/state.h"
#include "account/types.h"
#include "common/flat_table.h"
#include "common/hot_path.h"
#include "common/thread_annotations.h"
#include "exec/executor.h"

namespace txconc::exec {

/// Which value channel of an account a multi-version entry covers.
/// Balance and nonce get their own channels (rather than the tracker's
/// kBalanceKey aliasing) so a storage slot can never collide with them.
enum class MvChannel : std::uint8_t {
  kStorage = 0,
  kBalance = 1,
  kNonce = 2,
  kCode = 3,
};

/// One multi-version coordinate: (account, storage key, channel).
struct MvKey {
  Address addr;
  account::StorageKey key = 0;  ///< 0 for the non-storage channels
  MvChannel channel = MvChannel::kStorage;

  bool operator==(const MvKey&) const = default;
};

/// Thrown by the multi-version view when a read resolves to an ESTIMATE
/// marker (the blocking transaction aborted and has not re-executed yet).
/// Deliberately NOT derived from std::exception: the runtime catches
/// ValidationError/VmError around transaction execution, and this signal
/// must unwind through apply_transaction_into untouched, back to the
/// scheduler that suspends the reader on `blocking_tx`. Carries the
/// estimated key so the scheduler can attribute the abort to it
/// (obs::ContentionSink).
struct EstimateAbort {
  std::uint32_t blocking_tx = 0;
  MvKey key;
};

struct MvKeyHash {
  std::size_t operator()(const MvKey& k) const noexcept {
    std::size_t seed =
        account::SlotAccessHash{}(account::SlotAccess{k.addr, k.key});
    seed ^= (static_cast<std::size_t>(k.channel) + 0x9e3779b97f4a7c15ULL +
             (seed << 6) + (seed >> 2));
    return seed;
  }
};

/// Multi-version in-memory state for one block execution.
///
/// Every write of transaction `tx`, incarnation `inc`, is stored as the
/// version (tx, inc); a reader at transaction index `r` resolves a key to
/// the version with the highest tx < r, or falls through to the base
/// state when no such version exists. Aborted incarnations flip their
/// versions to ESTIMATE markers in place; a resolution landing on an
/// estimate tells the reader which transaction to wait for.
///
/// Thread safety: internally sharded by key hash; every operation locks
/// only the key's shard (plus the code map's own mutex for the kCode
/// channel). Value channels are allocation-free in the steady state —
/// version chains and the per-shard index keep their capacity across
/// reset() — matching the engines' hot-path discipline (DESIGN.md §13).
class MultiVersionStore {
 public:
  /// Reader-index sentinel recorded for reads that fell through to the
  /// base state (no lower-index version existed).
  static constexpr std::uint32_t kBase = 0xffffffffu;

  struct Resolution {
    bool found = false;     ///< false: fall through to the base state
    bool estimate = false;  ///< true: blocked on `tx` (value invalid)
    std::uint32_t tx = 0;
    std::uint32_t incarnation = 0;
    std::uint64_t value = 0;
    /// kCode channel only: the resolved deployment (null on fall-through).
    std::shared_ptr<const account::ContractCode> code;
  };

  /// Highest-lower-index read: the version with the greatest tx strictly
  /// below reader_tx, estimates included (callers must check .estimate).
  TXCONC_HOT Resolution resolve(const MvKey& key, std::uint32_t reader_tx) const;

  /// Record `value` as (tx, incarnation). Re-publishing the same (key, tx)
  /// replaces the entry and must not decrease the incarnation — that would
  /// mean a stale execution overwrote a newer one (UsageError).
  TXCONC_HOT void publish(const MvKey& key, std::uint32_t tx,
                          std::uint32_t incarnation, std::uint64_t value);

  /// kCode-channel flavor of publish (deployments are rare; the code
  /// pointer is shared with every resolving reader).
  void publish_code(const Address& addr, std::uint32_t tx,
                    std::uint32_t incarnation,
                    std::shared_ptr<const account::ContractCode> code);

  /// Flip (key, tx)'s version to an ESTIMATE marker, keeping its
  /// incarnation. The entry must exist (UsageError otherwise): aborts mark
  /// exactly the keys the incarnation published.
  TXCONC_HOT void mark_estimate(const MvKey& key, std::uint32_t tx);

  /// Drop (key, tx) entirely (a re-execution stopped writing the key).
  /// @return true when an entry was removed.
  TXCONC_HOT bool remove(const MvKey& key, std::uint32_t tx);

  /// Logically empty the store for the next block. Capacity of the value
  /// channels is retained (epoch-cleared index, reused chain vectors).
  TXCONC_HOT void reset();

 private:
  struct Version {
    std::uint32_t tx = 0;
    std::uint32_t incarnation = 0;
    std::uint64_t value = 0;
    bool estimate = false;
  };
  /// Versions of one key, sorted by tx ascending (chains are short: the
  /// writers of one slot within one block).
  using Chain = std::vector<Version>;

  struct CodeVersion {
    std::uint32_t tx = 0;
    std::uint32_t incarnation = 0;
    std::shared_ptr<const account::ContractCode> code;
    bool estimate = false;
  };

  static constexpr std::size_t kNumShards = 16;
  /// Shard ids come from the hash's TOP log2(kNumShards) bits: each shard's
  /// FlatTable masks the same hash by a power-of-two capacity (low bits), so
  /// taking the low bits here would leave every key within a shard sharing
  /// its probe starting point and cluster the linear probes.
  static constexpr unsigned kShardShift = sizeof(std::size_t) * 8 - 4;
  static_assert(std::size_t{1} << (sizeof(std::size_t) * 8 - kShardShift) ==
                    kNumShards,
                "kShardShift must keep exactly log2(kNumShards) top bits");

  struct Shard {
    mutable Mutex mu;
    /// key -> chain slot + 1 (0 = unassigned; FlatTable default-constructs
    /// missing values, so the +1 shift doubles as the presence bit).
    common::FlatTable<MvKey, std::uint32_t, MvKeyHash> index
        GUARDED_BY(mu);
    /// Chain storage, recycled across blocks: chains[0..chains_used) are
    /// live this block, the rest are warmed capacity from earlier blocks.
    std::vector<Chain> chains GUARDED_BY(mu);
    std::size_t chains_used GUARDED_BY(mu) = 0;

    TXCONC_HOT Chain& chain_for(const MvKey& key) REQUIRES(mu);
    TXCONC_HOT Chain* find_chain(const MvKey& key) REQUIRES(mu);
    TXCONC_HOT const Chain* find_chain(const MvKey& key) const REQUIRES(mu);
  };

  TXCONC_HOT Shard& shard_for(const MvKey& key) {
    return shards_[MvKeyHash{}(key) >> kShardShift];
  }
  TXCONC_HOT const Shard& shard_for(const MvKey& key) const {
    return shards_[MvKeyHash{}(key) >> kShardShift];
  }

  Shard shards_[kNumShards];

  mutable Mutex code_mu_;
  std::unordered_map<Address, std::vector<CodeVersion>> code_versions_
      GUARDED_BY(code_mu_);
};

/// Test hooks for the block-stm engine. The defaults are the production
/// configuration; tests pin schedules with them.
struct BlockStmOptions {
  /// Skip read-set validation entirely (negative control: proves the
  /// validation step is load-bearing by diverging on dependent blocks).
  bool validate = true;
  /// Run the cooperative scheduler on the calling thread only, making the
  /// task interleaving a pure function of the dispatch order (exact
  /// attempt-count assertions in tests).
  bool deterministic = false;
  /// Initial execution dispatch order (a permutation of [0, num_txs));
  /// empty = block order. Lets tests force "execute dependents first" so
  /// the ESTIMATE/re-execution machinery provably engages.
  std::vector<std::uint32_t> first_dispatch;
};

std::unique_ptr<BlockExecutor> make_block_stm_executor(unsigned num_threads);
std::unique_ptr<BlockExecutor> make_block_stm_executor(
    unsigned num_threads, const BlockStmOptions& options);

}  // namespace txconc::exec
