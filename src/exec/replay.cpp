#include "exec/replay.h"

#include "common/error.h"

namespace txconc::exec {

std::string format_repro_env(const std::string& spec_text) {
  std::string out = "TXCONC_REPRO='";
  for (const char c : spec_text) {
    if (c == '\'') {
      out += "'\\''";  // close, escaped quote, reopen
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

HistoryReplayer::HistoryReplayer(workload::ChainProfile profile,
                                 std::uint64_t seed,
                                 std::uint64_t skip_blocks)
    : generator_(profile, seed) {
  limit_ = generator_.num_blocks();
  for (std::uint64_t h = 0; h < skip_blocks && h < limit_; ++h) {
    generator_.next_block();
    ++replayed_;
  }
  state_ = generator_.state();
  config_.charge_fees = false;  // the generator funds out-of-band
}

std::uint64_t HistoryReplayer::remaining() const { return limit_ - replayed_; }

void HistoryReplayer::apply_out_of_band(
    std::span<const account::AccountTx> txs) {
  for (const account::AccountTx& tx : txs) {
    if (state_.balance(tx.from) < 1'000'000'000'000ULL) {
      state_.set_balance(tx.from, 1'000'000'000'000'000ULL);
    }
    // Token-transfer senders are seeded with token balance on demand.
    if (tx.to.has_value() && state_.code(*tx.to) != nullptr &&
        !tx.args.empty() && tx.args[0] == 1 && !tx.address_args.empty()) {
      const account::StorageKey key = tx.from.low64();
      if (state_.storage(*tx.to, key) < 1'000'000) {
        state_.set_storage(*tx.to, key, 1'000'000'000'000'000ULL);
      }
    }
  }
  state_.flush_journal();
}

ExecutionReport HistoryReplayer::replay_next(BlockExecutor& executor) {
  if (remaining() == 0) {
    throw UsageError("HistoryReplayer: history exhausted");
  }
  const workload::GeneratedBlock block = generator_.next_block();
  ++replayed_;
  apply_out_of_band(block.account_txs);
  if (observer_ != nullptr) observer_->before_block(block.account_txs, state_);
  ExecutionReport report =
      executor.execute_block(state_, block.account_txs, config_);
  if (observer_ != nullptr) observer_->after_block(report);
  return report;
}

}  // namespace txconc::exec
