// Block executor interface: the execution engine the paper's conclusion
// names as future work ("we have not designed and implemented an execution
// engine that can exploit the available concurrency").
//
// Every executor consumes the same block (ordered transaction list) and
// must produce a final state identical to sequential execution — the
// equivalence tests in tests/exec_test.cpp enforce this.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "account/runtime.h"
#include "account/state.h"
#include "account/types.h"
#include "obs/contention.h"

namespace txconc::exec {

/// Where one block execution spent its scheduling effort, separating pool
/// overhead from conflict-induced serialization. Filled from ThreadPool
/// stats deltas and per-phase timers by the parallel executors (all zero
/// for the sequential baseline).
struct SchedulingBreakdown {
  /// Pool queue tasks run on behalf of this block (worker wakeups);
  /// bounded by O(num_workers) per parallel_for call, not O(num_txs).
  std::uint64_t pool_tasks = 0;
  /// parallel_for grains executed, and how many of them the submitting
  /// thread drained itself (caller-runs share).
  std::uint64_t grains = 0;
  std::uint64_t grains_caller_run = 0;
  /// Wall-clock split: the concurrent phase (speculation / parallel waves
  /// / component execution, incl. conflict detection and overlay commit)
  /// vs the serial phase (sequential bin, in-order validation, merges).
  double phase1_seconds = 0.0;
  double phase2_seconds = 0.0;
};

/// What one block execution did and cost.
struct ExecutionReport {
  std::string executor;
  std::size_t num_txs = 0;
  /// Transactions that had to be (re-)executed sequentially.
  std::size_t sequential_txs = 0;
  /// Total transaction executions, including speculative re-runs.
  std::size_t executions = 0;
  /// Wall-clock seconds actually spent.
  double wall_seconds = 0.0;
  /// Time in the paper's unit-cost model (1 unit per execution slot).
  double simulated_units = 0.0;
  /// x / simulated_units; the quantity Figure 10 predicts.
  double simulated_speedup = 1.0;
  /// Scheduling-overhead breakdown (pool work and phase wall times).
  SchedulingBreakdown sched;
  /// Receipts in block order (identical across executors by contract).
  std::vector<account::Receipt> receipts;
  /// Per-transaction execution attempts / incarnations reached, in block
  /// order. Filled by engines with targeted re-execution (block-stm);
  /// empty for wave- and bin-style engines, whose retries are aggregated
  /// in `executions` / `sequential_txs`.
  std::vector<std::uint32_t> tx_attempts;
  std::vector<std::uint32_t> tx_incarnations;
  /// Discarded-work tally under the uniform abort taxonomy
  /// (obs/contention.h): every engine counts why attempts were thrown
  /// away, whether or not a contention sink is installed. Folded into the
  /// exec.abort.* registry counters by record_block_metrics.
  obs::AbortCounts abort_reasons{};
};

/// Abstract block executor over the account model.
class BlockExecutor {
 public:
  virtual ~BlockExecutor() = default;

  /// Execute all transactions against the state (mutating it) and report.
  virtual ExecutionReport execute_block(
      account::StateDb& state,
      std::span<const account::AccountTx> transactions,
      const account::RuntimeConfig& config) = 0;

  virtual std::string name() const = 0;
};

/// Baseline: one transaction at a time, in block order — what "existing
/// client software applications" do (paper Section II-A).
std::unique_ptr<BlockExecutor> make_sequential_executor();

/// How the speculative executor treats conflicting transactions.
enum class AbortPolicy {
  /// Every member of a conflicting set is re-executed sequentially —
  /// the model of Section V-A / Saraph & Herlihy.
  kAllConflicted,
  /// First writer wins: the earliest transaction of each conflict commits
  /// from the speculative phase; only later ones re-run (ablation).
  kFirstWriterWins,
};

/// Two-phase speculative executor: phase 1 runs every transaction
/// concurrently on copy-on-write overlays, conflicts are detected from the
/// recorded read/write sets, and the conflicted "bin" re-runs sequentially.
std::unique_ptr<BlockExecutor> make_speculative_executor(
    unsigned num_threads, AbortPolicy policy = AbortPolicy::kAllConflicted);

/// Perfect-information speculative executor: conflicts are computed first
/// (the oracle preprocessing of Section V-A), so conflicted transactions
/// are executed exactly once, sequentially, and never re-run.
std::unique_ptr<BlockExecutor> make_oracle_executor(unsigned num_threads);

/// Group-concurrency executor (Section V-B): builds the a-priori address
/// TDG (senders, receivers, dynamic address arguments, and statically
/// reachable contract call targets), partitions transactions into
/// connected components, and schedules the components onto worker threads
/// with LPT. Sequential inside a component, parallel across components.
std::unique_ptr<BlockExecutor> make_group_executor(unsigned num_threads,
                                                   bool use_lpt = true);

/// Optimistic concurrency control executor (Block-STM / Dickerson et al.
/// style, the related work the paper cites as orthogonal): waves of
/// parallel speculation with in-order validation; aborted transactions
/// retry in the next wave instead of a sequential bin.
std::unique_ptr<BlockExecutor> make_occ_executor(unsigned num_threads,
                                                 unsigned max_waves = 64);

/// A named executor family: a stable identifier (used in conformance repro
/// commands and BENCH_exec.json) plus a factory over the thread count.
/// Sequential ignores the thread count and is flagged non-parallel.
struct ExecutorSpec {
  std::string name;
  bool parallel = true;
  std::function<std::unique_ptr<BlockExecutor>(unsigned num_threads)> make;
  /// True for engines that commit through a multi-version store rather
  /// than interval-exclusive ownership of slots: concurrent attempts over
  /// the same slots are expected, and the access auditor must check
  /// publication ordering instead of attempt-interval disjointness.
  bool multi_version = false;
};

/// Every registered executor family, sequential first. The conformance
/// oracle differential-tests each parallel entry against the sequential
/// baseline; a new executor joins the whole harness by registering here.
const std::vector<ExecutorSpec>& executor_registry();

/// Factory lookup by registry name; throws UsageError on unknown names.
std::unique_ptr<BlockExecutor> make_executor(const std::string& name,
                                             unsigned num_threads);

}  // namespace txconc::exec
