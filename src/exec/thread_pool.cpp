#include "exec/thread_pool.h"

#include "common/error.h"

namespace txconc::exec {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) throw UsageError("ThreadPool needs >= 1 thread");
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    if (stopping_) throw UsageError("ThreadPool: submit after shutdown");
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) {
    f.get();  // rethrows task exceptions
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace txconc::exec
