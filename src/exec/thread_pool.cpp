#include "exec/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace txconc::exec {

namespace {

// Process-wide grain hook (test-only). The installed-flag keeps the
// production path to one relaxed load per grain; the shared_ptr keeps a
// hook alive for any straggler grain that loaded it just before removal.
std::atomic<bool> g_grain_hook_installed{false};
Mutex g_grain_hook_mutex;
std::shared_ptr<const ThreadPool::GrainHook> g_grain_hook
    GUARDED_BY(g_grain_hook_mutex);
std::atomic<std::uint64_t> g_grain_seq{0};

std::shared_ptr<const ThreadPool::GrainHook> load_grain_hook() {
  const MutexLock lock(g_grain_hook_mutex);
  return g_grain_hook;
}

}  // namespace

ThreadPool::GrainHook ThreadPool::swap_grain_hook(GrainHook hook) {
  const MutexLock lock(g_grain_hook_mutex);
  GrainHook previous = g_grain_hook ? *g_grain_hook : GrainHook{};
  if (hook) {
    g_grain_hook = std::make_shared<const GrainHook>(std::move(hook));
    // Each installation restarts the sequence so a seeded hook replays the
    // same schedule regardless of what ran before it.
    // ordering: relaxed — the seq is only read by grains that already
    // observed the installed flag; no data rides on it.
    g_grain_seq.store(0, std::memory_order_relaxed);
    // ordering: release publishes the hook written under the mutex above;
    // pairs with the acquire loads in run_grains / grain_hook_installed.
    g_grain_hook_installed.store(true, std::memory_order_release);
  } else {
    g_grain_hook = nullptr;
    // ordering: release so the cleared hook is ordered before the flag;
    // a straggler that raced the removal holds a shared_ptr anyway.
    g_grain_hook_installed.store(false, std::memory_order_release);
  }
  return previous;
}

void ThreadPool::set_grain_hook(GrainHook hook) {
  (void)swap_grain_hook(std::move(hook));
}

bool ThreadPool::grain_hook_installed() {
  // ordering: acquire pairs with the release stores in swap_grain_hook.
  return g_grain_hook_installed.load(std::memory_order_acquire);
}

/// Shared state of one parallel_for call. Helper tasks hold a shared_ptr
/// so a helper that wakes up after the caller returned (having found the
/// cursor exhausted) still touches valid memory.
struct ThreadPool::Batch {
  std::size_t count = 0;
  std::size_t grain = 1;
  std::size_t num_grains = 0;
  const SlotFn* fn = nullptr;

  std::atomic<std::size_t> next{0};  ///< grain cursor
  std::atomic<std::size_t> done{0};  ///< completed (or skipped) grains
  std::atomic<bool> failed{false};
  Mutex m;
  CondVar cv;
  std::exception_ptr error GUARDED_BY(m);  ///< first grain exception
};

ThreadPool::ThreadPool(unsigned num_threads, const char* name)
    : label_(obs::intern_label(name)) {
  if (num_threads == 0) throw UsageError("ThreadPool needs >= 1 thread");
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  {
    const MutexLock lock(mutex_);
    if (stopping_) throw UsageError("ThreadPool: submit after shutdown");
    queue_.push([packaged] { (*packaged)(); });
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::run_grains(Batch& batch, unsigned slot) {
  std::uint64_t ran = 0;
  for (;;) {
    // ordering: relaxed — the cursor only partitions indices; batch data
    // is published by the queue mutex, completion by the acq_rel on done.
    const std::size_t g = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (g >= batch.num_grains) break;
    // ordering: acquire pairs with swap_grain_hook's release publication.
    if (g_grain_hook_installed.load(std::memory_order_acquire)) {
      if (const auto hook = load_grain_hook(); hook) {
        // ordering: relaxed — monotone ticket; no data rides on it.
        (*hook)(g_grain_seq.fetch_add(1, std::memory_order_relaxed));
      }
    }
    // ordering: relaxed — failed is a best-effort skip hint; the error
    // itself travels under batch.m.
    if (!batch.failed.load(std::memory_order_relaxed)) {
      // Only grains whose body runs count towards grains_total; grains
      // claimed after a failure are skipped work and would otherwise
      // inflate the per-block sched counters (they used to).
      ++ran;
      const std::size_t begin = g * batch.grain;
      const std::size_t end = std::min(batch.count, begin + batch.grain);
      try {
        for (std::size_t i = begin; i < end; ++i) (*batch.fn)(slot, i);
      } catch (...) {
        const MutexLock lock(batch.m);
        if (!batch.error) batch.error = std::current_exception();
        // ordering: relaxed — hint only; error publication is the mutex.
        batch.failed.store(true, std::memory_order_relaxed);
      }
    }
    // ordering: acq_rel — see every finished grain's writes and publish
    // ours to the waiter's acquire load of done in parallel_for_slots.
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.num_grains) {
      // Taking the lock pairs with the caller's predicate check so the
      // final notify cannot slip between its check and its wait.
      const MutexLock lock(batch.m);
      batch.cv.notify_all();
    }
  }
  // ordering: relaxed — statistical counters, read via stats() only.
  grains_total_.fetch_add(ran, std::memory_order_relaxed);
  if (slot == 0) grains_caller_run_.fetch_add(ran, std::memory_order_relaxed);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  const SlotFn slotted = [&fn](unsigned, std::size_t i) { fn(i); };
  parallel_for_slots(count, slotted, grain);
}

void ThreadPool::parallel_for_slots(std::size_t count, const SlotFn& fn,
                                    std::size_t grain) {
  if (count == 0) return;
  // ordering: relaxed — statistical counter, read via stats() only.
  parallel_for_calls_.fetch_add(1, std::memory_order_relaxed);

  const std::size_t workers = size();
  if (grain == 0) {
    // A few grains per worker balances load without shrinking chunks to
    // the point where the cursor becomes contended again.
    grain = std::max<std::size_t>(1, count / (workers * 4));
  }
  auto batch = std::make_shared<Batch>();
  batch->count = count;
  batch->grain = grain;
  batch->num_grains = (count + grain - 1) / grain;
  batch->fn = &fn;

  // One helper per worker, capped at the grains the caller won't need to
  // run alone. Correctness never depends on helpers actually running: the
  // caller drains the cursor itself, which is what makes nested calls
  // (every worker busy, helpers stuck behind us in the queue) safe.
  const std::size_t helpers =
      std::min<std::size_t>(workers, batch->num_grains - 1);
  if (helpers > 0) {
    {
      const MutexLock lock(mutex_);
      if (!stopping_) {
        for (std::size_t h = 0; h < helpers; ++h) {
          const unsigned slot = static_cast<unsigned>(h) + 1;
          queue_.push([this, batch, slot] { run_grains(*batch, slot); });
        }
      }
    }
    if (helpers == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  run_grains(*batch, /*slot=*/0);

  std::exception_ptr error;
  {
    const MutexLock lock(batch->m);
    // The done counter is an atomic, not guarded state; the lock pairs
    // with the final notifier so the wakeup cannot be lost.
    // ordering: acquire pairs with the workers' acq_rel increments.
    while (batch->done.load(std::memory_order_acquire) != batch->num_grains) {
      batch->cv.wait(batch->m);
    }
    // Reading the error under the lock is what the annotations require —
    // the pre-annotation code read it after the wait scope, relying on the
    // acquire load above for visibility (see DESIGN.md §10).
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats s;
  // ordering: relaxed — monotone stats snapshot; no data rides on it.
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.parallel_for_calls = parallel_for_calls_.load(std::memory_order_relaxed);
  // ordering: relaxed — as above.
  s.grains_total = grains_total_.load(std::memory_order_relaxed);
  s.grains_caller_run = grains_caller_run_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::worker_loop(unsigned worker_index) {
  obs::set_thread_label(label_, static_cast<int>(worker_index));
  // The gap histogram attributes scheduler idleness (time between
  // finishing one task and dequeuing the next); only recorded while the
  // global tracer is enabled so the quiescent path stays clock-free.
  // Caller-run grains never feed it: they are not dequeues, and the
  // submitting thread was busy, not idle (see the pinned-count test).
  obs::Histogram* gap_histogram = nullptr;
  std::chrono::steady_clock::time_point idle_since;
  bool idle_since_valid = false;
  for (;;) {
    std::function<void()> task;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) {
        cv_.wait(mutex_);
      }
      if (queue_.empty()) {
        // stopping_ must be set: the wait loop only exits on stop or work.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (obs::Tracer::global().enabled()) {
      const auto now = std::chrono::steady_clock::now();
      if (idle_since_valid) {
        if (gap_histogram == nullptr) {
          gap_histogram =
              &obs::Registry::global().histogram(
                  obs::names::kMetricPoolDequeueGapUs);
        }
        gap_histogram->observe(
            std::chrono::duration<double, std::micro>(now - idle_since)
                .count());
      }
      TXCONC_SPAN(obs::names::kSpanPoolTask, obs::names::kCatPool);
      task();
      idle_since = std::chrono::steady_clock::now();
      idle_since_valid = true;
    } else {
      task();
      idle_since_valid = false;
    }
    // ordering: relaxed — statistical counter, read via stats() only.
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace txconc::exec
