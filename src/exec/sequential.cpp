#include "exec/executor.h"
#include "exec/sched_trace.h"
#include "obs/names.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace txconc::exec {

namespace {

class SequentialExecutor final : public BlockExecutor {
 public:
  ExecutionReport execute_block(
      account::StateDb& state,
      std::span<const account::AccountTx> transactions,
      const account::RuntimeConfig& config) override {
    obs::Tracer* const tracer = obs::tracer(config.obs);
    const obs::ThreadProcessScope proc("sequential");
    const obs::CausalSpan block_span(
        tracer, obs::names::kSpanExecuteBlock, obs::names::kCatExec,
        config.trace, static_cast<std::int64_t>(transactions.size()));
    emit_thread_budget(tracer, 1);
    SchedTrace trace(static_cast<const ThreadPool*>(nullptr));

    ExecutionReport report;
    report.executor = name();
    report.num_txs = transactions.size();
    report.receipts.resize(transactions.size());
    {
      // The apply loop is the serial phase; there is no concurrent phase,
      // so phase1 stays zero instead of absorbing setup/reporting time
      // (the pre-obs code reported the whole wall as phase2, which made
      // sequential-vs-parallel phase breakdowns incomparable).
      const auto apply_start = std::chrono::steady_clock::now();
      const obs::CausalSpan span(tracer, obs::names::kSpanExecute,
                                 obs::names::kCatExec, block_span.context());
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        const TXCONC_SPAN_T(tracer, obs::names::kSpanTx,
                            obs::names::kCatExec,
                            static_cast<long long>(i));
        // The into-variant reuses the executor's tracker and the receipt
        // slot's capacity: the baseline benefits from the same
        // runtime-level allocation wins as the parallel engines.
        account::apply_transaction_into(state, transactions[i], config,
                                        report.receipts[i], tracker_);
      }
      trace.add_phase2(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - apply_start)
                           .count());
    }
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanCommit,
                                 obs::names::kCatExec, block_span.context());
      state.flush_journal();
    }

    report.sequential_txs = transactions.size();
    report.executions = transactions.size();
    report.simulated_units = static_cast<double>(transactions.size());
    report.simulated_speedup = 1.0;
    report.wall_seconds = trace.finish(report.sched);
    record_block_metrics(obs::metrics(config.obs), report);
    return report;
  }

  std::string name() const override { return "sequential"; }

 private:
  account::AccessTracker tracker_;  // reused across transactions
};

}  // namespace

std::unique_ptr<BlockExecutor> make_sequential_executor() {
  return std::make_unique<SequentialExecutor>();
}

}  // namespace txconc::exec
