#include <chrono>

#include "exec/executor.h"

namespace txconc::exec {

namespace {

class SequentialExecutor final : public BlockExecutor {
 public:
  ExecutionReport execute_block(
      account::StateDb& state,
      std::span<const account::AccountTx> transactions,
      const account::RuntimeConfig& config) override {
    const auto start = std::chrono::steady_clock::now();

    ExecutionReport report;
    report.executor = name();
    report.num_txs = transactions.size();
    report.receipts.reserve(transactions.size());
    for (const account::AccountTx& tx : transactions) {
      report.receipts.push_back(account::apply_transaction(state, tx, config));
    }
    state.flush_journal();

    report.sequential_txs = transactions.size();
    report.executions = transactions.size();
    report.simulated_units = static_cast<double>(transactions.size());
    report.simulated_speedup = 1.0;
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    // No pool, no concurrent phase: the whole block is serial time.
    report.sched.phase2_seconds = report.wall_seconds;
    return report;
  }

  std::string name() const override { return "sequential"; }
};

}  // namespace

std::unique_ptr<BlockExecutor> make_sequential_executor() {
  return std::make_unique<SequentialExecutor>();
}

}  // namespace txconc::exec
