// Optimistic concurrency control executor (Block-STM / Dickerson-style):
// repeated waves of parallel speculative execution with in-order
// validation; transactions invalidated by an earlier commit retry in the
// next wave. Unlike the two-phase speculative executor, the conflicted
// tail is itself re-run in parallel, so heavily conflicted blocks finish
// in O(depth-of-dependency-chain) waves instead of one long sequential
// bin.
//
// Hot-path discipline matches speculative.cpp: per-worker overlays are
// rebased (not reallocated) per attempt, per-transaction effects travel
// as write logs, and the wave write set is a flat epoch-cleared table.
#include <chrono>
#include <memory>

#include "account/state.h"
#include "common/error.h"
#include "exec/executor.h"
#include "exec/predict.h"
#include "exec/sched_trace.h"
#include "exec/scratch.h"
#include "exec/thread_pool.h"
#include "obs/names.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace txconc::exec {

namespace {

class OccExecutor final : public BlockExecutor {
 public:
  OccExecutor(unsigned num_threads, unsigned max_waves)
      : pool_(num_threads, "occ"), max_waves_(max_waves) {
    if (max_waves_ == 0) throw UsageError("OccExecutor: max_waves must be > 0");
  }

  ExecutionReport execute_block(
      account::StateDb& state,
      std::span<const account::AccountTx> transactions,
      const account::RuntimeConfig& config) override {
    obs::Tracer* const tracer = obs::tracer(config.obs);
    obs::Registry* const registry = obs::metrics(config.obs);
    obs::ContentionSink* const sink = obs::contention(config.obs);
    const obs::ThreadProcessScope proc("occ");
    const obs::CausalSpan block_span(
        tracer, obs::names::kSpanExecuteBlock, obs::names::kCatExec,
        config.trace, static_cast<std::int64_t>(transactions.size()));
    emit_thread_budget(tracer, pool_.size() + 1);
    SchedTrace trace(&pool_);

    ExecutionReport report;
    report.executor = name();
    report.num_txs = transactions.size();
    report.receipts.resize(transactions.size());

    account::RuntimeConfig tracked = config;
    tracked.track_accesses = true;

    ensure_worker_scratch(scratch_, pool_.size());
    writes_.resize(std::max(writes_.size(), transactions.size()));
    tx_attempts_.assign(transactions.size(), 0);

    // Sound ordering guard: a transaction must not commit ahead of an
    // earlier-in-block transaction it could conflict with, even when that
    // earlier transaction has not produced access sets yet (it failed
    // validation this wave). The a-priori address components bound what
    // any transaction can touch, so sharing a predicted component with a
    // deferred predecessor forces a retry.
    PredictedGroups groups;
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanPredict,
                                 obs::names::kCatExec, block_span.context());
      groups = predict_groups(transactions, state, tracer);
    }

    pending_.resize(transactions.size());
    {
      // OCC's schedule is trivial — every pending transaction joins the
      // next wave — but the span keeps the engine phase sets uniform.
      const obs::CausalSpan span(tracer, obs::names::kSpanSchedule,
                                 obs::names::kCatExec, block_span.context());
      for (std::size_t i = 0; i < pending_.size(); ++i) pending_[i] = i;
    }

    double simulated = 0.0;
    unsigned waves = 0;
    std::size_t max_retry_depth = 0;

    while (!pending_.empty()) {
      if (++waves > max_waves_) {
        // Degenerate fallback: finish the stragglers sequentially. With
        // max_waves >= longest dependency chain this never triggers.
        const auto tail_start = std::chrono::steady_clock::now();
        const obs::CausalSpan span(tracer, obs::names::kSpanSeqBin,
                                   obs::names::kCatExec,
                                   block_span.context());
        account::AccessTracker& tail_tracker = scratch_[0].tracker;
        for (std::size_t i : pending_) {
          ++tx_attempts_[i];
          const TXCONC_SPAN_T(tracer, obs::names::kSpanTx,
                              obs::names::kCatExec,
                              static_cast<std::int64_t>(i));
          account::apply_transaction_into(state, transactions[i], config,
                                          report.receipts[i], tail_tracker);
          report.executions += 1;
          simulated += 1.0;
        }
        pending_.clear();
        trace.add_phase2(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - tail_start)
                             .count());
        break;
      }

      // Parallel speculative wave against the frozen base: each worker
      // slot rebases its private overlay per attempt and exports the
      // effects to the transaction's write log.
      const auto wave_start = std::chrono::steady_clock::now();
      wave_valid_.assign(pending_.size(), 0);
      {
        const obs::CausalSpan span(tracer, obs::names::kSpanExecute,
                                   obs::names::kCatExec, block_span.context(),
                                   static_cast<std::int64_t>(waves));
        const ThreadPool::SlotFn body = [&](unsigned slot, std::size_t k) {
          const std::size_t i = pending_[k];
          const TXCONC_SPAN_T(tracer, obs::names::kSpanAttempt,
                              obs::names::kCatExec,
                              static_cast<std::int64_t>(i));
          ++tx_attempts_[i];  // one writer per index per wave
          WorkerScratch& ws = scratch_[slot];
          if (account::precheck_transaction(state, transactions[i],
                                            tracked) != nullptr) {
            writes_[i].clear();  // depends on an uncommitted tx
            return;
          }
          ws.overlay.reset(state);
          try {
            account::apply_transaction_into(ws.overlay, transactions[i],
                                            tracked, report.receipts[i],
                                            ws.tracker);
            wave_valid_[k] = 1;
            ws.overlay.export_writes(writes_[i]);
          } catch (const ValidationError&) {
            writes_[i].clear();  // precheck/apply drifted; retry next wave
          }
        };
        pool_.parallel_for_slots(pending_.size(), body);
      }
      const auto wave_end = std::chrono::steady_clock::now();
      trace.add_phase1(
          std::chrono::duration<double>(wave_end - wave_start).count());
      report.executions += pending_.size();
      simulated += static_cast<double>(
          (pending_.size() + pool_.size() - 1) / pool_.size());

      // In-order validation: commit a transaction unless it read or wrote
      // anything an earlier commit of THIS wave wrote. Commits replay the
      // write logs with the undo journal paused — committed values are
      // final, so journaling them is wasted allocation.
      const obs::CausalSpan commit_span(tracer, obs::names::kSpanCommit,
                                        obs::names::kCatExec,
                                        block_span.context(),
                                        static_cast<std::int64_t>(waves));
      wave_writes_.clear();
      deferred_component_.assign(groups.num_components(), 0);
      retry_.clear();
      {
        const account::JournalPause pause(state);
        for (std::size_t k = 0; k < pending_.size(); ++k) {
          const std::size_t i = pending_[k];
          // Abort attribution: why this wave's attempt was discarded, and
          // which slot (if any) caused it.
          obs::AbortReason reason = obs::AbortReason::kOccWaveRetry;
          const account::SlotAccess* hit = nullptr;
          bool clash = false;
          if (!wave_valid_[k]) {
            clash = true;
            reason = obs::AbortReason::kInvalidAttempt;
          } else if (deferred_component_[groups.component_of_tx[i]] != 0) {
            clash = true;
            reason = obs::AbortReason::kOccDeferred;
          }
          if (!clash) {
            for (const auto& r : report.receipts[i].reads) {
              if (wave_writes_.contains(r)) {
                clash = true;
                hit = &r;
                break;
              }
            }
          }
          if (!clash) {
            for (const auto& w : report.receipts[i].writes) {
              if (wave_writes_.contains(w)) {
                clash = true;
                hit = &w;
                break;
              }
            }
          }
          if (clash) {
            retry_.push_back(i);
            deferred_component_[groups.component_of_tx[i]] = 1;
            ++report.abort_reasons[static_cast<std::size_t>(reason)];
            TXCONC_INSTANT_T(tracer, obs::names::kEvAbort,
                             obs::names::kCatExec,
                             static_cast<std::int64_t>(i));
            if (sink != nullptr) {
              if (hit != nullptr) {
                sink->record_abort(reason, obs::touch_key(*hit));
              } else {
                sink->record_abort(reason);
              }
            }
            continue;
          }
          writes_[i].apply_to(state);
          for (const auto& w : report.receipts[i].writes) {
            wave_writes_.insert(w);
          }
        }
      }
      max_retry_depth = std::max(max_retry_depth, retry_.size());
      std::swap(pending_, retry_);
      trace.add_phase2(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wave_end)
                           .count());
    }
    state.flush_journal();

    report.sequential_txs = max_retry_depth;
    report.simulated_units = simulated;
    report.simulated_speedup =
        simulated > 0.0
            ? static_cast<double>(transactions.size()) / simulated
            : 1.0;
    report.wall_seconds = trace.finish(report.sched);
    if (registry != nullptr) {
      // For OCC the conflict stall is the serial dwell: in-order
      // validation plus the degenerate sequential tail (phase 2).
      registry->histogram(obs::names::kMetricExecConflictStallUs)
          .observe(report.sched.phase2_seconds * 1e6);
      obs::Histogram& attempts_hist =
          registry->histogram(obs::names::kMetricExecAttemptsPerTx);
      for (const std::uint32_t a : tx_attempts_) {
        attempts_hist.observe(static_cast<double>(a));
      }
      registry->counter(obs::names::kMetricExecOccWaves).add(waves);
    }
    record_block_metrics(registry, report);
    return report;
  }

  std::string name() const override { return "occ"; }

 private:
  ThreadPool pool_;
  unsigned max_waves_;

  // Cross-block scratch: capacity persists, contents are per-block.
  std::vector<WorkerScratch> scratch_;
  std::vector<account::WriteLog> writes_;     // per tx
  std::vector<unsigned char> wave_valid_;     // per wave position
  std::vector<std::uint32_t> tx_attempts_;    // per tx
  std::vector<std::size_t> pending_;
  std::vector<std::size_t> retry_;
  std::vector<char> deferred_component_;      // per predicted component
  SlotAccessSet wave_writes_;
};

}  // namespace

std::unique_ptr<BlockExecutor> make_occ_executor(unsigned num_threads,
                                                 unsigned max_waves) {
  return std::make_unique<OccExecutor>(num_threads, max_waves);
}

}  // namespace txconc::exec
