// Optimistic concurrency control executor (Block-STM / Dickerson-style):
// repeated waves of parallel speculative execution with in-order
// validation; transactions invalidated by an earlier commit retry in the
// next wave. Unlike the two-phase speculative executor, the conflicted
// tail is itself re-run in parallel, so heavily conflicted blocks finish
// in O(depth-of-dependency-chain) waves instead of one long sequential
// bin.
#include <chrono>
#include <memory>
#include <unordered_map>

#include "account/state.h"
#include "common/error.h"
#include "exec/executor.h"
#include "exec/predict.h"
#include "exec/sched_trace.h"
#include "exec/thread_pool.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace txconc::exec {

namespace {

using SlotHash = account::SlotAccessHash;

class OccExecutor final : public BlockExecutor {
 public:
  OccExecutor(unsigned num_threads, unsigned max_waves)
      : pool_(num_threads, "occ"), max_waves_(max_waves) {
    if (max_waves_ == 0) throw UsageError("OccExecutor: max_waves must be > 0");
  }

  ExecutionReport execute_block(
      account::StateDb& state,
      std::span<const account::AccountTx> transactions,
      const account::RuntimeConfig& config) override {
    obs::Tracer* const tracer = obs::tracer(config.obs);
    obs::Registry* const registry = obs::metrics(config.obs);
    const obs::ThreadProcessScope proc("occ");
    const obs::CausalSpan block_span(
        tracer, "execute_block", "exec", config.trace,
        static_cast<std::int64_t>(transactions.size()));
    SchedTrace trace(&pool_);

    ExecutionReport report;
    report.executor = name();
    report.num_txs = transactions.size();
    report.receipts.resize(transactions.size());

    account::RuntimeConfig tracked = config;
    tracked.track_accesses = true;

    // Sound ordering guard: a transaction must not commit ahead of an
    // earlier-in-block transaction it could conflict with, even when that
    // earlier transaction has not produced access sets yet (it failed
    // validation this wave). The a-priori address components bound what
    // any transaction can touch, so sharing a predicted component with a
    // deferred predecessor forces a retry.
    PredictedGroups groups;
    {
      const obs::CausalSpan span(tracer, "predict", "exec",
                                 block_span.context());
      groups = predict_groups(transactions, state);
    }

    std::vector<std::size_t> pending(transactions.size());
    std::vector<std::uint32_t> tx_attempts(transactions.size(), 0);
    {
      // OCC's schedule is trivial — every pending transaction joins the
      // next wave — but the span keeps the engine phase sets uniform.
      const obs::CausalSpan span(tracer, "schedule", "exec",
                                 block_span.context());
      for (std::size_t i = 0; i < pending.size(); ++i) pending[i] = i;
    }

    double simulated = 0.0;
    unsigned waves = 0;
    std::size_t max_retry_depth = 0;

    while (!pending.empty()) {
      if (++waves > max_waves_) {
        // Degenerate fallback: finish the stragglers sequentially. With
        // max_waves >= longest dependency chain this never triggers.
        const auto tail_start = std::chrono::steady_clock::now();
        const obs::CausalSpan span(tracer, "seq_bin", "exec",
                                   block_span.context());
        for (std::size_t i : pending) {
          ++tx_attempts[i];
          report.receipts[i] =
              account::apply_transaction(state, transactions[i], config);
          report.executions += 1;
          simulated += 1.0;
        }
        pending.clear();
        trace.add_phase2(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - tail_start)
                             .count());
        break;
      }

      // Parallel speculative wave against the frozen base.
      const auto wave_start = std::chrono::steady_clock::now();
      struct Attempt {
        std::unique_ptr<account::OverlayState> overlay;
        bool valid = false;
      };
      std::vector<Attempt> attempts(pending.size());
      {
        const obs::CausalSpan span(tracer, "execute", "exec",
                                   block_span.context(),
                                   static_cast<std::int64_t>(waves));
        pool_.parallel_for(pending.size(), [&](std::size_t k) {
          const std::size_t i = pending[k];
          const TXCONC_SPAN_T(tracer, "attempt", "exec",
                              static_cast<std::int64_t>(i));
          ++tx_attempts[i];  // one writer per index per wave
          attempts[k].overlay = std::make_unique<account::OverlayState>(state);
          try {
            report.receipts[i] = account::apply_transaction(
                *attempts[k].overlay, transactions[i], tracked);
            attempts[k].valid = true;
          } catch (const ValidationError&) {
            attempts[k].valid = false;  // depends on an uncommitted tx
          }
        });
      }
      const auto wave_end = std::chrono::steady_clock::now();
      trace.add_phase1(
          std::chrono::duration<double>(wave_end - wave_start).count());
      report.executions += pending.size();
      simulated += static_cast<double>(
          (pending.size() + pool_.size() - 1) / pool_.size());

      // In-order validation: commit a transaction unless it read or wrote
      // anything an earlier commit of THIS wave wrote.
      const obs::CausalSpan commit_span(tracer, "commit", "exec",
                                        block_span.context(),
                                        static_cast<std::int64_t>(waves));
      std::unordered_map<account::SlotAccess, bool, SlotHash> wave_writes;
      std::vector<char> deferred_component(groups.num_components(), 0);
      std::vector<std::size_t> retry;
      for (std::size_t k = 0; k < pending.size(); ++k) {
        const std::size_t i = pending[k];
        bool clash = !attempts[k].valid ||
                     deferred_component[groups.component_of_tx[i]] != 0;
        if (!clash) {
          for (const auto& r : report.receipts[i].reads) {
            if (wave_writes.contains(r)) {
              clash = true;
              break;
            }
          }
        }
        if (!clash) {
          for (const auto& w : report.receipts[i].writes) {
            if (wave_writes.contains(w)) {
              clash = true;
              break;
            }
          }
        }
        if (clash) {
          retry.push_back(i);
          deferred_component[groups.component_of_tx[i]] = 1;
          continue;
        }
        attempts[k].overlay->apply_to(state);
        for (const auto& w : report.receipts[i].writes) {
          wave_writes.emplace(w, true);
        }
      }
      max_retry_depth = std::max(max_retry_depth, retry.size());
      pending = std::move(retry);
      trace.add_phase2(std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wave_end)
                           .count());
    }
    state.flush_journal();

    report.sequential_txs = max_retry_depth;
    report.simulated_units = simulated;
    report.simulated_speedup =
        simulated > 0.0
            ? static_cast<double>(transactions.size()) / simulated
            : 1.0;
    report.wall_seconds = trace.finish(report.sched);
    if (registry != nullptr) {
      // For OCC the conflict stall is the serial dwell: in-order
      // validation plus the degenerate sequential tail (phase 2).
      registry->histogram("exec.conflict_stall_us")
          .observe(report.sched.phase2_seconds * 1e6);
      obs::Histogram& attempts_hist =
          registry->histogram("exec.attempts_per_tx");
      for (const std::uint32_t a : tx_attempts) {
        attempts_hist.observe(static_cast<double>(a));
      }
      registry->counter("exec.occ_waves").add(waves);
    }
    record_block_metrics(registry, report);
    return report;
  }

  std::string name() const override { return "occ"; }

 private:
  ThreadPool pool_;
  unsigned max_waves_;
};

}  // namespace

std::unique_ptr<BlockExecutor> make_occ_executor(unsigned num_threads,
                                                 unsigned max_waves) {
  return std::make_unique<OccExecutor>(num_threads, max_waves);
}

}  // namespace txconc::exec
