// A fixed-size thread pool with a blocking task queue.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace txconc::exec {

/// Fixed worker pool. Tasks are std::function<void()>; submit() returns a
/// future for completion/exception propagation. Destruction drains the
/// queue then joins the workers.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves when it finishes (or rethrows).
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, count) across the pool and wait for all.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace txconc::exec
