// A fixed-size thread pool with a blocking task queue and a chunked,
// deadlock-safe parallel_for.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace txconc::exec {

/// Monotonic scheduling counters, accumulated over the pool's lifetime.
/// Executors diff two snapshots to attribute overhead to one block.
struct ThreadPoolStats {
  /// Queue tasks executed by worker threads (submit() tasks plus the
  /// per-worker helper tasks parallel_for enqueues).
  std::uint64_t tasks_run = 0;
  std::uint64_t parallel_for_calls = 0;
  /// Contiguous index grains whose body actually ran, across all
  /// parallel_for calls. Grains claimed after a failure was recorded are
  /// skipped and NOT counted (they did no work).
  std::uint64_t grains_total = 0;
  /// Grains the submitting thread drained itself (caller-runs share);
  /// always > 0 when the pool is saturated or the call is nested.
  std::uint64_t grains_caller_run = 0;
};

/// Fixed worker pool. Tasks are std::function<void()>; submit() returns a
/// future for completion/exception propagation. Destruction drains the
/// queue then joins the workers.
///
/// Lock discipline (checked by the `tsa` CI lane): the queue and the
/// stopping flag are guarded by mutex_; the scheduling counters are
/// atomics and deliberately unguarded.
class ThreadPool {
 public:
  /// @param name  observability label: workers register under this as
  ///              their trace process (pid) and executors pass their
  ///              engine name so worker spans group with caller spans.
  explicit ThreadPool(unsigned num_threads, const char* name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves when it finishes (or rethrows).
  /// Blocking on the future from inside a pool task can deadlock (the
  /// waiting worker holds the only free slot) — use parallel_for for
  /// nested fan-out instead.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, count) across the pool and wait for all.
  ///
  /// The range is split into contiguous grains claimed through an atomic
  /// cursor; only one helper task per worker is enqueued (O(size())
  /// allocations and queue operations per call, not O(count)). The calling
  /// thread claims grains too (caller-runs), so a pool task may itself
  /// call parallel_for without deadlocking even when every worker is busy:
  /// the nested caller simply drains its own grains.
  ///
  /// The first exception thrown by any grain is captured and rethrown
  /// exactly once after the whole range has completed; grains claimed
  /// after a failure is recorded are skipped.
  ///
  /// @param grain  indices per chunk; 0 picks a size targeting a few
  ///               chunks per worker for load balance.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 0);

  /// parallel_for variant whose fn also receives a stable execution-slot
  /// id in [0, size()]: the calling thread always claims slot 0 and the
  /// h-th helper task claims slot h+1. Each helper is a distinct queue
  /// entry and a worker runs one task at a time, so two concurrently
  /// running grains never share a slot — engines index per-worker scratch
  /// (overlays, trackers, accumulators) by it without locks.
  ///
  /// Caveat: slot ids are per-call, so a NESTED slotted call reuses slot
  /// ids already live in the outer call. The engines only fan out one
  /// level; keep it that way for slot-indexed scratch.
  using SlotFn = std::function<void(unsigned slot, std::size_t i)>;
  void parallel_for_slots(std::size_t count, const SlotFn& fn,
                          std::size_t grain = 0);

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Snapshot of the monotonic scheduling counters.
  ThreadPoolStats stats() const;

  /// Test-only: install a process-wide hook invoked (from the claiming
  /// thread) before every grain of every parallel_for in every pool; the
  /// argument is a monotonically increasing call sequence number. The
  /// conformance harness installs a seeded perturber here to drive many
  /// distinct interleavings out of one binary. Pass nullptr to remove.
  /// Install/remove only while no parallel_for is in flight; the fast path
  /// when no hook is installed is a single relaxed atomic load.
  using GrainHook = std::function<void(std::uint64_t grain_seq)>;
  static void set_grain_hook(GrainHook hook);

  /// Like set_grain_hook but returns the previously installed hook (an
  /// empty function when none), so scoped installers can restore it.
  static GrainHook swap_grain_hook(GrainHook hook);

  /// Whether any grain hook is currently installed (test assertions).
  static bool grain_hook_installed();

  /// RAII installer for the grain hook: installs `hook` on construction
  /// and restores the PREVIOUS hook on destruction. Nested guards compose
  /// and a scope that unwinds through an exception cannot leak its hook
  /// into later tests or benches — the conformance SchedulePerturber is
  /// built on this.
  class GrainHookGuard {
   public:
    explicit GrainHookGuard(GrainHook hook)
        : prev_(swap_grain_hook(std::move(hook))) {}
    ~GrainHookGuard() { swap_grain_hook(std::move(prev_)); }

    GrainHookGuard(const GrainHookGuard&) = delete;
    GrainHookGuard& operator=(const GrainHookGuard&) = delete;

   private:
    GrainHook prev_;
  };

 private:
  struct Batch;  // shared state of one parallel_for call

  void worker_loop(unsigned worker_index);
  void run_grains(Batch& batch, unsigned slot);

  const char* label_;                 // interned pool name (see obs/trace.h)
  std::vector<std::thread> workers_;  // written once in the constructor
  Mutex mutex_;
  CondVar cv_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;

  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> parallel_for_calls_{0};
  std::atomic<std::uint64_t> grains_total_{0};
  std::atomic<std::uint64_t> grains_caller_run_{0};
};

}  // namespace txconc::exec
