// A-priori conflict prediction for account blocks.
//
// Builds the approximate TDG the paper describes in Section V-C ("an
// approximate TDG can be constructed by only using information about the
// regular transactions") — extended with two pieces of information that
// ARE available before execution: the transaction's dynamic address
// arguments, and the call targets statically reachable through contract
// address tables. For the contract library shipped in src/account this
// prediction is sound: every address an execution can touch is covered.
#pragma once

#include <span>
#include <vector>

#include "account/state.h"
#include "account/types.h"
#include "core/components.h"

namespace txconc::obs {
class Tracer;
}

namespace txconc::exec {

/// Per-transaction predicted conflict groups.
struct PredictedGroups {
  /// Component id for each transaction (indexed by block position).
  std::vector<core::ComponentId> component_of_tx;
  /// Number of transactions per component.
  std::vector<std::size_t> component_sizes;

  std::size_t num_components() const { return component_sizes.size(); }
};

/// Predict which transactions may touch overlapping state, at address
/// granularity, without executing anything.
PredictedGroups predict_groups(
    std::span<const account::AccountTx> transactions,
    const account::State& state);

/// Traced variant: emits predict.closure (per-tx reachability walk +
/// TDG edges) and predict.components (DSU + group fill) sub-spans on
/// `tracer` so the critical-path profiler can split the graph-build
/// phase. tracer may be null (falls back to the untraced path).
PredictedGroups predict_groups(
    std::span<const account::AccountTx> transactions,
    const account::State& state, obs::Tracer* tracer);

/// Every address one transaction can possibly touch, as seen by the
/// a-priori predictor: the sender, the target (or derived creation
/// address), the dynamic address arguments, and every contract statically
/// reachable from the target or the arguments through address tables.
/// predict_groups connects exactly this closure, so the audit layer can
/// check recorded accesses against the same sets the scheduler used.
std::vector<Address> predicted_addresses(const account::AccountTx& tx,
                                         const account::State& state);

}  // namespace txconc::exec
