// Group-concurrency executor and the shared a-priori conflict prediction.
#include <chrono>
#include <unordered_map>
#include <unordered_set>

#include "account/state.h"
#include "common/error.h"
#include "core/components.h"
#include "core/scheduling.h"
#include "core/tdg.h"
#include "exec/executor.h"
#include "exec/predict.h"
#include "exec/sched_trace.h"
#include "exec/scratch.h"
#include "exec/thread_pool.h"
#include "obs/names.h"
#include "obs/scope.h"
#include "obs/trace.h"

namespace txconc::exec {

namespace {

/// All addresses a call to `addr` can statically reach through contract
/// address tables (including `addr` itself).
void reachable_addresses(const account::State& state, const Address& addr,
                         std::vector<Address>& out,
                         std::unordered_set<Address>& seen) {
  if (!seen.insert(addr).second) return;
  out.push_back(addr);
  const account::ContractCode* code = state.code(addr);
  if (code == nullptr) return;
  for (const Address& next : code->address_table) {
    reachable_addresses(state, next, out, seen);
  }
}

/// The full predicted closure of one transaction (see predict.h). Shared
/// by predict_groups and predicted_addresses so the scheduler and the
/// auditor agree byte-for-byte on what was predicted.
void collect_predicted(const account::State& state,
                       const account::AccountTx& tx,
                       std::vector<Address>& out,
                       std::unordered_set<Address>& seen) {
  if (seen.insert(tx.from).second) out.push_back(tx.from);
  const Address to = tx.to.has_value()
                         ? *tx.to
                         : Address::derive_contract(tx.from, tx.nonce);
  reachable_addresses(state, to, out, seen);
  // Dynamic address arguments replace the top frame's address table, so
  // anything statically reachable from them is callable too.
  for (const Address& arg : tx.address_args) {
    reachable_addresses(state, arg, out, seen);
  }
}

}  // namespace

std::vector<Address> predicted_addresses(const account::AccountTx& tx,
                                         const account::State& state) {
  std::vector<Address> out;
  std::unordered_set<Address> seen;
  collect_predicted(state, tx, out, seen);
  return out;
}

PredictedGroups predict_groups(
    std::span<const account::AccountTx> transactions,
    const account::State& state) {
  return predict_groups(transactions, state, nullptr);
}

PredictedGroups predict_groups(
    std::span<const account::AccountTx> transactions,
    const account::State& state, obs::Tracer* tracer) {
  core::KeyedTdg<Address> tdg;
  std::vector<core::NodeId> sender_node(transactions.size());

  {
    const TXCONC_SPAN_T(tracer, obs::names::kSpanPredictClosure,
                        obs::names::kCatExec,
                        static_cast<std::int64_t>(transactions.size()));
    std::vector<Address> scratch;
    std::unordered_set<Address> seen;
    for (std::size_t i = 0; i < transactions.size(); ++i) {
      const account::AccountTx& tx = transactions[i];
      sender_node[i] = tdg.node(tx.from);

      scratch.clear();
      seen.clear();
      collect_predicted(state, transactions[i], scratch, seen);
      for (const Address& addr : scratch) {
        if (addr != tx.from) tdg.add_edge(tx.from, addr);
      }
    }
  }

  const TXCONC_SPAN_T(tracer, obs::names::kSpanPredictComponents,
                      obs::names::kCatExec, -1);
  const core::ComponentSet components =
      core::connected_components_dsu(tdg.graph());

  PredictedGroups out;
  out.component_of_tx.resize(transactions.size());
  // Component ids over addresses are dense; reuse them for transactions
  // and count how many transactions land in each.
  out.component_sizes.assign(components.num_components(), 0);
  for (std::size_t i = 0; i < transactions.size(); ++i) {
    const core::ComponentId cc = components.component_of(sender_node[i]);
    out.component_of_tx[i] = cc;
    ++out.component_sizes[cc];
  }
  return out;
}

namespace {

class GroupExecutor final : public BlockExecutor {
 public:
  GroupExecutor(unsigned num_threads, bool use_lpt)
      : label_(use_lpt ? "group-lpt" : "group-list"),
        pool_(num_threads, label_),
        use_lpt_(use_lpt) {}

  ExecutionReport execute_block(
      account::StateDb& state,
      std::span<const account::AccountTx> transactions,
      const account::RuntimeConfig& config) override {
    obs::Tracer* const tracer = obs::tracer(config.obs);
    obs::Registry* const registry = obs::metrics(config.obs);
    const obs::ThreadProcessScope proc(label_);
    const obs::CausalSpan block_span(
        tracer, obs::names::kSpanExecuteBlock, obs::names::kCatExec,
        config.trace, static_cast<std::int64_t>(transactions.size()));
    emit_thread_budget(tracer, pool_.size() + 1);
    SchedTrace trace(&pool_);

    ExecutionReport report;
    report.executor = name();
    report.num_txs = transactions.size();
    report.receipts.resize(transactions.size());

    // Partition transactions into predicted components (block order is
    // preserved inside each component).
    PredictedGroups groups;
    std::vector<std::vector<std::size_t>> jobs;
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanPredict,
                                 obs::names::kCatExec, block_span.context());
      groups = predict_groups(transactions, state, tracer);
      std::vector<std::vector<std::size_t>> members(groups.num_components());
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        members[groups.component_of_tx[i]].push_back(i);
      }
      // Drop empty components (address components with no transaction).
      jobs.reserve(members.size());
      for (auto& m : members) {
        if (!m.empty()) jobs.push_back(std::move(m));
      }
    }

    core::Schedule schedule;
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanSchedule,
                                 obs::names::kCatExec, block_span.context(),
                                 static_cast<std::int64_t>(jobs.size()));
      std::vector<double> costs;
      costs.reserve(jobs.size());
      for (const auto& job : jobs) {
        costs.push_back(static_cast<double>(job.size()));
      }
      schedule = use_lpt_ ? core::schedule_lpt(costs, pool_.size())
                          : core::schedule_list(costs, pool_.size());
    }

    // Execute: each worker runs its assigned components sequentially on a
    // private overlay; disjoint components touch disjoint addresses, so
    // overlays commute and merge cleanly afterwards. The overlays and
    // trackers live in cross-block scratch — rebased per block, never
    // reallocated (the parallel_for index IS the core id, so no slot
    // indirection is needed here).
    if (scratch_.size() < schedule.assignment.size()) {
      scratch_.resize(schedule.assignment.size());
    }
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanExecute,
                                 obs::names::kCatExec, block_span.context(),
                                 static_cast<std::int64_t>(transactions.size()));
      pool_.parallel_for(schedule.assignment.size(), [&](std::size_t core_id) {
        if (schedule.assignment[core_id].empty()) return;
        WorkerScratch& ws = scratch_[core_id];
        ws.overlay.reset(state);
        for (std::size_t job_index : schedule.assignment[core_id]) {
          for (std::size_t tx_index : jobs[job_index]) {
            const TXCONC_SPAN_T(tracer, obs::names::kSpanAttempt,
                                obs::names::kCatExec,
                                static_cast<std::int64_t>(tx_index));
            account::apply_transaction_into(ws.overlay,
                                            transactions[tx_index], config,
                                            report.receipts[tx_index],
                                            ws.tracker);
          }
        }
      });
    }
    trace.phase_boundary();
    {
      const obs::CausalSpan span(tracer, obs::names::kSpanCommit,
                                 obs::names::kCatExec, block_span.context());
      // Merged values are final; skip the undo journal.
      const account::JournalPause pause(state);
      for (std::size_t core_id = 0; core_id < schedule.assignment.size();
           ++core_id) {
        if (schedule.assignment[core_id].empty()) continue;
        scratch_[core_id].overlay.apply_to(state);
      }
      state.flush_journal();
    }

    std::size_t lcc = 0;
    for (const auto& job : jobs) lcc = std::max(lcc, job.size());
    report.sequential_txs = lcc;
    report.executions = transactions.size();
    report.simulated_units = schedule.makespan;
    report.simulated_speedup =
        schedule.makespan > 0.0
            ? static_cast<double>(transactions.size()) / schedule.makespan
            : 1.0;
    report.wall_seconds = trace.finish(report.sched);
    if (registry != nullptr) {
      // Serial dwell for group concurrency: the overlay-merge tail; the
      // in-phase-1 stall (cores idling behind the longest component) is
      // visible separately via exec.largest_component_txs.
      registry->histogram(obs::names::kMetricExecConflictStallUs)
          .observe(report.sched.phase2_seconds * 1e6);
      obs::Histogram& attempts_hist =
          registry->histogram(obs::names::kMetricExecAttemptsPerTx);
      for (std::size_t i = 0; i < transactions.size(); ++i) {
        attempts_hist.observe(1.0);  // groups never re-execute
      }
      registry->histogram(obs::names::kMetricExecLargestComponentTxs)
          .observe(static_cast<double>(lcc));
    }
    record_block_metrics(registry, report);
    return report;
  }

  std::string name() const override { return label_; }

 private:
  const char* label_;  // string literal; doubles as the trace process
  ThreadPool pool_;
  bool use_lpt_;
  std::vector<WorkerScratch> scratch_;  // per core, reused across blocks
};

}  // namespace

std::unique_ptr<BlockExecutor> make_group_executor(unsigned num_threads,
                                                   bool use_lpt) {
  return std::make_unique<GroupExecutor>(num_threads, use_lpt);
}

}  // namespace txconc::exec
