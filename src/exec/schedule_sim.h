// Simulated-time schedulers in the paper's unit-cost model: every
// transaction takes one time unit; n cores. These validate the Section V
// closed forms exactly and are also used by the figure benches.
#pragma once

#include <cstddef>
#include <span>

#include "core/scheduling.h"

namespace txconc::exec {

/// Result of one simulated block execution.
struct SimOutcome {
  double time_units = 0.0;
  double speedup = 0.0;  ///< x / time_units (1.0 for an empty block).
};

/// Fully speculative two-phase execution (Saraph & Herlihy): a concurrent
/// phase over all x transactions (exact duration ceil(x/n)) followed by a
/// sequential re-run of the conflicted transactions.
SimOutcome simulate_speculative(std::size_t x, std::size_t num_conflicted,
                                unsigned cores);

/// Perfect-information speculation: only the (x - conflicted) transactions
/// run concurrently; preprocessing costs k_preprocess time units.
SimOutcome simulate_oracle(std::size_t x, std::size_t num_conflicted,
                           unsigned cores, double k_preprocess);

/// Group-concurrency execution: connected components (job = component,
/// cost = component size) scheduled onto cores; sequential inside a
/// component. Uses LPT by default.
SimOutcome simulate_group(std::span<const double> component_sizes,
                          unsigned cores, double k_preprocess = 0.0,
                          bool use_lpt = true);

}  // namespace txconc::exec
