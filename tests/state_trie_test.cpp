// Tests for the authenticated state trie and its node integration.
#include <gtest/gtest.h>

#include "account/state.h"
#include "account/state_trie.h"
#include "common/rng.h"

namespace txconc::account {
namespace {

Address addr(std::uint64_t seed) { return Address::from_seed(seed); }
Hash256 digest(std::uint64_t seed) { return Hash256::from_seed(seed); }

TEST(StateTrie, EmptyRootIsStable) {
  StateTrie a;
  StateTrie b;
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.size(), 0u);
}

TEST(StateTrie, UpdateChangesRootDeterministically) {
  StateTrie a;
  StateTrie b;
  const Hash256 empty_root = a.root();

  a.update(addr(1), digest(100));
  EXPECT_NE(a.root(), empty_root);
  EXPECT_EQ(a.size(), 1u);

  b.update(addr(1), digest(100));
  EXPECT_EQ(a.root(), b.root());

  // Different value, different root.
  b.update(addr(1), digest(101));
  EXPECT_NE(a.root(), b.root());
  EXPECT_EQ(b.size(), 1u);  // update, not insert
}

TEST(StateTrie, OrderIndependent) {
  StateTrie a;
  StateTrie b;
  for (std::uint64_t s = 0; s < 50; ++s) {
    a.update(addr(s), digest(s));
  }
  for (std::uint64_t s = 50; s-- > 0;) {
    b.update(addr(s), digest(s));
  }
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.size(), 50u);
}

TEST(StateTrie, EraseRestoresPriorRoot) {
  StateTrie trie;
  trie.update(addr(1), digest(1));
  const Hash256 one = trie.root();
  trie.update(addr(2), digest(2));
  trie.erase(addr(2));
  EXPECT_EQ(trie.root(), one);
  EXPECT_EQ(trie.size(), 1u);
  // Erasing an absent key is a no-op.
  trie.erase(addr(99));
  EXPECT_EQ(trie.root(), one);
}

TEST(StateTrie, ZeroDigestMeansErase) {
  StateTrie trie;
  const Hash256 empty_root = trie.root();
  trie.update(addr(1), digest(1));
  trie.update(addr(1), Hash256{});
  EXPECT_EQ(trie.root(), empty_root);
  EXPECT_EQ(trie.size(), 0u);
}

TEST(StateTrie, ProofsVerifyForMembersAndAbsence) {
  StateTrie trie;
  for (std::uint64_t s = 0; s < 20; ++s) {
    trie.update(addr(s), digest(s));
  }
  const Hash256 root = trie.root();

  // Membership.
  for (std::uint64_t s = 0; s < 20; ++s) {
    const StateTrie::Proof proof = trie.prove(addr(s));
    EXPECT_EQ(proof.leaf, digest(s));
    EXPECT_TRUE(StateTrie::verify(proof, root)) << s;
  }
  // Non-membership: absent addresses prove the empty leaf.
  const StateTrie::Proof absent = trie.prove(addr(999));
  EXPECT_TRUE(absent.leaf.is_zero());
  EXPECT_TRUE(StateTrie::verify(absent, root));
}

TEST(StateTrie, ForgedProofsFail) {
  StateTrie trie;
  trie.update(addr(1), digest(1));
  trie.update(addr(2), digest(2));
  const Hash256 root = trie.root();

  StateTrie::Proof proof = trie.prove(addr(1));
  // Wrong leaf value.
  StateTrie::Proof forged = proof;
  forged.leaf = digest(42);
  EXPECT_FALSE(StateTrie::verify(forged, root));
  // Wrong address (path mismatch).
  forged = proof;
  forged.address = addr(3);
  EXPECT_FALSE(StateTrie::verify(forged, root));
  // Tampered sibling.
  forged = proof;
  forged.siblings[5] = digest(7);
  EXPECT_FALSE(StateTrie::verify(forged, root));
  // Truncated proof.
  forged = proof;
  forged.siblings.pop_back();
  EXPECT_FALSE(StateTrie::verify(forged, root));
}

TEST(StateTrie, RandomChurnKeepsRootConsistent) {
  // Property: after any sequence of updates/erases, the root equals that
  // of a freshly built trie with the same final contents.
  Rng rng(7);
  StateTrie churned;
  std::unordered_map<std::uint64_t, Hash256> reference;
  for (int step = 0; step < 500; ++step) {
    const std::uint64_t key = rng.uniform(60);
    if (rng.bernoulli(0.3)) {
      churned.erase(addr(key));
      reference.erase(key);
    } else {
      const Hash256 value = digest(rng.next_u64());
      churned.update(addr(key), value);
      reference[key] = value;
    }
  }
  StateTrie fresh;
  for (const auto& [key, value] : reference) {
    fresh.update(addr(key), value);
  }
  EXPECT_EQ(churned.root(), fresh.root());
  EXPECT_EQ(churned.size(), reference.size());
}

TEST(StateTrie, BuildFromStateDbTracksState) {
  StateDb state;
  state.set_balance(addr(1), 100);
  state.set_balance(addr(2), 200);
  state.set_storage(addr(3), 5, 50);
  const Hash256 root1 = build_state_trie(state).root();

  // Same logical state, different construction order -> same root.
  StateDb state2;
  state2.set_storage(addr(3), 5, 50);
  state2.set_balance(addr(2), 200);
  state2.set_balance(addr(1), 100);
  EXPECT_EQ(build_state_trie(state2).root(), root1);

  // Any change moves the root.
  state.set_balance(addr(1), 101);
  EXPECT_NE(build_state_trie(state).root(), root1);

  // Touched-but-default accounts do not affect the root.
  StateDb state3;
  state3.set_balance(addr(1), 100);
  state3.set_balance(addr(2), 200);
  state3.set_storage(addr(3), 5, 50);
  state3.set_balance(addr(9), 0);  // default-state account
  EXPECT_EQ(build_state_trie(state3).root(), root1);
}

TEST(StateTrie, AccountProofAuthenticatesBalance) {
  // End-to-end light-client flow: prove an account's digest against the
  // committed root, then check the digest matches the claimed state.
  StateDb state;
  state.set_balance(addr(1), 12345);
  const StateTrie trie = build_state_trie(state);
  const StateTrie::Proof proof = trie.prove(addr(1));
  ASSERT_TRUE(StateTrie::verify(proof, trie.root()));
  EXPECT_EQ(proof.leaf, state.account_digest(addr(1)));
}

}  // namespace
}  // namespace txconc::account
