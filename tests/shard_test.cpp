// Tests for the Zilliqa-style sharding substrate.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include <cmath>

#include "common/stats.h"
#include "shard/cross_shard.h"
#include "shard/election.h"
#include "shard/pbft.h"
#include "shard/sharding.h"

namespace txconc::shard {
namespace {

account::AccountTx tx_between(std::uint64_t from_seed, std::uint64_t to_seed) {
  account::AccountTx tx;
  tx.from = Address::from_seed(from_seed);
  tx.to = Address::from_seed(to_seed);
  return tx;
}

// ---------------------------------------------------------------------- pbft

TEST(Pbft, MessageCountQuadratic) {
  // (n-1) + 2n(n-1)
  EXPECT_EQ(pbft_message_count(4), 3u + 24u);
  EXPECT_EQ(pbft_message_count(10), 9u + 180u);
  // Quadratic growth: 10x nodes -> ~100x messages.
  EXPECT_GT(pbft_message_count(100), 50 * pbft_message_count(10));
}

TEST(Pbft, EmptyCommitteeRejected) {
  EXPECT_THROW(pbft_message_count(0), UsageError);
}

TEST(Pbft, RoundLatencyIsThreePhases) {
  PbftConfig config;
  config.message_latency = 0.5;
  EXPECT_DOUBLE_EQ(pbft_round_latency(config), 1.5);
}

TEST(Pbft, FaultFreeRoundDeterministic) {
  PbftConfig config;
  config.committee_size = 10;
  config.faulty_leader_probability = 0.0;
  PbftSimulator sim(1, config);
  const PbftOutcome outcome = sim.run_round();
  EXPECT_EQ(outcome.view_changes, 0u);
  EXPECT_DOUBLE_EQ(outcome.latency_seconds, pbft_round_latency(config));
  EXPECT_EQ(outcome.messages, pbft_message_count(10));
}

TEST(Pbft, FaultyLeadersCauseViewChanges) {
  PbftConfig config;
  config.committee_size = 10;
  config.faulty_leader_probability = 0.5;
  PbftSimulator sim(1, config);
  std::size_t total_view_changes = 0;
  for (int i = 0; i < 2000; ++i) {
    total_view_changes += sim.run_round().view_changes;
  }
  // Expected view changes per round: p/(1-p) = 1.
  EXPECT_NEAR(total_view_changes / 2000.0, 1.0, 0.15);
}

TEST(Pbft, RejectsBadConfig) {
  PbftConfig too_small;
  too_small.committee_size = 3;
  EXPECT_THROW(PbftSimulator(1, too_small), UsageError);

  PbftConfig bad_prob;
  bad_prob.faulty_leader_probability = 1.0;
  EXPECT_THROW(PbftSimulator(1, bad_prob), UsageError);
}

// ------------------------------------------------------------------ sharding

TEST(Sharding, AssignmentDeterministicAndInRange) {
  for (std::uint64_t s = 0; s < 100; ++s) {
    const Address a = Address::from_seed(s);
    const unsigned shard = shard_of(a, 4);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, shard_of(a, 4));
  }
  EXPECT_THROW(shard_of(Address::from_seed(1), 0), UsageError);
}

TEST(Sharding, AssignmentRoughlyBalanced) {
  std::vector<int> counts(4, 0);
  for (std::uint64_t s = 0; s < 4000; ++s) {
    ++counts[shard_of(Address::from_seed(s), 4)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 1000, 150);
  }
}

TEST(Sharding, CrossShardDetection) {
  // Find two addresses in the same shard and two in different shards.
  const Address a = Address::from_seed(1);
  Address same;
  Address different;
  for (std::uint64_t s = 2;; ++s) {
    const Address b = Address::from_seed(s);
    if (shard_of(b, 4) == shard_of(a, 4)) {
      same = b;
      break;
    }
  }
  for (std::uint64_t s = 2;; ++s) {
    const Address b = Address::from_seed(s);
    if (shard_of(b, 4) != shard_of(a, 4)) {
      different = b;
      break;
    }
  }
  account::AccountTx intra;
  intra.from = a;
  intra.to = same;
  EXPECT_FALSE(is_cross_shard(intra, 4));

  account::AccountTx cross;
  cross.from = a;
  cross.to = different;
  EXPECT_TRUE(is_cross_shard(cross, 4));

  account::AccountTx creation;
  creation.from = a;
  EXPECT_FALSE(is_cross_shard(creation, 4));
}

class ZilliqaTest : public ::testing::Test {
 protected:
  ShardConfig config() {
    ShardConfig c;
    c.num_shards = 4;
    c.pbft.committee_size = 10;
    c.pbft.message_latency = 0.1;
    c.shard_capacity = 100;
    c.state_sync_latency = 5.0;
    return c;
  }
};

TEST_F(ZilliqaTest, PartitionsBySenderAndRejectsCrossShard) {
  ZilliqaSimulator sim(1, config());
  std::vector<account::AccountTx> pending;
  for (std::uint64_t s = 0; s < 200; ++s) {
    pending.push_back(tx_between(s, s + 1000));
  }
  const std::size_t total = pending.size();
  const EpochResult result = sim.run_epoch(std::move(pending));

  // Every transaction is either accepted, rejected, or deferred.
  EXPECT_EQ(result.final_block.size() + result.rejected_cross_shard.size() +
                result.deferred.size(),
            total);
  // Roughly 3/4 of random transactions are cross-shard with 4 committees.
  EXPECT_NEAR(static_cast<double>(result.rejected_cross_shard.size()) / total,
              0.75, 0.12);

  // Accepted transactions sit in their sender's micro-block.
  for (const MicroBlock& micro : result.micro_blocks) {
    for (const auto& tx : micro.transactions) {
      EXPECT_EQ(shard_of(tx.from, 4), micro.shard);
      EXPECT_FALSE(is_cross_shard(tx, 4));
    }
  }
  // Latency includes consensus and the state-sync penalty.
  EXPECT_GT(result.latency_seconds, 5.0);
  EXPECT_GT(result.total_messages, 0u);
}

TEST_F(ZilliqaTest, CapacityDefersOverflow) {
  ShardConfig c = config();
  c.shard_capacity = 5;
  ZilliqaSimulator sim(1, c);

  // Many same-shard transactions from one sender.
  const Address sender = Address::from_seed(1);
  Address same_shard_receiver;
  for (std::uint64_t s = 2;; ++s) {
    if (shard_of(Address::from_seed(s), 4) == shard_of(sender, 4)) {
      same_shard_receiver = Address::from_seed(s);
      break;
    }
  }
  std::vector<account::AccountTx> pending(20);
  for (auto& tx : pending) {
    tx.from = sender;
    tx.to = same_shard_receiver;
  }
  const EpochResult result = sim.run_epoch(std::move(pending));
  EXPECT_EQ(result.final_block.size(), 5u);
  EXPECT_EQ(result.deferred.size(), 15u);
  EXPECT_TRUE(result.rejected_cross_shard.empty());
}

TEST_F(ZilliqaTest, MoreShardsRaiseAggregateThroughputCeiling) {
  // With the same per-shard capacity, more committees accept more of a
  // same-shard-friendly workload.
  ShardConfig c2 = config();
  c2.num_shards = 2;
  c2.shard_capacity = 10;
  ShardConfig c8 = config();
  c8.num_shards = 8;
  c8.shard_capacity = 10;

  std::vector<account::AccountTx> pending;
  for (std::uint64_t s = 0; s < 400; ++s) {
    // Same-shard under any power-of-two shard count: to == from.
    account::AccountTx tx;
    tx.from = Address::from_seed(s);
    tx.to = tx.from;
    pending.push_back(tx);
  }
  ZilliqaSimulator sim2(1, c2);
  ZilliqaSimulator sim8(1, c8);
  const auto r2 = sim2.run_epoch(pending);
  const auto r8 = sim8.run_epoch(pending);
  EXPECT_EQ(r2.final_block.size(), 20u);
  EXPECT_EQ(r8.final_block.size(), 80u);
}

// ------------------------------------------------------------- cross-shard

class CrossShardTest : public ::testing::Test {
 protected:
  CrossShardTest() : coordinator_(1, config()) {}

  static ShardConfig config() {
    ShardConfig c;
    c.num_shards = 4;
    c.pbft.committee_size = 8;
    c.pbft.message_latency = 0.1;
    return c;
  }

  /// Fund an address in its own committee's state.
  void fund(const Address& a, std::uint64_t v) {
    const unsigned shard = shard_of(a, 4);
    coordinator_.shard_state(shard).set_balance(a, v);
    coordinator_.shard_state(shard).flush_journal();
  }

  /// The (skip+1)-th distinct address mapping to the given committee.
  static Address address_in_shard(unsigned shard, std::uint64_t skip = 0) {
    for (std::uint64_t s = 0;; ++s) {
      const Address a = Address::from_seed(0xc0de + s * 131);
      if (shard_of(a, 4) == shard) {
        if (skip == 0) return a;
        --skip;
      }
    }
  }

  CrossShardCoordinator coordinator_;
};

TEST_F(CrossShardTest, SameShardTransferDirect) {
  const Address a = address_in_shard(1, 0);
  const Address b = address_in_shard(1, 1);
  fund(a, 1000);

  account::AccountTx tx;
  tx.from = a;
  tx.to = b;
  tx.value = 400;
  const CrossShardOutcome outcome = coordinator_.transfer(tx);
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(coordinator_.shard_state(1).balance(b), 400u);
  // One consensus round only.
  EXPECT_NEAR(outcome.latency_seconds, 0.3, 1e-9);
}

TEST_F(CrossShardTest, CrossShardCommitMovesValueAtomically) {
  const Address a = address_in_shard(0);
  const Address b = address_in_shard(3);
  fund(a, 1000);
  const std::uint64_t supply = coordinator_.total_supply();

  account::AccountTx tx;
  tx.from = a;
  tx.to = b;
  tx.value = 250;
  const CrossShardOutcome outcome = coordinator_.transfer(tx);
  EXPECT_TRUE(outcome.committed);
  EXPECT_TRUE(outcome.proof.accepted);
  EXPECT_EQ(outcome.proof.source_shard, 0u);
  EXPECT_EQ(outcome.proof.dest_shard, 3u);
  EXPECT_EQ(coordinator_.shard_state(0).balance(a), 750u);
  EXPECT_EQ(coordinator_.shard_state(3).balance(b), 250u);
  EXPECT_EQ(coordinator_.escrow_total(), 0u);
  EXPECT_EQ(coordinator_.total_supply(), supply);
  // Two consensus rounds.
  EXPECT_NEAR(outcome.latency_seconds, 0.6, 1e-9);
}

TEST_F(CrossShardTest, InsufficientFundsYieldsRejectionProof) {
  const Address a = address_in_shard(0);
  const Address b = address_in_shard(2);
  fund(a, 10);

  account::AccountTx tx;
  tx.from = a;
  tx.to = b;
  tx.value = 9999;
  const CrossShardOutcome outcome = coordinator_.transfer(tx);
  EXPECT_FALSE(outcome.committed);
  EXPECT_FALSE(outcome.proof.accepted);
  EXPECT_EQ(coordinator_.shard_state(0).balance(a), 10u);
  EXPECT_EQ(coordinator_.escrow_total(), 0u);
}

TEST_F(CrossShardTest, DestinationRejectionUnlocksEscrow) {
  const Address a = address_in_shard(0);
  const Address b = address_in_shard(2);
  fund(a, 1000);
  const std::uint64_t supply = coordinator_.total_supply();

  account::AccountTx tx;
  tx.from = a;
  tx.to = b;
  tx.value = 500;
  const CrossShardOutcome outcome =
      coordinator_.transfer(tx, /*force_dest_reject=*/true);
  EXPECT_FALSE(outcome.committed);
  EXPECT_TRUE(outcome.proof.accepted);  // lock succeeded, redeem refused
  // Abort left no trace: funds unlocked, nothing credited.
  EXPECT_EQ(coordinator_.shard_state(0).balance(a), 1000u);
  EXPECT_EQ(coordinator_.shard_state(2).balance(b), 0u);
  EXPECT_EQ(coordinator_.escrow_total(), 0u);
  EXPECT_EQ(coordinator_.total_supply(), supply);
  // Three consensus rounds (lock, refused redeem, unlock).
  EXPECT_NEAR(outcome.latency_seconds, 0.9, 1e-9);
}

TEST_F(CrossShardTest, CreationNotRouted) {
  account::AccountTx creation;
  creation.from = address_in_shard(0);
  const CrossShardOutcome outcome = coordinator_.transfer(creation);
  EXPECT_FALSE(outcome.committed);
}

// Property: random transfer mixes (including forced aborts) conserve the
// total supply and leave no funds stuck in escrow.
class CrossShardConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossShardConservation, SupplyConservedNoEscrowLeak) {
  ShardConfig config;
  config.num_shards = 4;
  config.pbft.committee_size = 8;
  CrossShardCoordinator coordinator(GetParam(), config);

  Rng rng(GetParam());
  std::vector<Address> accounts;
  for (std::uint64_t s = 0; s < 16; ++s) {
    accounts.push_back(Address::from_seed(500 + s));
    const unsigned shard = shard_of(accounts.back(), 4);
    coordinator.shard_state(shard).set_balance(accounts.back(), 1000);
    coordinator.shard_state(shard).flush_journal();
  }
  const std::uint64_t supply = coordinator.total_supply();
  ASSERT_EQ(supply, 16u * 1000u);

  std::size_t commits = 0;
  for (int i = 0; i < 200; ++i) {
    account::AccountTx tx;
    tx.from = accounts[rng.uniform(accounts.size())];
    tx.to = accounts[rng.uniform(accounts.size())];
    tx.value = rng.uniform(1500);  // sometimes unaffordable
    const bool force_reject = rng.bernoulli(0.2);
    commits += coordinator.transfer(tx, force_reject).committed ? 1 : 0;
  }
  EXPECT_GT(commits, 0u);
  EXPECT_EQ(coordinator.total_supply(), supply);
  EXPECT_EQ(coordinator.escrow_total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossShardConservation,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------- elections

TEST(Election, CommitteesAreExactlyFilled) {
  ElectionConfig config;
  config.num_shards = 3;
  config.committee_size = 50;
  CommitteeElection election(1, config);
  const std::vector<double> power(200, 1.0);
  const std::vector<std::uint8_t> adversarial(200, 0);
  const ElectionResult result = election.run_epoch(power, adversarial);
  ASSERT_EQ(result.committees.size(), 3u);
  for (const auto& committee : result.committees) {
    EXPECT_EQ(committee.size(), 50u);
  }
  EXPECT_EQ(result.compromised, 0u);
}

TEST(Election, SeatsProportionalToHashPower) {
  ElectionConfig config;
  config.num_shards = 4;
  config.committee_size = 500;
  CommitteeElection election(2, config);
  // Node 0 holds half of the total power.
  std::vector<double> power(101, 0.01);
  power[0] = 1.0;
  const std::vector<std::uint8_t> adversarial(101, 0);
  const ElectionResult result = election.run_epoch(power, adversarial);
  std::size_t node0_seats = 0;
  for (const auto& committee : result.committees) {
    for (std::uint32_t member : committee) {
      if (member == 0) ++node0_seats;
    }
  }
  EXPECT_NEAR(static_cast<double>(node0_seats) / 2000.0, 0.5, 0.05);
}

TEST(Election, AdversaryFractionConcentratesAroundPower) {
  ElectionConfig config;
  config.num_shards = 4;
  config.committee_size = 600;
  CommitteeElection election(3, config);
  std::vector<double> power(1000, 1.0);
  std::vector<std::uint8_t> adversarial(1000, 0);
  for (std::size_t i = 0; i < 200; ++i) adversarial[i] = 1;  // 20%

  RunningStats fractions;
  for (int epoch = 0; epoch < 20; ++epoch) {
    const ElectionResult result = election.run_epoch(power, adversarial);
    for (double f : result.adversary_fraction) fractions.add(f);
    EXPECT_EQ(result.compromised, 0u);  // 20% << 33% at size 600
  }
  EXPECT_NEAR(fractions.mean(), 0.2, 0.02);
}

TEST(Election, SmallCommitteesGetCompromised) {
  // With 30% adversarial power, committees of 10 are regularly captured
  // while committees of 600 essentially never are — the paper's sharding
  // security argument in numbers.
  ElectionConfig small;
  small.num_shards = 8;
  small.committee_size = 10;
  CommitteeElection election(4, small);
  std::vector<double> power(1000, 1.0);
  std::vector<std::uint8_t> adversarial(1000, 0);
  for (std::size_t i = 0; i < 300; ++i) adversarial[i] = 1;

  unsigned compromised = 0;
  for (int epoch = 0; epoch < 50; ++epoch) {
    compromised += election.run_epoch(power, adversarial).compromised;
  }
  EXPECT_GT(compromised, 0u);
}

TEST(Election, CompromiseProbabilityMatchesBinomial) {
  // n=10, p=0.3, threshold 1/3 -> P(X >= 4) for X ~ Bin(10, 0.3).
  double expected = 0.0;
  const double p = 0.3;
  auto choose = [](int n, int k) {
    double c = 1.0;
    for (int i = 0; i < k; ++i) c = c * (n - i) / (i + 1);
    return c;
  };
  for (int k = 4; k <= 10; ++k) {
    expected += choose(10, k) * std::pow(p, k) * std::pow(1 - p, 10 - k);
  }
  EXPECT_NEAR(committee_compromise_probability(10, 0.3), expected, 1e-12);
}

TEST(Election, CompromiseProbabilityShrinksWithCommitteeSize) {
  const double p30_10 = committee_compromise_probability(10, 0.30);
  const double p30_100 = committee_compromise_probability(100, 0.30);
  const double p30_600 = committee_compromise_probability(600, 0.30);
  EXPECT_GT(p30_10, p30_100);
  EXPECT_GT(p30_100, p30_600);
  EXPECT_LT(p30_600, 0.05);
  // Degenerate cases.
  EXPECT_DOUBLE_EQ(committee_compromise_probability(100, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(committee_compromise_probability(100, 1.0), 1.0);
}

TEST(Election, EmpiricalMatchesAnalytic) {
  // Monte-Carlo committee capture rate vs the binomial tail.
  ElectionConfig config;
  config.num_shards = 10;
  config.committee_size = 30;
  CommitteeElection election(5, config);
  std::vector<double> power(3000, 1.0);
  std::vector<std::uint8_t> adversarial(3000, 0);
  for (std::size_t i = 0; i < 750; ++i) adversarial[i] = 1;  // 25%

  unsigned compromised = 0;
  const int epochs = 300;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    compromised += election.run_epoch(power, adversarial).compromised;
  }
  const double empirical =
      static_cast<double>(compromised) / (epochs * config.num_shards);
  const double analytic = committee_compromise_probability(30, 0.25);
  EXPECT_NEAR(empirical, analytic, 0.05);
}

TEST(Election, RejectsBadInputs) {
  CommitteeElection election(1, {});
  const std::vector<double> power(5, 1.0);
  const std::vector<std::uint8_t> wrong(4, 0);
  EXPECT_THROW(election.run_epoch(power, wrong), UsageError);
  EXPECT_THROW(committee_compromise_probability(0, 0.3), UsageError);
  EXPECT_THROW(committee_compromise_probability(10, 1.5), UsageError);
}

}  // namespace
}  // namespace txconc::shard
