// Tests for the synthetic chain generators: structural validity,
// determinism, and calibration against the paper's measured rates.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "analysis/paper_reference.h"
#include "analysis/series.h"
#include "common/error.h"
#include "shard/sharding.h"
#include "workload/account_workload.h"
#include "workload/profiles.h"
#include "workload/utxo_workload.h"

namespace txconc::workload {
namespace {

// ------------------------------------------------------------------ profiles

TEST(Profile, InterpolationBetweenEras) {
  ChainProfile p;
  p.name = "test";
  EraParams a;
  a.position = 0.0;
  a.txs_per_block = 10.0;
  EraParams b;
  b.position = 1.0;
  b.txs_per_block = 30.0;
  p.eras = {a, b};

  EXPECT_DOUBLE_EQ(p.at(0.0).txs_per_block, 10.0);
  EXPECT_DOUBLE_EQ(p.at(0.5).txs_per_block, 20.0);
  EXPECT_DOUBLE_EQ(p.at(1.0).txs_per_block, 30.0);
  // Clamped beyond the ends.
  EXPECT_DOUBLE_EQ(p.at(-1.0).txs_per_block, 10.0);
  EXPECT_DOUBLE_EQ(p.at(2.0).txs_per_block, 30.0);
}

TEST(Profile, EmptyErasThrow) {
  ChainProfile p;
  EXPECT_THROW(p.at(0.5), UsageError);
}

TEST(Profile, YearMapping) {
  ChainProfile p;
  p.start_year = 2010.0;
  p.end_year = 2020.0;
  EXPECT_DOUBLE_EQ(p.year_at(0.5), 2015.0);
}

TEST(Profiles, AllSevenInTableOrder) {
  const auto profiles = all_profiles();
  ASSERT_EQ(profiles.size(), 7u);
  EXPECT_EQ(profiles[0].name, "Bitcoin");
  EXPECT_EQ(profiles[4].name, "Ethereum");
  EXPECT_EQ(profiles[6].name, "Zilliqa");
  for (const auto& p : profiles) {
    ASSERT_FALSE(p.eras.empty()) << p.name;
    EXPECT_DOUBLE_EQ(p.eras.front().position, 0.0) << p.name;
    EXPECT_DOUBLE_EQ(p.eras.back().position, 1.0) << p.name;
    EXPECT_GT(p.default_blocks, 0u) << p.name;
  }
  // Table I facts.
  EXPECT_EQ(profiles[6].consensus, "PoW+Sharding");
  EXPECT_TRUE(profiles[6].sharded);
  EXPECT_FALSE(profiles[0].smart_contracts);
  EXPECT_TRUE(profiles[4].smart_contracts);
}

// ------------------------------------------------------------- UTXO generator

TEST(UtxoWorkload, RejectsAccountProfile) {
  EXPECT_THROW(UtxoWorkloadGenerator(ethereum_profile(), 1), UsageError);
}

TEST(UtxoWorkload, DeterministicAcrossRuns) {
  UtxoWorkloadGenerator a(bitcoin_profile(), 42, 20);
  UtxoWorkloadGenerator b(bitcoin_profile(), 42, 20);
  for (int i = 0; i < 20; ++i) {
    const GeneratedBlock ba = a.next_block();
    const GeneratedBlock bb = b.next_block();
    ASSERT_EQ(ba.utxo_txs.size(), bb.utxo_txs.size()) << i;
    for (std::size_t t = 0; t < ba.utxo_txs.size(); ++t) {
      EXPECT_EQ(ba.utxo_txs[t].txid(), bb.utxo_txs[t].txid());
    }
  }
}

TEST(UtxoWorkload, DifferentSeedsDiffer) {
  UtxoWorkloadGenerator a(bitcoin_profile(), 1, 10);
  UtxoWorkloadGenerator b(bitcoin_profile(), 2, 10);
  bool any_difference = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_block().utxo_txs.size() != b.next_block().utxo_txs.size()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(UtxoWorkload, CoinbaseFirstAndParentsPrecedeChildren) {
  UtxoWorkloadGenerator gen(bitcoin_cash_profile(), 7, 30);
  for (int i = 0; i < 30; ++i) {
    const GeneratedBlock block = gen.next_block();
    ASSERT_FALSE(block.utxo_txs.empty());
    EXPECT_TRUE(block.utxo_txs[0].is_coinbase());

    std::unordered_map<Hash256, std::size_t> position;
    for (std::size_t t = 0; t < block.utxo_txs.size(); ++t) {
      position[block.utxo_txs[t].txid()] = t;
    }
    for (std::size_t t = 1; t < block.utxo_txs.size(); ++t) {
      EXPECT_FALSE(block.utxo_txs[t].is_coinbase());
      for (const auto& in : block.utxo_txs[t].inputs()) {
        const auto it = position.find(in.prevout.txid);
        if (it != position.end()) {
          EXPECT_LT(it->second, t) << "child before parent in block " << i;
        }
      }
    }
  }
}

TEST(UtxoWorkload, ValueConservationFeeFree) {
  UtxoWorkloadGenerator gen(litecoin_profile(), 3, 40);
  std::uint64_t blocks = 0;
  while (blocks < 40) {
    gen.next_block();
    ++blocks;
  }
  // Fee-free generation: total unspent value == sum of coinbase subsidies.
  EXPECT_EQ(gen.utxo_set().total_value(), blocks * 50'0000'0000ULL);
}

TEST(UtxoWorkload, ScriptsModeValidates) {
  UtxoWorkloadOptions options;
  options.with_scripts = true;
  UtxoWorkloadGenerator gen(litecoin_profile(), 3, 10, options);
  // Script validation happens inside apply(); reaching the end without a
  // ValidationError means every P2PKH unlock verified.
  std::size_t txs = 0;
  for (int i = 0; i < 10; ++i) {
    txs += gen.next_block().utxo_txs.size();
  }
  EXPECT_GT(txs, 10u);
}

TEST(UtxoWorkload, ExhaustionThrows) {
  UtxoWorkloadGenerator gen(litecoin_profile(), 3, 2);
  gen.next_block();
  gen.next_block();
  EXPECT_THROW(gen.next_block(), UsageError);
}

TEST(UtxoWorkload, InputTxoCountMatchesInputs) {
  UtxoWorkloadGenerator gen(bitcoin_cash_profile(), 9, 5);
  for (int i = 0; i < 5; ++i) {
    const GeneratedBlock block = gen.next_block();
    std::size_t inputs = 0;
    for (const auto& tx : block.utxo_txs) inputs += tx.inputs().size();
    EXPECT_EQ(block.num_input_txos, inputs);
  }
}

// ---------------------------------------------------------- account generator

TEST(AccountWorkload, RejectsUtxoProfile) {
  EXPECT_THROW(AccountWorkloadGenerator(bitcoin_profile(), 1), UsageError);
}

TEST(AccountWorkload, DeterministicAcrossRuns) {
  AccountWorkloadGenerator a(ethereum_classic_profile(), 42, 10);
  AccountWorkloadGenerator b(ethereum_classic_profile(), 42, 10);
  for (int i = 0; i < 10; ++i) {
    const GeneratedBlock ba = a.next_block();
    const GeneratedBlock bb = b.next_block();
    ASSERT_EQ(ba.account_txs.size(), bb.account_txs.size());
    EXPECT_EQ(ba.gas_used, bb.gas_used);
    for (std::size_t t = 0; t < ba.account_txs.size(); ++t) {
      EXPECT_EQ(ba.account_txs[t].from, bb.account_txs[t].from);
      EXPECT_EQ(ba.receipts[t].gas_used, bb.receipts[t].gas_used);
    }
  }
  EXPECT_EQ(a.state().digest(), b.state().digest());
}

TEST(AccountWorkload, ReceiptsParallelTransactions) {
  AccountWorkloadGenerator gen(ethereum_profile(), 5, 8);
  for (int i = 0; i < 8; ++i) {
    const GeneratedBlock block = gen.next_block();
    EXPECT_EQ(block.receipts.size(), block.account_txs.size());
    std::uint64_t gas = 0;
    for (const auto& r : block.receipts) gas += r.gas_used;
    EXPECT_EQ(block.gas_used, gas);
  }
}

TEST(AccountWorkload, NoncesSequentialPerSender) {
  AccountWorkloadGenerator gen(ethereum_classic_profile(), 5, 15);
  std::unordered_map<Address, std::uint64_t> next_nonce;
  for (int i = 0; i < 15; ++i) {
    const GeneratedBlock block = gen.next_block();
    for (const auto& tx : block.account_txs) {
      const auto it = next_nonce.find(tx.from);
      if (it != next_nonce.end()) {
        EXPECT_EQ(tx.nonce, it->second);
      }
      next_nonce[tx.from] = tx.nonce + 1;
    }
  }
}

TEST(AccountWorkload, ProducesInternalTransactions) {
  AccountWorkloadGenerator gen(ethereum_profile(), 5, 30);
  std::size_t internal = 0;
  std::size_t regular = 0;
  for (int i = 0; i < 30; ++i) {
    const GeneratedBlock block = gen.next_block();
    regular += block.num_regular_txs();
    internal += block.num_total_txs() - block.num_regular_txs();
  }
  EXPECT_GT(regular, 0u);
  // Hot wallets, relays and payouts all trace internal transactions.
  EXPECT_GT(internal, regular / 20);
}

TEST(AccountWorkload, MostExecutionsSucceed) {
  AccountWorkloadGenerator gen(ethereum_profile(), 5, 20);
  std::size_t ok = 0;
  std::size_t failed = 0;
  for (int i = 0; i < 20; ++i) {
    for (const auto& r : gen.next_block().receipts) {
      (r.success ? ok : failed) += 1;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_LT(failed, (ok + failed) / 20 + 5);  // < ~5% failures
}

TEST(AccountWorkload, CreationsDeployCode) {
  AccountWorkloadGenerator gen(ethereum_profile(), 5, 40);
  std::size_t creations = 0;
  for (int i = 0; i < 40; ++i) {
    const GeneratedBlock block = gen.next_block();
    for (std::size_t t = 0; t < block.account_txs.size(); ++t) {
      if (!block.account_txs[t].is_creation()) continue;
      ++creations;
      ASSERT_TRUE(block.receipts[t].created.has_value());
      EXPECT_NE(gen.state().code(*block.receipts[t].created), nullptr);
      // Creations are gas-heavy (the gas-weighted argument of Fig. 4b).
      EXPECT_GT(block.receipts[t].gas_used, 50000u);
    }
  }
  EXPECT_GT(creations, 0u);
}

TEST(AccountWorkload, ZilliqaTransactionsAreSameShard) {
  const ChainProfile profile = zilliqa_profile();
  AccountWorkloadGenerator gen(profile, 5, 20);
  std::size_t cross = 0;
  std::size_t total = 0;
  for (int i = 0; i < 20; ++i) {
    for (const auto& tx : gen.next_block().account_txs) {
      ++total;
      if (shard::is_cross_shard(tx, profile.num_shards)) ++cross;
    }
  }
  ASSERT_GT(total, 0u);
  // Contract calls may target other shards' contracts; user payments and
  // deposits stay within the sender's committee.
  EXPECT_LT(static_cast<double>(cross) / total, 0.15);
}

// ----------------------------------------------------------------- calibration

/// Late-history window statistics (last ~15% of blocks, tx-weighted).
struct LateStats {
  double single_rate = 0.0;
  double group_rate = 0.0;
  double txs_per_block = 0.0;
};

LateStats late_stats(const analysis::ChainSeries& series) {
  LateStats out;
  WeightedMean single;
  WeightedMean group;
  RunningStats txs;
  auto tail = [](const std::vector<SeriesPoint>& v, auto&& fn) {
    const std::size_t from = v.size() - std::max<std::size_t>(1, v.size() / 6);
    for (std::size_t i = from; i < v.size(); ++i) fn(v[i]);
  };
  tail(series.single_rate_txw,
       [&](const SeriesPoint& p) { single.add(p.value, p.weight); });
  tail(series.group_rate_txw,
       [&](const SeriesPoint& p) { group.add(p.value, p.weight); });
  tail(series.regular_txs, [&](const SeriesPoint& p) { txs.add(p.value); });
  out.single_rate = single.mean();
  out.group_rate = group.mean();
  out.txs_per_block = txs.mean();
  return out;
}

analysis::ChainSeries collect(const ChainProfile& profile) {
  std::unique_ptr<HistoryGenerator> gen;
  if (profile.model == DataModel::kUtxo) {
    gen = std::make_unique<UtxoWorkloadGenerator>(profile, 20200714);
  } else {
    gen = std::make_unique<AccountWorkloadGenerator>(profile, 20200714);
  }
  return analysis::collect_series(*gen, {.num_buckets = 40});
}

class Calibration : public ::testing::TestWithParam<int> {};

TEST_P(Calibration, LateHistoryMatchesPaperTargets) {
  const auto profiles = all_profiles();
  const auto targets = analysis::chain_targets();
  const int index = GetParam();
  const ChainProfile& profile = profiles[index];
  const analysis::ChainTargets& target = targets[index];
  ASSERT_EQ(profile.name, target.chain);

  const analysis::ChainSeries series = collect(profile);
  const LateStats late = late_stats(series);

  EXPECT_NEAR(late.single_rate, target.single_rate_late,
              target.single_rate_tolerance)
      << profile.name;
  EXPECT_NEAR(late.group_rate, target.group_rate_late,
              target.group_rate_tolerance)
      << profile.name;
  // Transactions per block within a factor ~2 of the paper's magnitude.
  EXPECT_GT(late.txs_per_block, target.txs_per_block_late / 2.0);
  EXPECT_LT(late.txs_per_block, target.txs_per_block_late * 2.0);
  // Universal invariant: group rate cannot exceed single rate.
  EXPECT_LE(series.overall_group_rate, series.overall_single_rate + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllChains, Calibration, ::testing::Range(0, 7));

TEST(Calibration, PaperTrendsHold) {
  const analysis::ChainSeries eth = collect(ethereum_profile());
  const analysis::ChainSeries etc = collect(ethereum_classic_profile());
  const analysis::ChainSeries btc = collect(bitcoin_profile());
  const analysis::ChainSeries bch = collect(bitcoin_cash_profile());

  // Fig. 4: Ethereum conflict rates decline over time.
  EXPECT_GT(eth.single_rate_txw.front().value,
            eth.single_rate_txw.back().value);
  EXPECT_GT(eth.group_rate_txw.front().value,
            eth.group_rate_txw.back().value);

  // Fig. 8: Ethereum Classic has far fewer transactions but higher rates.
  EXPECT_GT(eth.regular_txs.back().value, 5 * etc.regular_txs.back().value);
  EXPECT_GT(etc.single_rate_txw.back().value,
            eth.single_rate_txw.back().value);
  EXPECT_GT(etc.group_rate_txw.back().value,
            eth.group_rate_txw.back().value);

  // Fig. 9: Bitcoin Cash has fewer transactions than Bitcoin but higher
  // conflict rates.
  EXPECT_GT(btc.regular_txs.back().value, 2 * bch.regular_txs.back().value);
  EXPECT_GT(bch.overall_single_rate, btc.overall_single_rate);
  EXPECT_GT(bch.overall_group_rate, btc.overall_group_rate);

  // Fig. 7: UTXO rates below account rates.
  EXPECT_LT(btc.overall_single_rate, eth.overall_single_rate);
  EXPECT_LT(btc.overall_group_rate, eth.overall_group_rate);
}

TEST(Calibration, EthereumGasWeightedSingleRateBelowTxWeightedEarly) {
  // Fig. 4b: the gas-weighted conflict rate sits below the tx-weighted one
  // in the early years (contract creations are gas-heavy & unconflicted).
  const analysis::ChainSeries eth = collect(ethereum_profile());
  ASSERT_FALSE(eth.single_rate_gasw.empty());
  WeightedMean txw_early;
  WeightedMean gasw_early;
  for (std::size_t i = 0; i < eth.single_rate_txw.size() / 3; ++i) {
    txw_early.add(eth.single_rate_txw[i].value, eth.single_rate_txw[i].weight);
  }
  for (std::size_t i = 0; i < eth.single_rate_gasw.size() / 3; ++i) {
    gasw_early.add(eth.single_rate_gasw[i].value,
                   eth.single_rate_gasw[i].weight);
  }
  EXPECT_LT(gasw_early.mean(), txw_early.mean());
}

}  // namespace
}  // namespace txconc::workload
