// Tests for the account substrate: state, VM, runtime, contracts.
#include <gtest/gtest.h>

#include "account/contracts.h"
#include "account/runtime.h"
#include "account/state.h"
#include "account/types.h"
#include "account/vm.h"
#include "common/error.h"

namespace txconc::account {
namespace {

Address addr(std::uint64_t seed) { return Address::from_seed(seed); }

// ------------------------------------------------------------------- StateDb

TEST(StateDb, DefaultsAreZero) {
  StateDb db;
  EXPECT_EQ(db.balance(addr(1)), 0u);
  EXPECT_EQ(db.nonce(addr(1)), 0u);
  EXPECT_EQ(db.storage(addr(1), 5), 0u);
  EXPECT_EQ(db.code(addr(1)), nullptr);
}

TEST(StateDb, SetAndGet) {
  StateDb db;
  db.set_balance(addr(1), 100);
  db.set_nonce(addr(1), 7);
  db.set_storage(addr(1), 42, 99);
  EXPECT_EQ(db.balance(addr(1)), 100u);
  EXPECT_EQ(db.nonce(addr(1)), 7u);
  EXPECT_EQ(db.storage(addr(1), 42), 99u);
}

TEST(StateDb, RevertRestoresEverything) {
  StateDb db;
  db.set_balance(addr(1), 100);
  db.set_storage(addr(1), 1, 11);
  const Snapshot snap = db.snapshot();

  db.set_balance(addr(1), 200);
  db.set_balance(addr(2), 50);
  db.set_storage(addr(1), 1, 22);
  db.set_storage(addr(1), 2, 33);
  db.set_nonce(addr(1), 5);
  db.set_code(addr(3), ContractCode{{1, 2, 3}, {}});

  db.revert(snap);
  EXPECT_EQ(db.balance(addr(1)), 100u);
  EXPECT_EQ(db.balance(addr(2)), 0u);
  EXPECT_EQ(db.storage(addr(1), 1), 11u);
  EXPECT_EQ(db.storage(addr(1), 2), 0u);
  EXPECT_EQ(db.nonce(addr(1)), 0u);
  EXPECT_EQ(db.code(addr(3)), nullptr);
}

TEST(StateDb, NestedSnapshots) {
  StateDb db;
  db.set_balance(addr(1), 10);
  const Snapshot outer = db.snapshot();
  db.set_balance(addr(1), 20);
  const Snapshot inner = db.snapshot();
  db.set_balance(addr(1), 30);

  db.revert(inner);
  EXPECT_EQ(db.balance(addr(1)), 20u);
  db.revert(outer);
  EXPECT_EQ(db.balance(addr(1)), 10u);
}

TEST(StateDb, RevertFromFutureThrows) {
  StateDb db;
  const Snapshot snap = db.snapshot();
  EXPECT_THROW(db.revert(snap + 1), UsageError);
}

TEST(StateDb, TransferAndSupply) {
  StateDb db;
  db.set_balance(addr(1), 100);
  db.transfer(addr(1), addr(2), 30);
  EXPECT_EQ(db.balance(addr(1)), 70u);
  EXPECT_EQ(db.balance(addr(2)), 30u);
  EXPECT_EQ(db.total_supply(), 100u);
  EXPECT_THROW(db.transfer(addr(1), addr(2), 1000), ValidationError);
}

TEST(StateDb, FlushJournalMakesChangesPermanent) {
  StateDb db;
  db.set_balance(addr(1), 100);
  db.flush_journal();
  const Snapshot snap = db.snapshot();
  EXPECT_EQ(snap, 0u);
  db.revert(snap);
  EXPECT_EQ(db.balance(addr(1)), 100u);
}

// -------------------------------------------------------------- OverlayState

TEST(OverlayState, ReadsFallThroughToBase) {
  StateDb base;
  base.set_balance(addr(1), 100);
  base.set_storage(addr(1), 7, 77);
  base.set_code(addr(2), ContractCode{{1}, {}});

  OverlayState overlay(base);
  EXPECT_EQ(overlay.balance(addr(1)), 100u);
  EXPECT_EQ(overlay.storage(addr(1), 7), 77u);
  ASSERT_NE(overlay.code(addr(2)), nullptr);
  EXPECT_FALSE(overlay.dirty());
}

TEST(OverlayState, WritesStayLocal) {
  StateDb base;
  base.set_balance(addr(1), 100);

  OverlayState overlay(base);
  overlay.set_balance(addr(1), 42);
  overlay.set_storage(addr(3), 1, 2);
  EXPECT_EQ(overlay.balance(addr(1)), 42u);
  EXPECT_EQ(base.balance(addr(1)), 100u);
  EXPECT_EQ(base.storage(addr(3), 1), 0u);
  EXPECT_TRUE(overlay.dirty());
}

TEST(OverlayState, ApplyToMergesIntoTarget) {
  StateDb base;
  base.set_balance(addr(1), 100);

  OverlayState overlay(base);
  overlay.set_balance(addr(1), 42);
  overlay.set_nonce(addr(1), 3);
  overlay.set_storage(addr(2), 9, 90);
  overlay.set_code(addr(4), ContractCode{{5}, {}});

  overlay.apply_to(base);
  EXPECT_EQ(base.balance(addr(1)), 42u);
  EXPECT_EQ(base.nonce(addr(1)), 3u);
  EXPECT_EQ(base.storage(addr(2), 9), 90u);
  ASSERT_NE(base.code(addr(4)), nullptr);
}

TEST(OverlayState, RevertRemovesLocalEntries) {
  StateDb base;
  base.set_balance(addr(1), 100);

  OverlayState overlay(base);
  const Snapshot snap = overlay.snapshot();
  overlay.set_balance(addr(1), 1);
  overlay.set_balance(addr(2), 2);
  overlay.set_balance(addr(1), 3);  // second write to same key
  overlay.revert(snap);
  EXPECT_EQ(overlay.balance(addr(1)), 100u);  // falls through again
  EXPECT_EQ(overlay.balance(addr(2)), 0u);
  EXPECT_FALSE(overlay.dirty());
}

TEST(OverlayState, PartialRevert) {
  StateDb base;
  OverlayState overlay(base);
  overlay.set_storage(addr(1), 1, 10);
  const Snapshot snap = overlay.snapshot();
  overlay.set_storage(addr(1), 1, 20);
  overlay.revert(snap);
  EXPECT_EQ(overlay.storage(addr(1), 1), 10u);
}

// ------------------------------------------------------------- AccessTracker

TEST(AccessTracker, DeduplicatesAndSorts) {
  AccessTracker t;
  t.read_slot(addr(2), 5);
  t.read_slot(addr(1), 5);
  t.read_slot(addr(2), 5);
  t.read_balance(addr(1));
  const auto reads = t.reads();
  ASSERT_EQ(reads.size(), 3u);
  EXPECT_TRUE(std::is_sorted(reads.begin(), reads.end()));
  EXPECT_TRUE(t.writes().empty());
}

// ------------------------------------------------------------------------ VM

class VmTest : public ::testing::Test {
 protected:
  VmResult run(const ContractCode& code, std::uint64_t gas = 1'000'000) {
    CallContext ctx;
    ctx.self = addr(100);
    ctx.caller = addr(200);
    ctx.value = value_;
    ctx.args = args_;
    ctx.address_table = code.address_table;
    ExecutionHooks hooks;
    hooks.traces = &traces_;
    hooks.tracker = &tracker_;
    hooks.logs = &logs_;
    Vm vm(db_);
    return vm.execute(code, ctx, gas, hooks);
  }

  StateDb db_;
  std::vector<std::uint64_t> args_;
  std::uint64_t value_ = 0;
  std::vector<InternalTx> traces_;
  AccessTracker tracker_;
  std::vector<std::uint64_t> logs_;
};

TEST_F(VmTest, Arithmetic) {
  Assembler a;
  a.push(20).push(7).op(OpCode::kSub);   // 13
  a.push(3).op(OpCode::kMul);            // 39
  a.push(4).op(OpCode::kDiv);            // 9
  a.push(4).op(OpCode::kMod);            // 1
  a.op(OpCode::kReturn);
  const VmResult r = run({a.build(), {}});
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 1u);
}

TEST_F(VmTest, DivisionByZeroYieldsZero) {
  Assembler a;
  a.push(5).push(0).op(OpCode::kDiv).op(OpCode::kReturn);
  const VmResult r = run({a.build(), {}});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.return_value, 0u);
}

TEST_F(VmTest, ComparisonAndLogic) {
  Assembler a;
  a.push(3).push(5).op(OpCode::kLt);       // 1
  a.push(1).op(OpCode::kEq);               // 1
  a.push(0).op(OpCode::kOr);               // 1
  a.op(OpCode::kIsZero).op(OpCode::kIsZero);  // 1
  a.op(OpCode::kReturn);
  const VmResult r = run({a.build(), {}});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.return_value, 1u);
}

TEST_F(VmTest, LoopSumsOneToTen) {
  // sum = 0; i = 1; while (i <= 10) { sum += i; i++; } return sum;
  // Stack discipline: keep [sum, i].
  Assembler a;
  a.push(0).push(1);                    // [sum, i]
  a.label("loop");
  a.op(OpCode::kDup).push(10).op(OpCode::kGt).jumpi("done");  // i > 10?
  a.op(OpCode::kDup);                   // [sum, i, i]
  // add i into sum: rotate via swap/add trick -> [sum+i, i]
  // [sum, i, i]: swap -> [sum, i, i]; need deeper access, so recompute:
  // simpler: sum stays below; use: swap(top two) gives [sum, i, i] no-op.
  // We instead maintain [i, sum]: restart with that discipline below.
  a.op(OpCode::kPop);
  a.op(OpCode::kPop);
  a.op(OpCode::kPop);
  a.jump("fallback");
  a.label("done");
  a.op(OpCode::kPop).op(OpCode::kReturn);
  a.label("fallback");
  // Closed form instead: 10*11/2.
  a.push(55).op(OpCode::kReturn);
  const VmResult r = run({a.build(), {}});
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 55u);
}

TEST_F(VmTest, CountingLoopWithStorage) {
  // for (i = 0; i < 10; i++) storage[i] = i; return 10
  Assembler a;
  a.push(0);  // [i]
  a.label("loop");
  a.op(OpCode::kDup).push(10).op(OpCode::kLt).op(OpCode::kIsZero).jumpi("end");
  a.op(OpCode::kDup).op(OpCode::kDup).op(OpCode::kSstore);  // storage[i] = i
  a.push(1).op(OpCode::kAdd);
  a.jump("loop");
  a.label("end");
  a.op(OpCode::kReturn);
  const VmResult r = run({a.build(), {}});
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 10u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(db_.storage(addr(100), i), i);
  }
  // The access tracker saw ten writes.
  EXPECT_EQ(tracker_.writes().size(), 10u);
}

TEST_F(VmTest, ContextOpcodes) {
  args_ = {42, 43};
  value_ = 5;
  db_.set_balance(addr(100), 17);
  Assembler a;
  a.op(OpCode::kCaller64).push(addr(200).low64()).op(OpCode::kEq);
  a.op(OpCode::kSelf64).push(addr(100).low64()).op(OpCode::kEq).op(OpCode::kAnd);
  a.op(OpCode::kCallValue).push(5).op(OpCode::kEq).op(OpCode::kAnd);
  a.op(OpCode::kNumArgs).push(2).op(OpCode::kEq).op(OpCode::kAnd);
  a.push(1).op(OpCode::kArg).push(43).op(OpCode::kEq).op(OpCode::kAnd);
  a.op(OpCode::kSelfBalance).push(17).op(OpCode::kEq).op(OpCode::kAnd);
  a.op(OpCode::kReturn);
  const VmResult r = run({a.build(), {}});
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 1u);
}

TEST_F(VmTest, ArgOutOfRangeIsZero) {
  Assembler a;
  a.push(99).op(OpCode::kArg).op(OpCode::kIsZero).op(OpCode::kReturn);
  const VmResult r = run({a.build(), {}});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.return_value, 1u);
}

TEST_F(VmTest, OutOfGasConsumesBudgetAndReverts) {
  Assembler a;
  a.label("loop");
  a.push(1).push(1).op(OpCode::kSstore);  // storage churn forever
  a.jump("loop");
  const VmResult r = run({a.build(), {}}, 10000);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.gas_used, 10000u);
  EXPECT_EQ(r.error, "out of gas");
  EXPECT_EQ(db_.storage(addr(100), 1), 0u);  // rolled back
}

TEST_F(VmTest, StackUnderflowFaults) {
  Assembler a;
  a.op(OpCode::kAdd);
  const VmResult r = run({a.build(), {}}, 5000);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.gas_used, 5000u);  // faults consume the budget
  EXPECT_NE(r.error.find("underflow"), std::string::npos);
}

TEST_F(VmTest, StackOverflowFaults) {
  Assembler a;
  a.push(1);
  a.label("loop");
  a.op(OpCode::kDup);
  a.jump("loop");
  const VmResult r = run({a.build(), {}}, 100000);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("overflow"), std::string::npos);
}

TEST_F(VmTest, UnknownOpcodeFaults) {
  ContractCode code;
  code.code = {0xff};
  const VmResult r = run(code, 5000);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("unknown opcode"), std::string::npos);
}

TEST_F(VmTest, JumpOutOfRangeFaults) {
  Assembler a;
  a.op(OpCode::kJump);
  // Raw out-of-range target.
  ContractCode code{a.build(), {}};
  code.code.insert(code.code.end(), {0xff, 0xff, 0x00, 0x00});
  const VmResult r = run(code, 5000);
  EXPECT_FALSE(r.success);
}

TEST_F(VmTest, RevertRollsBackButKeepsGasAccounting) {
  Assembler a;
  a.push(1).push(99).op(OpCode::kSstore);  // storage[1] = 99
  a.op(OpCode::kRevert);
  const VmResult r = run({a.build(), {}}, 50000);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.error, "reverted");
  EXPECT_LT(r.gas_used, 50000u);  // only what actually ran
  EXPECT_GT(r.gas_used, 0u);
  EXPECT_EQ(db_.storage(addr(100), 1), 0u);
}

TEST_F(VmTest, TransferMovesValueAndTraces) {
  db_.set_balance(addr(100), 50);
  ContractCode code;
  Assembler a;
  a.push(0).push(30).op(OpCode::kTransfer).op(OpCode::kReturn);
  code.code = a.build();
  code.address_table = {addr(7)};
  const VmResult r = run(code);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 1u);
  EXPECT_EQ(db_.balance(addr(100)), 20u);
  EXPECT_EQ(db_.balance(addr(7)), 30u);
  ASSERT_EQ(traces_.size(), 1u);
  EXPECT_EQ(traces_[0].kind, TraceKind::kTransfer);
  EXPECT_EQ(traces_[0].from, addr(100));
  EXPECT_EQ(traces_[0].to, addr(7));
  EXPECT_EQ(traces_[0].value, 30u);
  EXPECT_EQ(traces_[0].depth, 1u);
}

TEST_F(VmTest, TransferInsufficientFundsReturnsZero) {
  db_.set_balance(addr(100), 10);
  ContractCode code;
  Assembler a;
  a.push(0).push(30).op(OpCode::kTransfer).op(OpCode::kReturn);
  code.code = a.build();
  code.address_table = {addr(7)};
  const VmResult r = run(code);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.return_value, 0u);
  EXPECT_EQ(db_.balance(addr(100)), 10u);
  EXPECT_TRUE(traces_.empty());
}

TEST_F(VmTest, BadAddressIndexFaults) {
  Assembler a;
  a.push(3).push(30).op(OpCode::kTransfer);
  const VmResult r = run({a.build(), {}}, 50000);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.error.find("address table"), std::string::npos);
}

TEST_F(VmTest, CallRunsCalleeAndReturnsValue) {
  // Callee doubles its argument.
  Assembler callee;
  callee.push(0).op(OpCode::kArg).push(2).op(OpCode::kMul).op(OpCode::kReturn);
  genesis_deploy(db_, addr(55), ContractCode{callee.build(), {}});
  db_.set_balance(addr(100), 10);

  ContractCode caller;
  Assembler a;
  a.push(0);           // address index
  a.push(3);           // value
  a.push(21);          // arg
  a.op(OpCode::kCall).op(OpCode::kReturn);
  caller.code = a.build();
  caller.address_table = {addr(55)};

  const VmResult r = run(caller);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 42u);
  EXPECT_EQ(db_.balance(addr(55)), 3u);
  ASSERT_EQ(traces_.size(), 1u);
  EXPECT_EQ(traces_[0].kind, TraceKind::kCall);
}

TEST_F(VmTest, FailedCalleeIsRolledBackAndReturnsZero) {
  Assembler callee;
  callee.push(9).push(1).op(OpCode::kSstore);
  callee.op(OpCode::kRevert);
  genesis_deploy(db_, addr(55), ContractCode{callee.build(), {}});
  db_.set_balance(addr(100), 10);

  ContractCode caller;
  Assembler a;
  a.push(0).push(3).push(0).op(OpCode::kCall).op(OpCode::kReturn);
  caller.code = a.build();
  caller.address_table = {addr(55)};

  const VmResult r = run(caller);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 0u);
  EXPECT_EQ(db_.storage(addr(55), 9), 0u);
  EXPECT_EQ(db_.balance(addr(55)), 0u);   // value transfer undone
  EXPECT_EQ(db_.balance(addr(100)), 10u);
}

TEST_F(VmTest, CallDepthLimitEnforced) {
  // A contract that calls itself forever.
  ContractCode self_caller;
  Assembler a;
  a.push(0).push(0).push(0).op(OpCode::kCall).op(OpCode::kReturn);
  self_caller.code = a.build();
  self_caller.address_table = {addr(100)};
  genesis_deploy(db_, addr(100), self_caller);

  const VmResult r = run(self_caller, 100'000'000);
  // Recursion terminates via the depth limit; the outermost frame still
  // completes (inner failure surfaces as a 0 return).
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 0u);
}

// ----------------------------------------------------------------- contracts

class ContractTest : public ::testing::Test {
 protected:
  Receipt send(const Address& from, const Address& to, std::uint64_t value,
               std::vector<std::uint64_t> args = {},
               std::vector<Address> address_args = {},
               std::uint64_t gas_limit = 1'000'000) {
    AccountTx tx;
    tx.from = from;
    tx.to = to;
    tx.value = value;
    tx.gas_limit = gas_limit;
    tx.nonce = db_.nonce(from);
    tx.args = std::move(args);
    tx.address_args = std::move(address_args);
    return apply_transaction(db_, tx, config_);
  }

  void fund(const Address& a, std::uint64_t v) {
    db_.set_balance(a, v);
  }

  StateDb db_;
  RuntimeConfig config_;
};

TEST_F(ContractTest, TokenMintAndTransfer) {
  const Address owner = addr(1);
  const Address alice = addr(2);
  const Address bob = addr(3);
  const Address token_addr = addr(50);
  genesis_deploy(db_, token_addr, contracts::token(owner));
  fund(owner, 10'000'000);
  fund(alice, 10'000'000);

  // Owner mints 1000 to itself.
  Receipt r = send(owner, token_addr, 0, {0, 1000});
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(db_.storage(token_addr, owner.low64()), 1000u);

  // Owner transfers 400 to alice.
  r = send(owner, token_addr, 0, {1, 400}, {alice});
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 1u);
  EXPECT_EQ(db_.storage(token_addr, owner.low64()), 600u);
  EXPECT_EQ(db_.storage(token_addr, alice.low64()), 400u);

  // Alice checks her balance.
  r = send(alice, token_addr, 0, {2});
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 400u);

  // Alice cannot transfer more than she has.
  r = send(alice, token_addr, 0, {1, 500}, {bob});
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.return_value, 0u);
  EXPECT_EQ(db_.storage(token_addr, alice.low64()), 400u);
  EXPECT_EQ(db_.storage(token_addr, bob.low64()), 0u);
}

TEST_F(ContractTest, TokenMintRequiresOwner) {
  const Address owner = addr(1);
  const Address mallory = addr(9);
  const Address token_addr = addr(50);
  genesis_deploy(db_, token_addr, contracts::token(owner));
  fund(mallory, 10'000'000);

  const Receipt r = send(mallory, token_addr, 0, {0, 1000});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.return_value, 0u);
  EXPECT_EQ(db_.storage(token_addr, mallory.low64()), 0u);
}

TEST_F(ContractTest, HotWalletSweepsDeposits) {
  const Address cold = addr(11);
  const Address wallet = addr(12);
  const Address user = addr(13);
  genesis_deploy(db_, wallet, contracts::hot_wallet(cold));
  fund(user, 10'000'000);

  const Receipt r = send(user, wallet, 500);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(db_.balance(wallet), 0u);
  EXPECT_EQ(db_.balance(cold), 500u);
  // The sweep produced an internal transfer trace.
  ASSERT_EQ(r.internal_txs.size(), 1u);
  EXPECT_EQ(r.internal_txs[0].kind, TraceKind::kTransfer);
  EXPECT_EQ(r.internal_txs[0].from, wallet);
  EXPECT_EQ(r.internal_txs[0].to, cold);
}

TEST_F(ContractTest, PayoutSplitterPaysEveryRecipient) {
  const Address pool = addr(20);
  const Address splitter = addr(21);
  genesis_deploy(db_, splitter, contracts::payout_splitter());
  fund(pool, 10'000'000);

  const std::vector<Address> miners = {addr(31), addr(32), addr(33), addr(34)};
  const Receipt r = send(pool, splitter, 1000, {}, miners);
  ASSERT_TRUE(r.success) << r.error;
  for (const Address& m : miners) {
    EXPECT_EQ(db_.balance(m), 250u);
  }
  EXPECT_EQ(r.internal_txs.size(), miners.size());
}

TEST_F(ContractTest, RelayChainProducesNestedTraces) {
  // user -> relay1 -> relay2 -> sink (Figure 1b's chained contracts).
  const Address sink = addr(40);
  const Address relay2 = addr(41);
  const Address relay1 = addr(42);
  const Address user = addr(43);
  genesis_deploy(db_, relay2, contracts::relay(sink));
  genesis_deploy(db_, relay1, contracts::relay(relay2));
  fund(user, 10'000'000);

  const Receipt r = send(user, relay1, 100, {7});
  ASSERT_TRUE(r.success) << r.error;
  // Two internal calls: relay1 -> relay2, relay2 -> sink.
  ASSERT_EQ(r.internal_txs.size(), 2u);
  EXPECT_EQ(r.internal_txs[0].from, relay1);
  EXPECT_EQ(r.internal_txs[0].to, relay2);
  EXPECT_EQ(r.internal_txs[0].depth, 1u);
  EXPECT_EQ(r.internal_txs[1].from, relay2);
  EXPECT_EQ(r.internal_txs[1].to, sink);
  EXPECT_EQ(r.internal_txs[1].depth, 2u);
  EXPECT_EQ(db_.balance(sink), 100u);
  // Return value counts the hops: sink returns 1 (plain transfer),
  // relay2 returns 2, relay1 returns 3.
  EXPECT_EQ(r.return_value, 3u);
}

TEST_F(ContractTest, CrowdsaleRecordsContributions) {
  const Address beneficiary = addr(60);
  const Address sale = addr(61);
  const Address donor = addr(62);
  genesis_deploy(db_, sale, contracts::crowdsale(beneficiary));
  fund(donor, 10'000'000);

  ASSERT_TRUE(send(donor, sale, 300).success);
  ASSERT_TRUE(send(donor, sale, 200).success);
  EXPECT_EQ(db_.storage(sale, donor.low64()), 500u);
  EXPECT_EQ(db_.balance(beneficiary), 500u);
  EXPECT_EQ(db_.balance(sale), 0u);
}

TEST_F(ContractTest, StorageChurnWritesSlotsAndBurnsGas) {
  const Address churn = addr(70);
  const Address user = addr(71);
  genesis_deploy(db_, churn, contracts::storage_churn());
  fund(user, 100'000'000);

  const Receipt r = send(user, churn, 0, {20, 1000}, {}, 10'000'000);
  ASSERT_TRUE(r.success) << r.error;
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(db_.storage(churn, 1000 + i), 1000 + i);
  }
  // Gas should be dominated by the 20 SSTOREs.
  EXPECT_GT(r.gas_used, config_.gas.tx_base + 20 * config_.gas.sstore);
}

class AuctionTest : public ContractTest {
 protected:
  void SetUp() override {
    genesis_deploy(db_, auction_, contracts::auction(beneficiary_));
    fund(alice_, 100'000'000);
    fund(bob_, 100'000'000);
    fund(carol_, 100'000'000);
  }

  const Address beneficiary_ = addr(80);
  const Address auction_ = addr(81);
  const Address alice_ = addr(82);
  const Address bob_ = addr(83);
  const Address carol_ = addr(84);
};

TEST_F(AuctionTest, BidsMustIncrease) {
  ASSERT_TRUE(send(alice_, auction_, 100, {0}).success);
  EXPECT_EQ(db_.balance(auction_), 100u);

  // An equal bid reverts and the value bounces back to the sender.
  const std::uint64_t bob_before = db_.balance(bob_);
  const Receipt rejected = send(bob_, auction_, 100, {0});
  EXPECT_FALSE(rejected.success);
  EXPECT_EQ(db_.balance(auction_), 100u);
  EXPECT_EQ(db_.balance(bob_), bob_before - rejected.gas_used);

  // A higher bid takes the lead.
  ASSERT_TRUE(send(bob_, auction_, 150, {0}).success);
  EXPECT_EQ(db_.storage(auction_, 0), 150u);
  EXPECT_EQ(db_.storage(auction_, 1), bob_.low64());
}

TEST_F(AuctionTest, OutbidBidderCanWithdraw) {
  ASSERT_TRUE(send(alice_, auction_, 100, {0}).success);
  ASSERT_TRUE(send(bob_, auction_, 150, {0}).success);
  // Alice's 100 is withdrawable.
  EXPECT_EQ(db_.storage(auction_, alice_.low64()), 100u);

  const std::uint64_t alice_before = db_.balance(alice_);
  const Receipt withdrawal = send(alice_, auction_, 0, {1}, {alice_});
  ASSERT_TRUE(withdrawal.success) << withdrawal.error;
  EXPECT_EQ(db_.balance(alice_),
            alice_before + 100 - withdrawal.gas_used);
  EXPECT_EQ(db_.storage(auction_, alice_.low64()), 0u);

  // A second withdrawal pulls nothing.
  const Receipt empty = send(alice_, auction_, 0, {1}, {alice_});
  ASSERT_TRUE(empty.success);
  EXPECT_EQ(empty.return_value, 0u);
}

TEST_F(AuctionTest, WithdrawToForeignAddressReverts) {
  ASSERT_TRUE(send(alice_, auction_, 100, {0}).success);
  ASSERT_TRUE(send(bob_, auction_, 150, {0}).success);
  // Mallory cannot redirect Alice's refund.
  const Receipt theft = send(carol_, auction_, 0, {1}, {alice_});
  EXPECT_FALSE(theft.success);
  EXPECT_EQ(db_.storage(auction_, alice_.low64()), 100u);
}

TEST_F(AuctionTest, ClosePaysBeneficiaryAndStopsBidding) {
  ASSERT_TRUE(send(alice_, auction_, 100, {0}).success);
  ASSERT_TRUE(send(bob_, auction_, 150, {0}).success);

  const Receipt closed = send(carol_, auction_, 0, {2});
  ASSERT_TRUE(closed.success) << closed.error;
  EXPECT_EQ(db_.balance(beneficiary_), 150u);
  // Alice's refund stays withdrawable after closing.
  EXPECT_EQ(db_.storage(auction_, alice_.low64()), 100u);

  // Further bids and a second close revert.
  EXPECT_FALSE(send(carol_, auction_, 500, {0}).success);
  EXPECT_FALSE(send(carol_, auction_, 0, {2}).success);

  // Alice can still pull her refund.
  ASSERT_TRUE(send(alice_, auction_, 0, {1}, {alice_}).success);
  EXPECT_EQ(db_.balance(auction_), 0u);
}

TEST_F(AuctionTest, FullLifecycleConservesValue) {
  const std::uint64_t supply = db_.total_supply();
  std::uint64_t burned = 0;
  auto track = [&](const Receipt& r) { burned += r.gas_used; };

  track(send(alice_, auction_, 100, {0}));
  track(send(bob_, auction_, 200, {0}));
  track(send(carol_, auction_, 300, {0}));
  track(send(alice_, auction_, 400, {0}));
  track(send(alice_, auction_, 0, {1}, {alice_}));  // refund of first bid
  track(send(bob_, auction_, 0, {1}, {bob_}));
  track(send(carol_, auction_, 0, {1}, {carol_}));
  track(send(bob_, auction_, 0, {2}));              // close

  EXPECT_EQ(db_.total_supply(), supply - burned);
  EXPECT_EQ(db_.balance(beneficiary_), 400u);
  EXPECT_EQ(db_.balance(auction_), 0u);
}

// ------------------------------------------------------------------- runtime

class RuntimeTest : public ::testing::Test {
 protected:
  StateDb db_;
  RuntimeConfig config_;
};

TEST_F(RuntimeTest, PlainTransfer) {
  db_.set_balance(addr(1), 1'000'000);
  AccountTx tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.value = 100;
  tx.nonce = 0;
  tx.gas_limit = 30000;

  const Receipt r = apply_transaction(db_, tx, config_);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.gas_used, config_.gas.tx_base);
  EXPECT_EQ(db_.balance(addr(2)), 100u);
  // Sender paid value + gas_used (fee burned).
  EXPECT_EQ(db_.balance(addr(1)), 1'000'000 - 100 - config_.gas.tx_base);
  EXPECT_EQ(db_.nonce(addr(1)), 1u);
  // Receipt read/write sets mention both balances.
  EXPECT_FALSE(r.writes.empty());
}

TEST_F(RuntimeTest, NonceEnforced) {
  db_.set_balance(addr(1), 1'000'000);
  AccountTx tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.nonce = 5;  // wrong; expected 0
  EXPECT_THROW(apply_transaction(db_, tx, config_), ValidationError);
  // State untouched.
  EXPECT_EQ(db_.balance(addr(1)), 1'000'000u);
  EXPECT_EQ(db_.nonce(addr(1)), 0u);
}

TEST_F(RuntimeTest, InsufficientFundsRejected) {
  db_.set_balance(addr(1), 10);
  AccountTx tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.value = 5;
  tx.gas_limit = 30000;
  EXPECT_THROW(apply_transaction(db_, tx, config_), ValidationError);
}

TEST_F(RuntimeTest, GasLimitBelowIntrinsicRejected) {
  db_.set_balance(addr(1), 1'000'000);
  AccountTx tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.gas_limit = 100;  // < tx_base
  EXPECT_THROW(apply_transaction(db_, tx, config_), ValidationError);
}

TEST_F(RuntimeTest, ContractCreation) {
  db_.set_balance(addr(1), 100'000'000);
  AccountTx tx;
  tx.from = addr(1);
  tx.value = 500;
  tx.nonce = 0;
  tx.gas_limit = 10'000'000;
  tx.init_code = contracts::payout_splitter();

  const Receipt r = apply_transaction(db_, tx, config_);
  ASSERT_TRUE(r.success) << r.error;
  ASSERT_TRUE(r.created.has_value());
  EXPECT_EQ(*r.created, Address::derive_contract(addr(1), 0));
  EXPECT_NE(db_.code(*r.created), nullptr);
  EXPECT_EQ(db_.balance(*r.created), 500u);
  // Creation gas exceeds base + create_base (code bytes charged too).
  EXPECT_GT(r.gas_used, config_.gas.tx_base + config_.gas.create_base);
  ASSERT_EQ(r.internal_txs.size(), 1u);
  EXPECT_EQ(r.internal_txs[0].kind, TraceKind::kCreate);
}

TEST_F(RuntimeTest, FailedExecutionKeepsFeeAndNonce) {
  const Address churn_addr = addr(70);
  genesis_deploy(db_, churn_addr, contracts::storage_churn());
  db_.set_balance(addr(1), 100'000'000);

  AccountTx tx;
  tx.from = addr(1);
  tx.to = churn_addr;
  tx.nonce = 0;
  tx.args = {1000000, 0};  // too many slots for the gas limit
  tx.gas_limit = 50000;

  const Receipt r = apply_transaction(db_, tx, config_);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.gas_used, 50000u);  // full budget burned
  EXPECT_EQ(db_.nonce(addr(1)), 1u);
  EXPECT_EQ(db_.balance(addr(1)), 100'000'000 - 50000u);
  EXPECT_EQ(db_.storage(churn_addr, 0), 0u);  // rolled back
}

TEST_F(RuntimeTest, RefundsUnusedGas) {
  db_.set_balance(addr(1), 1'000'000);
  AccountTx tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.gas_limit = 500000;  // far more than needed
  tx.gas_price = 2;
  const Receipt r = apply_transaction(db_, tx, config_);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(db_.balance(addr(1)), 1'000'000 - 2 * config_.gas.tx_base);
}

TEST_F(RuntimeTest, NoFeeModeLeavesBalancesExact) {
  config_.charge_fees = false;
  db_.set_balance(addr(1), 1000);
  AccountTx tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.value = 1000;
  const Receipt r = apply_transaction(db_, tx, config_);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(db_.balance(addr(1)), 0u);
  EXPECT_EQ(db_.balance(addr(2)), 1000u);
}

TEST_F(RuntimeTest, OverlayExecutionMatchesDirect) {
  // Applying through an overlay and merging equals applying directly.
  StateDb direct;
  direct.set_balance(addr(1), 1'000'000);
  StateDb base;
  base.set_balance(addr(1), 1'000'000);

  AccountTx tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.value = 123;

  const Receipt r1 = apply_transaction(direct, tx, config_);

  OverlayState overlay(base);
  const Receipt r2 = apply_transaction(overlay, tx, config_);
  overlay.apply_to(base);

  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  EXPECT_EQ(r1.gas_used, r2.gas_used);
  EXPECT_EQ(direct.balance(addr(1)), base.balance(addr(1)));
  EXPECT_EQ(direct.balance(addr(2)), base.balance(addr(2)));
  EXPECT_EQ(direct.nonce(addr(1)), base.nonce(addr(1)));
}

TEST_F(RuntimeTest, NonceEnforcementCanBeDisabled) {
  config_.enforce_nonce = false;
  db_.set_balance(addr(1), 1'000'000);
  AccountTx tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.value = 10;
  tx.nonce = 99;  // wrong, but ignored in this mode
  const Receipt r = apply_transaction(db_, tx, config_);
  EXPECT_TRUE(r.success);
  EXPECT_EQ(db_.balance(addr(2)), 10u);
  // The nonce still advances from its true value.
  EXPECT_EQ(db_.nonce(addr(1)), 1u);
}

TEST_F(RuntimeTest, ZeroValueTransferTouchesNothing) {
  db_.set_balance(addr(1), 1'000'000);
  config_.charge_fees = false;
  AccountTx tx;
  tx.from = addr(1);
  tx.to = addr(2);
  tx.value = 0;
  const Receipt r = apply_transaction(db_, tx, config_);
  ASSERT_TRUE(r.success);
  // The receiver's balance key must not appear in the write set: a no-op
  // write would make parallel overlay merges clobber concurrent updates.
  for (const SlotAccess& w : r.writes) {
    EXPECT_NE(w.address, addr(2));
  }
}

// ------------------------------------------- hot-path runtime plumbing

// precheck_transaction is the engines' cheap speculative fast-reject; it
// must agree with apply_transaction's phase-1 verdict exactly: non-null
// reason <=> apply throws ValidationError. Drift between the two would
// make the speculative engines silently skip (or doubly execute) txs.
TEST(Precheck, StaysInLockstepWithApplyValidation) {
  StateDb db;
  db.set_balance(addr(1), 100'000);
  db.set_nonce(addr(1), 2);
  db.flush_journal();
  RuntimeConfig config;

  auto make_tx = [] {
    AccountTx tx;
    tx.from = addr(1);
    tx.to = addr(2);
    tx.value = 10;
    tx.gas_limit = 30000;
    tx.gas_price = 1;
    tx.nonce = 2;
    return tx;
  };

  std::vector<AccountTx> cases;
  cases.push_back(make_tx());  // valid
  cases.push_back(make_tx());
  cases.back().nonce = 1;  // stale nonce
  cases.push_back(make_tx());
  cases.back().nonce = 9;  // future nonce
  cases.push_back(make_tx());
  cases.back().value = 10'000'000;  // cannot cover value + max fee
  cases.push_back(make_tx());
  cases.back().gas_limit = 1;  // below intrinsic cost

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const char* reason = precheck_transaction(db, cases[i], config);
    StateDb scratch = db;
    if (reason == nullptr) {
      EXPECT_NO_THROW(apply_transaction(scratch, cases[i], config)) << i;
    } else {
      EXPECT_THROW(apply_transaction(scratch, cases[i], config),
                   ValidationError)
          << i << ": precheck said '" << reason << "'";
    }
  }
}

TEST(JournalPauseTest, PausedWritesSurviveRevert) {
  StateDb db;
  db.set_balance(addr(1), 100);
  db.flush_journal();
  const Snapshot snap = db.snapshot();
  db.set_balance(addr(2), 50);  // journaled: revert will undo it
  {
    const JournalPause pause(db);
    EXPECT_FALSE(db.journaling());
    db.set_balance(addr(3), 75);  // committed value: skips the journal
  }
  EXPECT_TRUE(db.journaling());  // restored on scope exit
  db.revert(snap);
  EXPECT_EQ(db.balance(addr(2)), 0u);   // journaled write rolled back
  EXPECT_EQ(db.balance(addr(3)), 75u);  // paused write is permanent
}

TEST(JournalPauseTest, SnapshotAndRevertThrowWhilePaused) {
  // A snapshot taken while journaling is paused could not undo the writes
  // it covers (they skip the journal), so a rollback path sneaking under a
  // commit-phase JournalPause must fail loudly instead of silently
  // persisting partial writes.
  StateDb db;
  db.set_balance(addr(1), 100);
  const Snapshot snap = db.snapshot();
  const JournalPause pause(db);
  EXPECT_THROW(db.snapshot(), UsageError);
  EXPECT_THROW(db.revert(snap), UsageError);
  EXPECT_EQ(db.balance(addr(1)), 100u);  // the failed revert touched nothing
}

TEST(ReceiptReset, ClearsFieldsButKeepsCapacity) {
  Receipt receipt;
  receipt.success = true;
  receipt.gas_used = 123;
  receipt.error = "boom";
  receipt.reads.assign(8, SlotAccess{addr(1), 0});
  receipt.writes.assign(4, SlotAccess{addr(2), 1});
  const std::size_t reads_cap = receipt.reads.capacity();
  receipt.reset();
  EXPECT_FALSE(receipt.success);
  EXPECT_EQ(receipt.gas_used, 0u);
  EXPECT_TRUE(receipt.error.empty());
  EXPECT_TRUE(receipt.reads.empty());
  EXPECT_TRUE(receipt.writes.empty());
  // Capacity survives: reusing one receipt across a block's transactions
  // must not reallocate its access-set vectors every time.
  EXPECT_EQ(receipt.reads.capacity(), reads_cap);
}

TEST_F(RuntimeTest, SupplyConservedAcrossContractCalls) {
  // Fees are burned, so supply decreases exactly by gas_used * price.
  const Address cold = addr(11);
  const Address wallet = addr(12);
  genesis_deploy(db_, wallet, contracts::hot_wallet(cold));
  db_.set_balance(addr(1), 10'000'000);
  const std::uint64_t supply_before = db_.total_supply();

  AccountTx tx;
  tx.from = addr(1);
  tx.to = wallet;
  tx.value = 777;
  tx.gas_price = 3;
  const Receipt r = apply_transaction(db_, tx, config_);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(db_.total_supply(), supply_before - 3 * r.gas_used);
}

}  // namespace
}  // namespace txconc::account
