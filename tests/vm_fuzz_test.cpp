// Property/fuzz tests for the SVM: random bytecode must never crash the
// VM, never exceed its gas budget, and must leave the state untouched on
// failure. Random valid-ish programs check structural invariants of gas
// accounting and tracing.
#include <gtest/gtest.h>

#include "account/contracts.h"
#include "account/runtime.h"
#include "account/state.h"
#include "account/vm.h"
#include "common/error.h"
#include "common/rng.h"

namespace txconc::account {
namespace {

Address addr(std::uint64_t seed) { return Address::from_seed(seed); }

class VmFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Random byte soup — mostly invalid programs.
  ContractCode random_bytes(Rng& rng) {
    ContractCode code;
    const std::size_t len = rng.uniform(200);
    code.code.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      code.code.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
    }
    const std::size_t addrs = rng.uniform(4);
    for (std::size_t i = 0; i < addrs; ++i) {
      code.address_table.push_back(addr(5000 + rng.uniform(10)));
    }
    return code;
  }

  /// Random programs built from real opcodes (often valid).
  ContractCode random_program(Rng& rng) {
    static const OpCode kOps[] = {
        OpCode::kStop,    OpCode::kPush,       OpCode::kPop,
        OpCode::kDup,     OpCode::kSwap,       OpCode::kAdd,
        OpCode::kSub,     OpCode::kMul,        OpCode::kDiv,
        OpCode::kMod,     OpCode::kLt,         OpCode::kGt,
        OpCode::kEq,      OpCode::kIsZero,     OpCode::kAnd,
        OpCode::kOr,      OpCode::kXor,        OpCode::kNot,
        OpCode::kCaller64, OpCode::kSelf64,    OpCode::kCallValue,
        OpCode::kNumArgs, OpCode::kArg,        OpCode::kSelfBalance,
        OpCode::kBalanceOf, OpCode::kNumAddrs, OpCode::kAddr64,
        OpCode::kSload,   OpCode::kSstore,     OpCode::kLog,
        OpCode::kTransfer, OpCode::kCall,      OpCode::kReturn,
        OpCode::kRevert};
    Assembler a;
    const std::size_t len = 1 + rng.uniform(60);
    for (std::size_t i = 0; i < len; ++i) {
      const OpCode op = kOps[rng.uniform(std::size(kOps))];
      if (op == OpCode::kPush) {
        a.push(rng.uniform(1000));
      } else {
        a.op(op);
      }
    }
    ContractCode code;
    code.code = a.build();
    const std::size_t addrs = 1 + rng.uniform(3);
    for (std::size_t i = 0; i < addrs; ++i) {
      code.address_table.push_back(addr(5000 + rng.uniform(10)));
    }
    return code;
  }
};

TEST_P(VmFuzz, RandomBytesNeverCrashAndRespectGas) {
  Rng rng(GetParam());
  StateDb db;
  db.set_balance(addr(100), 1'000'000);
  Vm vm(db);
  for (int trial = 0; trial < 200; ++trial) {
    const ContractCode code = random_bytes(rng);
    CallContext ctx;
    ctx.self = addr(100);
    ctx.caller = addr(200);
    ctx.address_table = code.address_table;
    const std::uint64_t gas_limit = 1 + rng.uniform(20000);

    const Snapshot before = db.snapshot();
    const std::uint64_t supply_before = db.total_supply();
    const VmResult result = vm.execute(code, ctx, gas_limit, {});
    EXPECT_LE(result.gas_used, gas_limit);
    if (!result.success) {
      EXPECT_FALSE(result.error.empty());
      // Failed frames must have rolled back their state changes.
      EXPECT_EQ(db.snapshot(), before);
    }
    // Value is only moved, never created (frame has no external inflow).
    EXPECT_EQ(db.total_supply(), supply_before);
  }
}

TEST_P(VmFuzz, RandomProgramsKeepInvariants) {
  Rng rng(GetParam() ^ 0xfeed);
  StateDb db;
  for (std::uint64_t s = 0; s < 10; ++s) {
    db.set_balance(addr(5000 + s), 1000);
  }
  db.set_balance(addr(100), 1'000'000);
  db.flush_journal();
  Vm vm(db);

  for (int trial = 0; trial < 200; ++trial) {
    const ContractCode code = random_program(rng);
    CallContext ctx;
    ctx.self = addr(100);
    ctx.caller = addr(200);
    ctx.value = rng.uniform(100);
    const std::uint64_t args[] = {rng.next_u64(), rng.next_u64()};
    ctx.args = args;
    ctx.address_table = code.address_table;

    std::vector<InternalTx> traces;
    AccessTracker tracker;
    std::vector<std::uint64_t> logs;
    ExecutionHooks hooks{&traces, &tracker, &logs};

    const std::uint64_t gas_limit = 1 + rng.uniform(100000);
    const std::uint64_t supply_before = db.total_supply();
    const VmResult result = vm.execute(code, ctx, gas_limit, hooks);

    EXPECT_LE(result.gas_used, gas_limit);
    EXPECT_EQ(db.total_supply(), supply_before);
    // Traces only record transfers/calls initiated by executed frames.
    for (const InternalTx& itx : traces) {
      EXPECT_GE(itx.depth, 1u);
    }
    // Writes recorded by the tracker target the executing contract or a
    // table address (balances).
    for (const SlotAccess& w : tracker.writes()) {
      if (w.key != AccessTracker::kBalanceKey) {
        EXPECT_EQ(w.address, ctx.self);
      }
    }
  }
}

TEST_P(VmFuzz, DeterministicAcrossRuns) {
  Rng rng_a(GetParam() ^ 0xabc);
  Rng rng_b(GetParam() ^ 0xabc);
  for (int trial = 0; trial < 50; ++trial) {
    const ContractCode code_a = random_program(rng_a);
    const ContractCode code_b = random_program(rng_b);
    ASSERT_EQ(code_a.code, code_b.code);

    StateDb db_a;
    StateDb db_b;
    db_a.set_balance(addr(100), 12345);
    db_b.set_balance(addr(100), 12345);
    Vm vm_a(db_a);
    Vm vm_b(db_b);
    CallContext ctx;
    ctx.self = addr(100);
    ctx.caller = addr(200);
    ctx.address_table = code_a.address_table;
    const VmResult ra = vm_a.execute(code_a, ctx, 50000, {});
    const VmResult rb = vm_b.execute(code_b, ctx, 50000, {});
    EXPECT_EQ(ra.success, rb.success);
    EXPECT_EQ(ra.gas_used, rb.gas_used);
    EXPECT_EQ(ra.return_value, rb.return_value);
    EXPECT_EQ(db_a.digest(), db_b.digest());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzz,
                         ::testing::Range<std::uint64_t>(1000, 1012));

// Fuzz the runtime too: random transactions against a contract-rich state
// must never corrupt supply accounting.
class RuntimeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeFuzz, SupplyChangesOnlyByBurnedFees) {
  Rng rng(GetParam());
  StateDb db;
  const Address token = addr(50);
  const Address wallet = addr(51);
  const Address splitter = addr(52);
  genesis_deploy(db, token, contracts::token(addr(1)));
  genesis_deploy(db, wallet, contracts::hot_wallet(addr(60)));
  genesis_deploy(db, splitter, contracts::payout_splitter());
  for (std::uint64_t s = 1; s <= 8; ++s) {
    db.set_balance(addr(s), 10'000'000'000ULL);
  }
  db.flush_journal();

  RuntimeConfig config;
  for (int trial = 0; trial < 300; ++trial) {
    AccountTx tx;
    tx.from = addr(1 + rng.uniform(8));
    switch (rng.uniform(5)) {
      case 0:
        tx.to = token;
        tx.args = {rng.uniform(3), rng.uniform(100)};
        tx.address_args = {addr(1 + rng.uniform(8))};
        break;
      case 1:
        tx.to = wallet;
        tx.value = rng.uniform(10000);
        break;
      case 2:
        tx.to = splitter;
        tx.value = rng.uniform(10000);
        for (std::uint64_t i = 0; i < 1 + rng.uniform(4); ++i) {
          tx.address_args.push_back(addr(70 + rng.uniform(5)));
        }
        break;
      case 3:
        tx.to = addr(1 + rng.uniform(8));
        tx.value = rng.uniform(10000);
        break;
      default:
        tx.init_code = contracts::storage_churn();
        break;
    }
    tx.gas_limit = 21000 + rng.uniform(300000);
    tx.gas_price = 1 + rng.uniform(3);
    tx.nonce = db.nonce(tx.from);

    const std::uint64_t supply_before = db.total_supply();
    Receipt receipt;
    try {
      receipt = apply_transaction(db, tx, config);
    } catch (const ValidationError&) {
      EXPECT_EQ(db.total_supply(), supply_before);  // untouched
      continue;
    }
    // Fees are burned; nothing else may change the supply.
    EXPECT_EQ(db.total_supply(),
              supply_before - receipt.gas_used * tx.gas_price);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeFuzz,
                         ::testing::Range<std::uint64_t>(2000, 2008));

}  // namespace
}  // namespace txconc::account
